"""Campaign operational metrics and per-shard telemetry folding."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.campaign import CampaignJournal, CampaignRunner, CampaignSpec
from repro.campaign import executor as executor_mod


def _campaign(n=6, shard_size=3, **kwargs):
    return CampaignSpec("fig07", n_topologies=n, shard_size=shard_size, seed=1,
                        **kwargs)


def _runner(tmp_path, **kwargs):
    kwargs.setdefault("progress", False)
    return CampaignRunner(campaign_dir=tmp_path / "camp", **kwargs)


class TestMetricsFile:
    def test_metrics_json_written_next_to_manifest(self, tmp_path):
        runner = _runner(tmp_path)
        runner.run(_campaign())
        path = runner.campaign_dir / "metrics.json"
        assert path.exists()
        assert (runner.campaign_dir / "manifest.json").exists()
        # Atomic write: no temp sibling left behind.
        assert not list(runner.campaign_dir.glob(".*tmp*"))
        metrics = json.loads(path.read_text())
        assert metrics["n_shards"] == 2
        assert metrics["shards_run"] == 2
        assert metrics["shards_from_cache"] == 0
        assert metrics["shards_retried"] == 0
        assert metrics["shards_timed_out"] == 0
        wall = metrics["shard_wall_clock_s"]
        assert wall["total"] > 0.0
        # total and mean are rounded to 6 decimals independently.
        assert wall["mean"] == pytest.approx(wall["total"] / 2, abs=1e-6)
        assert metrics["aggregate_merge_s"] >= 0.0

    def test_metrics_written_without_telemetry(self, tmp_path):
        runner = _runner(tmp_path)
        assert runner.telemetry is None
        runner.run(_campaign())
        assert (runner.campaign_dir / "metrics.json").exists()

    def test_retries_counted_across_resume(self, tmp_path, monkeypatch):
        original = executor_mod._shard_worker
        failures = {"left": 1}

        def flaky(payload):
            if failures["left"]:
                failures["left"] -= 1
                raise RuntimeError("transient shard failure")
            return original(payload)

        monkeypatch.setattr(executor_mod, "_shard_worker", flaky)
        runner = _runner(tmp_path, retries=2)
        runner.run(_campaign())
        metrics = json.loads((runner.campaign_dir / "metrics.json").read_text())
        assert metrics["shards_retried"] == 1
        assert metrics["shards_timed_out"] == 0


class TestShardTelemetry:
    def test_shard_spans_folded_into_journal(self, tmp_path):
        telemetry = obs.Telemetry()
        runner = _runner(tmp_path, telemetry=telemetry)
        runner.run(_campaign())

        journal = CampaignJournal(runner.campaign_dir / "journal.jsonl")
        done = list(journal.completed_shards().values())
        assert len(done) == 2
        for event in done:
            summary = event["telemetry"]
            span_totals = summary["span_totals"]
            assert "campaign.shard" in span_totals
            assert span_totals["campaign.shard"]["count"] == 1
            assert summary["counters"]["rng.seeds_derived"] > 0

        counters = telemetry.counters
        assert counters["campaign.shards.completed"] == 2
        assert counters["campaign.shards.from_cache"] == 0
        # Worker counters merge into the master's additively.
        assert counters["rng.seeds_derived"] > 0
        assert telemetry.span_totals()["campaign.run"]["count"] == 1

    def test_from_cache_counted_on_rerun(self, tmp_path):
        first = _runner(tmp_path, telemetry=obs.Telemetry())
        first.run(_campaign())

        telemetry = obs.Telemetry()
        second = CampaignRunner(
            campaign_dir=tmp_path / "camp2",
            cache_dir=first.cache_dir,  # share the shard cache
            progress=False,
            telemetry=telemetry,
        )
        second.run(_campaign())
        counters = telemetry.counters
        assert counters["campaign.shards.completed"] == 2
        assert counters["campaign.shards.from_cache"] == 2
        metrics = json.loads((second.campaign_dir / "metrics.json").read_text())
        assert metrics["shards_from_cache"] == 2

    def test_untraced_journal_has_no_telemetry_key(self, tmp_path):
        runner = _runner(tmp_path)
        runner.run(_campaign())
        journal = CampaignJournal(runner.campaign_dir / "journal.jsonl")
        for event in journal.completed_shards().values():
            assert "telemetry" not in event

    def test_telemetry_type_validated(self, tmp_path):
        with pytest.raises(TypeError, match="Telemetry"):
            CampaignRunner(campaign_dir=tmp_path / "c", telemetry=object())

    def test_aggregates_identical_with_and_without_telemetry(self, tmp_path):
        plain = CampaignRunner(campaign_dir=tmp_path / "plain", progress=False)
        traced = CampaignRunner(
            campaign_dir=tmp_path / "traced",
            progress=False,
            telemetry=obs.Telemetry(),
        )
        result_plain = plain.run(_campaign())
        result_traced = traced.run(_campaign())
        cell_plain, cell_traced = result_plain.cells[0], result_traced.cells[0]
        assert set(cell_plain.series) == set(cell_traced.series)
        for name in cell_plain.series:
            assert cell_plain.series[name].state() == cell_traced.series[name].state()
