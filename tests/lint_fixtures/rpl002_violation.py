"""Seeded RPL002 violations: global state, ad-hoc seeding, entropy seeds."""

import time

import numpy as np


def bad_global_state():
    np.random.seed(1234)  # VIOLATION: global RNG state
    return np.random.rand(4)  # VIOLATION: legacy global draw


def bad_ad_hoc_generator():
    return np.random.default_rng(42)  # VIOLATION: ad-hoc generator in library code


def bad_entropy_seed():
    return np.random.default_rng(int(time.time()))  # VIOLATION: wall-clock seed
