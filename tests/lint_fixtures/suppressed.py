"""Suppression fixtures: inline and file-level disables."""

import numpy as np


def host_boundary():
    # Same violation as rpl002, muted inline with a stated reason.
    np.random.seed(0)  # repro-lint: disable=RPL002 (exercising the mute)
    return 1


def still_flagged():
    np.random.seed(1)  # no suppression here: must still be caught
    return 2
