"""Seeded RPL005 violations: dB-scale names meeting linear power bare."""


def total_power(signal_dbm, leak_mw, gain_db, budget_w):
    combined = signal_dbm + leak_mw  # VIOLATION: dBm plus milliwatts
    scaled = gain_db * budget_w  # VIOLATION: dB times watts
    return combined, scaled
