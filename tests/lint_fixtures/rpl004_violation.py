"""Seeded RPL004 violations: undeclared counter name, span outside with."""

from repro.obs import active as _obs


def run_round(telemetry):
    _obs().count("engine.secret_rounds")  # VIOLATION: undeclared name
    telemetry.gauge("engine.mystery_depth", 3)  # VIOLATION: undeclared name
    span = telemetry.span("engine.run")  # VIOLATION: manual span handling
    span.__enter__()
    try:
        pass
    finally:
        span.__exit__(None, None, None)
