"""RPL005 near-misses: converted operands and same-class arithmetic."""

from repro.units import db_to_linear, dbm_to_mw


def total_power(signal_dbm, leak_mw, gain_db, path_loss_db, noise_mw):
    # Converted through repro.units first: fine.
    combined_mw = dbm_to_mw(signal_dbm) + leak_mw
    # Same dB class on both sides: fine.
    budget_db = gain_db - path_loss_db
    # Same linear class on both sides: fine.
    floor_mw = leak_mw + noise_mw
    return combined_mw, db_to_linear(budget_db), floor_mw
