"""Seeded RPL006 violations: torn-write-prone persistence."""

import json
from pathlib import Path

import numpy as np


def save_result(path: Path, payload: dict, arrays: dict) -> None:
    path.write_text(json.dumps(payload))  # VIOLATION: direct overwrite
    with open(path.with_suffix(".json"), "w") as fh:  # VIOLATION: w-mode open
        json.dump(payload, fh)  # VIOLATION: dump straight to destination
    np.savez(path.with_suffix(".npz"), **arrays)  # VIOLATION: direct npz
