# Fixture snippets for the repro.lint rule tests.  Each rule has a seeded
# violation (must be caught) and a near-miss (must not fire).  This tree is
# in the linter's default excludes, so full-tree runs never see it; the
# tests lint the files explicitly, impersonating library paths via
# `logical_path`.
