"""RPL001 near-misses: every sanctioned host-boundary shape in one file."""

import numpy as np

from repro.xp import array_namespace

# Module-level constant tables are built on the host once: fine.
_TABLE = np.array([1.0, 2.0, 3.0])


def assemble(parts, listeners):
    xp = array_namespace(parts[0])
    # Host staging buffer named with the documented *_np suffix: fine.
    stacked_np = np.stack([np.asarray(p) for p in parts])
    device = xp.asarray(stacked_np, dtype=xp.float_dtype)
    # Host assembly lexically inside the xp.asarray transfer: fine.
    other = xp.asarray(np.stack([p * 2 for p in parts]))
    # Index staging with an explicit non-float dtype: fine.
    listeners = np.asarray(listeners, dtype=int)
    # Allowlisted non-compute members: fine.
    if device.shape[0] == 0:
        raise np.linalg.LinAlgError("empty batch")
    return device[listeners] + other[listeners]
