"""Seeded RPL007 violation: a registered experiment with no batch hook."""

from repro.api.experiments import register_experiment


def _build(topo_seed, params):
    return {"capacity": float(topo_seed)}


def _finalize(outcomes, params):
    return outcomes


# VIOLATION: no build_batch and no loop-fallback marker -- the vectorized
# backend silently degrades to the per-topology loop.
@register_experiment
class UnbatchedExperiment:
    name = "fixture_unbatched"
    description = "fixture"
    defaults = {"n_topologies": 4}
    build = staticmethod(_build)
    finalize = staticmethod(_finalize)
