"""Seeded RPL001 violation: raw numpy compute in a dispatched scope."""

import numpy as np

from repro.xp import array_namespace


def capacity_for(h):
    xp = array_namespace(h)
    powers = xp.abs(h) ** 2
    # VIOLATION: np.sqrt on what may be a device tensor.
    scale = np.sqrt(powers)
    return xp.sum(scale, axis=-1)
