"""RPL007 near-misses: batched hook present, or fallback declared."""

from repro.api.experiments import ExperimentDef, register_experiment


def _build(topo_seed, params):
    return {"capacity": float(topo_seed)}


def _build_batch(topo_seeds, params):
    return [_build(s, params) for s in topo_seeds]


def _finalize(outcomes, params):
    return outcomes


@register_experiment
class BatchedExperiment:
    name = "fixture_batched"
    description = "fixture"
    defaults = {"n_topologies": 4}
    build = staticmethod(_build)
    build_batch = staticmethod(_build_batch)
    finalize = staticmethod(_finalize)


@register_experiment
class DeclaredFallbackExperiment:
    # The documented opt-out: a reason, not a silent degradation.
    loop_fallback = "event-driven engine; no batched formulation yet"
    name = "fixture_fallback"
    description = "fixture"
    defaults = {"n_topologies": 4}
    build = staticmethod(_build)
    finalize = staticmethod(_finalize)


# repro-lint: loop-fallback (per-topology by construction)
register_experiment(
    ExperimentDef(
        name="fixture_def_fallback",
        description="fixture",
        build=_build,
        finalize=_finalize,
        defaults={"n_topologies": 4},
    )
)
