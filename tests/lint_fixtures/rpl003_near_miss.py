"""RPL003 near-miss: every field serialized, omit-when-unset included.

Also a plain dataclass with ``to_dict`` but no ``canonical_json`` -- not a
content-hashable spec, so the rule must leave it alone even though its
``to_dict`` is partial.
"""

import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class GoodSpec:
    experiment: str
    seed: int = 0
    traffic: str | None = None
    mobility: str | None = None

    def to_dict(self) -> dict:
        data = {"experiment": self.experiment, "seed": self.seed}
        # Omit-when-unset via the literal-tuple loop idiom.
        for label in ("traffic", "mobility"):
            value = getattr(self, label)
            if value is not None:
                data[label] = value
        return data

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()


@dataclass
class NotASpec:
    name: str
    ignored: int = 0

    def to_dict(self) -> dict:
        return {"name": self.name}
