"""RPL002 near-misses: the sanctioned seed-tree spellings."""

import numpy as np

from repro import rng as rng_mod


def good_passthrough(seed: int, rng: np.random.Generator):
    # Annotations naming np.random.Generator are type references, not draws.
    child_a, child_b = rng_mod.spawn(rng, 2)
    derived = rng_mod.derived_seed(seed, 7)
    return rng_mod.make_rng(derived), child_a, child_b


def good_draw(rng: np.random.Generator):
    # Drawing from a generator handed down the seed tree is the contract.
    return rng.normal(size=3)
