"""Seeded RPL003 violation: a spec field missing from the serializer."""

import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class BrokenSpec:
    experiment: str
    seed: int = 0
    # VIOLATION: `coordination` never reaches to_dict, so two specs that
    # differ only in coordination collide on one spec hash.
    coordination: str | None = None

    def to_dict(self) -> dict:
        return {"experiment": self.experiment, "seed": self.seed}

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()
