"""File-level suppression fixture."""
# repro-lint: disable-file=RPL005


def mix(a_dbm, b_mw, c_db, d_w):
    return a_dbm + b_mw, c_db * d_w  # both muted by the file-level disable
