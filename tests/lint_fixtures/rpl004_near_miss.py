"""RPL004 near-misses: declared names, with-block spans, dynamic merges."""

from repro.obs import active as _obs


def run_round(telemetry, summary):
    _obs().count("engine.rounds")  # declared core counter: fine
    telemetry.count("engine.txops", 4)  # declared core counter: fine
    with telemetry.span("engine.run", engine="loop"):  # with-block span: fine
        pass
    for name, value in summary.items():
        telemetry.count(name, value)  # dynamic merge over validated keys: fine
    # .count on something that is not telemetry is out of scope entirely.
    import itertools

    return next(itertools.count())
