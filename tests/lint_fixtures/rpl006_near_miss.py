"""RPL006 near-misses: the tmp-sibling pattern, append journals, reads."""

import json
import os
from pathlib import Path


def save_result(path: Path, payload: dict) -> None:
    # The sanctioned shape: temp sibling written, then renamed into place.
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def append_journal(path: Path, event: dict) -> None:
    # Append-mode journals are crash-safe by design (torn final line is
    # tolerated and dropped by the reader): fine.
    with open(path, "a") as fh:
        fh.write(json.dumps(event) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def load_result(path: Path) -> dict:
    # Reads are out of scope.
    with open(path) as fh:
        return json.load(fh)
