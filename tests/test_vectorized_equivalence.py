"""Bit-for-bit equivalence of the vectorized backend against the loop path.

The vectorized backend's whole contract is that stacking never changes a
bit: batched precoders equal their scalar siblings slice for slice, batched
channel synthesis equals per-topology ``ChannelModel`` construction, and
``Runner(backend="vectorized")`` reproduces ``backend="loop"`` exactly for
every registered experiment.  Everything here asserts ``array_equal`` --
no tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    BATCH_PRECODERS,
    PRECODERS,
    RunSpec,
    Runner,
    get_experiment_def,
    precoder_matrix,
    precoder_matrix_batch,
)
from repro.channel.batch import ChannelBatch
from repro.channel.model import ChannelModel
from repro.config import RadioConfig
from repro.core import batch as core_batch
from repro.core.svd import svd_waterfilling
from repro.core.waterfill import reverse_waterfill
from repro.topology.deployment import AntennaMode
from repro.topology.scenarios import office_b, paired_scenarios

RADIO = RadioConfig()


def _channel_stack(batch: int, n_clients: int, n_antennas: int, seed: int = 0):
    """Random channels with DAS-like per-row dynamic range (kept within the
    conditioning every registered solver, incl. WMMSE, can handle)."""
    rng = np.random.default_rng(seed)
    scale = 10 ** rng.uniform(-4, -2, (batch, n_clients, 1))
    return scale * (
        rng.standard_normal((batch, n_clients, n_antennas))
        + 1j * rng.standard_normal((batch, n_clients, n_antennas))
    )


# ----------------------------------------------------------------------
# Precoders
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def das_channels():
    """A small stack of *real* DAS channels -- the distribution every
    registered solver (incl. the touchier iterative ones) is built for."""
    env = office_b()
    seeds = [3, 14, 159]
    deployments = [
        paired_scenarios(env, [(0.0, 0.0)], seed=seed, name="equiv-pre")[
            AntennaMode.DAS
        ].deployment
        for seed in seeds
    ]
    return ChannelBatch(deployments, env.radio, seeds).channel_matrices()


@pytest.mark.parametrize("name", sorted(PRECODERS.names()))
def test_every_registered_precoder_matches_bit_for_bit(name, das_channels):
    h = das_channels
    p, noise = RADIO.per_antenna_power_mw, RADIO.noise_mw
    stacked = precoder_matrix_batch(name, h, p, noise)
    for index, item in enumerate(h):
        assert np.array_equal(stacked[index], precoder_matrix(name, item, p, noise))


def test_batched_registry_covers_the_closed_form_precoders():
    assert {"naive", "balanced", "total_power"} <= set(BATCH_PRECODERS.names())


def test_batched_power_balance_metadata_matches():
    h = _channel_stack(32, 4, 4, seed=5)
    p, noise = RADIO.per_antenna_power_mw, RADIO.noise_mw
    from repro.core.power_balance import power_balanced_precoder as scalar_pb

    stacked = core_batch.power_balanced_precoder(h, p, noise)
    assert stacked.rounds.max() >= 1  # the sweep actually exercised repairs
    for index, item in enumerate(h):
        scalar = scalar_pb(item, p, noise)
        assert np.array_equal(stacked.v[index], scalar.v)
        assert stacked.rounds[index] == scalar.rounds
        assert bool(stacked.converged[index]) == scalar.converged
        assert np.array_equal(stacked.row_powers_mw[index], scalar.row_powers_mw)
        assert np.array_equal(
            stacked.cumulative_weights[index], scalar.cumulative_weights
        )


@pytest.mark.parametrize("budget", [0.5, 3.0, 50.0])
def test_batched_reverse_waterfill_matches_all_branches(budget):
    # Budgets chosen to hit the capped, bisection, and trivial branches.
    rng = np.random.default_rng(9)
    q = rng.uniform(0.0, 5.0, (40, 4))
    rho = rng.uniform(0.0, 30.0, (40, 4))
    stacked = core_batch.reverse_waterfill(q, rho, budget)
    for i in range(len(q)):
        scalar = reverse_waterfill(q[i], rho[i], budget)
        assert np.array_equal(stacked.weights[i], scalar.weights)
        assert np.array_equal(stacked.reductions_mw[i], scalar.reductions_mw)
        assert stacked.water_level[i] == scalar.water_level
        assert bool(stacked.capped[i]) == scalar.capped


def test_batched_svd_waterfilling_matches():
    h = _channel_stack(16, 3, 5, seed=2)
    total, noise = 4 * RADIO.per_antenna_power_mw, RADIO.noise_mw
    stacked = core_batch.svd_waterfilling(h, total, noise)
    capacities = stacked.capacity_bps_hz(noise)
    for i, item in enumerate(h):
        scalar = svd_waterfilling(item, total, noise)
        assert np.array_equal(stacked.v[i], scalar.v)
        assert np.array_equal(stacked.stream_powers_mw[i], scalar.stream_powers_mw)
        assert capacities[i] == scalar.capacity_bps_hz(noise)


def test_batched_svd_waterfilling_matches_on_rank_deficient_items():
    # An item with a zero singular mode (duplicated rows) must take the
    # scalar solver's usable-mode masking, not error out.
    degenerate = np.array([[1, 2, 0], [1, 2, 0], [0, 0, 3]], dtype=complex)
    healthy = _channel_stack(1, 3, 3, seed=8)[0]
    h = np.stack([degenerate, healthy])
    stacked = core_batch.svd_waterfilling(h, 10.0, 1.0)
    for i, item in enumerate(h):
        scalar = svd_waterfilling(item, 10.0, 1.0)
        assert np.array_equal(stacked.v[i], scalar.v)
        assert np.array_equal(stacked.stream_powers_mw[i], scalar.stream_powers_mw)
    with pytest.raises(ValueError, match="usable singular"):
        core_batch.svd_waterfilling(np.zeros((1, 2, 2), dtype=complex), 1.0, 1.0)


def test_batch_precoders_reject_single_matrices():
    h = _channel_stack(1, 2, 2)[0]
    with pytest.raises(ValueError):
        core_batch.naive_scaled_precoder(h, 1.0)
    with pytest.raises(ValueError):
        precoder_matrix_batch("naive", h, 1.0, 1e-9)


# ----------------------------------------------------------------------
# Channel batch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", [AntennaMode.CAS, AntennaMode.DAS])
def test_channel_batch_matches_scalar_models(mode):
    env = office_b()
    seeds = [11, 22, 33, 44]
    deployments = [
        paired_scenarios(env, [(0.0, 0.0)], seed=seed, name="equiv")[mode].deployment
        for seed in seeds
    ]
    batch = ChannelBatch(deployments, env.radio, seeds)
    models = [
        ChannelModel(dep, env.radio, seed=seed)
        for dep, seed in zip(deployments, seeds)
    ]
    grid = np.random.default_rng(1).uniform(-12.0, 12.0, (40, 2))

    stacked_h = batch.channel_matrices()
    stacked_rssi = batch.client_rx_power_dbm()
    stacked_snr = batch.snr_db_map(grid)
    for i, model in enumerate(models):
        assert np.array_equal(stacked_h[i], model.channel_matrix())
        assert np.array_equal(stacked_rssi[i], model.client_rx_power_dbm())
        assert np.array_equal(stacked_snr[i], model.snr_db_map(grid))

    batch.advance(0.05)
    for i, model in enumerate(models):
        model.advance(0.05)
        assert np.array_equal(batch.channel_matrices()[i], model.channel_matrix())


def test_channel_batch_rejects_mixed_shapes():
    env = office_b()
    small = paired_scenarios(
        env, [(0.0, 0.0)], antennas_per_ap=2, clients_per_ap=2, seed=0, name="a"
    )[AntennaMode.DAS].deployment
    large = paired_scenarios(
        env, [(0.0, 0.0)], antennas_per_ap=4, clients_per_ap=4, seed=0, name="b"
    )[AntennaMode.DAS].deployment
    with pytest.raises(ValueError, match="share one"):
        ChannelBatch([small, large], env.radio, [0, 1])


# ----------------------------------------------------------------------
# Runner end-to-end
# ----------------------------------------------------------------------
#: Every registered experiment at a tiny size; the slow network-sim
#: experiments run with reduced rounds.  Experiments without a batch hook
#: exercise the (identical-by-construction) fallback path.
EXPERIMENT_CASES = [
    ("fig03", {"n_topologies": 4}, {}),
    ("fig07", {"n_topologies": 4}, {}),
    ("fig08", {"n_topologies": 3}, {}),
    ("fig09", {"n_topologies": 3}, {}),
    ("fig09", {"n_topologies": 3, "precoder": "wmmse"}, {}),
    ("fig10", {"n_topologies": 4}, {}),
    ("fig11", {"n_topologies": 2}, {}),
    ("fig12", {"n_topologies": 2}, {"rounds_per_topology": 3}),
    ("fig13", {"n_topologies": 2}, {"grid_step_m": 2.0}),
    ("fig14", {"n_topologies": 6}, {}),
    ("fig15", {"n_topologies": 2}, {"rounds_per_topology": 3}),
    ("fig15", {"n_topologies": 2}, {"rounds_per_topology": 2, "dynamic": True, "duration_s": 0.02}),
    ("fig16", {"n_topologies": 1}, {"rounds_per_topology": 2}),
    ("hidden_terminals", {"n_topologies": 2}, {"grid_step_m": 2.0}),
    ("ablation_csi_error", {"n_topologies": 3}, {"error_stds": [0.0, 0.1]}),
    ("ablation_das_radius", {"n_topologies": 3}, {"fractions": [[0.5, 0.75]]}),
    ("ablation_precoders", {"n_topologies": 2}, {"include_full_optimal": False}),
    ("ablation_tag_width", {"n_topologies": 4}, {"widths": [1, 2]}),
    (
        "latency_vs_load",
        {"n_topologies": 2},
        {"offered_loads_mbps": [15.0, 60.0], "rounds_per_topology": 6},
    ),
    (
        "latency_vs_load",
        {"n_topologies": 2, "traffic": "on_off"},
        {"offered_loads_mbps": [30.0], "rounds_per_topology": 6},
    ),
]


@pytest.mark.parametrize(
    "experiment,spec_kwargs,params",
    EXPERIMENT_CASES,
    ids=[f"{c[0]}-{i}" for i, c in enumerate(EXPERIMENT_CASES)],
)
def test_vectorized_backend_is_bit_identical(experiment, spec_kwargs, params):
    spec = RunSpec(experiment, seed=7, params=params, **spec_kwargs)
    loop = Runner(backend="loop").run(spec)
    vectorized = Runner(backend="vectorized").run(spec)
    assert set(loop.series) == set(vectorized.series)
    for key in loop.series:
        assert np.array_equal(loop.series[key], vectorized.series[key]), key


def test_every_registered_experiment_defines_the_hook():
    # Since the batched round engine landed, all 16 experiments (and the
    # ablations) run under the vectorized backend -- no fallbacks left.
    from repro.api import experiment_names

    for name in experiment_names():
        assert get_experiment_def(name).build_batch is not None, name


def test_runner_rejects_unknown_backend():
    with pytest.raises(ValueError, match="backend"):
        Runner(backend="gpu")


def test_vectorized_backend_composes_with_caching(tmp_path):
    spec = RunSpec("fig03", n_topologies=3, seed=1)
    first = Runner(backend="vectorized", cache_dir=tmp_path).run(spec)
    # A loop-backend runner hits the vectorized runner's cache entry:
    # backends are bit-equal, so the cache key ignores them.
    second = Runner(backend="loop", cache_dir=tmp_path).run(spec)
    for key in first.series:
        assert np.array_equal(first.series[key], second.series[key])
    assert len(list(tmp_path.iterdir())) == 1
