"""Per-antenna NAV timer tests (paper §3.2.2)."""

import numpy as np
import pytest

from repro.mac.nav import NavTable


class TestNavBasics:
    def test_initially_clear(self):
        nav = NavTable(4)
        assert nav.is_clear(0, 0.0)
        np.testing.assert_array_equal(nav.clear_antennas(0.0), [0, 1, 2, 3])

    def test_set_and_expire(self):
        nav = NavTable(2)
        nav.set_nav(0, 100.0)
        assert not nav.is_clear(0, 50.0)
        assert nav.is_clear(0, 100.0)
        assert nav.is_clear(1, 50.0)

    def test_nav_never_shrinks(self):
        nav = NavTable(1)
        nav.set_nav(0, 100.0)
        nav.set_nav(0, 60.0)
        assert nav.expiry_us(0) == 100.0

    def test_nav_extends(self):
        nav = NavTable(1)
        nav.set_nav(0, 100.0)
        nav.set_nav(0, 150.0)
        assert nav.expiry_us(0) == 150.0

    def test_rejects_zero_antennas(self):
        with pytest.raises(ValueError):
            NavTable(0)


class TestOpportunisticQueries:
    def test_expiring_within_window(self):
        nav = NavTable(4)
        nav.set_nav(0, 100.0)
        nav.set_nav(1, 500.0)
        nav.set_nav(2, 120.0)
        # At t=90 with a 34 us window: antennas 0 (100) and 2 (120) qualify.
        np.testing.assert_array_equal(nav.expiring_within(90.0, 34.0), [0, 2])

    def test_already_clear_not_in_expiring(self):
        nav = NavTable(2)
        nav.set_nav(0, 100.0)
        assert 1 not in nav.expiring_within(90.0, 34.0)

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            NavTable(1).expiring_within(0.0, -1.0)

    def test_order_by_expiry(self):
        nav = NavTable(3)
        nav.set_nav(0, 300.0)
        nav.set_nav(1, 100.0)
        nav.set_nav(2, 200.0)
        np.testing.assert_array_equal(nav.order_by_expiry([0, 1, 2]), [1, 2, 0])

    def test_order_stable_for_equal_expiry(self):
        nav = NavTable(3)
        np.testing.assert_array_equal(nav.order_by_expiry([2, 0, 1]), [2, 0, 1])
