"""MIDAS power-balanced precoder tests (paper §3.1.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import random_channel
from repro.core.naive import naive_scaled_precoder
from repro.core.power_balance import power_balanced_precoder
from repro.core.zfbf import zf_interference_leakage
from repro.phy.capacity import per_antenna_row_power, stream_sinrs, sum_capacity_bps_hz

P = 6.3  # per-antenna budget, mW
NOISE = 1e-9


class TestFeasibility:
    def test_per_antenna_constraint_satisfied(self):
        for seed in range(10):
            h = random_channel(seed)
            result = power_balanced_precoder(h, P, NOISE)
            assert result.converged
            assert per_antenna_row_power(result.v).max() <= P * (1 + 1e-6)

    def test_rounds_bounded_by_antennas(self):
        for seed in range(10):
            h = random_channel(seed)
            result = power_balanced_precoder(h, P, NOISE)
            assert result.rounds <= h.shape[1] + 2

    def test_zero_forcing_preserved(self):
        for seed in range(5):
            h = random_channel(seed)
            result = power_balanced_precoder(h, P, NOISE)
            assert zf_interference_leakage(h, result.v) < 1e-7

    def test_cumulative_weights_at_most_one(self):
        h = random_channel(3)
        result = power_balanced_precoder(h, P, NOISE)
        assert np.all(result.cumulative_weights <= 1.0 + 1e-12)
        assert np.all(result.cumulative_weights > 0)

    def test_no_stream_zeroed(self):
        for seed in range(10):
            h = random_channel(seed)
            result = power_balanced_precoder(h, P, NOISE)
            stream_powers = np.sum(np.abs(result.v) ** 2, axis=0)
            assert np.all(stream_powers > 0)


class TestPerformance:
    def test_beats_naive_in_the_median(self):
        # The greedy row-by-row water-filling is not a pointwise optimum --
        # on rare draws it can land slightly below the naive scaling -- but
        # it must win in aggregate (the paper's Fig 10 claim) and never lose
        # badly on any single channel.
        balanced_caps, naive_caps = [], []
        for seed in range(25):
            h = random_channel(seed)
            balanced = power_balanced_precoder(h, P, NOISE).v
            naive = naive_scaled_precoder(h, P)
            cb = sum_capacity_bps_hz(stream_sinrs(h, balanced, NOISE))
            cn = sum_capacity_bps_hz(stream_sinrs(h, naive, NOISE))
            assert cb >= cn * 0.95
            balanced_caps.append(cb)
            naive_caps.append(cn)
        assert np.median(balanced_caps) > np.median(naive_caps)

    def test_already_feasible_channel_untouched(self):
        # A well-balanced channel needs no rounds.
        h = np.eye(4, dtype=complex) * 1e-4
        result = power_balanced_precoder(h, P, NOISE)
        assert result.rounds == 0
        np.testing.assert_allclose(result.cumulative_weights, 1.0)


class TestValidation:
    def test_nonpositive_power_rejected(self):
        with pytest.raises(ValueError):
            power_balanced_precoder(random_channel(0), 0.0, NOISE)

    def test_nonpositive_noise_rejected(self):
        with pytest.raises(ValueError):
            power_balanced_precoder(random_channel(0), P, 0.0)


class TestProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_invariants_for_random_channels(self, seed):
        h = random_channel(seed)
        result = power_balanced_precoder(h, P, NOISE)
        assert result.converged
        assert per_antenna_row_power(result.v).max() <= P * (1 + 1e-6)
        assert zf_interference_leakage(h, result.v) < 1e-6

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_rectangular_channels(self, seed, n_clients, n_antennas):
        if n_clients > n_antennas:
            n_clients, n_antennas = n_antennas, n_clients
        h = random_channel(seed, n_clients=n_clients, n_antennas=n_antennas)
        result = power_balanced_precoder(h, P, NOISE)
        assert result.converged
        assert result.v.shape == (n_antennas, n_clients)
