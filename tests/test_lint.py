"""Tests for :mod:`repro.lint`: framework, every RPL rule, CLI, self-check.

Each rule is exercised against fixture snippets in ``tests/lint_fixtures``:
a seeded violation (must be caught) and a near-miss (must not fire).  The
fixtures impersonate library paths via ``logical_path`` because several
rules are path-scoped (dispatched modules, persistence modules, test-code
exemptions).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import RULES, Diagnostic, lint_file, lint_paths, lint_source
from repro.lint.cli import main as lint_main
from repro.lint.engine import PARSE_ERROR_CODE

REPO = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

#: logical paths that put a fixture inside each rule's scope
LIB = "repro/sim/fake_module.py"  # plain library code (non-test, non-impl)


def codes(diagnostics):
    return [d.code for d in diagnostics]


def run_fixture(name, logical_path=LIB, select=None):
    return lint_file(
        FIXTURES / name, logical_path=logical_path, select=select
    )


# ----------------------------------------------------------------------
# Framework
# ----------------------------------------------------------------------
class TestFramework:
    def test_all_seven_rules_registered(self):
        assert list(RULES) == [f"RPL00{i}" for i in range(1, 8)]

    def test_diagnostic_format_and_order(self):
        a = Diagnostic("b.py", 3, 1, "RPL002", "m")
        b = Diagnostic("a.py", 9, 4, "RPL005", "n")
        assert sorted([a, b]) == [b, a]
        assert b.format() == "a.py:9:4: RPL005 n"
        assert b.to_dict()["line"] == 9

    def test_unknown_select_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule code"):
            lint_source("x = 1", select=["RPL999"])
        with pytest.raises(ValueError, match="unknown rule code"):
            lint_source("x = 1", ignore=["NOPE01"])

    def test_select_and_ignore_narrow_the_run(self):
        source = (FIXTURES / "rpl005_violation.py").read_text()
        assert codes(lint_source(source, logical_path=LIB, select=["RPL005"]))
        assert not lint_source(source, logical_path=LIB, ignore=["RPL005"])

    def test_parse_error_is_a_diagnostic(self):
        diagnostics = lint_source("def broken(:\n", path="bad.py")
        assert codes(diagnostics) == [PARSE_ERROR_CODE]
        assert "does not parse" in diagnostics[0].message

    def test_fixture_tree_is_default_excluded(self):
        # Full-tree runs never see the seeded violations.
        assert lint_paths([FIXTURES]) == []
        assert lint_paths([FIXTURES], use_excludes=False)


# ----------------------------------------------------------------------
# RPL001 -- xp dispatch
# ----------------------------------------------------------------------
class TestRpl001:
    def test_violation_caught_in_dispatched_module(self):
        diagnostics = run_fixture(
            "rpl001_violation.py", logical_path="repro/core/batch.py",
            select=["RPL001"],
        )
        assert codes(diagnostics) == ["RPL001"]
        assert "np.sqrt" in diagnostics[0].message

    def test_near_miss_passes_in_dispatched_module(self):
        assert not run_fixture(
            "rpl001_near_miss.py", logical_path="repro/core/batch.py",
            select=["RPL001"],
        )

    def test_same_code_fine_outside_dispatched_scope(self):
        assert not run_fixture(
            "rpl001_violation.py", logical_path="repro/sim/rounds.py",
            select=["RPL001"],
        )

    def test_function_scoped_dispatch(self):
        source = (
            "import numpy as np\n"
            "class CarrierSenseBatch:\n"
            "    def decode_mask(self, x):\n"
            "        return np.sqrt(x)\n"
            "    def host_helper(self, x):\n"
            "        return np.sqrt(x)\n"
        )
        diagnostics = lint_source(
            source, logical_path="repro/sim/batch.py", select=["RPL001"]
        )
        assert [d.line for d in diagnostics] == [4]


# ----------------------------------------------------------------------
# RPL002 -- RNG discipline
# ----------------------------------------------------------------------
class TestRpl002:
    def test_violations_caught(self):
        diagnostics = run_fixture("rpl002_violation.py", select=["RPL002"])
        messages = " | ".join(d.message for d in diagnostics)
        assert "global" in messages            # np.random.seed / rand
        assert "ad-hoc" in messages            # default_rng(42)
        assert "time.time" in messages         # entropy seeding
        assert len(diagnostics) >= 4

    def test_near_miss_passes(self):
        assert not run_fixture("rpl002_near_miss.py", select=["RPL002"])

    def test_literal_seeds_allowed_in_test_code(self):
        source = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert not lint_source(
            source, logical_path="tests/test_something.py", select=["RPL002"]
        )
        assert lint_source(
            source, logical_path="repro/sim/fake.py", select=["RPL002"]
        )

    def test_seed_tree_module_is_exempt(self):
        source = "import numpy as np\ng = np.random.default_rng(s)\n"
        assert not lint_source(
            source, logical_path="repro/rng.py", select=["RPL002"]
        )

    def test_entropy_seed_flagged_even_in_tests(self):
        source = (
            "import time\nimport numpy as np\n"
            "rng = np.random.default_rng(int(time.time()))\n"
        )
        diagnostics = lint_source(
            source, logical_path="tests/test_x.py", select=["RPL002"]
        )
        assert any("time.time" in d.message for d in diagnostics)


# ----------------------------------------------------------------------
# RPL003 -- spec-hash stability
# ----------------------------------------------------------------------
class TestRpl003:
    def test_violation_caught(self):
        diagnostics = run_fixture("rpl003_violation.py", select=["RPL003"])
        assert codes(diagnostics) == ["RPL003"]
        assert "BrokenSpec.coordination" in diagnostics[0].message

    def test_near_miss_passes(self):
        assert not run_fixture("rpl003_near_miss.py", select=["RPL003"])

    def test_hashable_spec_without_to_dict_flagged(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class S:\n"
            "    x: int = 0\n"
            "    def canonical_json(self):\n"
            "        return '{}'\n"
        )
        diagnostics = lint_source(source, logical_path=LIB, select=["RPL003"])
        assert codes(diagnostics) == ["RPL003"]
        assert "no `to_dict`" in diagnostics[0].message


# ----------------------------------------------------------------------
# RPL004 -- telemetry vocabulary and span shape
# ----------------------------------------------------------------------
class TestRpl004:
    def test_violations_caught(self):
        diagnostics = run_fixture("rpl004_violation.py", select=["RPL004"])
        messages = " | ".join(d.message for d in diagnostics)
        assert "engine.secret_rounds" in messages
        assert "engine.mystery_depth" in messages
        assert "with" in messages  # the manual span
        assert len(diagnostics) == 3

    def test_near_miss_passes(self):
        assert not run_fixture("rpl004_near_miss.py", select=["RPL004"])

    def test_vocabulary_not_enforced_in_test_code(self):
        source = "def f(telemetry):\n    telemetry.count('made.up')\n"
        assert not lint_source(
            source, logical_path="tests/test_obs.py", select=["RPL004"]
        )

    def test_span_shape_enforced_everywhere(self):
        source = "def f(telemetry):\n    s = telemetry.span('x')\n"
        assert lint_source(
            source, logical_path="tests/test_obs.py", select=["RPL004"]
        )


# ----------------------------------------------------------------------
# RPL005 -- units discipline
# ----------------------------------------------------------------------
class TestRpl005:
    def test_violations_caught(self):
        diagnostics = run_fixture("rpl005_violation.py", select=["RPL005"])
        assert codes(diagnostics) == ["RPL005", "RPL005"]
        assert "signal_dbm" in diagnostics[0].message
        assert "leak_mw" in diagnostics[0].message

    def test_near_miss_passes(self):
        assert not run_fixture("rpl005_near_miss.py", select=["RPL005"])


# ----------------------------------------------------------------------
# RPL006 -- atomic writes
# ----------------------------------------------------------------------
class TestRpl006:
    SCOPE = "repro/campaign/fake_store.py"

    def test_violations_caught(self):
        diagnostics = run_fixture(
            "rpl006_violation.py", logical_path=self.SCOPE, select=["RPL006"]
        )
        assert codes(diagnostics) == ["RPL006"] * 4

    def test_near_miss_passes(self):
        assert not run_fixture(
            "rpl006_near_miss.py", logical_path=self.SCOPE, select=["RPL006"]
        )

    def test_rule_only_binds_persistence_modules(self):
        assert not run_fixture(
            "rpl006_violation.py", logical_path="repro/sim/fake.py",
            select=["RPL006"],
        )


# ----------------------------------------------------------------------
# RPL007 -- experiments ship build_batch
# ----------------------------------------------------------------------
class TestRpl007:
    SCOPE = "repro/experiments/fake_fig.py"

    def test_violation_caught(self):
        diagnostics = run_fixture(
            "rpl007_violation.py", logical_path=self.SCOPE, select=["RPL007"]
        )
        assert codes(diagnostics) == ["RPL007"]
        assert "UnbatchedExperiment" in diagnostics[0].message

    def test_near_miss_passes(self):
        assert not run_fixture(
            "rpl007_near_miss.py", logical_path=self.SCOPE, select=["RPL007"]
        )


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_inline_disable_mutes_one_line_only(self):
        diagnostics = run_fixture("suppressed.py", select=["RPL002"])
        assert codes(diagnostics) == ["RPL002"]
        assert diagnostics[0].line == 13  # still_flagged, not host_boundary

    def test_file_level_disable(self):
        assert not run_fixture("suppressed_file.py", select=["RPL005"])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_clean_file_exits_zero(self, capsys):
        rc = lint_main(
            [str(FIXTURES / "rpl005_near_miss.py"), "--no-default-excludes"]
        )
        assert rc == 0
        assert capsys.readouterr().out == ""

    def test_violation_exits_one_with_human_output(self, capsys):
        rc = lint_main(
            [str(FIXTURES / "suppressed.py"), "--no-default-excludes"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "RPL002" in out
        assert "suppressed.py:13" in out
        assert "1 diagnostic" in out

    def test_json_output(self, capsys):
        rc = lint_main(
            [
                str(FIXTURES / "suppressed.py"),
                "--no-default-excludes",
                "--format",
                "json",
            ]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert [d["code"] for d in payload] == ["RPL002"]
        assert payload[0]["line"] == 13
        assert payload[0]["path"].endswith("suppressed.py")

    def test_select_flag(self, capsys):
        rc = lint_main(
            [
                str(FIXTURES / "suppressed.py"),
                "--no-default-excludes",
                "--select",
                "RPL005",
            ]
        )
        assert rc == 0

    def test_unknown_code_is_usage_error(self, capsys):
        rc = lint_main(["--select", "RPL999"])
        assert rc == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out

    def test_missing_path_is_usage_error(self, capsys):
        rc = lint_main(["definitely_not_here.txt"])
        assert rc == 2


# ----------------------------------------------------------------------
# Self-check: the merged tree is clean
# ----------------------------------------------------------------------
class TestSelfCheck:
    def test_src_and_tests_are_clean(self):
        diagnostics = lint_paths([REPO / "src", REPO / "tests"])
        assert diagnostics == [], "\n".join(d.format() for d in diagnostics)
