"""Virtual packet tagging tests (paper §3.2.4)."""

import numpy as np
import pytest

from repro.core.tagging import TagTable, antenna_preferences


class TestPreferences:
    def test_descending_rssi_order(self):
        rssi = np.array([[-60.0, -50.0, -70.0]])
        prefs = antenna_preferences(rssi)
        np.testing.assert_array_equal(prefs[0], [1, 0, 2])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            antenna_preferences(np.array([-60.0, -50.0]))

    def test_stable_ties(self):
        rssi = np.array([[-60.0, -60.0, -70.0]])
        prefs = antenna_preferences(rssi)
        np.testing.assert_array_equal(prefs[0], [0, 1, 2])


class TestTagTable:
    RSSI = np.array(
        [
            [-50.0, -60.0, -70.0, -80.0],  # client 0 prefers antennas 0, 1
            [-80.0, -50.0, -60.0, -70.0],  # client 1 prefers antennas 1, 2
            [-70.0, -80.0, -50.0, -60.0],  # client 2 prefers antennas 2, 3
            [-60.0, -70.0, -80.0, -50.0],  # client 3 prefers antennas 3, 0
        ]
    )

    def test_two_tags_per_client(self):
        tags = TagTable.from_rssi(self.RSSI, tag_width=2)
        np.testing.assert_array_equal(tags.tags.sum(axis=1), 2)

    def test_tags_are_top_rssi(self):
        tags = TagTable.from_rssi(self.RSSI, tag_width=2)
        assert tags.tags[0, 0] and tags.tags[0, 1]
        assert tags.tags[3, 3] and tags.tags[3, 0]

    def test_clients_tagged_to(self):
        tags = TagTable.from_rssi(self.RSSI, tag_width=2)
        np.testing.assert_array_equal(tags.clients_tagged_to(0), [0, 3])

    def test_eligible_clients_filtering(self):
        tags = TagTable.from_rssi(self.RSSI, tag_width=2)
        # Antenna 1 free: clients 0 and 1 tagged it.
        np.testing.assert_array_equal(tags.eligible_clients([1]), [0, 1])

    def test_eligible_clients_union(self):
        tags = TagTable.from_rssi(self.RSSI, tag_width=2)
        np.testing.assert_array_equal(tags.eligible_clients([0, 2]), [0, 1, 2, 3])

    def test_best_antenna(self):
        tags = TagTable.from_rssi(self.RSSI, tag_width=2)
        assert tags.best_antenna(2) == 2

    def test_tag_width_bounds(self):
        with pytest.raises(ValueError):
            TagTable.from_rssi(self.RSSI, tag_width=0)
        with pytest.raises(ValueError):
            TagTable.from_rssi(self.RSSI, tag_width=5)

    def test_full_width_tags_everything(self):
        tags = TagTable.from_rssi(self.RSSI, tag_width=4)
        assert tags.tags.all()
