"""Geometry helper tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import geometry


class TestAsPoints:
    def test_single_point_promoted(self):
        assert geometry.as_points((1.0, 2.0)).shape == (1, 2)

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            geometry.as_points([[1.0, 2.0, 3.0]])


class TestDistances:
    def test_known_distance(self):
        d = geometry.pairwise_distances([(0, 0)], [(3, 4)])
        assert d[0, 0] == pytest.approx(5.0)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(-10, 10, (5, 2))
        d = geometry.pairwise_distances(pts, pts)
        np.testing.assert_allclose(d, d.T)

    def test_min_pairwise_single_point_infinite(self):
        assert geometry.min_pairwise_distance([(0, 0)]) == np.inf

    def test_min_pairwise_known(self):
        pts = [(0, 0), (0, 1), (5, 5)]
        assert geometry.min_pairwise_distance(pts) == pytest.approx(1.0)


class TestRandomSampling:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_annulus_radii_within_bounds(self, seed):
        rng = np.random.default_rng(seed)
        pts = geometry.random_point_in_annulus(rng, (1.0, -2.0), 2.0, 5.0, 40)
        radii = np.linalg.norm(pts - np.array([1.0, -2.0]), axis=1)
        assert np.all(radii >= 2.0 - 1e-9)
        assert np.all(radii <= 5.0 + 1e-9)

    def test_disk_is_annulus_with_zero_inner(self):
        rng = np.random.default_rng(1)
        pts = geometry.random_point_in_disk(rng, (0, 0), 3.0, 50)
        assert np.all(np.linalg.norm(pts, axis=1) <= 3.0 + 1e-9)

    def test_disk_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            geometry.random_point_in_disk(np.random.default_rng(0), (0, 0), 0.0)

    def test_annulus_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            geometry.random_point_in_annulus(np.random.default_rng(0), (0, 0), 5.0, 2.0)

    def test_rect_sampling_in_bounds(self):
        rng = np.random.default_rng(2)
        pts = geometry.random_point_in_rect(rng, (0, 4), (-2, 2), 30)
        assert np.all((pts[:, 0] >= 0) & (pts[:, 0] <= 4))
        assert np.all((pts[:, 1] >= -2) & (pts[:, 1] <= 2))


class TestSectorRule:
    def test_opposite_points_pass_wide_sector(self):
        assert geometry.sector_angles_ok((0, 0), [(1, 0), (-1, 0)], 60.0)

    def test_clustered_points_fail(self):
        assert not geometry.sector_angles_ok((0, 0), [(1, 0), (1, 0.1)], 60.0)

    def test_single_point_always_ok(self):
        assert geometry.sector_angles_ok((0, 0), [(1, 0)], 60.0)

    def test_four_at_right_angles_pass_sixty(self):
        pts = [(1, 0), (0, 1), (-1, 0), (0, -1)]
        assert geometry.sector_angles_ok((0, 0), pts, 60.0)

    def test_four_at_right_angles_fail_hundred(self):
        pts = [(1, 0), (0, 1), (-1, 0), (0, -1)]
        assert not geometry.sector_angles_ok((0, 0), pts, 100.0)

    def test_wraparound_gap_counts(self):
        # 10 and 350 degrees are 20 degrees apart across the wrap.
        pts = [
            (np.cos(np.radians(10)), np.sin(np.radians(10))),
            (np.cos(np.radians(350)), np.sin(np.radians(350))),
        ]
        assert not geometry.sector_angles_ok((0, 0), pts, 60.0)


class TestGrid:
    def test_grid_counts(self):
        pts = geometry.grid_points((0, 1), (0, 1), 0.5)
        assert len(pts) == 9  # 3 x 3 lattice

    def test_grid_rejects_nonpositive_step(self):
        with pytest.raises(ValueError):
            geometry.grid_points((0, 1), (0, 1), 0.0)

    def test_points_within(self):
        pts = [(0, 0), (2, 0), (0, 3)]
        mask = geometry.points_within(pts, (0, 0), 2.5)
        np.testing.assert_array_equal(mask, [True, True, False])
