"""Batched round-based engine tests: bit-identity against the scalar path.

Everything here asserts exact equality (``array_equal`` / ``==``) -- the
batched sim layer inherits the vectorized backend's no-tolerances contract.
"""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.config import MacConfig
from repro.core.selection import BatchDeficitRoundRobin, DeficitRoundRobin
from repro.mac.carrier_sense import CarrierSenseModel
from repro.sim.batch import (
    CarrierSenseBatch,
    RoundBasedEvaluatorBatch,
    count_streams_batch,
)
from repro.sim.network import MacMode, aps_mutually_overhear
from repro.sim.rounds import RoundBasedEvaluator
from repro.topology.deployment import AntennaMode
from repro.topology.scenarios import (
    dense_office_scenario,
    grid_region_scenario,
    office_b,
    three_ap_scenario,
)

ENV = office_b()
SEEDS = [0, 1, 2, 3]


def _three_ap(mode, seeds=SEEDS):
    return [three_ap_scenario(ENV, seed=s)[mode] for s in seeds]


def _assert_rounds_equal(batch_result, scalar_result):
    assert len(batch_result.rounds) == len(scalar_result.rounds)
    for batch_round, scalar_round in zip(batch_result.rounds, scalar_result.rounds):
        assert batch_round.capacity_bps_hz == scalar_round.capacity_bps_hz
        assert batch_round.n_streams == scalar_round.n_streams
        assert batch_round.active_antennas == scalar_round.active_antennas
        assert np.array_equal(
            batch_round.per_ap_streams, scalar_round.per_ap_streams
        )


# ----------------------------------------------------------------------
# Carrier sense
# ----------------------------------------------------------------------
class TestCarrierSenseBatch:
    @pytest.fixture(scope="class")
    def stacked(self):
        rng = np.random.default_rng(5)
        cross = rng.uniform(-95.0, -55.0, (3, 6, 6))
        eye = np.eye(6, dtype=bool)
        cross[:, eye] = np.inf
        return cross

    def test_matches_scalar_model(self, stacked):
        mac = MacConfig()
        batch = CarrierSenseBatch(stacked, mac)
        rng = np.random.default_rng(9)
        for __ in range(20):
            tx_mask = rng.random((3, 6)) < 0.4
            sensed = batch.sensed_power_mw(tx_mask)
            busy = batch.busy_mask(tx_mask)
            decode = batch.decode_mask(tx_mask)
            nav = batch.nav_blocked_mask(tx_mask)
            for b in range(3):
                scalar = CarrierSenseModel(stacked[b], mac)
                tx = np.flatnonzero(tx_mask[b])
                for listener in range(6):
                    assert sensed[b, listener] == scalar.sensed_power_mw(listener, tx)
                assert np.array_equal(busy[b], scalar.busy_mask(tx))
                for listener in range(6):
                    for transmitter in range(6):
                        assert bool(decode[b, listener, transmitter]) == scalar.decodes(
                            listener, transmitter, tx
                        ), (b, listener, transmitter)
                    expected_nav = any(
                        scalar.decodes(listener, int(t), tx) for t in tx
                    )
                    assert bool(nav[b, listener]) == expected_nav

    def test_listener_restriction_matches_full(self, stacked):
        mac = MacConfig()
        batch = CarrierSenseBatch(stacked, mac)
        tx_mask = np.zeros((3, 6), dtype=bool)
        tx_mask[:, [1, 4]] = True
        listeners = np.asarray([0, 2, 5])
        assert np.array_equal(
            batch.sensed_power_mw(tx_mask, listeners=listeners),
            batch.sensed_power_mw(tx_mask)[:, listeners],
        )
        assert np.array_equal(
            batch.decode_mask(tx_mask, listeners=listeners),
            batch.decode_mask(tx_mask)[:, listeners],
        )
        assert np.array_equal(
            batch.nav_blocked_mask(tx_mask, listeners=listeners),
            batch.nav_blocked_mask(tx_mask)[:, listeners],
        )

    def test_rejects_non_stacked_input(self):
        with pytest.raises(ValueError, match="batch"):
            CarrierSenseBatch(np.zeros((4, 4)), MacConfig())


# ----------------------------------------------------------------------
# Batched DRR
# ----------------------------------------------------------------------
class TestBatchDeficitRoundRobin:
    def test_mirrors_scalar_sequences(self):
        n_items, n_clients = 5, 4
        batch = BatchDeficitRoundRobin(n_items, n_clients)
        scalars = [DeficitRoundRobin(n_clients) for _ in range(n_items)]
        rng = np.random.default_rng(3)
        for __ in range(30):
            candidates = rng.random((n_items, n_clients)) < 0.6
            picks = batch.pick(candidates)
            served = np.zeros((n_items, n_clients), dtype=bool)
            for b, scalar in enumerate(scalars):
                expected = scalar.pick(np.flatnonzero(candidates[b]))
                assert picks[b] == (-1 if expected is None else expected)
                if expected is not None:
                    served[b, expected] = True
            has = served.any(axis=1)
            losers = ~served & has[:, None]
            batch.settle(served, losers)
            batch.credit(~has[:, None])
            for b, scalar in enumerate(scalars):
                if has[b]:
                    scalar.settle(
                        np.flatnonzero(served[b]), np.flatnonzero(losers[b])
                    )
                else:
                    scalar.credit(range(n_clients))
                assert np.array_equal(batch.counters[b], scalar.counters)

    def test_tie_breaks_to_lowest_index(self):
        batch = BatchDeficitRoundRobin(1, 3)
        assert batch.pick(np.array([[False, True, True]]))[0] == 1

    def test_rejects_overlap(self):
        batch = BatchDeficitRoundRobin(1, 2)
        both = np.array([[True, False]])
        with pytest.raises(ValueError):
            batch.settle(both, both)


# ----------------------------------------------------------------------
# Round-based evaluator
# ----------------------------------------------------------------------
class TestRoundBasedEvaluatorBatch:
    @pytest.mark.parametrize(
        "antenna_mode,mac_mode",
        [(AntennaMode.CAS, MacMode.CAS), (AntennaMode.DAS, MacMode.MIDAS)],
    )
    def test_three_ap_bit_identical(self, antenna_mode, mac_mode):
        scenarios = _three_ap(antenna_mode)
        batch = RoundBasedEvaluatorBatch(scenarios, mac_mode, seeds=SEEDS)
        results = batch.run(5)
        for i, (scenario, seed) in enumerate(zip(scenarios, SEEDS)):
            scalar = RoundBasedEvaluator(scenario, mac_mode, seed=seed).run(5)
            _assert_rounds_equal(results[i], scalar)

    def test_item_mask_skips_items(self):
        scenarios = _three_ap(AntennaMode.DAS)
        batch = RoundBasedEvaluatorBatch(scenarios, MacMode.MIDAS, seeds=SEEDS)
        mask = np.array([True, False, True, False])
        results = batch.run(3, item_mask=mask)
        assert results[1] is None and results[3] is None
        scalar = RoundBasedEvaluator(
            scenarios[2], MacMode.MIDAS, seed=SEEDS[2]
        ).run(3)
        _assert_rounds_equal(results[2], scalar)

    def test_mutual_overhear_mask_matches_scalar(self):
        seeds = list(range(8))
        scenarios = _three_ap(AntennaMode.CAS, seeds)
        mask = RoundBasedEvaluatorBatch.mutual_overhear_mask(scenarios, seeds)
        for i, (scenario, seed) in enumerate(zip(scenarios, seeds)):
            scalar = RoundBasedEvaluator(scenario, MacMode.CAS, seed=seed)
            assert bool(mask[i]) == aps_mutually_overhear(
                scalar.carrier_sense, scalar.deployment
            )

    def test_count_streams_matches_scalar(self):
        from repro.experiments.fig12_simultaneous_tx import count_streams

        scenarios = _three_ap(AntennaMode.DAS)
        batch = RoundBasedEvaluatorBatch(scenarios, MacMode.MIDAS, seeds=SEEDS)
        counted = count_streams_batch(
            batch, [rng_mod.make_rng(s) for s in SEEDS], rounds=4
        )
        for i, (scenario, seed) in enumerate(zip(scenarios, SEEDS)):
            scalar = RoundBasedEvaluator(scenario, MacMode.MIDAS, seed=seed)
            assert counted[i] == count_streams(scalar, rng_mod.make_rng(seed), 4)

    def test_rejects_mixed_structure(self):
        three = three_ap_scenario(ENV, seed=0)[AntennaMode.DAS]
        dense = dense_office_scenario(ENV, seed=0)[AntennaMode.DAS]
        with pytest.raises(ValueError, match="structure|share"):
            RoundBasedEvaluatorBatch([three, dense], MacMode.MIDAS, seeds=[0, 1])

    def test_rejects_seed_count_mismatch(self):
        scenarios = _three_ap(AntennaMode.DAS, [0, 1])
        with pytest.raises(ValueError, match="seed"):
            RoundBasedEvaluatorBatch(scenarios, MacMode.MIDAS, seeds=[0])


# ----------------------------------------------------------------------
# New scenario families at scale
# ----------------------------------------------------------------------
class TestNewScenarioFamilies:
    @pytest.mark.parametrize(
        "factory,kwargs",
        [
            (grid_region_scenario, {"n_rows": 2, "n_cols": 2, "spacing_m": 18.0}),
            (dense_office_scenario, {"n_aps": 2, "clients_per_ap": 10}),
        ],
    )
    def test_batch_matches_loop_on_family(self, factory, kwargs):
        seeds = [0, 1]
        scenarios = [
            factory(ENV, seed=s, **kwargs)[AntennaMode.DAS] for s in seeds
        ]
        batch = RoundBasedEvaluatorBatch(scenarios, MacMode.MIDAS, seeds=seeds)
        results = batch.run(3)
        for i, (scenario, seed) in enumerate(zip(scenarios, seeds)):
            scalar = RoundBasedEvaluator(scenario, MacMode.MIDAS, seed=seed).run(3)
            _assert_rounds_equal(results[i], scalar)

    def test_families_are_registered(self):
        from repro.api.scenarios import scenario_factory

        assert scenario_factory("grid_region") is grid_region_scenario
        assert scenario_factory("dense_office") is dense_office_scenario

    def test_grid_region_shape(self):
        pair = grid_region_scenario(ENV, n_rows=2, n_cols=3, seed=1)
        deployment = pair[AntennaMode.DAS].deployment
        assert deployment.n_aps == 6
        assert deployment.n_antennas == 24

    def test_dense_office_overloads_antennas(self):
        pair = dense_office_scenario(ENV, n_aps=2, clients_per_ap=12, seed=1)
        deployment = pair[AntennaMode.DAS].deployment
        assert deployment.n_clients == 24
        assert deployment.n_clients > deployment.n_antennas
