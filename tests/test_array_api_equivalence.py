"""``backend="array_api"`` on the NumPy namespace vs the vectorized backend.

The acceptance bar for the dispatch layer: running the batched engine
through ``repro.xp`` on the default NumPy/float64 namespace must be
``array_equal`` to ``backend="vectorized"`` for *every* experiment with a
batch hook -- the dispatch indirection itself is not allowed to cost a
single bit.  (Loop vs vectorized equality is pinned by
``test_vectorized_equivalence``; chaining through it makes all three
backends mutually exact.)

Also covered here: the runner-level integration seams -- eager
missing-torch errors, xp-config validation, fallback warnings under
``array_api``, cache-key sharing between exact backends (and separation
for inexact configs), and the CLI flags.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro.api import RunSpec, Runner
from repro.xp import BackendUnavailableError
from test_vectorized_equivalence import EXPERIMENT_CASES

TORCH_MISSING = importlib.util.find_spec("torch") is None


@pytest.mark.parametrize(
    "experiment,spec_kwargs,params",
    EXPERIMENT_CASES,
    ids=[f"{c[0]}-{i}" for i, c in enumerate(EXPERIMENT_CASES)],
)
def test_array_api_on_numpy_is_bit_identical_to_vectorized(
    experiment, spec_kwargs, params
):
    spec = RunSpec(experiment, seed=7, params=params, **spec_kwargs)
    vectorized = Runner(backend="vectorized").run(spec)
    array_api = Runner(backend="array_api").run(spec)
    assert set(vectorized.series) == set(array_api.series)
    for key in vectorized.series:
        assert np.array_equal(vectorized.series[key], array_api.series[key]), key


# ----------------------------------------------------------------------
# Runner integration seams
# ----------------------------------------------------------------------
def test_xp_config_is_rejected_on_non_array_api_backends():
    with pytest.raises(ValueError, match="array_api"):
        Runner(backend="vectorized", dtype="float32")
    with pytest.raises(ValueError, match="array_api"):
        Runner(backend="loop", namespace="torch")
    with pytest.raises(ValueError, match="array_api"):
        Runner(backend="vectorized", device="cuda")


def test_invalid_xp_configs_fail_at_construction():
    # Eager resolution: a bad config must not wait for .run() to explode.
    with pytest.raises(ValueError, match="dtype"):
        Runner(backend="array_api", dtype="float16")
    with pytest.raises(ValueError, match="device"):
        Runner(backend="array_api", device="cuda")  # numpy namespace is CPU-only


@pytest.mark.skipif(not TORCH_MISSING, reason="torch is installed here")
def test_missing_torch_fails_eagerly_with_the_extra_named():
    with pytest.raises(BackendUnavailableError, match=r"repro-midas\[torch\]"):
        Runner(backend="array_api", namespace="torch")
    # The numpy namespace keeps working after the failed construction.
    result = Runner(backend="array_api").run(RunSpec("fig03", n_topologies=2, seed=1))
    assert result.series


def test_array_api_fallback_warning_names_the_experiment():
    from repro.api.experiments import ExperimentDef, register_experiment
    from repro.api.registry import EXPERIMENTS
    from repro.api.result import ExperimentResult

    name = "_loop_only_xp_probe"
    register_experiment(
        ExperimentDef(
            name=name,
            description="loop-only probe experiment",
            build=lambda seed, params: {"x": float(seed % 7)},
            finalize=lambda outcomes, params: ExperimentResult(
                name=name,
                description="probe",
                series={"x": np.asarray([o["x"] for o in outcomes])},
                params={},
            ),
            defaults={"n_topologies": 2},
        )
    )
    try:
        with pytest.warns(RuntimeWarning, match=name):
            fallback = Runner(backend="array_api").run(RunSpec(name, n_topologies=2))
        loop = Runner(backend="loop").run(RunSpec(name, n_topologies=2))
        assert np.array_equal(fallback.series["x"], loop.series["x"])
    finally:
        EXPERIMENTS._items.pop(name, None)


# ----------------------------------------------------------------------
# Caching
# ----------------------------------------------------------------------
def test_exact_array_api_shares_cache_entries_with_vectorized(tmp_path):
    spec = RunSpec("fig03", n_topologies=3, seed=1)
    first = Runner(backend="vectorized", cache_dir=tmp_path).run(spec)
    # Bit-equal backends share keys: the array_api runner must *hit* the
    # vectorized entry, not write a second one.
    second = Runner(backend="array_api", cache_dir=tmp_path).run(spec)
    assert len(list(tmp_path.iterdir())) == 1
    for key in first.series:
        assert np.array_equal(first.series[key], second.series[key])


def test_inexact_configs_get_their_own_cache_entries(tmp_path):
    spec = RunSpec("fig03", n_topologies=3, seed=1)
    exact = Runner(backend="array_api", cache_dir=tmp_path).run(spec)
    blurred = Runner(backend="array_api", dtype="float32", cache_dir=tmp_path).run(
        spec
    )
    # float32 results are *not* bit-equal; sharing a key would poison the
    # exact backends' cache.
    assert len(list(tmp_path.iterdir())) == 2
    assert not all(
        np.array_equal(exact.series[k], blurred.series[k]) for k in exact.series
    )
    # And the float32 entry round-trips for the same config.
    again = Runner(backend="array_api", dtype="float32", cache_dir=tmp_path).run(spec)
    assert len(list(tmp_path.iterdir())) == 2
    for key in blurred.series:
        assert np.array_equal(blurred.series[key], again.series[key])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_accepts_the_array_api_backend_flags(capsys, tmp_path):
    from repro.experiments.registry import main

    out = tmp_path / "fig03.json"
    code = main(
        [
            "fig03",
            "--topologies",
            "2",
            "--seed",
            "3",
            "--backend",
            "array_api",
            "--dtype",
            "float32",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    assert out.exists()
    assert "fig03" in capsys.readouterr().out


def test_cli_rejects_xp_flags_without_the_array_api_backend():
    from repro.experiments.registry import main

    with pytest.raises(ValueError, match="array_api"):
        main(["fig03", "--topologies", "2", "--dtype", "float32"])
