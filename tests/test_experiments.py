"""Experiment harness tests (tiny sizes; shape and sanity checks)."""

import numpy as np
import pytest

from helpers import run_experiment
from repro.experiments.registry import EXPERIMENTS, get_experiment, main


class TestRegistry:
    def test_all_figures_registered(self):
        for figure in ("fig03", "fig07", "fig08", "fig09", "fig10", "fig11",
                       "fig12", "fig13", "fig14", "fig15", "fig16",
                       "hidden_terminals"):
            assert figure in EXPERIMENTS

    def test_unknown_name_raises_with_hint(self):
        with pytest.raises(KeyError, match="fig03"):
            get_experiment("not_a_figure")

    def test_cli_runs_smallest_experiment(self, capsys):
        assert main(["fig03", "--topologies", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig03" in out and "median" in out


class TestSeriesContracts:
    def test_fig03_series(self):
        result = run_experiment("fig03", n_topologies=3, seed=0)
        assert set(result.series) == {"cas_drop", "das_drop"}
        for values in result.series.values():
            assert np.all(np.isfinite(values)) and np.all(values >= 0)

    def test_fig07_series(self):
        result = run_experiment("fig07", n_topologies=3, seed=0)
        assert set(result.series) == {"cas_snr_db", "das_snr_db"}
        assert len(result.series["cas_snr_db"]) == 12  # 3 topologies x 4 clients

    def test_fig0809_series(self):
        result = run_experiment("fig09", n_topologies=2, seed=0)
        assert set(result.series) == {"cas_2x2", "midas_2x2", "cas_4x4", "midas_4x4"}

    def test_fig10_series(self):
        result = run_experiment("fig10", n_topologies=2, seed=0)
        assert set(result.series) == {
            "cas_naive",
            "cas_balanced",
            "das_naive",
            "das_balanced",
        }

    def test_fig11_efficiency_near_one(self):
        result = run_experiment("fig11", n_topologies=3, seed=0)
        assert result.median("efficiency") > 0.9

    def test_fig12_ratio_positive(self):
        result = run_experiment("fig12", n_topologies=2, seed=0)
        assert np.all(result.series["stream_ratio"] > 0)

    def test_fig13_reduction_bounded(self):
        result = run_experiment("fig13", n_topologies=1, seed=0)
        assert np.all(result.series["reduction"] <= 1.0)
        assert "example_maps" in result.notes

    def test_fig14_series(self):
        result = run_experiment("fig14", n_topologies=3, seed=0)
        assert set(result.series) == {"tagged", "random"}

    def test_fig15_series(self):
        result = run_experiment("fig15", n_topologies=1, seed=0, rounds_per_topology=4)
        assert set(result.series) == {"cas", "midas", "stream_ratio"}

    def test_fig16_series(self):
        result = run_experiment("fig16", n_topologies=1, seed=0, rounds_per_topology=4)
        assert set(result.series) == {"cas", "midas"}

    def test_hidden_terminal_series(self):
        result = run_experiment("hidden_terminals", n_topologies=1, seed=0)
        assert set(result.series) == {"cas_spots", "das_spots", "removal"}


class TestResultApi:
    def test_summary_mentions_all_series(self):
        result = run_experiment("fig03", n_topologies=2, seed=0)
        text = result.summary()
        assert "cas_drop" in text and "das_drop" in text

    def test_gain_and_median(self):
        result = run_experiment("fig10", n_topologies=3, seed=0)
        gain = result.gain("das_balanced", "das_naive")
        assert gain == pytest.approx(
            result.median("das_balanced") / result.median("das_naive") - 1
        )

    def test_cdf_accessor(self):
        result = run_experiment("fig03", n_topologies=3, seed=0)
        cdf = result.cdf("das_drop")
        assert len(cdf) == 3

    def test_determinism(self):
        a = run_experiment("fig03", n_topologies=2, seed=5)
        b = run_experiment("fig03", n_topologies=2, seed=5)
        np.testing.assert_array_equal(a.series["das_drop"], b.series["das_drop"])


class TestAblations:
    def test_tag_width_sweep(self):
        result = run_experiment("ablation_tag_width", n_topologies=3, seed=0)
        assert set(result.series) == {"width_1", "width_2", "width_3", "width_4"}

    def test_das_radius_sweep(self):
        result = run_experiment("ablation_das_radius", n_topologies=2, seed=0)
        assert len(result.series) == 3

    def test_csi_error_monotone_tendency(self):
        result = run_experiment("ablation_csi_error", n_topologies=6, seed=0)
        clean = result.median("err_0")
        worst = result.median("err_0.2")
        assert worst <= clean * 1.05  # allow small noise, degradation expected

    def test_precoder_zoo_ordering(self):
        result = run_experiment("ablation_precoders", 
            n_topologies=2, seed=0, include_full_optimal=False
        )
        assert result.median("balanced") >= result.median("naive") * 0.999
        assert result.median("optimal_zf") >= result.median("balanced") * 0.99
