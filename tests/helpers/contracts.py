"""Documented per-backend equivalence contracts.

The backend equivalence story has two tiers (see ``docs/api.md``):

bit-identical
    ``loop`` == ``vectorized`` == ``array_api`` on the default
    NumPy/float64 namespace.  Checked with ``np.array_equal`` (the
    :data:`EXACT_CONTRACT` here encodes the same thing for callers that
    want one code path through ``assert_close_result``).

tolerance contract
    Every other namespace/dtype configuration.  The contracts below are
    the *documented* guarantees those configurations must meet against
    the vectorized reference, and ``tests/test_tolerance_tier.py``
    enforces them.

Rationale for the numbers:

* **torch CPU / float64** -- same IEEE doubles, different kernels (MKL vs
  OpenBLAS SVD, pairwise vs sequential summation).  Deviations are a few
  ULPs through the precoder + log2 chain; ``rtol=1e-8`` (about 1e8 times
  machine epsilon of slack) absorbs kernel differences while still
  catching any real algorithmic divergence.
* **float32** (either namespace) -- machine epsilon 1.19e-7 amplified by
  the SVD/waterfill/log2 chain; empirically the array_api-on-NumPy
  float32 path lands within ~1e-6 relative of the float64 reference on
  smooth capacity series, so ``rtol=1e-4`` gives two orders of headroom.
* **ordering-sensitive experiments** -- pipelines that branch on
  comparisons of continuous scores (greedy argmax antenna selection,
  MCS threshold lookup, carrier-sense capture verdicts).  A sub-ULP score
  difference can flip a discrete decision and change individual samples
  by whole MCS steps, so elementwise bounds are the wrong contract; the
  guarantee is distributional -- each checked quantile within
  ``quantile_atol`` of the reference (plus one sketch bin of slack).

All tolerances bound *backend* deviation, not reproduction accuracy; the
figures' accuracy against the paper is the loop backend's business.
"""

from __future__ import annotations

from .closeness import MetricTolerance, ToleranceContract

__all__ = [
    "EXACT_CONTRACT",
    "TORCH_CPU_F64_CONTRACT",
    "NUMPY_F32_CONTRACT",
    "ORDERING_SENSITIVE",
    "contract_for",
]

# Experiments whose series pass through discrete decisions (threshold,
# argmax, or capture comparisons) between the floating-point compute and
# the reported sample -- the distributional tier applies there.
ORDERING_SENSITIVE = frozenset(
    {
        "fig07",  # greedy flat-argmax client-antenna mapping
        "fig12",  # carrier-sense capture verdicts gate the tx sets
        "fig13",  # MCS/decodability thresholds define the deadzone count
        "fig14",  # tagged selection search branches on capacity compares
        "fig15",  # round-based MAC: capture + DRR branch per round
        "fig16",  # eight-AP round-based MAC, same branching
        "hidden_terminals",  # NAV/busy verdicts are thresholded
        "latency_vs_load",  # queue service order branches on MCS rates
        "mobility_capacity",  # staleness re-selection branches
        "ablation_tag_width",  # tag-collision verdicts are discrete
    }
)

EXACT_CONTRACT = ToleranceContract(name="exact")
"""Zero tolerance: what bit-identical backends must trivially satisfy."""

_TORCH_F64 = MetricTolerance(rtol=1e-8, atol=1e-11)
_TORCH_F64_DISTRIBUTIONAL = MetricTolerance(
    rtol=1e-8, atol=1e-11, elementwise=False, quantile_atol=0.05
)

TORCH_CPU_F64_CONTRACT = ToleranceContract(
    name="torch-cpu-float64", default=_TORCH_F64
)
"""Smooth series on torch CPU doubles: kernel-level ULP noise only."""

_F32 = MetricTolerance(rtol=1e-4, atol=1e-5)
_F32_DISTRIBUTIONAL = MetricTolerance(
    rtol=1e-4, atol=1e-5, elementwise=False, quantile_atol=0.25
)

NUMPY_F32_CONTRACT = ToleranceContract(name="float32", default=_F32)
"""Single precision on either namespace: epsilon-amplified smooth series."""


def contract_for(experiment: str, namespace: str, dtype: str) -> ToleranceContract:
    """The documented contract for one experiment under one xp config.

    The exact configuration (numpy/float64) gets :data:`EXACT_CONTRACT`;
    float32 on either namespace gets the float32 tier; torch/float64 the
    kernel-noise tier.  Ordering-sensitive experiments swap the default
    tolerance for its distributional variant on every inexact
    configuration.
    """
    if namespace == "numpy" and dtype == "float64":
        return EXACT_CONTRACT
    if dtype == "float32":
        base, default = NUMPY_F32_CONTRACT, _F32_DISTRIBUTIONAL
    else:
        base, default = TORCH_CPU_F64_CONTRACT, _TORCH_F64_DISTRIBUTIONAL
    if experiment in ORDERING_SENSITIVE:
        return ToleranceContract(
            name=f"{base.name}:{experiment}:distributional", default=default
        )
    return ToleranceContract(name=f"{base.name}:{experiment}", default=base.default)
