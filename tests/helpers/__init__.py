"""Shared non-fixture test helpers.

Kept out of ``conftest.py`` so test modules can import them explicitly --
``from conftest import ...`` is ambiguous when several conftests (tests/,
benchmarks/) are on ``sys.path``.

The package also hosts the tolerance tier's closeness framework
(:mod:`helpers.closeness`) and the documented per-backend equivalence
contracts (:mod:`helpers.contracts`); the most-used names are re-exported
here.
"""

from __future__ import annotations

import functools

import numpy as np

from .closeness import (  # noqa: F401  (re-export)
    ClosenessError,
    MetricTolerance,
    ToleranceContract,
    assert_close_result,
    assert_close_series,
)
from .contracts import (  # noqa: F401  (re-export)
    EXACT_CONTRACT,
    NUMPY_F32_CONTRACT,
    TORCH_CPU_F64_CONTRACT,
    contract_for,
)


def run_experiment(
    name: str,
    *,
    n_topologies: int | None = None,
    seed: int = 0,
    environment: str | None = None,
    precoder: str | None = None,
    **params,
):
    """Run a registered experiment through the modern RunSpec/Runner path.

    The keyword surface mirrors the old per-figure ``run(...)`` entry points
    so migrated tests read the same, without the deprecated shims (which
    tier-1 now treats as errors outside the explicit shim-warning test).
    """
    from repro.api import Runner, RunSpec

    spec = RunSpec(
        name,
        n_topologies=n_topologies,
        seed=seed,
        environment=environment,
        precoder=precoder,
        params=params,
    )
    return Runner().run(spec)


def experiment_runner(name: str):
    """A classic ``run(n_topologies=..., seed=...)`` callable for ``name``.

    Shared by the benchmarks (whose figure files pass a bare callable to
    ``run_once``); one adapter, one place to maintain it.
    """
    run = functools.partial(run_experiment, name)
    run.__name__ = name  # type: ignore[attr-defined]
    return run


def random_channel(seed: int, n_clients: int = 4, n_antennas: int = 4) -> np.ndarray:
    """A well-conditioned random complex channel with DAS-like row scales."""
    rng = np.random.default_rng(seed)
    scales = 10 ** rng.uniform(-5.0, -3.0, size=(n_clients, 1))
    fading = (
        rng.standard_normal((n_clients, n_antennas))
        + 1j * rng.standard_normal((n_clients, n_antennas))
    ) / np.sqrt(2)
    return scales * fading
