"""Tolerance-based closeness checks for :class:`repro.api.RunResult`.

Bit-identity (the loop/vectorized/array_api-on-NumPy guarantee) is checked
with plain ``np.array_equal``; this module is the tier for backends where
bit-identity *cannot* hold -- torch kernels, float32 accumulation, GPU
reductions.  A :class:`ToleranceContract` states, per series, how close is
close enough, along two independent axes:

elementwise
    ``|a - b| <= atol + rtol * |b|`` per sample (numpy ``allclose``
    semantics, with the *expected* result as the reference).  The right
    check when the backend computes the same per-topology quantity and
    only rounding differs.

distributional (quantile sketch)
    Some pipelines make discrete decisions off continuous scores (greedy
    argmax client selection, MCS threshold lookup, capture comparisons).
    A one-ULP score difference can flip a decision, changing individual
    samples by whole MCS steps while leaving the *distribution* -- which
    is what every figure in the paper plots -- essentially unchanged.
    For those, the contract compares quantiles of the two empirical
    distributions through :class:`repro.analysis.QuantileSketch` (the
    same sketch the campaign aggregator ships), each quantile within
    ``quantile_atol``.

``assert_close_result`` applies a contract to two full results; failures
raise :class:`ClosenessError` (an ``AssertionError``) naming every failing
series and the worst offending sample/quantile, so a tolerance regression
reads like a report, not a stack of scalar mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.analysis import QuantileSketch

__all__ = [
    "ClosenessError",
    "MetricTolerance",
    "ToleranceContract",
    "assert_close_result",
    "assert_close_series",
]

DEFAULT_QUANTILES = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


class ClosenessError(AssertionError):
    """A tolerance-contract violation; message lists every failing check."""


@dataclass(frozen=True)
class MetricTolerance:
    """How close one series must be to its reference.

    ``rtol``/``atol`` bound the elementwise deviation (skipped entirely
    when ``elementwise`` is False -- for ordering-sensitive series where
    individual samples may legitimately differ).  ``quantile_atol``, when
    set, additionally bounds the deviation of each checked quantile of the
    two distributions.  The zero-tolerance default is exact equality.
    """

    rtol: float = 0.0
    atol: float = 0.0
    elementwise: bool = True
    quantile_atol: float | None = None

    def __post_init__(self):
        if self.rtol < 0 or self.atol < 0:
            raise ValueError("tolerances must be non-negative")
        if self.quantile_atol is not None and self.quantile_atol < 0:
            raise ValueError("quantile_atol must be non-negative")
        if not self.elementwise and self.quantile_atol is None:
            raise ValueError(
                "a tolerance with elementwise=False must set quantile_atol; "
                "otherwise it checks nothing"
            )


@dataclass(frozen=True)
class ToleranceContract:
    """Per-series tolerances for comparing two runs of one experiment.

    ``series`` overrides the ``default`` tolerance for named series.
    ``quantiles`` are the probabilities checked whenever a tolerance
    enables the sketch comparison; ``sketch_resolution`` is the sketch bin
    width (it contributes up to one bin of slack on top of
    ``quantile_atol``, which callers should budget for).
    """

    name: str
    default: MetricTolerance = field(default_factory=MetricTolerance)
    series: Mapping[str, MetricTolerance] = field(default_factory=dict)
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES
    sketch_resolution: float = 1.0 / 128.0

    def tolerance_for(self, series_name: str) -> MetricTolerance:
        return self.series.get(series_name, self.default)


def _elementwise_failures(name, actual, expected, tol):
    bound = tol.atol + tol.rtol * np.abs(expected)
    delta = np.abs(actual - expected)
    bad = delta > bound
    if not np.any(bad):
        return []
    worst = int(np.argmax(delta - bound))
    return [
        f"series {name!r}: {int(np.count_nonzero(bad))}/{actual.size} samples "
        f"out of tolerance (worst at [{worst}]: |{actual.flat[worst]:.9g} - "
        f"{expected.flat[worst]:.9g}| = {delta.flat[worst]:.3g} > "
        f"{bound.flat[worst]:.3g} = atol+rtol*|expected|)"
    ]


def _quantile_failures(name, actual, expected, tol, contract):
    sketch_a = QuantileSketch(resolution=contract.sketch_resolution)
    sketch_e = QuantileSketch(resolution=contract.sketch_resolution)
    sketch_a.add(actual)
    sketch_e.add(expected)
    failures = []
    for q in contract.quantiles:
        qa, qe = sketch_a.quantile(q), sketch_e.quantile(q)
        # One sketch bin of slack on top of the contract: quantile answers
        # are only exact to within the lattice resolution.
        if abs(qa - qe) > tol.quantile_atol + contract.sketch_resolution:
            failures.append(
                f"series {name!r}: quantile q={q:g} differs "
                f"|{qa:.9g} - {qe:.9g}| = {abs(qa - qe):.3g} > "
                f"{tol.quantile_atol:.3g} (+{contract.sketch_resolution:.3g} "
                "sketch slack)"
            )
    return failures


def assert_close_series(
    actual: Mapping[str, np.ndarray],
    expected: Mapping[str, np.ndarray],
    contract: ToleranceContract,
) -> None:
    """Assert two series dicts satisfy ``contract`` (actual vs expected)."""
    failures: list[str] = []
    missing = sorted(set(expected) - set(actual))
    extra = sorted(set(actual) - set(expected))
    if missing:
        failures.append(f"missing series: {missing}")
    if extra:
        failures.append(f"unexpected series: {extra}")
    for name in sorted(set(actual) & set(expected)):
        a = np.asarray(actual[name], dtype=float)
        e = np.asarray(expected[name], dtype=float)
        if a.shape != e.shape:
            failures.append(
                f"series {name!r}: shape {a.shape} != expected {e.shape}"
            )
            continue
        if a.size == 0:
            continue
        if not (np.all(np.isfinite(a)) and np.all(np.isfinite(e))):
            # Non-finite samples must match exactly, whatever the contract:
            # a tolerance band around inf/nan is meaningless.
            if not np.array_equal(a, e, equal_nan=True):
                failures.append(
                    f"series {name!r}: non-finite samples present and not "
                    "identical"
                )
            continue
        tol = contract.tolerance_for(name)
        if tol.elementwise:
            failures.extend(_elementwise_failures(name, a, e, tol))
        if tol.quantile_atol is not None:
            failures.extend(_quantile_failures(name, a, e, tol, contract))
    if failures:
        raise ClosenessError(
            f"results violate tolerance contract {contract.name!r}:\n  "
            + "\n  ".join(failures)
        )


def assert_close_result(actual, expected, contract: ToleranceContract) -> None:
    """Assert two :class:`~repro.api.RunResult`\\ s satisfy ``contract``.

    Checks experiment identity (name) and every series under the
    contract's per-series tolerances.  ``actual`` is the run under test;
    ``expected`` is the reference (typically the bit-exact vectorized
    backend), and relative tolerances scale off the reference.
    """
    if actual.name != expected.name:
        raise ClosenessError(
            f"comparing different experiments: {actual.name!r} vs "
            f"{expected.name!r}"
        )
    assert_close_series(actual.series, expected.series, contract)
