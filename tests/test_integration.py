"""Integration tests: the paper's qualitative claims at reduced scale.

These run the actual experiment pipelines (smaller topology counts than the
benches) through the modern :class:`~repro.api.spec.RunSpec` /
:class:`~repro.api.runner.Runner` path and assert the *shape* results the
paper reports: orderings, direction of gains, and rough magnitudes.
Statistical assertions use generous margins so they are robust to the
reduced sample sizes.

One explicit test keeps the deprecated per-figure ``run()`` shims covered:
they must still work and still warn.
"""

import numpy as np
import pytest

from helpers import run_experiment


@pytest.fixture(scope="module")
def fig10(scope="module"):
    return run_experiment("fig10", n_topologies=30, seed=0)


class TestPrecodingClaims:
    def test_fig03_das_drop_exceeds_cas_drop(self):
        result = run_experiment("fig03", n_topologies=30, seed=0)
        assert result.median("das_drop") > 1.5 * result.median("cas_drop")

    def test_fig07_das_link_gain(self):
        result = run_experiment("fig07", n_topologies=30, seed=0)
        gain_db = result.median("das_snr_db") - result.median("cas_snr_db")
        assert 2.0 < gain_db < 9.0  # paper: ~5 dB

    def test_fig09_midas_beats_cas_4x4(self):
        result = run_experiment(
            "fig09", n_topologies=30, seed=0, antenna_counts=(4,)
        )
        assert result.gain("midas_4x4", "cas_4x4") > 0.3

    def test_fig10_balanced_beats_naive_on_both_modes(self, fig10):
        assert fig10.gain("cas_balanced", "cas_naive") > 0.0
        assert fig10.gain("das_balanced", "das_naive") > 0.0

    def test_fig10_cas_gain_order_of_paper(self, fig10):
        # Paper: ~12%; accept a broad band at this sample size.
        assert 0.02 < fig10.gain("cas_balanced", "cas_naive") < 0.45

    def test_fig11_within_99_percent_of_optimal(self):
        result = run_experiment("fig11", n_topologies=10, seed=0)
        assert result.median("efficiency") > 0.97

    def test_fig11_stale_optimum_loses(self):
        result = run_experiment("fig11", n_topologies=10, seed=0)
        assert result.median("optimal_stale") < result.median("midas")


class TestMacClaims:
    def test_fig12_median_ratio_above_one(self):
        result = run_experiment("fig12", n_topologies=8, seed=0)
        ratios = result.series["stream_ratio"]
        assert np.median(ratios) > 1.05
        # Paper: only ~2/30 topologies below 1.0.
        assert (ratios < 0.95).mean() < 0.35

    def test_fig13_das_reduces_deadspots(self):
        result = run_experiment("fig13", n_topologies=4, seed=0)
        assert np.mean(result.series["reduction"]) > 0.3

    def test_hidden_terminals_removed(self):
        result = run_experiment("hidden_terminals", n_topologies=4, seed=0)
        assert np.mean(result.series["removal"]) > 0.3

    def test_fig14_tagging_beats_random(self):
        result = run_experiment("fig14", n_topologies=30, seed=0)
        assert result.gain("tagged", "random") > 0.15


class TestEndToEndClaims:
    def test_fig15_midas_beats_cas(self):
        result = run_experiment(
            "fig15", n_topologies=10, seed=0, rounds_per_topology=16
        )
        assert result.gain("midas", "cas") > 0.15
        assert np.median(result.series["stream_ratio"]) > 1.0

    def test_fig16_das_beats_cas_at_scale(self):
        result = run_experiment(
            "fig16", n_topologies=4, seed=0, rounds_per_topology=8
        )
        assert result.gain("midas", "cas") > 0.05

    def test_fig15_dynamic_extension_runs(self):
        result = run_experiment(
            "fig15", n_topologies=2, seed=0, dynamic=True, duration_s=0.04
        )
        assert np.all(result.series["midas"] > 0)


class TestLegacyShims:
    def test_legacy_run_still_works_and_warns(self):
        from repro.experiments.fig03_naive_drop import run

        with pytest.warns(DeprecationWarning, match="legacy run"):
            result = run(n_topologies=2, seed=0)
        assert set(result.series) == {"cas_drop", "das_drop"}
