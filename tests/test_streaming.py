"""Streaming accumulators: exactness, merge-order invariance, round-trips."""

import json
import math
import random

import numpy as np
import pytest

from repro.analysis import ExactSum, QuantileSketch, RunningStats, StreamingSummary


def _adversarial_values(rng, n):
    """Floats spanning ~30 orders of magnitude: naive summation loses bits."""
    return [rng.uniform(-1, 1) * 10.0 ** rng.randint(-15, 15) for _ in range(n)]


class TestExactSum:
    def test_matches_fsum_exactly(self):
        rng = random.Random(7)
        values = _adversarial_values(rng, 400)
        acc = ExactSum()
        acc.add_many(values)
        assert acc.value() == math.fsum(values)

    def test_any_grouping_and_merge_order_is_bit_identical(self):
        rng = random.Random(11)
        values = _adversarial_values(rng, 300)
        reference = ExactSum()
        reference.add_many(values)
        for trial in range(10):
            shuffled = list(values)
            rng.shuffle(shuffled)
            # Random shard boundaries, then random merge order.
            cuts = sorted(rng.sample(range(1, len(values)), 4))
            shards = []
            prev = 0
            for cut in cuts + [len(values)]:
                shard = ExactSum()
                shard.add_many(shuffled[prev:cut])
                shards.append(shard)
                prev = cut
            rng.shuffle(shards)
            merged = ExactSum()
            for shard in shards:
                merged.merge(shard)
            assert merged.value() == reference.value()

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError, match="finite"):
            ExactSum().add(math.inf)
        with pytest.raises(ValueError, match="finite"):
            ExactSum().add_many([1.0, math.nan])

    def test_state_round_trip(self):
        acc = ExactSum()
        acc.add_many([1e16, 1.0, -1e16, 2.0**-40])
        clone = ExactSum.from_state(json.loads(json.dumps(acc.state())))
        assert clone.value() == acc.value()
        assert clone.partials == acc.partials


class TestRunningStats:
    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        samples = rng.normal(5.0, 2.0, size=500)
        stats = RunningStats()
        stats.add(samples)
        assert stats.count == 500
        assert stats.mean == pytest.approx(samples.mean(), rel=1e-12)
        assert stats.std == pytest.approx(samples.std(), rel=1e-9)
        assert stats.min == samples.min()
        assert stats.max == samples.max()
        assert stats.total == math.fsum(samples.tolist())

    def test_sharded_merge_is_bit_identical_to_bulk(self):
        rng = np.random.default_rng(5)
        samples = rng.normal(size=256)
        bulk = RunningStats()
        bulk.add(samples)
        pieces = [RunningStats() for _ in range(4)]
        for piece, chunk in zip(pieces, np.split(samples, 4)):
            piece.add(chunk)
        py_rng = random.Random(9)
        for _ in range(6):
            order = list(pieces)
            py_rng.shuffle(order)
            merged = RunningStats()
            for piece in order:
                merged.merge(piece)
            assert merged.count == bulk.count
            assert merged.mean == bulk.mean  # exact, not approx
            assert merged.std == bulk.std
            assert (merged.min, merged.max) == (bulk.min, bulk.max)

    def test_empty_queries_raise(self):
        stats = RunningStats()
        for attr in ("mean", "std", "min", "max"):
            with pytest.raises(ValueError, match="at least one sample"):
                getattr(stats, attr)

    def test_state_round_trip_including_empty(self):
        empty = RunningStats.from_state(json.loads(json.dumps(RunningStats().state())))
        assert empty.count == 0
        stats = RunningStats()
        stats.add([1.5, -2.5, 4.0])
        clone = RunningStats.from_state(json.loads(json.dumps(stats.state())))
        assert clone.mean == stats.mean
        assert clone.std == stats.std
        assert (clone.min, clone.max, clone.count) == (stats.min, stats.max, 3)


class TestQuantileSketch:
    def test_quantile_within_resolution_of_adjacent_order_statistic(self):
        # The documented guarantee: quantile(q) lies within one resolution
        # of an order statistic adjacent to rank q*(n-1).
        rng = np.random.default_rng(17)
        resolution = 1.0 / 128.0
        for trial in range(20):
            samples = rng.normal(0.0, 3.0, size=rng.integers(5, 400))
            sketch = QuantileSketch(resolution=resolution)
            sketch.add(samples)
            srt = np.sort(samples)
            for q in (0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0):
                value = sketch.quantile(q)
                rank = q * (samples.size - 1)
                lo = srt[math.floor(rank)]
                hi = srt[math.ceil(rank)]
                err = min(abs(value - lo), abs(value - hi))
                assert err <= resolution + 1e-12

    def test_merge_any_order_gives_identical_state(self):
        rng = np.random.default_rng(23)
        samples = rng.normal(size=300)
        bulk = QuantileSketch()
        bulk.add(samples)
        pieces = []
        for chunk in np.split(samples, 5):
            piece = QuantileSketch()
            piece.add(chunk)
            pieces.append(piece)
        py_rng = random.Random(1)
        for _ in range(6):
            order = list(pieces)
            py_rng.shuffle(order)
            merged = QuantileSketch()
            for piece in order:
                merged.merge(piece)
            assert merged.state() == bulk.state()
            assert merged.quantile(0.5) == bulk.quantile(0.5)

    def test_merge_rejects_resolution_mismatch(self):
        a = QuantileSketch(resolution=1 / 128)
        b = QuantileSketch(resolution=1 / 64)
        with pytest.raises(ValueError, match="resolution"):
            a.merge(b)

    def test_evaluate_and_curve(self):
        sketch = QuantileSketch(resolution=0.5)
        sketch.add([0.0, 1.0, 2.0, 3.0])
        cdf = sketch.evaluate([-1.0, 1.0, 10.0])
        assert cdf[0] == 0.0
        assert cdf[-1] == 1.0
        assert np.all(np.diff(cdf) >= 0)
        xs, fs = sketch.curve()
        assert np.all(np.diff(xs) > 0)
        assert fs[-1] == 1.0

    def test_quantile_array_and_bounds(self):
        sketch = QuantileSketch()
        sketch.add([1.0, 2.0, 3.0])
        out = sketch.quantile([0.0, 1.0])
        assert isinstance(out, np.ndarray)
        assert out[0] == 1.0 and out[1] == 3.0
        assert isinstance(sketch.quantile(0.5), float)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            sketch.quantile(1.5)

    def test_empty_queries_raise(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError, match="at least one sample"):
            sketch.quantile(0.5)
        with pytest.raises(ValueError, match="at least one sample"):
            sketch.evaluate(0.0)

    def test_state_round_trip_through_json(self):
        sketch = QuantileSketch(resolution=1 / 64)
        sketch.add([-3.7, 0.0, 0.1, 255.4])
        clone = QuantileSketch.from_state(json.loads(json.dumps(sketch.state())))
        assert clone.state() == sketch.state()
        assert clone.support() == sketch.support()


class TestStreamingSummary:
    def test_bundles_stats_and_sketch(self):
        rng = np.random.default_rng(31)
        samples = rng.normal(10.0, 1.0, size=200)
        summary = StreamingSummary()
        summary.add(samples)
        assert summary.count == 200
        assert summary.mean == pytest.approx(samples.mean(), rel=1e-12)
        assert abs(summary.median - np.median(samples)) < 2 / 128
        xs, fs = summary.cdf_curve()
        assert fs[-1] == 1.0

    def test_merge_matches_bulk_exactly(self):
        rng = np.random.default_rng(37)
        samples = rng.normal(size=128)
        bulk = StreamingSummary()
        bulk.add(samples)
        merged = StreamingSummary()
        for chunk in np.split(samples, 4)[::-1]:  # reverse order on purpose
            piece = StreamingSummary()
            piece.add(chunk)
            merged.merge(piece)
        # The Shewchuk partials list is one of several representations of
        # the same exact sum, so compare the reported statistics (each a
        # single correct rounding of that exact value) and the integer
        # sketch state, all of which must be bit-identical.
        assert merged.count == bulk.count
        assert merged.mean == bulk.mean
        assert merged.std == bulk.std
        assert (merged.min, merged.max) == (bulk.min, bulk.max)
        assert merged.sketch.state() == bulk.sketch.state()

    def test_state_round_trip(self):
        summary = StreamingSummary(resolution=1 / 32)
        summary.add([1.0, 2.0])
        clone = StreamingSummary.from_state(json.loads(json.dumps(summary.state())))
        assert clone.mean == summary.mean
        assert clone.sketch.resolution == 1 / 32
