"""End-to-end discrete-event simulation tests."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.sim.network import MacMode, NetworkSimulation, aps_mutually_overhear
from repro.topology.deployment import AntennaMode
from repro.topology.scenarios import office_b, single_ap_scenario, three_ap_scenario

SIM = SimConfig(duration_s=0.05)


@pytest.fixture(scope="module")
def three_ap_pair():
    return three_ap_scenario(office_b(), seed=3)


class TestSingleAp:
    def test_cas_run_produces_throughput(self):
        scenario = single_ap_scenario(office_b(), AntennaMode.CAS, seed=1)
        result = NetworkSimulation(scenario, MacMode.CAS, SIM, seed=1).run()
        assert result.txop_count > 0
        assert result.network_capacity_bps_hz > 0

    def test_midas_run_produces_throughput(self):
        scenario = single_ap_scenario(office_b(), AntennaMode.DAS, seed=1)
        result = NetworkSimulation(scenario, MacMode.MIDAS, SIM, seed=1).run()
        assert result.txop_count > 0
        assert result.network_capacity_bps_hz > 0

    def test_per_client_nonnegative(self):
        scenario = single_ap_scenario(office_b(), AntennaMode.DAS, seed=2)
        result = NetworkSimulation(scenario, MacMode.MIDAS, SIM, seed=2).run()
        assert np.all(result.per_client_bits_per_hz >= 0)

    def test_concurrency_bounded_by_antennas(self):
        scenario = single_ap_scenario(office_b(), AntennaMode.DAS, seed=2)
        result = NetworkSimulation(scenario, MacMode.MIDAS, SIM, seed=2).run()
        assert result.mean_concurrent_streams <= scenario.deployment.n_antennas

    def test_deterministic_by_seed(self):
        scenario = single_ap_scenario(office_b(), AntennaMode.DAS, seed=4)
        a = NetworkSimulation(scenario, MacMode.MIDAS, SIM, seed=7).run()
        b = NetworkSimulation(scenario, MacMode.MIDAS, SIM, seed=7).run()
        np.testing.assert_allclose(a.per_client_bits_per_hz, b.per_client_bits_per_hz)
        assert a.txop_count == b.txop_count

    def test_different_seeds_differ(self):
        scenario = single_ap_scenario(office_b(), AntennaMode.DAS, seed=4)
        a = NetworkSimulation(scenario, MacMode.MIDAS, SIM, seed=1).run()
        b = NetworkSimulation(scenario, MacMode.MIDAS, SIM, seed=2).run()
        assert not np.allclose(a.per_client_bits_per_hz, b.per_client_bits_per_hz)

    def test_cas_single_ap_serializes(self):
        # One CAS AP alone: streams per TXOP equals antennas, airtime < 100%.
        scenario = single_ap_scenario(office_b(), AntennaMode.CAS, seed=5)
        result = NetworkSimulation(scenario, MacMode.CAS, SIM, seed=5).run()
        assert result.stream_count == 4 * result.txop_count


class TestThreeAp:
    def test_both_modes_run(self, three_ap_pair):
        cas = NetworkSimulation(
            three_ap_pair[AntennaMode.CAS], MacMode.CAS, SIM, seed=3
        ).run()
        midas = NetworkSimulation(
            three_ap_pair[AntennaMode.DAS], MacMode.MIDAS, SIM, seed=3
        ).run()
        assert cas.txop_count > 0 and midas.txop_count > 0

    def test_all_clients_eventually_served(self, three_ap_pair):
        sim_cfg = SimConfig(duration_s=0.15)
        result = NetworkSimulation(
            three_ap_pair[AntennaMode.DAS], MacMode.MIDAS, sim_cfg, seed=3
        ).run()
        served = result.per_client_bits_per_hz > 0
        # DRR fairness should reach nearly every client within 150 ms.
        assert served.mean() > 0.7


class TestOverhearPredicate:
    def test_colocated_aps_overhear(self):
        pair = three_ap_scenario(office_b(), seed=0, inter_ap_m=2.0)
        sim = NetworkSimulation(pair[AntennaMode.CAS], MacMode.CAS, SIM, seed=0)
        assert aps_mutually_overhear(sim.carrier_sense, sim.deployment)

    def test_distant_aps_do_not_overhear(self):
        pair = three_ap_scenario(office_b(), seed=0, inter_ap_m=500.0)
        sim = NetworkSimulation(pair[AntennaMode.CAS], MacMode.CAS, SIM, seed=0)
        assert not aps_mutually_overhear(sim.carrier_sense, sim.deployment)

    def test_single_ap_trivially_true(self):
        scenario = single_ap_scenario(office_b(), AntennaMode.CAS, seed=0)
        sim = NetworkSimulation(scenario, MacMode.CAS, SIM, seed=0)
        assert aps_mutually_overhear(sim.carrier_sense, sim.deployment)
