"""Reverse water-filling tests (paper eqs. 7-9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.waterfill import reverse_waterfill

positive_arrays = st.lists(
    st.floats(min_value=1e-6, max_value=10.0), min_size=2, max_size=8
)
sinr_arrays = st.lists(st.floats(min_value=0.01, max_value=1e4), min_size=2, max_size=8)


class TestNoViolation:
    def test_under_budget_returns_unit_weights(self):
        result = reverse_waterfill(np.array([0.2, 0.3]), np.array([10.0, 10.0]), 1.0)
        np.testing.assert_array_equal(result.weights, 1.0)
        np.testing.assert_array_equal(result.reductions_mw, 0.0)
        assert result.feasible


class TestBudgetRestoration:
    def test_exact_budget_after_reduction(self):
        q = np.array([0.9, 0.8, 0.1, 0.2])
        rho = np.array([100.0, 50.0, 10.0, 20.0])
        result = reverse_waterfill(q, rho, 1.0)
        new_row = np.sum(result.weights**2 * q)
        assert new_row == pytest.approx(1.0, rel=1e-6)

    def test_weights_within_unit_interval(self):
        q = np.array([2.0, 0.5, 0.1])
        rho = np.array([100.0, 5.0, 1.0])
        result = reverse_waterfill(q, rho, 1.0, min_weight=1e-3)
        assert np.all(result.weights > 0)
        assert np.all(result.weights <= 1.0)

    def test_min_weight_floor_respected(self):
        q = np.array([5.0, 5.0])
        rho = np.array([1.0, 1.0])
        result = reverse_waterfill(q, rho, 0.001, min_weight=0.05)
        assert np.all(result.weights >= 0.05 - 1e-12)

    def test_capped_flag_when_budget_unreachable(self):
        # Budget so small that even max cuts cannot restore it.
        q = np.array([5.0, 5.0])
        rho = np.array([1.0, 1.0])
        result = reverse_waterfill(q, rho, 1e-6, min_weight=0.1)
        assert result.capped
        assert not result.feasible

    def test_larger_elements_cut_more(self):
        # Equal SINRs: the water level cuts the big precoding value first.
        q = np.array([1.5, 0.1])
        rho = np.array([50.0, 50.0])
        result = reverse_waterfill(q, rho, 1.0)
        assert result.reductions_mw[0] > result.reductions_mw[1]

    def test_weak_streams_cut_preferentially(self):
        # Equal row power; the low-SINR stream has higher (1 + 1/rho) level.
        q = np.array([1.0, 1.0])
        rho = np.array([0.1, 100.0])
        result = reverse_waterfill(q, rho, 1.2)
        assert result.reductions_mw[0] > result.reductions_mw[1]


class TestOptimality:
    def test_beats_uniform_scaling(self):
        # The KKT solution must achieve at least the rate of the naive
        # uniform scaling on the same row.
        rng = np.random.default_rng(0)
        for trial in range(20):
            q = rng.uniform(0.05, 2.0, size=4)
            rho = rng.uniform(0.5, 500.0, size=4)
            budget = 0.6 * q.sum()
            result = reverse_waterfill(q, rho, budget)
            if result.capped:
                continue
            alpha2 = budget / q.sum()
            rate_wf = np.sum(np.log2(1 + result.weights**2 * rho))
            rate_uniform = np.sum(np.log2(1 + alpha2 * rho))
            assert rate_wf >= rate_uniform - 1e-9


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            reverse_waterfill(np.array([1.0]), np.array([1.0, 2.0]), 1.0)

    def test_nonpositive_budget(self):
        with pytest.raises(ValueError):
            reverse_waterfill(np.array([1.0]), np.array([1.0]), 0.0)

    def test_bad_min_weight(self):
        with pytest.raises(ValueError):
            reverse_waterfill(np.array([1.0]), np.array([1.0]), 1.0, min_weight=1.0)

    def test_negative_inputs(self):
        with pytest.raises(ValueError):
            reverse_waterfill(np.array([-1.0]), np.array([1.0]), 1.0)


class TestProperties:
    @given(positive_arrays, sinr_arrays, st.floats(min_value=0.1, max_value=0.95))
    @settings(max_examples=60, deadline=None)
    def test_budget_and_bounds_hold(self, q_list, rho_list, budget_fraction):
        n = min(len(q_list), len(rho_list))
        q = np.asarray(q_list[:n])
        rho = np.asarray(rho_list[:n])
        budget = budget_fraction * float(q.sum())
        result = reverse_waterfill(q, rho, budget)
        assert np.all(result.weights > 0)
        assert np.all(result.weights <= 1.0 + 1e-12)
        if not result.capped:
            assert np.sum(result.weights**2 * q) <= budget * (1 + 1e-6)
