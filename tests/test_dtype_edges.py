"""Float32 edges of the capacity / MCS mapping.

The array_api backend's float32 configuration quantizes SNRs to ~1e-6
relative before the MCS threshold comparison.  These tests pin the
*documented* behaviour at the edges (see ``mcs_index_for_snr``'s
docstring): thresholds themselves stay float64, comparisons promote, so a
float32 SNR is classified by its exact float64 value -- an input more than
one float32 ULP away from a threshold can never flip MCS, and an input
*at* a threshold decodes that MCS in every precision.

A golden-value table locks the classification of every threshold, its
immediate float32 neighbours, and the canonical in-band points, in both
precisions, so any future change to the mapping's dtype handling trips a
review here rather than a tolerance contract three layers up.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.phy.capacity import sum_capacity_bps_hz
from repro.phy.mcs import (
    MCS_TABLE,
    highest_mcs_for_snr,
    mcs_index_for_snr,
    rate_bps_hz_for_snr,
    rate_bps_hz_for_snr_array,
)

THRESHOLDS = np.array([entry.min_snr_db for entry in MCS_TABLE])


# ----------------------------------------------------------------------
# Golden-value table: (snr_db, expected MCS index) covering every
# threshold, its float32 neighbours, and points inside each band.  All
# table thresholds are exactly representable in float32 (small integers),
# so the expected index is identical in both precisions.
# ----------------------------------------------------------------------
def _golden_cases():
    cases = [(-50.0, -1), (0.0, -1), (1.9999, -1), (100.0, 8)]
    for i, snr in enumerate(THRESHOLDS):
        cases.append((float(snr), i))  # at-threshold decodes the MCS
        below = float(np.nextafter(np.float32(snr), np.float32(-np.inf)))
        above = float(np.nextafter(np.float32(snr), np.float32(np.inf)))
        cases.append((below, i - 1))  # one f32 ULP under: previous band
        cases.append((above, i))  # one f32 ULP over: same band
    for i, entry in enumerate(MCS_TABLE):
        upper = THRESHOLDS[i + 1] if i + 1 < len(THRESHOLDS) else 40.0
        cases.append((float((entry.min_snr_db + upper) / 2.0), i))  # mid-band
    return cases


GOLDEN = _golden_cases()


@pytest.mark.parametrize("snr_db,expected", GOLDEN)
def test_mcs_golden_values_float64(snr_db, expected):
    assert mcs_index_for_snr(np.float64(snr_db)) == expected
    entry = highest_mcs_for_snr(snr_db)
    assert (entry.index if entry is not None else -1) == expected


@pytest.mark.parametrize("snr_db,expected", GOLDEN)
def test_mcs_golden_values_float32(snr_db, expected):
    # Every golden SNR is representable in float32 (thresholds are small
    # integers; neighbours are constructed *as* float32), so float32
    # classification must agree exactly with float64.
    assert mcs_index_for_snr(np.float32(snr_db)) == expected


def test_rate_mapping_matches_the_index_mapping_in_both_precisions():
    snrs = np.array([case[0] for case in GOLDEN])
    expected = np.array([rate_bps_hz_for_snr(s) for s in snrs])
    assert np.array_equal(rate_bps_hz_for_snr_array(snrs), expected)
    f32 = rate_bps_hz_for_snr_array(snrs.astype(np.float32))
    assert f32.dtype == np.float32
    # Rates are sums of small dyadic-ish numbers; float32 narrows them by
    # at most one ULP, never across an MCS step (steps are >= 0.325).
    assert np.allclose(f32, expected, rtol=1e-6, atol=0.0)
    assert np.array_equal(np.sign(f32), np.sign(expected))


def test_threshold_flip_window_is_one_float32_ulp():
    # The documented tolerance: a float32 run can only disagree with
    # float64 on MCS when the true SNR lies within one float32 ULP of a
    # threshold.  Inputs quantized *from* float64 at the worst case --
    # halfway into the rounding window -- still classify identically once
    # narrowed, because narrowing is what defines the float32 run's input.
    for snr in THRESHOLDS:
        ulp = float(np.spacing(np.float32(snr)))
        for offset in (-2 * ulp, 2 * ulp):
            x64 = snr + offset
            x32 = np.float32(x64)
            assert mcs_index_for_snr(x64) == mcs_index_for_snr(x32)


def test_float32_capacity_near_mcs_thresholds_stays_in_contract():
    # Shannon capacity at SINRs right around every MCS threshold: the
    # float32 pipeline (narrowed SINRs, float32 log2) must stay within the
    # documented float32 elementwise tier (rtol=1e-4) of the float64 path.
    rho_db = np.concatenate([THRESHOLDS - 1e-3, THRESHOLDS, THRESHOLDS + 1e-3])
    rho = 10 ** (rho_db / 10.0)
    exact = sum_capacity_bps_hz(rho[None, :])  # (1, n) -> per-"item" sums
    narrowed = sum_capacity_bps_hz(rho.astype(np.float32)[None, :])
    assert np.asarray(narrowed).dtype == np.float32
    assert np.allclose(np.asarray(narrowed), np.asarray(exact), rtol=1e-4)


def test_scalar_and_array_mappings_agree_on_random_snrs():
    rng = np.random.default_rng(5)
    snrs = rng.uniform(-5.0, 35.0, 256)
    idx = mcs_index_for_snr(snrs)
    for s, i in zip(snrs, np.asarray(idx)):
        entry = highest_mcs_for_snr(float(s))
        assert (entry.index if entry is not None else -1) == i
