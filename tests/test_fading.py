"""Small-scale fading model tests."""

import numpy as np
import pytest
from scipy.special import j0

from repro.channel.fading import (
    FadingProcess,
    angular_spread_correlation,
    correlation_for,
    correlation_sqrt,
    jakes_correlation,
    sample_fading,
)

WAVELENGTH = 0.057


class TestSampleFading:
    def test_shape(self):
        h = sample_fading(np.random.default_rng(0), 3, 5)
        assert h.shape == (3, 5)

    def test_unit_average_power(self):
        h = sample_fading(np.random.default_rng(0), 200, 200)
        assert np.mean(np.abs(h) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_rician_k_preserves_power(self):
        h = sample_fading(np.random.default_rng(0), 200, 200, rician_k=5.0)
        assert np.mean(np.abs(h) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            sample_fading(np.random.default_rng(0), 2, 2, rician_k=-1.0)


class TestCorrelationModels:
    def test_jakes_diagonal_is_one(self):
        pts = [(0, 0), (WAVELENGTH / 2, 0)]
        corr = jakes_correlation(pts, WAVELENGTH)
        np.testing.assert_allclose(np.diag(corr), 1.0, atol=1e-9)

    def test_jakes_matches_bessel(self):
        d = WAVELENGTH / 2
        corr = jakes_correlation([(0, 0), (d, 0)], WAVELENGTH)
        assert corr[0, 1] == pytest.approx(float(j0(np.pi)), abs=0.05)

    def test_angular_spread_decreases_with_distance(self):
        pts = [(0, 0), (WAVELENGTH / 2, 0), (5 * WAVELENGTH, 0)]
        corr = angular_spread_correlation(pts, WAVELENGTH, 15.0)
        assert corr[0, 1] > corr[0, 2]

    def test_angular_spread_higher_correlation_for_narrow_spread(self):
        pts = [(0, 0), (WAVELENGTH / 2, 0)]
        narrow = angular_spread_correlation(pts, WAVELENGTH, 8.0)
        wide = angular_spread_correlation(pts, WAVELENGTH, 40.0)
        assert narrow[0, 1] > wide[0, 1]

    def test_distributed_antennas_nearly_uncorrelated(self):
        pts = [(0, 0), (5.0, 0)]
        corr = angular_spread_correlation(pts, WAVELENGTH, 15.0)
        assert abs(corr[0, 1]) < 0.01

    def test_psd(self):
        pts = [(0, 0), (WAVELENGTH / 2, 0), (WAVELENGTH, 0), (3 * WAVELENGTH / 2, 0)]
        for corr in (
            jakes_correlation(pts, WAVELENGTH),
            angular_spread_correlation(pts, WAVELENGTH, 15.0),
        ):
            eigvals = np.linalg.eigvalsh(corr)
            assert np.all(eigvals >= -1e-9)

    def test_correlation_for_selects_model(self):
        pts = [(0, 0), (WAVELENGTH / 2, 0)]
        np.testing.assert_allclose(
            correlation_for(pts, WAVELENGTH, None), jakes_correlation(pts, WAVELENGTH)
        )
        np.testing.assert_allclose(
            correlation_for(pts, WAVELENGTH, 15.0),
            angular_spread_correlation(pts, WAVELENGTH, 15.0),
        )

    def test_sqrt_squares_back(self):
        pts = [(0, 0), (WAVELENGTH / 2, 0), (WAVELENGTH, 0)]
        corr = angular_spread_correlation(pts, WAVELENGTH, 15.0)
        root = correlation_sqrt(corr)
        np.testing.assert_allclose(root @ root.conj().T, corr, atol=1e-9)

    def test_invalid_spread_rejected(self):
        with pytest.raises(ValueError):
            angular_spread_correlation([(0, 0)], WAVELENGTH, 0.0)


class TestFadingProcess:
    def _process(self, doppler=10.0):
        return FadingProcess(
            np.random.default_rng(0),
            n_rx=3,
            antenna_positions=[(0, 0), (6, 0), (0, 7)],
            wavelength_m=WAVELENGTH,
            doppler_hz=doppler,
        )

    def test_current_shape(self):
        assert self._process().current.shape == (3, 3)

    def test_zero_dt_is_identity(self):
        proc = self._process()
        before = proc.current.copy()
        proc.advance(0.0)
        np.testing.assert_array_equal(proc.current, before)

    def test_zero_doppler_freezes(self):
        proc = self._process(doppler=0.0)
        before = proc.current.copy()
        proc.advance(10.0)
        np.testing.assert_array_equal(proc.current, before)

    def test_small_dt_high_correlation(self):
        proc = self._process(doppler=5.0)
        before = proc.current.copy()
        proc.advance(1e-4)
        corr = np.abs(np.vdot(before, proc.current)) / (
            np.linalg.norm(before) * np.linalg.norm(proc.current)
        )
        assert corr > 0.99

    def test_long_dt_decorrelates(self):
        proc = self._process(doppler=10.0)
        before = proc.current.copy()
        for __ in range(20):
            proc.advance(1.0)
        corr = np.abs(np.vdot(before, proc.current)) / (
            np.linalg.norm(before) * np.linalg.norm(proc.current)
        )
        assert corr < 0.5

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            self._process().advance(-1.0)

    def test_correlated_cas_array(self):
        # Antennas half a wavelength apart must produce correlated columns.
        spacing = WAVELENGTH / 2
        proc = FadingProcess(
            np.random.default_rng(1),
            n_rx=4000,
            antenna_positions=[(0, 0), (spacing, 0)],
            wavelength_m=WAVELENGTH,
            angular_spread_deg=10.0,
        )
        g = proc.current
        sample_corr = np.abs(np.mean(g[:, 0] * np.conj(g[:, 1])))
        assert sample_corr > 0.5


class TestTemporalEvolution:
    """The Gauss-Markov update must preserve the marginal fading statistics
    over arbitrarily many steps -- otherwise long mobility runs would slowly
    cool (or heat) every channel they touch."""

    def _ensemble(self, advance):
        proc = FadingProcess(
            np.random.default_rng(3),
            n_rx=1500,
            antenna_positions=[(0, 0), (6, 0), (0, 7)],
            wavelength_m=WAVELENGTH,
            doppler_hz=12.0,
        )
        for __ in range(60):
            advance(proc)
        return proc.current

    def test_rayleigh_variance_preserved_global_doppler(self):
        g = self._ensemble(lambda proc: proc.advance(0.02))
        assert np.mean(np.abs(g) ** 2) == pytest.approx(1.0, rel=0.05)
        # Real/imag parts stay zero-mean circular Gaussian halves.
        assert np.mean(g.real) == pytest.approx(0.0, abs=0.02)
        assert np.var(g.real) == pytest.approx(0.5, rel=0.1)

    def test_rayleigh_variance_preserved_per_client_doppler(self):
        fd = np.linspace(0.0, 40.0, 1500)  # parked through vehicular
        g = self._ensemble(lambda proc: proc.advance(0.02, doppler_hz=fd))
        assert np.mean(np.abs(g) ** 2) == pytest.approx(1.0, rel=0.05)
        # The fast rows must not have drifted away from unit power either.
        fast = g[1000:]
        assert np.mean(np.abs(fast) ** 2) == pytest.approx(1.0, rel=0.1)

    def test_rician_variance_preserved(self):
        proc = FadingProcess(
            np.random.default_rng(4),
            n_rx=1500,
            antenna_positions=[(0, 0), (6, 0)],
            wavelength_m=WAVELENGTH,
            doppler_hz=12.0,
            rician_k=4.0,
        )
        for __ in range(40):
            proc.advance(0.02, doppler_hz=np.full(1500, 15.0))
        assert np.mean(np.abs(proc.current) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_zero_doppler_rows_frozen_under_per_client_advance(self):
        proc = FadingProcess(
            np.random.default_rng(5),
            n_rx=4,
            antenna_positions=[(0, 0), (6, 0)],
            wavelength_m=WAVELENGTH,
            doppler_hz=8.0,
        )
        before = proc.current.copy()
        proc.advance(0.02, doppler_hz=np.array([0.0, 0.0, 25.0, 25.0]))
        np.testing.assert_array_equal(proc.current[:2], before[:2])
        assert not np.array_equal(proc.current[2:], before[2:])

    def test_negative_doppler_rejected(self):
        proc = FadingProcess(
            np.random.default_rng(6),
            n_rx=2,
            antenna_positions=[(0, 0)],
            wavelength_m=WAVELENGTH,
        )
        with pytest.raises(ValueError):
            proc.advance(0.02, doppler_hz=np.array([-1.0, 3.0]))


class TestScalarBatchAdvanceBitIdentity:
    """``ChannelModel.advance`` and ``ChannelBatch.advance(items=...)`` must
    agree bit for bit under per-item, per-client Doppler."""

    def _build(self):
        from repro.channel.batch import ChannelBatch
        from repro.channel.model import ChannelModel
        from repro.topology.deployment import AntennaMode
        from repro.topology.scenarios import office_a, single_ap_scenario

        env = office_a()
        seeds = [0, 1, 2]
        scens = [
            single_ap_scenario(env, AntennaMode.DAS, seed=s) for s in seeds
        ]
        models = [
            ChannelModel(s.deployment, s.radio, seed=seed)
            for s, seed in zip(scens, seeds)
        ]
        batch = ChannelBatch([s.deployment for s in scens], scens[0].radio, seeds)
        return models, batch

    def test_full_batch_per_item_doppler(self):
        models, batch = self._build()
        fd = np.random.default_rng(9).uniform(0.0, 50.0, (3, 4))
        for __ in range(3):
            for i, model in enumerate(models):
                model.advance(0.02, doppler_hz=fd[i])
            batch.advance(0.02, doppler_hz=fd)
            stacked = batch.channel_matrices()
            for i, model in enumerate(models):
                np.testing.assert_array_equal(model.channel_matrix(), stacked[i])

    def test_masked_items_subset(self):
        models, batch = self._build()
        fd = np.random.default_rng(10).uniform(0.0, 50.0, (3, 4))
        batch.advance(0.02, items=[0, 2], doppler_hz=fd[[0, 2]])
        for i in (0, 2):
            models[i].advance(0.02, doppler_hz=fd[i])
        stacked = batch.channel_matrices()
        for i in (0, 2):
            np.testing.assert_array_equal(models[i].channel_matrix(), stacked[i])
        # The skipped item's state (and generator) must be untouched.
        np.testing.assert_array_equal(models[1].channel_matrix(), stacked[1])
