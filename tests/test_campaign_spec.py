"""CampaignSpec: grid expansion, shard planning, identity, validation."""

import pytest

from repro.campaign import CampaignSpec


class TestExpansion:
    def test_single_cell_without_axes(self):
        campaign = CampaignSpec("fig07", n_topologies=10)
        cells = campaign.cells()
        assert campaign.n_cells == 1
        assert len(cells) == 1
        assert cells[0].coords == {}
        assert cells[0].label() == "(base)"
        assert cells[0].spec.experiment == "fig07"
        assert cells[0].n_topologies == 10

    def test_cartesian_product_in_sorted_axis_order(self):
        campaign = CampaignSpec(
            "fig09",
            n_topologies=4,
            axes={"precoder": ["naive", "balanced"], "antenna_counts": [[2], [4]]},
        )
        cells = campaign.cells()
        assert campaign.n_cells == 4
        # Sorted axis names: antenna_counts varies slowest, precoder fastest.
        assert [c.coords for c in cells] == [
            {"antenna_counts": [2], "precoder": "naive"},
            {"antenna_counts": [2], "precoder": "balanced"},
            {"antenna_counts": [4], "precoder": "naive"},
            {"antenna_counts": [4], "precoder": "balanced"},
        ]
        # Spec-level axes land on the RunSpec; parameter axes in params.
        assert cells[0].spec.precoder == "naive"
        assert cells[0].spec.params["antenna_counts"] == [2]

    def test_axis_order_is_insertion_independent(self):
        a = CampaignSpec(
            "fig09",
            n_topologies=4,
            axes={"precoder": ["naive"], "antenna_counts": [[2], [4]]},
        )
        b = CampaignSpec(
            "fig09",
            n_topologies=4,
            axes={"antenna_counts": [[2], [4]], "precoder": ["naive"]},
        )
        assert [c.coords for c in a.cells()] == [c.coords for c in b.cells()]
        assert a.campaign_hash() == b.campaign_hash()

    def test_seed_and_n_topologies_axes(self):
        campaign = CampaignSpec(
            "fig07", n_topologies=8, axes={"seed": [0, 1], "n_topologies": [4, 8]}
        )
        cells = campaign.cells()
        # Sorted axis names: n_topologies varies slowest, seed fastest.
        assert [(c.spec.seed, c.n_topologies) for c in cells] == [
            (0, 4),
            (1, 4),
            (0, 8),
            (1, 8),
        ]


class TestShards:
    def test_windows_partition_each_cell(self):
        campaign = CampaignSpec(
            "fig07", n_topologies=10, shard_size=4, axes={"seed": [0, 1]}
        )
        shards = campaign.shards()
        assert campaign.n_shards == len(shards) == 6
        by_cell = {}
        for shard in shards:
            by_cell.setdefault(shard.cell_index, []).append(shard)
        for cell_shards in by_cell.values():
            windows = [(s.seed_start, s.seed_count) for s in cell_shards]
            assert windows == [(0, 4), (4, 4), (8, 2)]  # last shard smaller
        # Cell-major, ascending window; shard indices are canonical.
        assert [s.index for s in shards] == list(range(6))
        assert len({s.key for s in shards}) == 6

    def test_key_is_spec_hash_plus_window(self):
        campaign = CampaignSpec("fig07", n_topologies=6, shard_size=6)
        (shard,) = campaign.shards()
        assert shard.key == f"{shard.spec.spec_hash()[:16]}:0+6"

    def test_iter_yields_shards(self):
        campaign = CampaignSpec("fig07", n_topologies=8, shard_size=3)
        assert [(s.seed_start, s.seed_count) for s in campaign] == [
            (0, 3),
            (3, 3),
            (6, 2),
        ]


class TestIdentity:
    def test_dict_round_trip_preserves_hash(self):
        campaign = CampaignSpec(
            "fig09",
            n_topologies=100,
            shard_size=32,
            seed=7,
            axes={"precoder": ["naive", "balanced"]},
            params={"antenna_counts": [4]},
        )
        clone = CampaignSpec.from_dict(campaign.to_dict())
        assert clone == campaign
        assert clone.campaign_hash() == campaign.campaign_hash()

    def test_hash_changes_with_content(self):
        base = CampaignSpec("fig07", n_topologies=10)
        assert base.campaign_hash() != base.replace(n_topologies=20).campaign_hash()
        assert base.campaign_hash() != base.replace(shard_size=128).campaign_hash()
        assert (
            base.campaign_hash()
            != base.replace(sketch_resolution=1 / 64).campaign_hash()
        )

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown CampaignSpec fields"):
            CampaignSpec.from_dict({"experiment": "fig07", "n_topologies": 2, "x": 1})

    def test_describe_mentions_shape(self):
        campaign = CampaignSpec(
            "fig07", n_topologies=10, shard_size=4, axes={"seed": [0, 1]}
        )
        text = campaign.describe()
        assert "fig07" in text
        assert "2 cell(s)" in text
        assert "6 shard(s)" in text


class TestValidation:
    def test_basic_field_validation(self):
        with pytest.raises(ValueError, match="n_topologies"):
            CampaignSpec("fig07", n_topologies=0)
        with pytest.raises(ValueError, match="shard_size"):
            CampaignSpec("fig07", n_topologies=1, shard_size=0)
        with pytest.raises(ValueError, match="sketch_resolution"):
            CampaignSpec("fig07", n_topologies=1, sketch_resolution=0.0)

    def test_forbidden_axis_names(self):
        for name in ("experiment", "shard_size", "params", "axes"):
            with pytest.raises(ValueError, match="cannot be a campaign axis"):
                CampaignSpec("fig07", n_topologies=2, axes={name: [1, 2]})

    def test_axis_value_validation(self):
        with pytest.raises(ValueError, match="at least one value"):
            CampaignSpec("fig07", n_topologies=2, axes={"seed": []})
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec("fig07", n_topologies=2, axes={"seed": [1, 1]})
        with pytest.raises(ValueError, match="list of values"):
            CampaignSpec("fig07", n_topologies=2, axes={"seed": "12"})

    def test_axis_conflicts_with_fixed_fields(self):
        with pytest.raises(ValueError, match="conflicts with the fixed"):
            CampaignSpec(
                "fig09",
                n_topologies=2,
                precoder="naive",
                axes={"precoder": ["naive", "balanced"]},
            )
        with pytest.raises(ValueError, match="conflicts with the fixed"):
            CampaignSpec(
                "fig09",
                n_topologies=2,
                params={"antenna_counts": [2]},
                axes={"antenna_counts": [[2], [4]]},
            )

    def test_base_spec_is_validated(self):
        with pytest.raises(ValueError):
            CampaignSpec("", n_topologies=2)
