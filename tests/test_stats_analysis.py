"""Analysis helper and simulation statistics tests."""

import numpy as np
import pytest

from repro.analysis.cdf import EmpiricalCdf, median_gain, paired_ratio, percentile_gain
from repro.analysis.report import format_cdf_summary, format_gain_line, format_series_table
from repro.sim.stats import jain_fairness


class TestEmpiricalCdf:
    def test_evaluate(self):
        cdf = EmpiricalCdf(np.array([1.0, 2.0, 3.0, 4.0]))
        assert cdf.evaluate(2.5) == pytest.approx(0.5)
        assert cdf.evaluate(0.0) == pytest.approx(0.0)
        assert cdf.evaluate(4.0) == pytest.approx(1.0)

    def test_median(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0])
        assert cdf.median == 2.0

    def test_support(self):
        cdf = EmpiricalCdf([5.0, 1.0, 3.0])
        assert cdf.support() == (1.0, 5.0)

    def test_curve_monotone(self):
        cdf = EmpiricalCdf(np.random.default_rng(0).normal(size=50))
        x, f = cdf.curve()
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(f) > 0)
        assert f[-1] == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([1.0, np.nan])


class TestGains:
    def test_median_gain(self):
        assert median_gain([2.0, 2.0], [1.0, 1.0]) == pytest.approx(1.0)

    def test_percentile_gain(self):
        treatment = np.arange(1, 101, dtype=float) * 2
        baseline = np.arange(1, 101, dtype=float)
        assert percentile_gain(treatment, baseline, 0.9) == pytest.approx(1.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            median_gain([1.0], [0.0])

    def test_paired_ratio(self):
        np.testing.assert_allclose(paired_ratio([2.0, 6.0], [1.0, 2.0]), [2.0, 3.0])

    def test_paired_ratio_shape_mismatch(self):
        with pytest.raises(ValueError):
            paired_ratio([1.0], [1.0, 2.0])


class TestReports:
    def test_cdf_summary_contains_series_names(self):
        text = format_cdf_summary({"cas": [1.0, 2.0], "midas": [2.0, 4.0]})
        assert "cas" in text and "midas" in text and "median" in text

    def test_series_table_alignment(self):
        text = format_series_table({"a": [1.0, 2.0], "b": [3.0, 4.0]})
        assert len(text.splitlines()) == 4  # header, rule, two rows

    def test_series_table_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series_table({"a": [1.0], "b": [1.0, 2.0]})

    def test_gain_line_format(self):
        assert format_gain_line("MIDAS over CAS", 0.5) == "MIDAS over CAS: +50.0%"


class TestJainFairness:
    def test_equal_allocation_is_one(self):
        assert jain_fairness(np.array([3.0, 3.0, 3.0])) == pytest.approx(1.0)

    def test_single_winner_is_1_over_n(self):
        assert jain_fairness(np.array([1.0, 0.0, 0.0, 0.0])) == pytest.approx(0.25)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError, match="all-zero"):
            jain_fairness(np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one client"):
            jain_fairness(np.array([]))

    def test_no_runtime_warning_on_valid_input(self):
        with np.errstate(all="raise"):
            assert jain_fairness(np.array([1.0, 2.0])) == pytest.approx(0.9)


class TestSummarize:
    def test_empty_list_raises_clear_error(self):
        from repro.sim.stats import summarize

        with pytest.raises(ValueError, match="at least one SimulationResult"):
            summarize([])
