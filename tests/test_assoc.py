"""Association & coordination layer tests (`repro.assoc`)."""

import numpy as np
import pytest

from repro.api import RunSpec, UnknownNameError
from repro.assoc import (
    AssociationPolicy,
    CoordinationMode,
    HysteresisHandoffPolicy,
    association_names,
    build_association_state,
    resolve_association,
    resolve_coordination,
)
from repro.sim.batch import RoundBasedEvaluatorBatch
from repro.sim.network import MacMode, NetworkSimulation
from repro.sim.rounds import RoundBasedEvaluator
from repro.topology.deployment import AntennaMode
from repro.topology.scenarios import campus_scenario, office_b


@pytest.fixture(scope="module")
def campus_das():
    # Two-AP campus strip; seed 4 is known to produce handoffs under
    # strongest_rssi with pedestrian-plus mobility (see test below).
    return campus_scenario(
        office_b(),
        n_rows=1,
        n_cols=2,
        spacing_m=18.0,
        clients_per_ap=3,
        seed=4,
        modes=(AntennaMode.DAS,),
    )[AntennaMode.DAS]


class TestRegistry:
    def test_builtin_policies_registered(self):
        names = association_names()
        for name in ("nearest_anchor", "strongest_rssi", "hysteresis_handoff"):
            assert name in names

    def test_unknown_policy_rejected(self):
        with pytest.raises(UnknownNameError):
            resolve_association("definitely_not_a_policy")

    def test_resolve_coordination(self):
        assert resolve_coordination(None) is CoordinationMode.INDEPENDENT
        assert (
            resolve_coordination("coordinated_scheduling")
            is CoordinationMode.COORDINATED_SCHEDULING
        )
        assert (
            resolve_coordination(CoordinationMode.INDEPENDENT)
            is CoordinationMode.INDEPENDENT
        )
        with pytest.raises(UnknownNameError):
            resolve_coordination("psychic")


class TestPolicies:
    def test_nearest_anchor_never_moves(self):
        policy = resolve_association("nearest_anchor")
        current = np.array([0, 1, 1])
        rssi = np.array([[-90.0, -30.0], [-30.0, -90.0], [-30.0, -90.0]])
        np.testing.assert_array_equal(
            policy.reevaluate(current, rssi, 0), current
        )

    def test_strongest_rssi_is_argmax(self):
        policy = resolve_association("strongest_rssi")
        rssi = np.array([[-90.0, -30.0], [-30.0, -90.0], [-50.0, -50.0]])
        np.testing.assert_array_equal(
            policy.reevaluate(np.array([0, 0, 1]), rssi, 0), [1, 0, 0]
        )

    def test_hysteresis_needs_margin_and_dwell(self):
        policy = HysteresisHandoffPolicy(
            hysteresis_db=4.0, dwell_soundings=2, smoothing=1.0
        )
        current = np.array([0])
        weak = np.array([[-60.0, -58.0]])  # 2 dB short of the margin
        strong = np.array([[-60.0, -50.0]])  # 10 dB over
        # Sounding 0/1: inside the initial dwell window, no move ever.
        np.testing.assert_array_equal(policy.reevaluate(current, strong, 0), [0])
        np.testing.assert_array_equal(policy.reevaluate(current, strong, 1), [0])
        # Dwelt, but margin too small: stay.
        np.testing.assert_array_equal(policy.reevaluate(current, weak, 2), [0])
        # Dwelt and margin cleared: move.
        np.testing.assert_array_equal(policy.reevaluate(current, strong, 3), [1])
        # Freshly moved: the dwell clock restarts.
        np.testing.assert_array_equal(
            policy.reevaluate(np.array([1]), np.array([[-50.0, -60.0]]), 4), [1]
        )

    def test_hysteresis_smoothing_filters_spikes(self):
        policy = HysteresisHandoffPolicy(
            hysteresis_db=4.0, dwell_soundings=1, smoothing=0.25
        )
        current = np.array([0])
        steady = np.array([[-50.0, -60.0]])
        spike = np.array([[-50.0, -40.0]])
        policy.reevaluate(current, steady, 0)
        # One 10-dB spike through a 0.25 EMA moves the smoothed estimate
        # only 2.5 dB -- below the 4 dB margin, so no ping-pong.
        np.testing.assert_array_equal(policy.reevaluate(current, spike, 1), [0])

    def test_hysteresis_validation(self):
        with pytest.raises(ValueError):
            HysteresisHandoffPolicy(hysteresis_db=-1.0)
        with pytest.raises(ValueError):
            HysteresisHandoffPolicy(dwell_soundings=0)
        with pytest.raises(ValueError):
            HysteresisHandoffPolicy(smoothing=0.0)


class _BadShapePolicy(AssociationPolicy):
    def reevaluate(self, current_ap, per_ap_rssi_dbm, sounding_index):
        return current_ap[:-1]


class _OutOfRangePolicy(AssociationPolicy):
    def reevaluate(self, current_ap, per_ap_rssi_dbm, sounding_index):
        return np.full_like(current_ap, 99)


class TestAssociationState:
    def _state(self, scenario, policy="strongest_rssi"):
        return build_association_state(
            policy, None, scenario.deployment, scenario.mac
        )

    def _rssi_toward(self, scenario, ap: int) -> np.ndarray:
        """RSSI that makes every client prefer ``ap``."""
        dep = scenario.deployment
        rssi = np.full((dep.n_clients, dep.n_antennas), -90.0)
        rssi[:, dep.antennas_of(ap)] = -40.0
        return rssi

    def test_initial_map_matches_deployment(self, campus_das):
        state = self._state(campus_das, "nearest_anchor")
        np.testing.assert_array_equal(
            state.client_ap, campus_das.deployment.client_ap
        )
        assert state.sounding_count == 0 and state.tag_builds == 0

    def test_resound_logs_handoffs_and_rebuilds_tags(self, campus_das):
        dep = campus_das.deployment
        state = self._state(campus_das)
        events = state.resound(self._rssi_toward(campus_das, 1))
        movers = np.flatnonzero(dep.client_ap != 1)
        assert {e.client for e in events} == set(movers.tolist())
        assert all(e.to_ap == 1 and e.sounding_index == 0 for e in events)
        np.testing.assert_array_equal(state.client_ap, np.ones(dep.n_clients))
        assert state.tag_builds == state.sounding_count == 1
        # AP 0 lost everyone: its tag mask is empty; AP 1's tags live on
        # the global client axis with one anchor set per member.
        assert not state.tag_mask(0).any()
        assert state.member_mask(1).all()
        assert state.tag_mask(1).any(axis=1).all()

    def test_tag_mask_false_outside_membership(self, campus_das):
        state = self._state(campus_das, "nearest_anchor")
        state.resound(self._rssi_toward(campus_das, 0))
        for ap in range(campus_das.deployment.n_aps):
            outsiders = ~state.member_mask(ap)
            assert not state.tag_mask(ap)[outsiders].any()
            for local in range(state.tag_mask(ap).shape[1]):
                tagged = state.tagged_clients(ap, local)
                assert state.member_mask(ap)[tagged].all()

    def test_outage_accounting(self, campus_das):
        dep = campus_das.deployment
        state = self._state(campus_das)
        events = state.resound(self._rssi_toward(campus_das, 1))
        moved = [e.client for e in events]
        assert state.handoff_count == len(moved)
        assert state.outage_count == len(moved)  # all still pending
        state.note_served([moved[0]])
        assert state.outage_count == len(moved) - 1
        # Next sounding: the unserved movers become completed outages
        # (and nobody moves again -- RSSI still points at AP 1).
        state.resound(self._rssi_toward(campus_das, 1))
        assert state.handoff_count == len(moved)
        assert state.outage_count == len(moved) - 1
        # Serving now is too late to undo a completed outage.
        state.note_served(moved)
        assert state.outage_count == len(moved) - 1
        assert dep.n_clients >= len(moved) > 1

    def test_policy_contract_enforced(self, campus_das):
        rssi = self._rssi_toward(campus_das, 0)
        state = build_association_state(
            _BadShapePolicy(), None, campus_das.deployment, campus_das.mac
        )
        with pytest.raises(ValueError, match="shape"):
            state.resound(rssi)
        state = build_association_state(
            _OutOfRangePolicy(), None, campus_das.deployment, campus_das.mac
        )
        with pytest.raises(ValueError, match="out-of-range"):
            state.resound(rssi)
        state = self._state(campus_das)
        with pytest.raises(ValueError, match="one row per client"):
            state.resound(rssi[:-1])

    def test_instance_with_kwargs_rejected(self, campus_das):
        with pytest.raises(ValueError, match="policy instance"):
            build_association_state(
                HysteresisHandoffPolicy(),
                {"hysteresis_db": 2.0},
                campus_das.deployment,
                campus_das.mac,
            )


class TestHandoffTagRederivation:
    """The roaming contract: a client crossing a cell boundary gets its
    tags rebuilt exactly once per sounding, identically on the loop and
    vectorized engines."""

    MOBILITY = dict(
        mobility="gauss_markov",
        mobility_kwargs={"speed_mps": 4.0},
        resound_period_rounds=2,
    )

    def test_loop_engine_rederives_once_per_sounding(self, campus_das):
        ev = RoundBasedEvaluator(
            campus_das,
            MacMode.MIDAS,
            seed=4,
            association="strongest_rssi",
            **self.MOBILITY,
        )
        ev.run(12)
        assert ev.association.handoff_count > 0
        assert ev.association.tag_builds == ev.association.sounding_count == 7

    def test_loop_and_batch_handoffs_identical(self, campus_das):
        loop = RoundBasedEvaluator(
            campus_das,
            MacMode.MIDAS,
            seed=4,
            association="strongest_rssi",
            **self.MOBILITY,
        )
        loop_result = loop.run(12)
        batch = RoundBasedEvaluatorBatch(
            [campus_das],
            MacMode.MIDAS,
            seeds=[4],
            association="strongest_rssi",
            **self.MOBILITY,
        )
        batch_result = batch.run(12)[0]
        item = batch.association.items[0]
        assert item.handoff_events == loop.association.handoff_events
        assert item.tag_builds == loop.association.tag_builds
        assert item.outage_count == loop.association.outage_count
        np.testing.assert_array_equal(item.client_ap, loop.association.client_ap)
        for ap in range(campus_das.deployment.n_aps):
            np.testing.assert_array_equal(
                item.tag_mask(ap), loop.association.tag_mask(ap)
            )
        assert (
            batch_result.mean_capacity_bps_hz == loop_result.mean_capacity_bps_hz
        )

    def test_network_engine_rederives_once_per_sounding(self, campus_das):
        sim = NetworkSimulation(
            campus_das,
            MacMode.MIDAS,
            seed=4,
            association="strongest_rssi",
            mobility="gauss_markov",
            mobility_kwargs={"speed_mps": 4.0},
            resound_interval_s=0.02,
        )
        sim.run(0.1)
        assert sim.association.tag_builds == sim.association.sounding_count
        assert sim.association.sounding_count > 1


class TestSpecHashStability:
    def test_unset_axes_leave_hash_unchanged(self):
        bare = RunSpec("fig09", n_topologies=4, seed=1)
        assert "association" not in bare.canonical_json()
        assert "coordination" not in bare.canonical_json()
        explicit = RunSpec(
            "fig09",
            n_topologies=4,
            seed=1,
            association="nearest_anchor",
            coordination="independent",
        )
        # Setting the universal defaults is semantically a no-op but names
        # the axes, so the hash differs -- only *unset* specs are stable.
        assert explicit.spec_hash() != bare.spec_hash()
        assert RunSpec.from_dict(bare.to_dict()) == bare
        assert RunSpec.from_dict(explicit.to_dict()) == explicit
