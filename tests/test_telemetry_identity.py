"""Telemetry is observation only: byte-identical outputs, zero RNG impact.

The contract the whole :mod:`repro.obs` layer rests on: instrumentation
never draws randomness and never changes engine control flow, so every
series an engine produces is ``array_equal`` with telemetry on or off --
on both engine families (the round engines behind ``roaming_handoff``,
loop and batched, and the event-driven ``NetworkSimulation`` behind
``fig15``) -- and every RNG the run creates ends in exactly the same
state.  Plus the acceptance checks of the traced path itself: a traced
run's JSONL is schema-valid, names every documented counter, and its
per-phase span totals account for the engine wall-clock.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro import rng as rng_mod
from repro.api import Runner, RunSpec
from repro.obs import CORE_COUNTERS

#: Small-but-real configurations, one per engine family.  roaming_handoff
#: exercises the round engines (loop + batched) with mobility, association,
#: and handoff accounting; fig15 additionally drives the event-driven
#: carrier-sense engine (NetworkSimulation) for CAS.
_CASES = [
    ("roaming_handoff", {"rounds_per_topology": 8}),
    ("fig15", {"dynamic": True, "duration_s": 0.02}),
]

_BACKENDS = ("loop", "vectorized")


def _run(experiment, params, backend, telemetry=None):
    spec = RunSpec(experiment, n_topologies=2, seed=7, params=params)
    return Runner(backend=backend, telemetry=telemetry).run(spec)


class _RngLedger:
    """Every generator a run creates, so final states can be compared.

    ``make_rng`` and ``spawn`` are the only constructors in the codebase
    (everything else receives generators from them), so tracking both sees
    every stream a run consumes.
    """

    def __init__(self, monkeypatch):
        self.generators: list[np.random.Generator] = []
        orig_make, orig_spawn = rng_mod.make_rng, rng_mod.spawn

        def make_rng(seed):
            generator = orig_make(seed)
            if generator not in self.generators:
                self.generators.append(generator)
            return generator

        def spawn(rng, count):
            children = orig_spawn(rng, count)
            self.generators.extend(children)
            return children

        monkeypatch.setattr(rng_mod, "make_rng", make_rng)
        monkeypatch.setattr(rng_mod, "spawn", spawn)

    def final_states(self) -> list[dict]:
        return [g.bit_generator.state for g in self.generators]


@pytest.mark.parametrize("experiment,params", _CASES)
@pytest.mark.parametrize("backend", _BACKENDS)
def test_series_byte_identical_with_telemetry_on_or_off(
    experiment, params, backend, monkeypatch
):
    ledger_off = _RngLedger(monkeypatch)
    baseline = _run(experiment, params, backend)
    states_off = ledger_off.final_states()

    monkeypatch.undo()
    ledger_on = _RngLedger(monkeypatch)
    telemetry = obs.Telemetry()
    traced = _run(experiment, params, backend, telemetry=telemetry)
    states_on = ledger_on.final_states()

    assert set(baseline.series) == set(traced.series)
    for name in baseline.series:
        assert np.array_equal(
            np.asarray(baseline.series[name]), np.asarray(traced.series[name])
        ), f"series {name!r} diverged under telemetry ({backend})"

    # Zero extra RNG draws: the same generators exist and every one ends
    # in exactly the same state.
    assert len(states_off) == len(states_on)
    for index, (off, on) in enumerate(zip(states_off, states_on)):
        assert off == on, f"generator {index} consumed differently under telemetry"

    # The traced run actually recorded the engines at work.
    assert telemetry.spans_entered == telemetry.spans_exited > 0
    counters = telemetry.counters
    assert counters["rng.generators_spawned"] > 0
    if experiment == "fig15":
        # dynamic=True drives the event-driven NetworkSimulation engine.
        assert counters["engine.txops"] > 0
    else:
        assert counters["engine.rounds"] > 0


def test_result_telemetry_summary_only_when_enabled():
    baseline = _run("roaming_handoff", {"rounds_per_topology": 4}, "loop")
    assert baseline.telemetry is None
    telemetry = obs.Telemetry()
    traced = _run(
        "roaming_handoff", {"rounds_per_topology": 4}, "loop", telemetry=telemetry
    )
    assert traced.telemetry is not None
    assert traced.telemetry.counter("engine.rounds") > 0
    assert traced.telemetry.span_total_us("engine.run") > 0.0
    # Serialization is telemetry-blind: the JSON payload has no telemetry.
    payload = json.loads(traced.to_json())
    assert "telemetry" not in payload


def test_telemetry_never_enters_cache_keys(tmp_path):
    spec = RunSpec("roaming_handoff", n_topologies=1, seed=3,
                   params={"rounds_per_topology": 4})
    plain = Runner(cache_dir=tmp_path)
    traced = Runner(cache_dir=tmp_path, telemetry=obs.Telemetry())
    defn_params_plain = plain._cache_path(spec, _resolved(spec))
    defn_params_traced = traced._cache_path(spec, _resolved(spec))
    assert defn_params_plain == defn_params_traced


def _resolved(spec):
    from repro.api.experiments import get_experiment_def
    from repro.api.runner import resolve_params

    return resolve_params(get_experiment_def(spec.experiment), spec)


#: Top-level engine phases (assoc_update is nested inside sounding, so it
#: is deliberately excluded from the sum -- it would double-count).
_PHASES = ("schedule", "sounding", "precode", "score", "traffic",
           "channel_advance")


def test_traced_roaming_handoff_jsonl_valid_and_phases_account(tmp_path):
    """The acceptance check: a traced run exports a schema-valid JSONL
    naming every documented counter, and per-phase span sums land within
    10% of the engine wall-clock."""
    telemetry = obs.Telemetry()
    runner = Runner(telemetry=telemetry)
    runner.run(RunSpec("roaming_handoff", n_topologies=2, seed=0))

    path = telemetry.write_jsonl(tmp_path / "trace.jsonl")
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    meta = lines[0]
    assert meta["type"] == "meta"
    assert meta["schema"] == obs.TRACE_SCHEMA_VERSION
    assert meta["dropped_events"] == 0
    for record in lines[1:]:
        assert record["type"] in ("span", "gauge", "counter")
        if record["type"] == "span":
            assert record["dur_us"] >= 0.0 and record["depth"] >= 0

    counter_names = {l["name"] for l in lines if l["type"] == "counter"}
    assert set(CORE_COUNTERS) <= counter_names

    totals = telemetry.span_totals()
    engine_us = totals["engine.run"]["total_us"]
    phase_us = sum(
        totals[name]["total_us"] for name in _PHASES if name in totals
    )
    assert engine_us > 0.0
    # Nested phases can never exceed their parent; and they must explain
    # at least 90% of where the engine's time went.
    assert phase_us <= engine_us * 1.001
    assert phase_us >= 0.90 * engine_us, (
        f"phases account for only {100.0 * phase_us / engine_us:.1f}% "
        f"of engine.run"
    )
