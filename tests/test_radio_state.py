"""Transmission registry tests."""

import numpy as np

from repro.sim.radio_state import ActiveTransmission, TransmissionLog


def make_tx(start, end, antennas=(0,), ap=0):
    n = len(antennas)
    return ActiveTransmission(
        ap=ap,
        antennas=np.asarray(antennas),
        clients=np.asarray([0]),
        v=np.ones((n, 1), dtype=complex),
        h_rows=np.ones((1, 4), dtype=complex),
        start_us=start,
        end_us=end,
        data_fraction=0.8,
    )


class TestOverlap:
    def test_disjoint_zero(self):
        assert make_tx(0, 10).overlap_us(make_tx(20, 30)) == 0.0

    def test_partial_overlap(self):
        assert make_tx(0, 10).overlap_us(make_tx(5, 30)) == 5.0

    def test_containment(self):
        assert make_tx(0, 100).overlap_us(make_tx(20, 30)) == 10.0

    def test_symmetry(self):
        a, b = make_tx(0, 10), make_tx(5, 30)
        assert a.overlap_us(b) == b.overlap_us(a)

    def test_duration(self):
        assert make_tx(5, 30).duration_us == 25.0


class TestLog:
    def test_start_finish_lifecycle(self):
        log = TransmissionLog()
        tx = make_tx(0, 10)
        log.start(tx)
        assert log.active == [tx]
        log.finish(tx)
        assert log.active == []
        assert log.completed == [tx]

    def test_transmitting_antennas_concatenates(self):
        log = TransmissionLog()
        log.start(make_tx(0, 10, antennas=(0, 1)))
        log.start(make_tx(0, 10, antennas=(3,)))
        np.testing.assert_array_equal(log.transmitting_antennas(), [0, 1, 3])

    def test_empty_log(self):
        log = TransmissionLog()
        assert log.transmitting_antennas().size == 0
        assert log.busy_until_us(5.0) == 5.0

    def test_busy_until(self):
        log = TransmissionLog()
        log.start(make_tx(0, 10))
        log.start(make_tx(0, 25))
        assert log.busy_until_us(5.0) == 25.0

    def test_all_transmissions(self):
        log = TransmissionLog()
        a, b = make_tx(0, 10), make_tx(5, 15)
        log.start(a)
        log.start(b)
        log.finish(a)
        assert set(map(id, log.all_transmissions())) == {id(a), id(b)}
