"""The telemetry core: spans, counters, probes, scoping, and exports."""

from __future__ import annotations

import contextlib
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import (
    CORE_COUNTERS,
    NULL,
    PROBE_SITES,
    TRACE_SCHEMA_VERSION,
    NullTelemetry,
    Telemetry,
    register_probe,
    registered_probes,
    unregister_probe,
)


class TestNullObject:
    def test_active_defaults_to_the_null_singleton(self):
        assert obs.active() is NULL
        assert isinstance(obs.active(), NullTelemetry)
        assert obs.active().enabled is False

    def test_null_span_is_one_shared_noop_context_manager(self):
        first = NULL.span("anything", tag=1)
        second = NULL.span("else")
        assert first is second  # no per-call allocation on the hot path
        with first as entered:
            assert entered is first

    def test_null_methods_do_nothing(self):
        NULL.count("x")
        NULL.count("x", 5)
        NULL.gauge("g", 1.0, tag="t")
        NULL.probe("round", evaluator=None)

    def test_null_probe_never_fires_registered_samplers(self):
        calls = []

        @register_probe("round", name="never")
        def sampler(telemetry, **context):
            calls.append(context)

        try:
            NULL.probe("round", value=1)
            assert calls == []
        finally:
            unregister_probe(sampler)


class TestScoping:
    def test_use_installs_and_restores(self):
        telemetry = Telemetry()
        assert obs.active() is NULL
        with obs.use(telemetry) as installed:
            assert installed is telemetry
            assert obs.active() is telemetry
        assert obs.active() is NULL

    def test_use_nests(self):
        outer, inner = Telemetry(), Telemetry()
        with obs.use(outer):
            with obs.use(inner):
                assert obs.active() is inner
            assert obs.active() is outer

    def test_use_restores_on_exception(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with obs.use(telemetry):
                raise RuntimeError("boom")
        assert obs.active() is NULL

    def test_use_rejects_non_telemetry(self):
        with pytest.raises(TypeError, match="Telemetry"):
            with obs.use(object()):  # pragma: no cover - never entered
                pass


class TestSpansAndCounters:
    def test_span_records_duration_and_depth(self):
        telemetry = Telemetry()
        with telemetry.span("outer", engine="loop"):
            with telemetry.span("inner"):
                pass
        events = telemetry.span_events()
        # Completion order: inner exits first.
        assert [e["name"] for e in events] == ["inner", "outer"]
        inner, outer = events
        assert inner["depth"] == 1 and outer["depth"] == 0
        assert 0.0 <= inner["dur_us"] <= outer["dur_us"]
        assert outer["tags"] == {"engine": "loop"}

    def test_span_records_on_exception_and_restores_depth(self):
        telemetry = Telemetry()
        with pytest.raises(ValueError):
            with telemetry.span("failing"):
                raise ValueError("boom")
        assert telemetry.span_events()[0]["name"] == "failing"
        assert telemetry._depth == 0
        assert telemetry.spans_entered == telemetry.spans_exited == 1

    def test_core_counters_predeclared_at_zero(self):
        counters = Telemetry().counters
        assert set(CORE_COUNTERS) <= set(counters)
        assert all(counters[name] == 0 for name in CORE_COUNTERS)

    def test_count_accumulates(self):
        telemetry = Telemetry()
        telemetry.count("custom.thing")
        telemetry.count("custom.thing", 4)
        assert telemetry.counters["custom.thing"] == 5

    def test_span_totals_aggregate_per_name(self):
        telemetry = Telemetry()
        for _ in range(3):
            with telemetry.span("phase"):
                pass
        totals = telemetry.span_totals()
        assert totals["phase"]["count"] == 3
        assert totals["phase"]["total_us"] >= 0.0

    def test_buffer_bound_drops_new_events_and_counts_them(self):
        telemetry = Telemetry(max_events=2)
        for index in range(5):
            with telemetry.span(f"s{index}"):
                pass
        assert len(telemetry.span_events()) == 2
        # The *first* events are kept (the run's structure), new ones drop.
        assert [e["name"] for e in telemetry.span_events()] == ["s0", "s1"]
        assert telemetry.dropped_events == 3
        # Counters keep counting regardless of the event buffer.
        telemetry.count("still.counting")
        assert telemetry.counters["still.counting"] == 1

    def test_clear_resets_everything(self):
        telemetry = Telemetry()
        with telemetry.span("s"):
            telemetry.count("c")
        telemetry.clear()
        assert telemetry.span_events() == []
        assert "c" not in telemetry.counters
        assert telemetry.spans_entered == 0

    def test_summary_snapshot(self):
        telemetry = Telemetry()
        with telemetry.span("phase"):
            telemetry.count("engine.rounds", 7)
        summary = telemetry.summary()
        assert summary.counter("engine.rounds") == 7
        assert summary.counter("never.touched") == 0
        assert summary.span_total_us("phase") > 0.0
        assert summary.span_total_us("absent") == 0.0
        assert summary.n_events == 1 and summary.dropped_events == 0


class TestSpanBalanceProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        st.recursive(
            st.booleans(),  # leaf: True raises inside the span
            lambda children: st.lists(children, min_size=1, max_size=4),
            max_leaves=12,
        )
    )
    def test_nested_spans_balance_even_when_blocks_raise(self, tree):
        """enter == exit and depth returns to zero, raises included."""
        telemetry = Telemetry()

        def run(node):
            with telemetry.span("node"):
                if node is True:
                    raise RuntimeError("leaf failure")
                if isinstance(node, list):
                    for child in node:
                        with contextlib.suppress(RuntimeError):
                            run(child)

        with contextlib.suppress(RuntimeError):
            run(tree)
        assert telemetry.spans_entered == telemetry.spans_exited
        assert telemetry.spans_entered > 0
        assert telemetry._depth == 0
        # Every recorded depth is consistent with a balanced tree.
        assert all(e["depth"] >= 0 for e in telemetry.span_events())


class TestProbes:
    def test_register_probe_fires_on_enabled_telemetry(self):
        telemetry = Telemetry()
        seen = []

        @register_probe("round", name="collect")
        def sampler(active_telemetry, **context):
            assert active_telemetry is telemetry
            seen.append(context)
            active_telemetry.gauge("probe.gauge", context["value"])

        try:
            assert "collect" in registered_probes("round")
            telemetry.probe("round", value=3)
            assert seen == [{"value": 3}]
            assert any(
                event[0] == "gauge" for event in telemetry._events
            )
        finally:
            unregister_probe(sampler)
        assert "collect" not in registered_probes("round")

    def test_probe_sites_documented(self):
        assert PROBE_SITES == ("round", "txop", "shard")


class TestExports:
    def _traced(self) -> Telemetry:
        telemetry = Telemetry()
        with telemetry.span("engine.run", engine="loop"):
            with telemetry.span("precode"):
                pass
            telemetry.count("engine.rounds", 2)
            telemetry.gauge("queue_depth", 5.0)
        return telemetry

    def test_jsonl_schema(self):
        telemetry = self._traced()
        lines = [json.loads(line) for line in telemetry.jsonl_lines()]
        meta = lines[0]
        assert meta["type"] == "meta"
        assert meta["schema"] == TRACE_SCHEMA_VERSION
        assert meta["unit"] == "us" and meta["clock"] == "perf_counter_ns"
        spans = [l for l in lines if l["type"] == "span"]
        assert {s["name"] for s in spans} == {"engine.run", "precode"}
        for span in spans:
            assert span["dur_us"] >= 0.0 and span["ts_us"] >= 0.0
            assert span["depth"] >= 0
        gauges = [l for l in lines if l["type"] == "gauge"]
        assert gauges[0]["name"] == "queue_depth" and gauges[0]["value"] == 5.0
        counters = {l["name"]: l["value"] for l in lines if l["type"] == "counter"}
        assert counters["engine.rounds"] == 2
        assert set(CORE_COUNTERS) <= set(counters)  # zeros always exported

    def test_write_jsonl_atomic(self, tmp_path):
        telemetry = self._traced()
        path = telemetry.write_jsonl(tmp_path / "sub" / "trace.jsonl")
        assert path.exists()
        assert not list(path.parent.glob(".*tmp*"))
        first = json.loads(path.read_text().splitlines()[0])
        assert first["type"] == "meta"

    def test_chrome_trace_export(self, tmp_path):
        telemetry = self._traced()
        trace = telemetry.chrome_trace()
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert phases == {"X", "C"}
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"engine.run", "precode"}
        path = telemetry.write_chrome_trace(tmp_path / "trace.trace.json")
        loaded = json.loads(path.read_text())
        assert loaded["otherData"]["schema"] == TRACE_SCHEMA_VERSION

    def test_write_metrics(self, tmp_path):
        telemetry = self._traced()
        path = telemetry.write_metrics(tmp_path / "metrics.json")
        payload = json.loads(path.read_text())
        assert payload["counters"]["engine.rounds"] == 2
        assert payload["span_totals"]["engine.run"]["count"] == 1
        assert payload["meta"]["schema"] == TRACE_SCHEMA_VERSION

    def test_max_events_validation(self):
        with pytest.raises(ValueError, match="max_events"):
            Telemetry(max_events=0)
