"""Experiment plumbing tests (common helpers)."""

import numpy as np
import pytest

from repro.experiments.common import (
    ExperimentResult,
    capacity_for,
    channel_for,
    greedy_siso_snrs,
    sweep_topologies,
)
from repro.topology.deployment import AntennaMode
from repro.topology.scenarios import office_b, single_ap_scenario


@pytest.fixture(scope="module")
def scenario():
    return single_ap_scenario(office_b(), AntennaMode.DAS, seed=2)


class TestCapacityFor:
    def test_known_precoders(self, scenario):
        h = channel_for(scenario, 2).channel_matrix()
        for name in ("naive", "balanced", "total_power"):
            assert capacity_for(scenario, h, name) > 0

    def test_total_power_upper_bounds_naive(self, scenario):
        h = channel_for(scenario, 2).channel_matrix()
        assert capacity_for(scenario, h, "total_power") >= capacity_for(
            scenario, h, "naive"
        )

    def test_unknown_precoder_rejected(self, scenario):
        h = channel_for(scenario, 2).channel_matrix()
        with pytest.raises(ValueError):
            capacity_for(scenario, h, "magic")


class TestSweep:
    def test_collects_requested_count(self):
        results = sweep_topologies(5, seed=0, build=lambda s: {"seed": s})
        assert len(results) == 5

    def test_seeds_are_stable(self):
        a = sweep_topologies(3, seed=1, build=lambda s: {"seed": s})
        b = sweep_topologies(3, seed=1, build=lambda s: {"seed": s})
        assert [r["seed"] for r in a] == [r["seed"] for r in b]

    def test_rejections_are_skipped(self):
        counter = {"n": 0}

        def build(seed):
            counter["n"] += 1
            return None if counter["n"] % 2 else {"ok": True}

        results = sweep_topologies(4, seed=0, build=build)
        assert len(results) == 4
        assert counter["n"] == 8

    def test_always_rejecting_raises(self):
        with pytest.raises(RuntimeError):
            sweep_topologies(2, seed=0, build=lambda s: None)

    def test_zero_topologies_rejected(self):
        with pytest.raises(ValueError):
            sweep_topologies(0, seed=0, build=lambda s: {})


class TestGreedySiso:
    def test_returns_one_snr_per_client(self, scenario):
        model = channel_for(scenario, 3)
        snrs = greedy_siso_snrs(model)
        assert len(snrs) == scenario.deployment.n_clients

    def test_greedy_order_descending(self, scenario):
        model = channel_for(scenario, 3)
        snrs = greedy_siso_snrs(model)
        assert np.all(np.diff(snrs) <= 1e-9)

    def test_unique_antennas_used(self, scenario):
        # The greedy mapping excludes used antennas: each client's value must
        # come from a distinct antenna, so it cannot exceed the raw best map.
        model = channel_for(scenario, 3)
        raw_best = model.snr_db_map(scenario.deployment.client_positions).max()
        assert greedy_siso_snrs(model)[0] == pytest.approx(raw_best)


class TestExperimentResult:
    def test_series_required_for_accessors(self):
        result = ExperimentResult(
            name="t", description="d", series={"a": np.array([1.0, 2.0])}
        )
        assert result.median("a") == 1.5
        with pytest.raises(KeyError):
            result.median("missing")
