"""`roaming_handoff` experiment tests: campus-grid roaming per policy.

The experiment sweeps association policies against client speed on a
small campus AP grid (MIDAS stack only).  Key contracts:

* scalar and vectorized backends produce ``array_equal`` series (the
  batch association layer consumes literally the scalar decisions),
* ``nearest_anchor`` never hands off (the paper's implicit baseline),
* the spec-level ``association`` axis restricts the sweep to one policy
  and ``coordination`` is threaded through to every evaluator.
"""

import numpy as np
import pytest

from repro.api import Runner, RunSpec

FAST = {
    "rounds_per_topology": 8,
    "speeds_mps": [2.0, 6.0],
    "clients_per_ap": 2,
}


class TestRoamingHandoffExperiment:
    SPEC = RunSpec("roaming_handoff", n_topologies=2, seed=3, params=FAST)

    def test_backends_bit_identical(self):
        loop = Runner(backend="loop").run(self.SPEC)
        vec = Runner(backend="vectorized").run(self.SPEC)
        assert set(loop.series) == {
            f"{policy}_{metric}"
            for policy in (
                "nearest_anchor", "strongest_rssi", "hysteresis_handoff"
            )
            for metric in ("capacity_bps_hz", "handoffs", "outage_fraction")
        }
        for key in loop.series:
            np.testing.assert_array_equal(loop.series[key], vec.series[key])
        assert loop.series["nearest_anchor_capacity_bps_hz"].shape == (2, 2)

    def test_nearest_anchor_never_hands_off(self):
        result = Runner().run(self.SPEC)
        np.testing.assert_array_equal(
            result.series["nearest_anchor_handoffs"], 0.0
        )
        np.testing.assert_array_equal(
            result.series["nearest_anchor_outage_fraction"], 0.0
        )

    def test_outage_fraction_bounded(self):
        result = Runner().run(self.SPEC)
        for policy in ("strongest_rssi", "hysteresis_handoff"):
            fractions = result.series[f"{policy}_outage_fraction"]
            assert np.all(fractions >= 0)
            assert np.all(fractions <= 1)

    def test_association_axis_restricts_sweep(self):
        spec = self.SPEC.replace(association="hysteresis_handoff")
        result = Runner().run(spec)
        assert set(result.series) == {
            "hysteresis_handoff_capacity_bps_hz",
            "hysteresis_handoff_handoffs",
            "hysteresis_handoff_outage_fraction",
        }
        assert result.params["policies"] == ("hysteresis_handoff",)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="association"):
            Runner().run(self.SPEC.replace(association="tarot_cards"))

    def test_static_mobility_rejected(self):
        with pytest.raises(ValueError, match="moving mobility"):
            Runner().run(self.SPEC.replace(mobility="static"))

    def test_coordination_threaded_through(self):
        spec = self.SPEC.replace(
            association="strongest_rssi",
            coordination="coordinated_scheduling",
        )
        loop = Runner(backend="loop").run(spec)
        vec = Runner(backend="vectorized").run(spec)
        assert loop.params["coordination"] == "coordinated_scheduling"
        for key in loop.series:
            np.testing.assert_array_equal(loop.series[key], vec.series[key])

    def test_coordination_only_removes_double_scheduling(self):
        independent = Runner().run(self.SPEC.replace(association="nearest_anchor"))
        coordinated = Runner().run(
            self.SPEC.replace(
                association="nearest_anchor",
                coordination="coordinated_scheduling",
            )
        )
        # Coordinated scheduling can only withhold clients, never add them,
        # so it is a different (usually lower-capacity) schedule -- but it
        # must stay a valid one: positive capacity everywhere.
        assert np.all(
            coordinated.series["nearest_anchor_capacity_bps_hz"] > 0
        )
        assert independent.series["nearest_anchor_capacity_bps_hz"].shape == (
            coordinated.series["nearest_anchor_capacity_bps_hz"].shape
        )
