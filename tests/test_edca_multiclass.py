"""Multi-class EDCA coverage: primary/secondary access-category selection
with backlogged VOICE/VIDEO/BEST_EFFORT queues driving client selection.

Until the traffic subsystem, only the single best-effort default was
exercised by network simulations; these tests drive the prioritization
logic end to end -- through :class:`repro.mac.edca.EdcaQueueSet`, through
:func:`repro.core.selection.select_clients_for_antennas`, and through both
round engines with a scripted multi-class arrival model."""

import numpy as np

from repro.core.selection import DeficitRoundRobin, select_clients_for_antennas
from repro.core.tagging import TagTable
from repro.mac.edca import AccessCategory, EdcaQueueSet, QueuedPacket
from repro.sim.batch import RoundBasedEvaluatorBatch
from repro.sim.network import MacMode
from repro.sim.rounds import RoundBasedEvaluator
from repro.topology.deployment import AntennaMode
from repro.topology.scenarios import office_b, single_ap_scenario
from repro.traffic import Packet, TrafficModel

ENV = office_b()


class ScriptedTraffic(TrafficModel):
    """Deterministic arrivals: ``script`` rows are
    ``(round, client, bytes, category)``."""

    def __init__(self, script):
        self.script = tuple(script)

    def init_state(self, rng, n_clients):
        return {"round": 0}

    def arrivals(self, state, rng, n_clients, t0_s, dt_s):
        current = state["round"]
        state["round"] += 1
        return [
            Packet(client, float(size), t0_s, category)
            for round_index, client, size, category in self.script
            if round_index == current
        ]


class TestEdcaQueueSetMultiClass:
    def _loaded(self) -> EdcaQueueSet:
        queues = EdcaQueueSet()
        queues.enqueue(QueuedPacket(client=0, category=AccessCategory.BEST_EFFORT))
        queues.enqueue(QueuedPacket(client=1, category=AccessCategory.VOICE))
        queues.enqueue(QueuedPacket(client=2, category=AccessCategory.VIDEO))
        queues.enqueue(QueuedPacket(client=1, category=AccessCategory.BEST_EFFORT))
        return queues

    def test_primary_class_is_highest_backlogged(self):
        assert self._loaded().primary_class() is AccessCategory.VOICE

    def test_backlogged_clients_filter_by_class(self):
        queues = self._loaded()
        assert np.array_equal(
            queues.backlogged_clients(AccessCategory.VOICE), [1]
        )
        assert np.array_equal(queues.backlogged_clients(), [0, 1, 2])

    def test_pop_searches_primary_then_lower_classes(self):
        queues = self._loaded()
        popped = queues.pop_for_client(1)
        assert popped.category is AccessCategory.VOICE  # primary first
        popped = queues.pop_for_client(1)
        assert popped.category is AccessCategory.BEST_EFFORT  # fill-in
        assert queues.pop_for_client(1) is None

    def test_selection_from_primary_class_backlog(self):
        queues = self._loaded()
        # Flat RSSI, width 2 of 2: every client tagged to both antennas.
        tags = TagTable.from_rssi(np.zeros((3, 2)), 2)
        drr = DeficitRoundRobin(3)
        primary = queues.primary_class()
        outcome = select_clients_for_antennas(
            [0, 1], tags, drr, queues.backlogged_clients(primary)
        )
        # Only client 1 has VOICE backlog: one stream, anchored at antenna 0.
        assert outcome.antenna_client_pairs == [(0, 1)]
        # Secondary fill-in across all classes offers every backlogged client.
        outcome = select_clients_for_antennas(
            [0, 1], tags, drr, queues.backlogged_clients()
        )
        assert outcome.clients == [0, 1]


class TestRoundEngineMultiClass:
    """Scripted VOICE/VIDEO/BEST_EFFORT backlogs drive CAS selection."""

    SCRIPT = [
        (0, 0, 40000.0, AccessCategory.BEST_EFFORT),
        (0, 1, 200.0, AccessCategory.VOICE),
        (0, 2, 1200.0, AccessCategory.VIDEO),
        # Client 3 never has backlog and must never be selected.
    ]

    def _run(self, rounds=1, seed=3):
        scenario = single_ap_scenario(ENV, AntennaMode.CAS, seed=seed)
        return RoundBasedEvaluator(
            scenario, MacMode.CAS, seed=seed, traffic=ScriptedTraffic(self.SCRIPT)
        ).run(rounds)

    def test_only_backlogged_clients_selected(self):
        result = self._run()
        round0 = result.rounds[0]
        assert round0.n_streams == 3  # clients 0, 1, 2
        served = round0.traffic.served_per_client
        assert served[3] == 0.0
        assert np.all(served[:3] > 0)

    def test_voice_departs_first(self):
        result = self._run()
        categories = result.rounds[0].traffic.delay_categories
        # The VOICE client wins the primary-class pick, so its packet is the
        # first departure recorded; the VIDEO packet departs the same round
        # via the any-backlog fill-in.
        assert categories[0] == int(AccessCategory.VOICE)
        assert int(AccessCategory.VIDEO) in categories

    def test_primary_class_beats_larger_deficit(self):
        # Two rounds: round 0 serves everyone (settling deficits in favour
        # of unserved clients); in round 1 only VOICE backlog remains on
        # client 1, and it must win the first pick even though clients
        # credited in round 0 hold larger deficit counters.
        script = self.SCRIPT + [(1, 1, 200.0, AccessCategory.VOICE)]
        scenario = single_ap_scenario(ENV, AntennaMode.CAS, seed=3)
        result = RoundBasedEvaluator(
            scenario, MacMode.CAS, seed=3, traffic=ScriptedTraffic(script)
        ).run(2)
        round1 = result.rounds[1]
        served = round1.traffic.served_per_client
        assert served[1] > 0  # the VOICE client transmitted
        # Round 1's only *new* backlog is client 1's VOICE packet; client 0's
        # leftover BEST_EFFORT bytes may ride along as secondary fill-in, but
        # clients 2 and 3 (no backlog) must stay silent.
        assert served[2] == 0.0 and served[3] == 0.0

    def test_batch_engine_bit_identical_on_multiclass_script(self):
        seeds = [5, 6]
        scenarios = [
            single_ap_scenario(ENV, AntennaMode.CAS, seed=s) for s in seeds
        ]
        model = ScriptedTraffic(self.SCRIPT)
        batch = RoundBasedEvaluatorBatch(
            scenarios, MacMode.CAS, seeds=seeds, traffic=model
        ).run(3)
        for i, seed in enumerate(seeds):
            scalar = RoundBasedEvaluator(
                scenarios[i], MacMode.CAS, seed=seed, traffic=model
            ).run(3)
            for br, sr in zip(batch[i].rounds, scalar.rounds):
                assert br.capacity_bps_hz == sr.capacity_bps_hz
                assert np.array_equal(br.traffic.delays_s, sr.traffic.delays_s)
                assert np.array_equal(
                    br.traffic.delay_categories, sr.traffic.delay_categories
                )
                assert np.array_equal(
                    br.traffic.served_per_client, sr.traffic.served_per_client
                )

    def test_cbr_voice_rides_voice_class_in_midas(self):
        scenario = single_ap_scenario(ENV, AntennaMode.DAS, seed=2)
        result = RoundBasedEvaluator(
            scenario, MacMode.MIDAS, seed=2,
            traffic="cbr", traffic_kwargs={"rate_mbps": 0.5, "category": "voice"},
        ).run(20)
        categories = result.delay_category_samples
        assert categories.size > 0
        assert set(categories.tolist()) == {int(AccessCategory.VOICE)}
