"""Path-loss model and range helper tests."""

import numpy as np
import pytest

from repro.channel.pathloss import (
    LogDistancePathLoss,
    coverage_range_m,
    cs_range_m,
    nav_range_m,
)
from repro.config import MacConfig, RadioConfig


class TestLogDistance:
    def test_anchored_at_free_space(self):
        radio = RadioConfig()
        model = LogDistancePathLoss.from_radio(radio)
        assert model.loss_db(radio.reference_distance_m) == pytest.approx(
            model.reference_loss_db
        )

    def test_monotonic_in_distance(self):
        model = LogDistancePathLoss.from_radio(RadioConfig())
        d = np.array([1.0, 2.0, 5.0, 20.0])
        losses = model.loss_db(d)
        assert np.all(np.diff(losses) > 0)

    def test_exponent_slope(self):
        model = LogDistancePathLoss(4.0, 1.0, 40.0)
        assert model.loss_db(10.0) - model.loss_db(1.0) == pytest.approx(40.0)

    def test_distances_below_reference_clamped(self):
        model = LogDistancePathLoss.from_radio(RadioConfig())
        assert model.loss_db(0.01) == pytest.approx(model.loss_db(1.0))

    def test_inverse_roundtrip(self):
        model = LogDistancePathLoss.from_radio(RadioConfig())
        loss = float(model.loss_db(12.5))
        assert model.distance_for_loss(loss) == pytest.approx(12.5, rel=1e-9)

    def test_inverse_clamps_at_reference(self):
        model = LogDistancePathLoss.from_radio(RadioConfig())
        assert model.distance_for_loss(0.0) == model.reference_distance_m


class TestRanges:
    def test_coverage_shrinks_with_higher_snr_requirement(self):
        radio = RadioConfig()
        assert coverage_range_m(radio, 15.0) < coverage_range_m(radio, 5.0)

    def test_coverage_grows_with_power(self):
        low = RadioConfig(per_antenna_power_dbm=0.0)
        high = RadioConfig(per_antenna_power_dbm=10.0)
        assert coverage_range_m(high) > coverage_range_m(low)

    def test_nav_range_exceeds_cs_range(self):
        radio, mac = RadioConfig(), MacConfig()
        assert nav_range_m(radio, mac) > cs_range_m(radio, mac)

    def test_walls_shrink_coverage(self):
        no_walls = RadioConfig(wall_loss_db=0.0)
        walls = RadioConfig(wall_loss_db=6.0, wall_spacing_m=5.0)
        assert coverage_range_m(walls) < coverage_range_m(no_walls)

    def test_sensing_exponent_extends_cs_range(self):
        mac = MacConfig()
        flat = RadioConfig(sensing_pathloss_exponent=4.0, pathloss_exponent=4.0)
        elevated = RadioConfig(sensing_pathloss_exponent=3.0, pathloss_exponent=4.0)
        assert cs_range_m(elevated, mac) > cs_range_m(flat, mac)

    def test_range_solver_consistency(self):
        # At the returned coverage distance, the median SNR equals the target.
        radio = RadioConfig(wall_loss_db=0.0)
        from repro import units

        d = coverage_range_m(radio, 5.0)
        model = LogDistancePathLoss.from_radio(radio)
        snr = (
            radio.per_antenna_power_dbm
            - float(model.loss_db(d))
            - units.mw_to_dbm(radio.noise_mw)
        )
        assert snr == pytest.approx(5.0, abs=1e-6)
