"""Shared fixtures: environments, scenarios, and channel matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.model import ChannelModel
from repro.config import MacConfig, RadioConfig
from repro.topology.deployment import AntennaMode
from repro.topology.scenarios import office_b, single_ap_scenario


@pytest.fixture(scope="session")
def radio() -> RadioConfig:
    return RadioConfig()


@pytest.fixture(scope="session")
def mac() -> MacConfig:
    return MacConfig()


@pytest.fixture(scope="session")
def das_scenario():
    return single_ap_scenario(office_b(), AntennaMode.DAS, seed=11)


@pytest.fixture(scope="session")
def cas_scenario():
    return single_ap_scenario(office_b(), AntennaMode.CAS, seed=11)


@pytest.fixture(scope="session")
def das_channel(das_scenario):
    return ChannelModel(das_scenario.deployment, das_scenario.radio, seed=11)


@pytest.fixture(scope="session")
def h_das(das_channel) -> np.ndarray:
    return das_channel.channel_matrix()


# Shared non-fixture helpers live in helpers.py; import them there
# (``from helpers import random_channel``), not from this conftest.
