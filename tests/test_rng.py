"""Determinism plumbing tests."""

import itertools

import numpy as np

from repro import rng as rng_mod


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = rng_mod.make_rng(42).random(8)
        b = rng_mod.make_rng(42).random(8)
        np.testing.assert_array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert rng_mod.make_rng(gen) is gen


class TestSpawn:
    def test_children_are_independent_of_count(self):
        first = rng_mod.spawn(rng_mod.make_rng(7), 2)[0].random(4)
        again = rng_mod.spawn(rng_mod.make_rng(7), 5)[0].random(4)
        np.testing.assert_array_equal(first, again)

    def test_children_differ_from_each_other(self):
        kids = rng_mod.spawn(rng_mod.make_rng(7), 2)
        assert not np.allclose(kids[0].random(8), kids[1].random(8))

    def test_negative_count_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            rng_mod.spawn(rng_mod.make_rng(0), -1)


class TestSeedStream:
    def test_stable_per_index(self):
        assert rng_mod.derived_seed(3, 10) == rng_mod.derived_seed(3, 10)

    def test_stream_matches_derived(self):
        stream = list(itertools.islice(rng_mod.seed_stream(3), 5))
        assert stream == [rng_mod.derived_seed(3, i) for i in range(5)]

    def test_different_roots_differ(self):
        a = list(itertools.islice(rng_mod.seed_stream(1), 4))
        b = list(itertools.islice(rng_mod.seed_stream(2), 4))
        assert a != b


class TestDerivedSeeds:
    def test_batch_matches_stream_prefix(self):
        batch = rng_mod.derived_seeds(9, 0, 6)
        assert batch == list(itertools.islice(rng_mod.seed_stream(9), 6))

    def test_offset_batch_matches_indices(self):
        assert rng_mod.derived_seeds(9, 3, 4) == [
            rng_mod.derived_seed(9, i) for i in range(3, 7)
        ]

    def test_empty_batch(self):
        assert rng_mod.derived_seeds(0, 0, 0) == []

    def test_negative_count_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            rng_mod.derived_seeds(0, 0, -1)
