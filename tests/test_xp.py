"""Unit tests for the array-namespace dispatch layer (``repro.xp``)."""

from __future__ import annotations

import builtins
import importlib.util

import numpy as np
import pytest

import repro.xp as xpmod
from repro.xp import (
    BackendUnavailableError,
    NumpyNamespace,
    RngBridge,
    array_namespace,
    get_namespace,
    namespace_names,
    to_numpy,
)

TORCH_MISSING = importlib.util.find_spec("torch") is None


# ----------------------------------------------------------------------
# Resolution, caching, validation
# ----------------------------------------------------------------------
def test_default_namespace_is_exact_numpy_float64():
    ns = get_namespace()
    assert isinstance(ns, NumpyNamespace)
    assert (ns.name, ns.device, ns.dtype) == ("numpy", "cpu", "float64")
    assert ns.is_exact


def test_namespaces_are_cached_by_config():
    assert get_namespace("numpy") is get_namespace("numpy")
    assert get_namespace("numpy", dtype="float32") is not get_namespace("numpy")


def test_float32_config_is_not_exact_and_has_matching_dtypes():
    ns = get_namespace("numpy", dtype="float32")
    assert not ns.is_exact
    assert ns.float_dtype == np.float32
    assert ns.complex_dtype == np.complex64
    assert ns.config_dict() == {
        "namespace": "numpy",
        "device": "cpu",
        "dtype": "float32",
    }


def test_unknown_names_devices_and_dtypes_are_rejected():
    with pytest.raises(ValueError, match="unknown array namespace"):
        get_namespace("cupy")
    with pytest.raises(ValueError, match="device"):
        get_namespace("numpy", device="cuda")
    with pytest.raises(ValueError, match="dtype"):
        get_namespace("numpy", dtype="float16")
    assert namespace_names() == ("numpy", "torch")


def test_numpy_namespace_ops_are_numpys_own():
    # The bit-identity argument rests on this: dispatched ops are not
    # reimplementations, they are the very same function objects.
    ns = get_namespace()
    assert ns.sum is np.sum
    assert ns.where is np.where
    assert ns.linalg is np.linalg
    assert ns.pi == np.pi
    with pytest.raises(AttributeError):
        ns.definitely_not_a_numpy_function


# ----------------------------------------------------------------------
# Missing-torch behaviour (satellite: clean error, numpy keeps working)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not TORCH_MISSING, reason="torch is installed here")
def test_torch_namespace_raises_a_clean_error_naming_the_extra():
    with pytest.raises(BackendUnavailableError, match=r"repro-midas\[torch\]"):
        get_namespace("torch")
    # And the numpy namespace is unaffected by the failed resolution.
    assert get_namespace("numpy").is_exact


def test_simulated_missing_torch_error_names_the_extra(monkeypatch):
    # Runs even where torch *is* installed (the CI torch job): force the
    # import to fail and check the message still points at the extra.
    real_import = builtins.__import__

    def no_torch(name, *args, **kwargs):
        if name == "torch" or name.startswith("torch."):
            raise ImportError("No module named 'torch'")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_torch)
    monkeypatch.delitem(xpmod._CACHE, ("torch", "cpu", "float64"), raising=False)
    with pytest.raises(BackendUnavailableError) as err:
        get_namespace("torch")
    assert "repro-midas[torch]" in str(err.value)
    assert "'numpy' namespace works without it" in str(err.value)
    assert get_namespace("numpy") is get_namespace("numpy")


def test_is_torch_never_imports_torch():
    # _is_torch is called on every array_namespace/to_numpy hot path; it
    # must stay a string check on the type's module.
    assert not xpmod._is_torch(np.zeros(3))
    assert not xpmod._is_torch([1, 2, 3])
    assert not xpmod._is_torch(None)


# ----------------------------------------------------------------------
# Inference and transfer
# ----------------------------------------------------------------------
def test_array_namespace_infers_precision_from_inputs():
    assert array_namespace(np.zeros(3)) is get_namespace()
    assert array_namespace(np.zeros(3, dtype=np.float32)) is get_namespace(
        "numpy", dtype="float32"
    )
    assert array_namespace(np.zeros(3, dtype=np.complex64)) is get_namespace(
        "numpy", dtype="float32"
    )
    # Integer-only (or array-free) inputs fall back to the exact default.
    assert array_namespace(np.arange(3), 7) is get_namespace()


def test_to_numpy_is_the_identity_for_numpy_arrays():
    x = np.arange(5.0)
    assert to_numpy(x) is x or np.shares_memory(to_numpy(x), x)
    assert np.array_equal(to_numpy([1.0, 2.0]), [1.0, 2.0])


# ----------------------------------------------------------------------
# Active-namespace context
# ----------------------------------------------------------------------
def test_active_defaults_to_exact_and_use_scopes_an_override():
    assert xpmod.active() is get_namespace()
    f32 = get_namespace("numpy", dtype="float32")
    with xpmod.use(f32) as installed:
        assert installed is f32
        assert xpmod.active() is f32
        with xpmod.use(get_namespace()):
            assert xpmod.active() is get_namespace()  # nesting restores
        assert xpmod.active() is f32
    assert xpmod.active() is get_namespace()


def test_use_restores_the_previous_namespace_on_error():
    f32 = get_namespace("numpy", dtype="float32")
    with pytest.raises(RuntimeError):
        with xpmod.use(f32):
            raise RuntimeError("boom")
    assert xpmod.active() is get_namespace()


def test_use_rejects_non_namespace_arguments():
    with pytest.raises(TypeError, match="ArrayNamespace"):
        with xpmod.use("numpy"):
            pass


# ----------------------------------------------------------------------
# RNG bridge
# ----------------------------------------------------------------------
def test_rng_bridge_draws_are_bitwise_numpy_draws():
    # The bridge must consume the generator stream exactly as direct NumPy
    # code would -- same draw order, same bits -- and only then transfer.
    bridged = RngBridge(np.random.default_rng(42), get_namespace())
    a = bridged.standard_normal((3, 4))
    b = bridged.standard_complex((2, 2))
    rng = np.random.default_rng(42)
    assert np.array_equal(a, rng.standard_normal((3, 4)))
    expected = (
        rng.standard_normal((2, 2)) + 1j * rng.standard_normal((2, 2))
    ) / np.sqrt(2.0)
    assert np.array_equal(b, expected)


def test_rng_bridge_transfer_applies_the_namespace_dtype():
    f32 = get_namespace("numpy", dtype="float32")
    bridged = RngBridge(np.random.default_rng(0), f32)
    assert bridged.standard_normal((4,)).dtype == np.float32
    assert bridged.standard_complex((4,)).dtype == np.complex64
    assert bridged.transfer(np.arange(3.0)).dtype == np.float32
    assert bridged.transfer(np.arange(3.0) + 0j, kind="complex").dtype == np.complex64
    exact = bridged.transfer(np.arange(3), kind="exact")
    assert exact.dtype == np.int64 or exact.dtype == np.intp
    with pytest.raises(ValueError, match="kind"):
        bridged.transfer(np.arange(3.0), kind="double")


def test_same_seed_same_stream_across_namespaces():
    # The backend RNG contract in one assertion: the float32 namespace sees
    # the same underlying draws as the exact one, just narrowed.
    exact = RngBridge(np.random.default_rng(7), get_namespace())
    narrow = RngBridge(
        np.random.default_rng(7), get_namespace("numpy", dtype="float32")
    )
    a, b = exact.standard_normal((8,)), narrow.standard_normal((8,))
    assert np.array_equal(a.astype(np.float32), b)


# ----------------------------------------------------------------------
# Torch namespace surface (runs only where torch is installed)
# ----------------------------------------------------------------------
@pytest.mark.skipif(TORCH_MISSING, reason="torch not installed")
def test_torch_namespace_surface_round_trips():
    import torch

    ns = get_namespace("torch")
    assert not ns.is_exact
    x = ns.asarray(np.arange(6.0).reshape(2, 3))
    assert isinstance(x, torch.Tensor)
    assert np.array_equal(to_numpy(ns.sum(x, axis=-1)), [3.0, 12.0])
    assert array_namespace(x) is ns
    idx = ns.asarray(np.array([[0], [2]]), dtype=ns.int_dtype)
    taken = ns.take_along_axis(x, idx, axis=1)
    assert np.array_equal(to_numpy(taken), [[0.0], [5.0]])
    assert to_numpy(ns.clip(x, 1.0, None)).min() == 1.0
