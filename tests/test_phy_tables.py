"""MCS table, OFDM numerology, and sounding overhead tests."""

import numpy as np
import pytest

from repro.phy.mcs import MCS_TABLE, highest_mcs_for_snr, rate_bps_hz_for_snr
from repro.phy.ofdm import VHT20
from repro.phy.sounding import sounding_overhead_us


class TestMcs:
    def test_table_rates_increase(self):
        rates = [m.data_rate_mbps for m in MCS_TABLE]
        assert rates == sorted(rates)

    def test_table_snrs_increase(self):
        snrs = [m.min_snr_db for m in MCS_TABLE]
        assert snrs == sorted(snrs)

    def test_below_mcs0_returns_none(self):
        assert highest_mcs_for_snr(-5.0) is None
        assert rate_bps_hz_for_snr(-5.0) == 0.0

    def test_very_high_snr_gets_top_mcs(self):
        assert highest_mcs_for_snr(50.0).index == MCS_TABLE[-1].index

    def test_boundary_inclusive(self):
        entry = MCS_TABLE[3]
        assert highest_mcs_for_snr(entry.min_snr_db).index == entry.index

    def test_rate_bps_hz_consistency(self):
        entry = MCS_TABLE[4]
        assert entry.rate_bps_hz == pytest.approx(entry.data_rate_mbps * 1e6 / 20e6)


class TestOfdm:
    def test_vht20_subcarrier_spacing(self):
        assert VHT20.subcarrier_spacing_hz == pytest.approx(312.5e3)

    def test_symbols_for_bits_rounds_up(self):
        assert VHT20.symbols_for_bits(100, 52) == 2

    def test_symbols_minimum_one(self):
        assert VHT20.symbols_for_bits(1, 1000) == 1

    def test_invalid_bits_per_symbol(self):
        with pytest.raises(ValueError):
            VHT20.symbols_for_bits(10, 0)


class TestSounding:
    def test_grows_with_clients(self):
        assert sounding_overhead_us(4, 4) > sounding_overhead_us(1, 4)

    def test_grows_with_antennas(self):
        assert sounding_overhead_us(2, 8) > sounding_overhead_us(2, 2)

    def test_order_of_magnitude(self):
        # A 4-client sounding exchange is a few hundred microseconds.
        total = sounding_overhead_us(4, 4)
        assert 300 < total < 1500

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            sounding_overhead_us(0, 4)


class TestVectorizedMcsMapping:
    """The searchsorted mapping must agree with the scalar table walk
    everywhere, including exactly on thresholds and below MCS 0."""

    def test_matches_scalar_on_thresholds_and_between(self):
        from repro.phy.mcs import (
            MCS_TABLE,
            highest_mcs_for_snr,
            mcs_index_for_snr,
            rate_bps_hz_for_snr,
            rate_bps_hz_for_snr_array,
        )

        probes = [entry.min_snr_db for entry in MCS_TABLE]
        probes += [p - 1e-9 for p in probes] + [p + 0.5 for p in probes]
        probes += [-50.0, 0.0, 100.0]
        snrs = np.asarray(probes)
        indices = mcs_index_for_snr(snrs)
        rates = rate_bps_hz_for_snr_array(snrs)
        for snr, index, rate in zip(probes, indices, rates):
            entry = highest_mcs_for_snr(snr)
            assert index == (-1 if entry is None else entry.index)
            assert rate == rate_bps_hz_for_snr(snr)

    def test_table_stays_sorted_for_searchsorted(self):
        from repro.phy.mcs import MCS_TABLE

        thresholds = [entry.min_snr_db for entry in MCS_TABLE]
        assert thresholds == sorted(thresholds)

    def test_preserves_input_shape(self):
        from repro.phy.mcs import rate_bps_hz_for_snr_array

        stacked = np.full((3, 4), 18.0)
        assert rate_bps_hz_for_snr_array(stacked).shape == (3, 4)
