"""Scenario factory tests: the paper's deployment rules."""

import numpy as np

from repro.channel.pathloss import coverage_range_m, cs_range_m
from repro.topology import geometry
from repro.topology.deployment import AntennaMode
from repro.topology.scenarios import (
    eight_ap_scenario,
    hidden_terminal_scenario,
    office_a,
    office_b,
    paired_scenarios,
    single_ap_scenario,
    three_ap_scenario,
)


class TestOffices:
    def test_office_b_is_lossier(self):
        assert (
            office_b().radio.pathloss_exponent >= office_a().radio.pathloss_exponent
        )
        assert (
            office_b().radio.shadowing_sigma_db > office_a().radio.shadowing_sigma_db
        )

    def test_names(self):
        assert office_a().name == "office_a"
        assert office_b().name == "office_b"


class TestPairedScenarios:
    def test_modes_share_clients_and_aps(self):
        pair = paired_scenarios(office_b(), [(0, 0)], seed=3)
        cas = pair[AntennaMode.CAS].deployment
        das = pair[AntennaMode.DAS].deployment
        np.testing.assert_array_equal(cas.client_positions, das.client_positions)
        np.testing.assert_array_equal(cas.ap_positions, das.ap_positions)

    def test_modes_differ_in_antennas(self):
        pair = paired_scenarios(office_b(), [(0, 0)], seed=3)
        cas = pair[AntennaMode.CAS].deployment
        das = pair[AntennaMode.DAS].deployment
        assert not np.allclose(cas.antenna_positions, das.antenna_positions)

    def test_cas_antennas_colocated(self):
        pair = paired_scenarios(office_b(), [(0, 0)], seed=3)
        ants = pair[AntennaMode.CAS].deployment.antenna_positions
        assert geometry.pairwise_distances(ants, ants).max() < 0.2

    def test_das_antennas_in_ring(self):
        pair = paired_scenarios(
            office_b(), [(0, 0)], seed=3, das_radius_min_m=5, das_radius_max_m=10
        )
        radii = np.linalg.norm(pair[AntennaMode.DAS].deployment.antenna_positions, axis=1)
        assert np.all((radii >= 5) & (radii <= 10))

    def test_clients_in_annulus(self):
        env = office_b()
        pair = paired_scenarios(
            env, [(0, 0)], seed=4, client_radius_fraction=0.9, client_radius_min_fraction=0.25
        )
        coverage = coverage_range_m(env.radio, pair[AntennaMode.CAS].mac.decode_snr_db)
        radii = np.linalg.norm(pair[AntennaMode.CAS].deployment.client_positions, axis=1)
        assert np.all(radii <= 0.9 * coverage + 1e-9)
        assert np.all(radii >= 0.25 * coverage - 1e-9)

    def test_deterministic_by_seed(self):
        a = paired_scenarios(office_b(), [(0, 0)], seed=5)
        b = paired_scenarios(office_b(), [(0, 0)], seed=5)
        np.testing.assert_array_equal(
            a[AntennaMode.DAS].deployment.antenna_positions,
            b[AntennaMode.DAS].deployment.antenna_positions,
        )


class TestSingleAp:
    def test_counts(self):
        sc = single_ap_scenario(office_b(), AntennaMode.DAS, n_antennas=3, n_clients=2, seed=0)
        assert sc.deployment.n_antennas == 3
        assert sc.deployment.n_clients == 2

    def test_mode_tag(self):
        sc = single_ap_scenario(office_b(), AntennaMode.CAS, seed=0)
        assert sc.mode is AntennaMode.CAS


class TestThreeAp:
    def test_equilateral_geometry(self):
        pair = three_ap_scenario(office_b(), seed=0, inter_ap_m=15.0)
        aps = pair[AntennaMode.CAS].deployment.ap_positions
        d = geometry.pairwise_distances(aps, aps)
        sides = d[np.triu_indices(3, k=1)]
        np.testing.assert_allclose(sides, 15.0, rtol=1e-9)

    def test_sector_rule_on_das(self):
        pair = three_ap_scenario(office_b(), seed=0)
        das = pair[AntennaMode.DAS].deployment
        for ap in range(3):
            ants = das.antenna_positions[das.antennas_of(ap)]
            assert geometry.sector_angles_ok(das.ap_positions[ap], ants, 60.0)


class TestEightAp:
    def test_counts_and_region(self):
        pair = eight_ap_scenario(office_b(), seed=1)
        dep = pair[AntennaMode.DAS].deployment
        assert dep.n_aps == 8
        assert dep.n_antennas == 32
        assert np.all(dep.ap_positions >= 0) and np.all(dep.ap_positions <= 60)

    def test_antenna_separation_rule(self):
        pair = eight_ap_scenario(office_b(), seed=1)
        dep = pair[AntennaMode.DAS].deployment
        for ap in range(8):
            ants = dep.antenna_positions[dep.antennas_of(ap)]
            assert geometry.min_pairwise_distance(ants) >= 5.0

    def test_overhearing_limit_median(self):
        pair = eight_ap_scenario(office_b(), seed=1, max_overhearers=3)
        dep = pair[AntennaMode.CAS].deployment
        sense = cs_range_m(office_b().radio, pair[AntennaMode.CAS].mac)
        d = geometry.pairwise_distances(dep.ap_positions, dep.ap_positions)
        np.fill_diagonal(d, np.inf)
        assert np.all((d < sense).sum(axis=1) <= 3)


class TestHiddenTerminal:
    def test_aps_beyond_median_sense_range(self):
        env = office_b()
        pair = hidden_terminal_scenario(env, seed=0)
        dep = pair[AntennaMode.CAS].deployment
        separation = np.linalg.norm(dep.ap_positions[1] - dep.ap_positions[0])
        assert separation > cs_range_m(env.radio, pair[AntennaMode.CAS].mac)

    def test_das_ring_is_50_to_75_percent_of_range(self):
        env = office_b()
        pair = hidden_terminal_scenario(env, seed=0)
        dep = pair[AntennaMode.DAS].deployment
        coverage = coverage_range_m(env.radio, pair[AntennaMode.DAS].mac.decode_snr_db)
        for ap in range(2):
            ants = dep.antenna_positions[dep.antennas_of(ap)]
            radii = np.linalg.norm(ants - dep.ap_positions[ap], axis=1)
            assert np.all(radii >= 0.5 * coverage - 1e-9)
            assert np.all(radii <= 0.75 * coverage + 1e-9)
