"""Wall-grid attenuation model tests."""

import numpy as np
import pytest

from repro.channel.walls import (
    MEAN_CROSSING_FACTOR,
    mean_wall_loss_db,
    wall_crossings,
    wall_loss_db,
)


class TestCrossings:
    def test_same_cell_zero(self):
        assert wall_crossings([(1, 1)], [(2, 2)], 5.0)[0, 0] == 0

    def test_one_wall_in_x(self):
        assert wall_crossings([(1, 1)], [(6, 1)], 5.0)[0, 0] == 1

    def test_diagonal_counts_both_axes(self):
        assert wall_crossings([(1, 1)], [(6, 6)], 5.0)[0, 0] == 2

    def test_symmetry(self):
        a = [(1, 1), (12, 3)]
        b = [(6, 1), (1, 9)]
        ab = wall_crossings(a, b, 5.0)
        ba = wall_crossings(b, a, 5.0)
        np.testing.assert_array_equal(ab, ba.T)

    def test_rejects_nonpositive_spacing(self):
        with pytest.raises(ValueError):
            wall_crossings([(0, 0)], [(1, 1)], 0.0)


class TestWallLoss:
    def test_zero_loss_shortcut(self):
        loss = wall_loss_db([(0, 0)], [(100, 100)], 5.0, 0.0)
        assert loss[0, 0] == 0.0

    def test_loss_per_wall(self):
        loss = wall_loss_db([(1, 1)], [(6, 1)], 5.0, 6.0)
        assert loss[0, 0] == pytest.approx(6.0)

    def test_saturation(self):
        loss = wall_loss_db([(1, 1)], [(100, 100)], 5.0, 6.0, max_walls=2)
        assert loss[0, 0] == pytest.approx(12.0)

    def test_invalid_max_walls(self):
        with pytest.raises(ValueError):
            wall_loss_db([(0, 0)], [(1, 1)], 5.0, 6.0, max_walls=0)

    def test_negative_loss_rejected(self):
        with pytest.raises(ValueError):
            wall_loss_db([(0, 0)], [(1, 1)], 5.0, -1.0)


class TestMeanModel:
    def test_monotone_until_saturation(self):
        d = np.array([1.0, 5.0, 10.0])
        losses = mean_wall_loss_db(d, 5.0, 6.0, max_walls=10)
        assert np.all(np.diff(losses) > 0)

    def test_saturates(self):
        far = mean_wall_loss_db(1000.0, 5.0, 6.0, max_walls=2)
        assert far == pytest.approx(12.0)

    def test_crossing_factor_value(self):
        assert MEAN_CROSSING_FACTOR == pytest.approx(4.0 / np.pi)
