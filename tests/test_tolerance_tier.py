"""The tolerance-based equivalence tier and its closeness framework.

Two halves:

1. The framework itself (``helpers.closeness``) is property-tested with
   deliberately perturbed results -- the crucial direction is that it
   *fails when it should*, since a closeness check that silently passes
   everything is worse than none.
2. The documented per-backend contracts (``helpers.contracts``) are
   enforced end-to-end: the float32 array_api configuration (torch-free,
   runs everywhere) and -- when torch is installed -- the torch-CPU
   float64 configuration must meet ``contract_for(...)`` against the
   bit-exact vectorized reference.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import (
    ClosenessError,
    MetricTolerance,
    ToleranceContract,
    assert_close_result,
    assert_close_series,
    contract_for,
)
from helpers.contracts import EXACT_CONTRACT, ORDERING_SENSITIVE
from repro.api import RunSpec, Runner

TORCH_MISSING = importlib.util.find_spec("torch") is None


# ----------------------------------------------------------------------
# Framework: accepts what it should
# ----------------------------------------------------------------------
def _series(seed: int = 0, n: int = 64) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "cas": rng.uniform(0.0, 40.0, n),
        "das": rng.uniform(0.0, 40.0, n),
    }


def test_identical_series_pass_the_exact_contract():
    s = _series()
    assert_close_series(s, {k: v.copy() for k, v in s.items()}, EXACT_CONTRACT)


def test_perturbation_within_atol_passes():
    s = _series()
    contract = ToleranceContract(name="t", default=MetricTolerance(atol=1e-6))
    bumped = {k: v + 5e-7 for k, v in s.items()}
    assert_close_series(bumped, s, contract)


def test_relative_tolerance_scales_with_the_expected_value():
    expected = {"x": np.array([1e-3, 1.0, 1e3])}
    actual = {"x": expected["x"] * (1 + 5e-7)}
    assert_close_series(
        actual, expected, ToleranceContract(name="t", default=MetricTolerance(rtol=1e-6))
    )
    with pytest.raises(ClosenessError):
        assert_close_series(
            actual,
            expected,
            ToleranceContract(name="t", default=MetricTolerance(atol=1e-6)),
        )  # the 1e3 entry deviates by 5e-4 > atol


def test_quantile_contract_tolerates_sample_reordering():
    s = _series(3)
    shuffled = {k: np.random.default_rng(1).permutation(v) for k, v in s.items()}
    distributional = ToleranceContract(
        name="t", default=MetricTolerance(elementwise=False, quantile_atol=1e-9)
    )
    assert_close_series(shuffled, s, distributional)  # same distribution
    with pytest.raises(ClosenessError, match="out of tolerance"):
        assert_close_series(shuffled, s, EXACT_CONTRACT)


def test_matching_non_finite_samples_pass_any_contract():
    s = {"x": np.array([1.0, np.inf, -np.inf])}
    assert_close_series(s, {"x": s["x"].copy()}, EXACT_CONTRACT)


# ----------------------------------------------------------------------
# Framework: fails when it should (the property that matters)
# ----------------------------------------------------------------------
@given(
    index=st.integers(min_value=0, max_value=63),
    scale=st.floats(min_value=2.0, max_value=1e6),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60, deadline=None)
def test_perturbation_beyond_tolerance_always_fails(index, scale, seed):
    # Any single sample pushed beyond atol + rtol*|expected| must trip the
    # elementwise check, wherever it lands and however large the series.
    tol = MetricTolerance(rtol=1e-6, atol=1e-6)
    contract = ToleranceContract(name="t", default=tol)
    expected = _series(seed)
    actual = {k: v.copy() for k, v in expected.items()}
    margin = tol.atol + tol.rtol * abs(expected["das"][index])
    actual["das"][index] += scale * margin
    with pytest.raises(ClosenessError, match="das"):
        assert_close_series(actual, expected, contract)


@given(shift=st.floats(min_value=0.5, max_value=50.0), seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_distribution_shift_beyond_quantile_atol_always_fails(shift, seed):
    # A uniform shift moves every quantile by exactly `shift`; any shift
    # beyond quantile_atol + one sketch bin must trip the sketch check
    # even though elementwise checking is off.
    contract = ToleranceContract(
        name="t", default=MetricTolerance(elementwise=False, quantile_atol=0.25)
    )
    expected = _series(seed)
    actual = {k: v + shift for k, v in expected.items()}
    with pytest.raises(ClosenessError, match="quantile"):
        assert_close_series(actual, expected, contract)


def test_missing_extra_and_misshapen_series_fail():
    s = _series()
    with pytest.raises(ClosenessError, match="missing series"):
        assert_close_series({"cas": s["cas"]}, s, EXACT_CONTRACT)
    with pytest.raises(ClosenessError, match="unexpected series"):
        assert_close_series({**s, "bonus": s["cas"]}, s, EXACT_CONTRACT)
    with pytest.raises(ClosenessError, match="shape"):
        assert_close_series({**s, "das": s["das"][:-1]}, s, EXACT_CONTRACT)


def test_non_finite_mismatch_fails_regardless_of_tolerance():
    loose = ToleranceContract(name="t", default=MetricTolerance(atol=1e9, rtol=1e9))
    expected = {"x": np.array([1.0, 2.0, 3.0])}
    actual = {"x": np.array([1.0, np.inf, 3.0])}
    with pytest.raises(ClosenessError, match="non-finite"):
        assert_close_series(actual, expected, loose)


def test_per_series_overrides_take_precedence_over_the_default():
    contract = ToleranceContract(
        name="t",
        default=MetricTolerance(),  # exact
        series={"das": MetricTolerance(atol=1.0)},
    )
    expected = _series()
    actual = {k: v.copy() for k, v in expected.items()}
    actual["das"] += 0.5
    assert_close_series(actual, expected, contract)  # override absorbs it
    actual["cas"] += 0.5
    with pytest.raises(ClosenessError, match="cas"):
        assert_close_series(actual, expected, contract)


def test_tolerance_validation_rejects_nonsense():
    with pytest.raises(ValueError, match="non-negative"):
        MetricTolerance(atol=-1.0)
    with pytest.raises(ValueError, match="checks nothing"):
        MetricTolerance(elementwise=False)  # no quantile_atol either


def test_assert_close_result_checks_experiment_identity():
    a = Runner().run(RunSpec("fig03", n_topologies=2, seed=0))
    b = Runner().run(RunSpec("fig07", n_topologies=2, seed=0))
    with pytest.raises(ClosenessError, match="different experiments"):
        assert_close_result(a, b, EXACT_CONTRACT)


# ----------------------------------------------------------------------
# Contracts: documented tiers resolve sensibly
# ----------------------------------------------------------------------
def test_contract_for_returns_the_exact_tier_on_the_default_namespace():
    assert contract_for("fig09", "numpy", "float64") is EXACT_CONTRACT


def test_contract_for_swaps_distributional_defaults_for_ordering_sensitive():
    smooth = contract_for("fig09", "numpy", "float32")
    branchy = contract_for("fig14", "numpy", "float32")
    assert smooth.default.elementwise
    assert not branchy.default.elementwise
    assert branchy.default.quantile_atol is not None
    assert "fig14" in branchy.name


def test_ordering_sensitive_set_names_registered_experiments_only():
    from repro.api import experiment_names

    assert ORDERING_SENSITIVE <= set(experiment_names())


# ----------------------------------------------------------------------
# End-to-end: float32 array_api meets its documented contract (torch-free)
# ----------------------------------------------------------------------
#: Spot checks spanning both tiers: smooth capacity sweeps and
#: ordering-sensitive pipelines (greedy selection, MAC rounds, queueing).
F32_CASES = [
    ("fig03", {"n_topologies": 4}, {}),
    ("fig07", {"n_topologies": 4}, {}),
    ("fig09", {"n_topologies": 3}, {}),
    ("fig10", {"n_topologies": 4}, {}),
    ("fig14", {"n_topologies": 6}, {}),
    ("fig15", {"n_topologies": 2}, {"rounds_per_topology": 3}),
    ("ablation_csi_error", {"n_topologies": 3}, {"error_stds": [0.0, 0.1]}),
    (
        "latency_vs_load",
        {"n_topologies": 2},
        {"offered_loads_mbps": [15.0, 60.0], "rounds_per_topology": 6},
    ),
]


@pytest.mark.parametrize(
    "experiment,spec_kwargs,params",
    F32_CASES,
    ids=[c[0] for c in F32_CASES],
)
def test_float32_array_api_meets_the_documented_contract(
    experiment, spec_kwargs, params
):
    spec = RunSpec(experiment, seed=7, params=params, **spec_kwargs)
    reference = Runner(backend="vectorized").run(spec)
    actual = Runner(backend="array_api", dtype="float32").run(spec)
    contract = contract_for(experiment, "numpy", "float32")
    assert contract is not EXACT_CONTRACT
    assert_close_result(actual, reference, contract)


# ----------------------------------------------------------------------
# End-to-end: torch CPU float64 (runs only where torch is installed;
# CI's dedicated torch job exercises it, tier-1 stays torch-free)
# ----------------------------------------------------------------------
TORCH_CASES = F32_CASES + [("fig08", {"n_topologies": 3}, {})]


@pytest.mark.skipif(TORCH_MISSING, reason="torch not installed")
@pytest.mark.parametrize(
    "experiment,spec_kwargs,params",
    TORCH_CASES,
    ids=[c[0] for c in TORCH_CASES],
)
def test_torch_cpu_float64_meets_the_documented_contract(
    experiment, spec_kwargs, params
):
    spec = RunSpec(experiment, seed=7, params=params, **spec_kwargs)
    reference = Runner(backend="vectorized").run(spec)
    actual = Runner(backend="array_api", namespace="torch").run(spec)
    assert_close_result(
        actual, reference, contract_for(experiment, "torch", "float64")
    )


@pytest.mark.skipif(TORCH_MISSING, reason="torch not installed")
def test_torch_cpu_float32_meets_the_float32_contract():
    spec = RunSpec("fig09", n_topologies=3, seed=7)
    reference = Runner(backend="vectorized").run(spec)
    actual = Runner(backend="array_api", namespace="torch", dtype="float32").run(spec)
    assert_close_result(actual, reference, contract_for("fig09", "torch", "float32"))
