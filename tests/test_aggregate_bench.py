"""scripts/aggregate_bench.py: artifact folding is robust and idempotent."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "aggregate_bench.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("aggregate_bench", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("aggregate_bench", module)
    spec.loader.exec_module(module)
    return module


def _write(path: Path, payload) -> Path:
    path.write_text(json.dumps(payload))
    return path


class TestCollect:
    def test_collects_all_patterns(self, bench, tmp_path):
        _write(tmp_path / "vectorized_timings.json", {"speedup": 3.5})
        _write(tmp_path / "campaign_timings-x.json", {"speedup": 2.0})
        _write(tmp_path / "telemetry_timings.json", {"enabled_overhead": 0.01})
        sources = bench.collect(tmp_path)
        assert set(sources) == {
            "vectorized_timings",
            "campaign_timings-x",
            "telemetry_timings",
        }

    def test_torn_artifact_is_warned_and_skipped(self, bench, tmp_path):
        _write(tmp_path / "vectorized_timings.json", {"speedup": 3.5})
        (tmp_path / "campaign_timings.json").write_text('{"speedup": 2.')  # torn
        with pytest.warns(RuntimeWarning, match="unreadable artifact"):
            sources = bench.collect(tmp_path)
        assert set(sources) == {"vectorized_timings"}

    def test_non_object_artifact_is_warned_and_skipped(self, bench, tmp_path):
        _write(tmp_path / "vectorized_timings.json", [1, 2, 3])
        with pytest.warns(RuntimeWarning, match="malformed artifact"):
            assert bench.collect(tmp_path) == {}

    def test_missing_directory_yields_nothing(self, bench, tmp_path):
        assert bench.collect(tmp_path / "nowhere") == {}


class TestFold:
    def test_replaces_current_version_preserves_others(self, bench, tmp_path):
        out = tmp_path / "BENCH_trajectory.json"
        _write(
            out,
            {
                "note": "n",
                "entries": [
                    {"version": "1.0.0", "sources": {"a": 1}},
                    {"version": "1.1.0", "sources": {"b": 2}},
                ],
            },
        )
        trajectory = bench.fold(out, "1.1.0", {"b": {"speedup": 9}})
        versions = [e["version"] for e in trajectory["entries"]]
        assert versions == ["1.0.0", "1.1.0"]
        assert trajectory["entries"][0]["sources"] == {"a": 1}
        assert trajectory["entries"][1]["sources"] == {"b": {"speedup": 9}}

    def test_duplicate_version_entries_keep_latest(self, bench, tmp_path):
        out = tmp_path / "BENCH_trajectory.json"
        _write(
            out,
            {
                "entries": [
                    {"version": "1.0.0", "sources": {"stale": True}},
                    {"version": "1.0.0", "sources": {"fresh": True}},
                ]
            },
        )
        with pytest.warns(RuntimeWarning, match="duplicate trajectory entries"):
            trajectory = bench.fold(out, "2.0.0", {})
        old = [e for e in trajectory["entries"] if e["version"] == "1.0.0"]
        assert len(old) == 1
        assert old[0]["sources"] == {"fresh": True}

    def test_unversioned_entries_are_dropped_with_warning(self, bench, tmp_path):
        out = tmp_path / "BENCH_trajectory.json"
        _write(out, {"entries": [{"sources": {}}, {"version": "1.0.0"}]})
        with pytest.warns(RuntimeWarning, match="no version label"):
            trajectory = bench.fold(out, "2.0.0", {})
        assert [e["version"] for e in trajectory["entries"]] == ["1.0.0", "2.0.0"]

    def test_torn_trajectory_starts_fresh_with_warning(self, bench, tmp_path):
        out = tmp_path / "BENCH_trajectory.json"
        out.write_text('{"entries": [')  # torn mid-write
        with pytest.warns(RuntimeWarning, match="unreadable"):
            trajectory = bench.fold(out, "2.0.0", {"a": {}})
        assert [e["version"] for e in trajectory["entries"]] == ["2.0.0"]
        assert "note" in trajectory

    def test_malformed_trajectory_starts_fresh_with_warning(self, bench, tmp_path):
        out = tmp_path / "BENCH_trajectory.json"
        _write(out, {"entries": "not-a-list"})
        with pytest.warns(RuntimeWarning, match="malformed"):
            trajectory = bench.fold(out, "2.0.0", {})
        assert [e["version"] for e in trajectory["entries"]] == ["2.0.0"]

    def test_phase_breakdown_lifted_from_telemetry_sources(self, bench, tmp_path):
        out = tmp_path / "BENCH_trajectory.json"
        sources = {
            "telemetry_timings": {
                "span_totals": {
                    "precode": {"count": 10, "total_us": 1234.5},
                    "score": {"count": 10, "total_us": 55.0},
                }
            },
            "vectorized_timings": {"speedup": 3.0},
        }
        trajectory = bench.fold(out, "2.0.0", sources)
        entry = trajectory["entries"][0]
        assert entry["phases"] == {"precode": 1234.5, "score": 55.0}

    def test_missing_trajectory_is_created(self, bench, tmp_path):
        trajectory = bench.fold(tmp_path / "absent.json", "1.0.0", {"a": {}})
        assert [e["version"] for e in trajectory["entries"]] == ["1.0.0"]


class TestMain:
    def test_end_to_end_idempotent(self, bench, tmp_path, capsys):
        _write(tmp_path / "vectorized_timings.json", {"speedup": 4.0})
        out = tmp_path / "BENCH_trajectory.json"
        for _ in range(2):  # re-running must not duplicate the entry
            code = bench.main(
                ["--artifacts", str(tmp_path), "--out", str(out),
                 "--version", "9.9.9"]
            )
            assert code == 0
        trajectory = json.loads(out.read_text())
        assert [e["version"] for e in trajectory["entries"]] == ["9.9.9"]

    def test_no_artifacts_is_an_error(self, bench, tmp_path):
        code = bench.main(
            ["--artifacts", str(tmp_path), "--out",
             str(tmp_path / "t.json"), "--version", "1.0.0"]
        )
        assert code == 1
