"""Deployment builder tests (CAS/DAS placement rules)."""

import numpy as np
import pytest

from repro.topology import geometry
from repro.topology.deployment import (
    AntennaMode,
    Deployment,
    build_multi_ap,
    build_single_ap,
    cas_antenna_layout,
    das_antenna_layout,
)

WAVELENGTH = 0.057


class TestCasLayout:
    def test_half_wavelength_spacing(self):
        ants = cas_antenna_layout((0, 0), 4, WAVELENGTH)
        gaps = np.diff(ants[:, 0])
        np.testing.assert_allclose(gaps, WAVELENGTH / 2)

    def test_centered_on_ap(self):
        ants = cas_antenna_layout((3.0, -1.0), 4, WAVELENGTH)
        np.testing.assert_allclose(ants.mean(axis=0), [3.0, -1.0])

    def test_rejects_zero_antennas(self):
        with pytest.raises(ValueError):
            cas_antenna_layout((0, 0), 0, WAVELENGTH)


class TestDasLayout:
    def test_radii_within_annulus(self):
        rng = np.random.default_rng(0)
        ants = das_antenna_layout(rng, (0, 0), 4, radius_min_m=5, radius_max_m=10)
        radii = np.linalg.norm(ants, axis=1)
        assert np.all((radii >= 5) & (radii <= 10))

    def test_min_separation_respected(self):
        rng = np.random.default_rng(1)
        ants = das_antenna_layout(
            rng, (0, 0), 4, radius_min_m=5, radius_max_m=10, min_separation_m=5.0
        )
        assert geometry.min_pairwise_distance(ants) >= 5.0

    def test_sector_rule_respected(self):
        rng = np.random.default_rng(2)
        ants = das_antenna_layout(
            rng, (0, 0), 4, radius_min_m=5, radius_max_m=10, min_sector_deg=60.0
        )
        assert geometry.sector_angles_ok((0, 0), ants, 60.0)

    def test_coverage_bound_respected(self):
        rng = np.random.default_rng(3)
        ants = das_antenna_layout(
            rng,
            (10, 10),
            4,
            radius_min_m=5,
            radius_max_m=10,
            within_center=(10, 10),
            within_radius_m=9.0,
        )
        assert np.all(geometry.points_within(ants, (10, 10), 9.0))

    def test_impossible_constraints_raise(self):
        rng = np.random.default_rng(4)
        with pytest.raises(RuntimeError):
            das_antenna_layout(
                rng,
                (0, 0),
                4,
                radius_min_m=5,
                radius_max_m=6,
                min_separation_m=50.0,
                max_attempts=50,
            )


class TestDeploymentInvariants:
    def test_antenna_ap_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Deployment(
                ap_positions=[(0, 0)],
                antenna_positions=[(1, 1), (2, 2)],
                antenna_ap=[0],
                client_positions=[(3, 3)],
                client_ap=[0],
            )

    def test_unknown_ap_reference_raises(self):
        with pytest.raises(ValueError):
            Deployment(
                ap_positions=[(0, 0)],
                antenna_positions=[(1, 1)],
                antenna_ap=[1],
                client_positions=[(3, 3)],
                client_ap=[0],
            )

    def test_counts(self):
        dep = build_single_ap(
            np.random.default_rng(0),
            mode=AntennaMode.DAS,
            n_antennas=4,
            n_clients=3,
            wavelength_m=WAVELENGTH,
        )
        assert dep.n_aps == 1
        assert dep.n_antennas == 4
        assert dep.n_clients == 3

    def test_distance_matrix_shapes(self):
        dep = build_single_ap(
            np.random.default_rng(0),
            mode=AntennaMode.CAS,
            n_antennas=4,
            n_clients=3,
            wavelength_m=WAVELENGTH,
        )
        assert dep.antenna_client_distances().shape == (3, 4)
        assert dep.antenna_antenna_distances().shape == (4, 4)

    def test_multi_ap_ownership(self):
        dep = build_multi_ap(
            np.random.default_rng(0),
            [(0, 0), (20, 0)],
            mode=AntennaMode.DAS,
            antennas_per_ap=4,
            clients_per_ap=2,
            wavelength_m=WAVELENGTH,
        )
        assert len(dep.antennas_of(0)) == 4
        assert len(dep.antennas_of(1)) == 4
        assert len(dep.clients_of(1)) == 2

    def test_subset_for_ap(self):
        dep = build_multi_ap(
            np.random.default_rng(0),
            [(0, 0), (20, 0)],
            mode=AntennaMode.DAS,
            antennas_per_ap=4,
            clients_per_ap=2,
            wavelength_m=WAVELENGTH,
        )
        sub = dep.subset_for_ap(1)
        assert sub.n_aps == 1
        assert sub.n_antennas == 4
        assert sub.n_clients == 2
        np.testing.assert_allclose(sub.ap_positions[0], [20, 0])
