"""Unit-conversion and physical-constant tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestDbConversions:
    def test_db_to_linear_zero_db_is_unity(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)

    def test_db_to_linear_ten_db_is_ten(self):
        assert units.db_to_linear(10.0) == pytest.approx(10.0)

    def test_linear_to_db_rejects_zero(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)

    def test_linear_to_db_rejects_negative(self):
        with pytest.raises(ValueError):
            units.linear_to_db(-3.0)

    @given(st.floats(min_value=-100, max_value=100))
    def test_roundtrip(self, value_db):
        assert units.linear_to_db(units.db_to_linear(value_db)) == pytest.approx(
            value_db, abs=1e-9
        )

    def test_array_roundtrip(self):
        arr = np.array([-30.0, 0.0, 17.5])
        back = units.linear_to_db(units.db_to_linear(arr))
        np.testing.assert_allclose(back, arr)

    def test_dbm_mw_aliases(self):
        assert units.dbm_to_mw(0.0) == pytest.approx(1.0)
        assert units.mw_to_dbm(100.0) == pytest.approx(20.0)


class TestThermalNoise:
    def test_20mhz_noise_floor_without_nf(self):
        # kTB over 20 MHz at 290 K is about -101 dBm.
        noise = units.thermal_noise_mw(20e6)
        assert units.mw_to_dbm(noise) == pytest.approx(-100.98, abs=0.1)

    def test_noise_figure_adds_db(self):
        base = units.thermal_noise_mw(20e6, 0.0)
        with_nf = units.thermal_noise_mw(20e6, 10.0)
        assert units.mw_to_dbm(with_nf) - units.mw_to_dbm(base) == pytest.approx(10.0)

    def test_noise_scales_with_bandwidth(self):
        assert units.thermal_noise_mw(40e6) == pytest.approx(
            2.0 * units.thermal_noise_mw(20e6)
        )

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            units.thermal_noise_mw(0.0)


class TestWavelengthAndFspl:
    def test_wavelength_5ghz(self):
        assert units.wavelength(5.25e9) == pytest.approx(0.0571, abs=1e-3)

    def test_wavelength_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.wavelength(0.0)

    def test_fspl_increases_with_distance(self):
        f = 5.25e9
        assert units.free_space_path_loss_db(10.0, f) > units.free_space_path_loss_db(
            1.0, f
        )

    def test_fspl_20db_per_decade(self):
        f = 5.25e9
        delta = units.free_space_path_loss_db(10.0, f) - units.free_space_path_loss_db(
            1.0, f
        )
        assert delta == pytest.approx(20.0)

    def test_fspl_rejects_nonpositive_distance(self):
        with pytest.raises(ValueError):
            units.free_space_path_loss_db(0.0, 5e9)


class TestTimeHelpers:
    def test_microseconds_roundtrip(self):
        assert units.seconds(units.microseconds(1.5)) == pytest.approx(1.5)

    def test_one_second_is_1e6_us(self):
        assert units.microseconds(1.0) == pytest.approx(1e6)
