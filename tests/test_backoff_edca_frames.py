"""Backoff, EDCA queue, and frame-duration tests."""

import numpy as np
import pytest

from repro.config import MacConfig
from repro.mac.backoff import BackoffState
from repro.mac.edca import (
    EDCA_PARAMETERS,
    AccessCategory,
    EdcaQueueSet,
    QueuedPacket,
)
from repro.mac.frames import txop_durations


class TestBackoff:
    def test_delay_within_bounds(self):
        mac = MacConfig()
        backoff = BackoffState(mac, np.random.default_rng(0))
        for __ in range(100):
            delay = backoff.draw_delay_us()
            assert mac.difs_us <= delay <= mac.difs_us + mac.cw_min * mac.slot_us

    def test_collision_doubles_window(self):
        mac = MacConfig()
        backoff = BackoffState(mac, np.random.default_rng(0))
        backoff.on_collision()
        assert backoff.contention_window == 2 * mac.cw_min + 1

    def test_window_bounded_by_cw_max(self):
        mac = MacConfig()
        backoff = BackoffState(mac, np.random.default_rng(0))
        for __ in range(20):
            backoff.on_collision()
        assert backoff.contention_window == mac.cw_max

    def test_success_resets(self):
        mac = MacConfig()
        backoff = BackoffState(mac, np.random.default_rng(0))
        backoff.on_collision()
        backoff.on_success()
        assert backoff.contention_window == mac.cw_min


class TestEdca:
    def test_priority_order(self):
        mac = MacConfig()
        voice = EDCA_PARAMETERS[AccessCategory.VOICE]
        background = EDCA_PARAMETERS[AccessCategory.BACKGROUND]
        assert voice.aifs_us(mac) < background.aifs_us(mac)
        assert voice.cw_min(mac) < background.cw_min(mac)

    def test_primary_class_highest_priority_nonempty(self):
        queues = EdcaQueueSet()
        queues.enqueue(QueuedPacket(client=0, category=AccessCategory.BACKGROUND))
        queues.enqueue(QueuedPacket(client=1, category=AccessCategory.VIDEO))
        assert queues.primary_class() is AccessCategory.VIDEO

    def test_primary_class_empty(self):
        assert EdcaQueueSet().primary_class() is None

    def test_backlog_counts(self):
        queues = EdcaQueueSet()
        queues.enqueue(QueuedPacket(client=0))
        queues.enqueue(QueuedPacket(client=0))
        queues.enqueue(QueuedPacket(client=1, category=AccessCategory.VOICE))
        assert queues.backlog() == 3
        assert queues.backlog(AccessCategory.VOICE) == 1

    def test_backlogged_clients_distinct(self):
        queues = EdcaQueueSet()
        queues.enqueue(QueuedPacket(client=2))
        queues.enqueue(QueuedPacket(client=2))
        queues.enqueue(QueuedPacket(client=0))
        np.testing.assert_array_equal(queues.backlogged_clients(), [0, 2])

    def test_pop_for_client_fifo(self):
        queues = EdcaQueueSet()
        first = QueuedPacket(client=1, enqueued_us=1.0)
        second = QueuedPacket(client=1, enqueued_us=2.0)
        queues.enqueue(first)
        queues.enqueue(second)
        assert queues.pop_for_client(1) is first
        assert queues.pop_for_client(1) is second
        assert queues.pop_for_client(1) is None

    def test_pop_searches_higher_class_first(self):
        queues = EdcaQueueSet()
        low = QueuedPacket(client=1, category=AccessCategory.BACKGROUND)
        high = QueuedPacket(client=1, category=AccessCategory.VOICE)
        queues.enqueue(low)
        queues.enqueue(high)
        assert queues.pop_for_client(1) is high


class TestFrameDurations:
    def test_components_positive(self):
        durations = txop_durations(MacConfig(), 4, 4)
        assert durations.sounding_us > 0
        assert durations.data_us > 0
        assert durations.ack_us > 0

    def test_sounding_golden_numbers(self):
        # NDPA(50) + SIFS(16) + NDP(40 + 4*4) = 122, report = 60 + 20*4 =
        # 140; the first client costs SIFS + report, every further client a
        # SIFS-separated poll *and* its report: SIFS + POLL(30) + SIFS +
        # report = 202 (each poll is followed by a SIFS before the report).
        single = txop_durations(MacConfig(), 1, 4)
        four = txop_durations(MacConfig(), 4, 4)
        assert single.sounding_us == pytest.approx(278.0)
        assert four.sounding_us == pytest.approx(122.0 + 156.0 + 3 * 202.0)

    def test_txop_total_golden_number(self):
        # sounding 884 + data txop 3008 + 4 * (SIFS 16 + block-ack 46).
        durations = txop_durations(MacConfig(), 4, 4)
        assert durations.total_us == pytest.approx(884.0 + 3008.0 + 248.0)

    def test_polled_clients_cost_sifs_and_poll(self):
        # Marginal cost of each client after the first: SIFS + poll + SIFS
        # + report, not just poll + report (the pre-fix arithmetic).
        two = txop_durations(MacConfig(), 2, 4).sounding_us
        three = txop_durations(MacConfig(), 3, 4).sounding_us
        assert three - two == pytest.approx(16.0 + 30.0 + 16.0 + 140.0)

    def test_data_fraction_below_one(self):
        durations = txop_durations(MacConfig(), 4, 4)
        assert 0 < durations.data_fraction < 1

    def test_sounding_optional(self):
        durations = txop_durations(MacConfig(), 4, 4, with_sounding=False)
        assert durations.sounding_us == 0.0

    def test_more_clients_more_overhead(self):
        one = txop_durations(MacConfig(), 1, 4)
        four = txop_durations(MacConfig(), 4, 4)
        assert four.total_us > one.total_us
        assert four.data_fraction < one.data_fraction

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            txop_durations(MacConfig(), 0, 4)
