"""ZFBF primitive tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import random_channel
from repro.core.zfbf import zf_interference_leakage, zfbf_directions, zfbf_equal_power
from repro.phy.capacity import per_stream_column_power


class TestDirections:
    def test_unit_columns(self):
        h = random_channel(0)
        v = zfbf_directions(h)
        np.testing.assert_allclose(np.linalg.norm(v, axis=0), 1.0, atol=1e-12)

    def test_zero_forcing_property(self):
        h = random_channel(1)
        v = zfbf_directions(h)
        e = h @ v
        off = e - np.diag(np.diag(e))
        assert np.max(np.abs(off)) < 1e-9 * np.max(np.abs(np.diag(e)))

    def test_rectangular_channel(self):
        h = random_channel(2, n_clients=2, n_antennas=4)
        v = zfbf_directions(h)
        assert v.shape == (4, 2)
        e = h @ v
        assert abs(e[0, 1]) < 1e-9 * abs(e[0, 0])

    def test_too_many_clients_rejected(self):
        with pytest.raises(ValueError):
            zfbf_directions(random_channel(3, n_clients=5, n_antennas=4))

    def test_empty_channel_rejected(self):
        with pytest.raises(ValueError):
            zfbf_directions(np.zeros((0, 4), dtype=complex))

    def test_rank_deficient_rejected(self):
        h = np.ones((2, 4), dtype=complex)  # identical rows, rank 1
        with pytest.raises(np.linalg.LinAlgError):
            zfbf_directions(h)


class TestEqualPower:
    def test_column_powers_equal_split(self):
        h = random_channel(4)
        v = zfbf_equal_power(h, total_power_mw=8.0)
        np.testing.assert_allclose(per_stream_column_power(v), 2.0, rtol=1e-12)

    def test_total_power(self):
        h = random_channel(5)
        v = zfbf_equal_power(h, total_power_mw=8.0)
        assert per_stream_column_power(v).sum() == pytest.approx(8.0)

    def test_nonpositive_power_rejected(self):
        with pytest.raises(ValueError):
            zfbf_equal_power(random_channel(6), 0.0)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_zero_forcing_for_random_channels(self, seed):
        h = random_channel(seed)
        v = zfbf_equal_power(h, 8.0)
        assert zf_interference_leakage(h, v) < 1e-8


class TestLeakageMetric:
    def test_perfect_zf_has_tiny_leakage(self):
        h = random_channel(7)
        assert zf_interference_leakage(h, zfbf_directions(h)) < 1e-8

    def test_identity_precoder_leaks(self):
        h = np.array([[1.0, 0.9], [0.9, 1.0]], dtype=complex)
        assert zf_interference_leakage(h, np.eye(2, dtype=complex)) > 0.5

    def test_column_scaling_preserves_zf(self):
        h = random_channel(8)
        v = zfbf_directions(h)
        scaled = v * np.array([0.3, 0.7, 1.0, 0.1])[None, :]
        assert zf_interference_leakage(h, scaled) < 1e-8
