"""Traffic subsystem unit tests: queues, A-MPDU model, arrival processes,
TrafficState accounting, the traffic registry, and the RunSpec surface."""

import numpy as np
import pytest

from repro.api import TRAFFIC, RunSpec, UnknownNameError, resolve_params
from repro.api.experiments import get_experiment_def
from repro.mac.edca import AccessCategory
from repro.phy.mcs import MCS_TABLE
from repro.traffic import (
    AmpduConfig,
    VHT_MAX_AMPDU_BYTES,
    CbrTraffic,
    ClientQueues,
    FullBufferTraffic,
    OnOffTraffic,
    Packet,
    PoissonTraffic,
    TrafficState,
    access_category,
    resolve_traffic,
    traffic_names,
)


class TestClientQueues:
    def test_enqueue_and_backlog(self):
        queues = ClientQueues(3)
        queues.enqueue(Packet(0, 1000.0, 0.0))
        queues.enqueue(Packet(2, 500.0, 0.1, AccessCategory.VOICE))
        assert np.array_equal(queues.backlog_mask(), [True, False, True])
        assert np.array_equal(
            queues.backlog_mask(category=AccessCategory.VOICE),
            [False, False, True],
        )
        assert queues.total_bytes() == 1500.0

    def test_backlog_mask_respects_client_order(self):
        queues = ClientQueues(3)
        queues.enqueue(Packet(2, 100.0, 0.0))
        assert np.array_equal(queues.backlog_mask([2, 0]), [True, False])

    def test_primary_class_priority_order(self):
        queues = ClientQueues(2)
        queues.enqueue(Packet(0, 100.0, 0.0, AccessCategory.BEST_EFFORT))
        assert queues.primary_class() is AccessCategory.BEST_EFFORT
        queues.enqueue(Packet(1, 100.0, 0.0, AccessCategory.VIDEO))
        assert queues.primary_class() is AccessCategory.VIDEO
        queues.enqueue(Packet(0, 100.0, 0.0, AccessCategory.VOICE))
        assert queues.primary_class() is AccessCategory.VOICE
        assert queues.primary_class([1]) is AccessCategory.VIDEO

    def test_serve_fifo_and_delay(self):
        queues = ClientQueues(1)
        queues.enqueue(Packet(0, 1000.0, 1.0))
        queues.enqueue(Packet(0, 1000.0, 2.0))
        served, departures = queues.serve(0, 1500.0, 5.0)
        assert served == 1500.0
        # Only the first packet fully departed; delay = 5 - 1 arrival.
        assert departures == [(4.0, AccessCategory.BEST_EFFORT)]
        served, departures = queues.serve(0, 1e9, 6.0)
        assert served == 500.0
        assert departures == [(4.0, AccessCategory.BEST_EFFORT)]
        assert queues.total_bytes() == 0.0

    def test_serve_drains_voice_before_best_effort(self):
        queues = ClientQueues(1)
        queues.enqueue(Packet(0, 1000.0, 0.0, AccessCategory.BEST_EFFORT))
        queues.enqueue(Packet(0, 1000.0, 0.0, AccessCategory.VOICE))
        __, departures = queues.serve(0, 1000.0, 1.0)
        assert [c for (_, c) in departures] == [AccessCategory.VOICE]

    def test_arrival_cutoff_masks_future_packets(self):
        queues = ClientQueues(2)
        queues.enqueue(Packet(0, 100.0, 1.0))
        queues.enqueue(Packet(1, 100.0, 5.0, AccessCategory.VOICE))
        # At t=2 only client 0's packet has arrived.
        assert np.array_equal(
            queues.backlog_mask(arrival_cutoff_s=2.0), [True, False]
        )
        assert queues.primary_class(arrival_cutoff_s=2.0) is AccessCategory.BEST_EFFORT
        # At t=6 both exist and VOICE wins the primary class.
        assert np.array_equal(
            queues.backlog_mask(arrival_cutoff_s=6.0), [True, True]
        )
        assert queues.primary_class(arrival_cutoff_s=6.0) is AccessCategory.VOICE
        # Cutoff-free queries see everything (the round engines' path).
        assert np.array_equal(queues.backlog_mask(), [True, True])

    def test_arrival_cutoff_respects_client_selection(self):
        queues = ClientQueues(3)
        queues.enqueue(Packet(2, 100.0, 0.5))
        assert np.array_equal(
            queues.backlog_mask([2, 0], arrival_cutoff_s=1.0), [True, False]
        )

    def test_zero_budget_serves_nothing(self):
        queues = ClientQueues(1)
        queues.enqueue(Packet(0, 100.0, 0.0))
        assert queues.serve(0, 0.0, 1.0) == (0.0, [])

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ClientQueues(0)
        with pytest.raises(ValueError):
            Packet(0, 0.0, 0.0)
        with pytest.raises(ValueError):
            ClientQueues(1).enqueue(Packet(5, 10.0, 0.0))


class TestAmpdu:
    def test_budget_tracks_mcs_rate(self):
        ampdu = AmpduConfig()
        bw, payload = 20e6, 3e-3
        top = MCS_TABLE[-1]
        budget = float(ampdu.served_byte_budget(top.min_snr_db, bw, payload))
        expected = top.rate_bps_hz * bw * payload / 8.0 * ampdu.efficiency
        assert budget == pytest.approx(expected)

    def test_below_mcs0_serves_zero(self):
        assert float(AmpduConfig().served_byte_budget(-5.0, 20e6, 3e-3)) == 0.0

    def test_vht_cap_binds_for_long_payloads(self):
        ampdu = AmpduConfig()
        budget = float(ampdu.served_byte_budget(35.0, 160e6, 1.0))
        assert budget == pytest.approx(VHT_MAX_AMPDU_BYTES * ampdu.efficiency)

    def test_vectorized_matches_scalar(self):
        ampdu = AmpduConfig()
        snrs = np.array([-3.0, 4.0, 17.0, 40.0])
        stacked = ampdu.served_byte_budget(snrs, 20e6, 3e-3)
        singles = [float(ampdu.served_byte_budget(s, 20e6, 3e-3)) for s in snrs]
        assert np.array_equal(stacked, singles)

    def test_validation(self):
        with pytest.raises(ValueError):
            AmpduConfig(max_ampdu_bytes=0)
        with pytest.raises(ValueError):
            AmpduConfig(per_mpdu_overhead_bytes=-1)


class TestArrivalModels:
    def test_poisson_deterministic_per_seed(self):
        model = PoissonTraffic(rate_mbps=20.0)
        a = model.arrivals(None, np.random.default_rng(3), 4, 0.0, 0.003)
        b = model.arrivals(None, np.random.default_rng(3), 4, 0.0, 0.003)
        assert [(p.client, p.t_arrival_s) for p in a] == [
            (p.client, p.t_arrival_s) for p in b
        ]
        assert all(0.0 <= p.t_arrival_s < 0.003 for p in a)

    def test_poisson_mean_rate(self):
        model = PoissonTraffic(rate_mbps=16.0, packet_bytes=1000.0)
        rng = np.random.default_rng(0)
        total = sum(
            p.bytes_total
            for _ in range(2000)
            for p in model.arrivals(None, rng, 2, 0.0, 0.003)
        )
        # 2 clients x 16 Mb/s x 6 s of simulated windows.
        assert total * 8 / (2 * 2000 * 0.003) / 1e6 == pytest.approx(16.0, rel=0.05)

    def test_cbr_is_deterministic_and_exact(self):
        model = CbrTraffic(rate_mbps=0.8, packet_bytes=100.0)
        state = model.init_state(None, 1)
        total = 0.0
        for r in range(100):
            for p in model.arrivals(state, None, 1, r * 0.003, 0.003):
                total += p.bytes_total
                assert p.category is AccessCategory.VOICE
        assert total == pytest.approx(0.8e6 * 0.3 / 8.0, abs=100.0)

    def test_on_off_respects_duty_cycle(self):
        model = OnOffTraffic(rate_mbps=10.0, duty_cycle=0.5, mean_burst_s=0.03)
        rng = np.random.default_rng(1)
        state = model.init_state(rng, 8)
        total = 0.0
        for r in range(3000):
            for p in model.arrivals(state, rng, 8, r * 0.003, 0.003):
                total += p.bytes_total
        rate = total * 8 / (8 * 3000 * 0.003) / 1e6
        assert rate == pytest.approx(10.0, rel=0.15)

    def test_access_category_coercion(self):
        assert access_category("voice") is AccessCategory.VOICE
        assert access_category(AccessCategory.VIDEO) is AccessCategory.VIDEO
        assert access_category(2) is AccessCategory.BEST_EFFORT
        with pytest.raises(ValueError):
            access_category("turbo")

    def test_model_validation(self):
        with pytest.raises(ValueError):
            PoissonTraffic(rate_mbps=-1.0)
        with pytest.raises(ValueError):
            OnOffTraffic(rate_mbps=1.0, duty_cycle=0.0)
        with pytest.raises(ValueError):
            CbrTraffic(rate_mbps=1.0, packet_bytes=0.0)


class TestTrafficState:
    def _state(self, model, n_clients=2, seed=0):
        return TrafficState(
            model,
            n_clients,
            np.random.default_rng(seed),
            round_duration_s=0.003,
            bandwidth_hz=20e6,
        )

    def test_conservation(self):
        state = self._state(PoissonTraffic(rate_mbps=30.0))
        arrived = served = 0.0
        for __ in range(50):
            state.begin_round()
            state.serve_burst(np.array([0, 1]), np.array([100.0, 100.0]), 0.002)
            metrics = state.end_round()
            arrived += metrics.arrived_bytes
            served += metrics.served_bytes
        assert served <= arrived
        assert metrics.queue_bytes == pytest.approx(arrived - served)

    def test_delays_are_positive_and_bounded_by_clock(self):
        state = self._state(PoissonTraffic(rate_mbps=30.0))
        for r in range(20):
            state.begin_round()
            state.serve_burst(np.array([0]), np.array([1e4]), 0.002)
            metrics = state.end_round()
            assert np.all(metrics.delays_s > 0)
            assert np.all(metrics.delays_s <= (r + 1) * 0.003)

    def test_full_buffer_state_rejected(self):
        with pytest.raises(ValueError):
            self._state(FullBufferTraffic())

    def test_round_protocol_misuse(self):
        state = self._state(PoissonTraffic(rate_mbps=1.0))
        with pytest.raises(RuntimeError):
            state.end_round()
        state.begin_round()
        with pytest.raises(RuntimeError):
            state.begin_round()


class TestTrafficRegistry:
    def test_builtins_registered(self):
        assert {"full_buffer", "poisson", "on_off", "cbr"} <= set(traffic_names())

    def test_resolve_by_name(self):
        model = resolve_traffic("poisson", rate_mbps=5.0, packet_bytes=500.0)
        assert isinstance(model, PoissonTraffic)
        assert model.rate_mbps == 5.0 and model.packet_bytes == 500.0

    def test_resolve_instance_passthrough(self):
        model = CbrTraffic(rate_mbps=1.0)
        assert resolve_traffic(model) is model
        with pytest.raises(ValueError):
            resolve_traffic(model, rate_mbps=2.0)

    def test_unknown_name_lists_registered(self):
        with pytest.raises(UnknownNameError, match="poisson"):
            resolve_traffic("tsunami")
        assert "tsunami" not in TRAFFIC


class TestRunSpecTraffic:
    def test_traffic_field_round_trips(self):
        spec = RunSpec("latency_vs_load", traffic="poisson")
        assert RunSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["traffic"] == "poisson"

    def test_unset_traffic_keeps_pre_traffic_hashes(self):
        spec = RunSpec("fig09", n_topologies=5, seed=3)
        assert "traffic" not in spec.to_dict()
        assert "traffic" not in spec.canonical_json()
        assert spec.spec_hash() != spec.replace(traffic="full_buffer").spec_hash()

    def test_full_buffer_accepted_everywhere(self):
        defn = get_experiment_def("fig09")
        spec = RunSpec("fig09", traffic="full_buffer")
        params = resolve_params(defn, spec)
        assert "traffic" not in params  # fig09 declares no traffic knob

    def test_finite_traffic_requires_declared_parameter(self):
        defn = get_experiment_def("fig09")
        with pytest.raises(ValueError, match="traffic override"):
            resolve_params(defn, RunSpec("fig09", traffic="poisson"))

    def test_traffic_folds_into_resolved_params(self):
        defn = get_experiment_def("latency_vs_load")
        params = resolve_params(defn, RunSpec("latency_vs_load", traffic="on_off"))
        assert params["traffic"] == "on_off"

    def test_unknown_traffic_rejected_early(self):
        defn = get_experiment_def("latency_vs_load")
        with pytest.raises(UnknownNameError):
            resolve_params(defn, RunSpec("latency_vs_load", traffic="warp9"))
