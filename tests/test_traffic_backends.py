"""Finite-load engine tests: scalar/batch bit-identity (no tolerances),
full-buffer no-op guarantees, result accessors, the latency_vs_load
experiment on both Runner backends, and the event-driven MAC's traffic."""

import numpy as np
import pytest

from repro.api import RunSpec, Runner
from repro.config import SimConfig
from repro.sim.batch import RoundBasedEvaluatorBatch
from repro.sim.network import MacMode, NetworkSimulation
from repro.sim.rounds import RoundBasedEvaluator
from repro.topology.deployment import AntennaMode
from repro.topology.scenarios import office_b, single_ap_scenario, three_ap_scenario

ENV = office_b()
SEEDS = [0, 1, 2]

TRAFFIC_CASES = [
    ("poisson", {"rate_mbps": 6.0}),
    ("on_off", {"rate_mbps": 4.0, "duty_cycle": 0.5}),
    ("cbr", {"rate_mbps": 2.0, "packet_bytes": 300.0}),
]


def _assert_traffic_equal(batch_result, scalar_result):
    assert len(batch_result.rounds) == len(scalar_result.rounds)
    for br, sr in zip(batch_result.rounds, scalar_result.rounds):
        assert br.capacity_bps_hz == sr.capacity_bps_hz
        assert br.n_streams == sr.n_streams
        assert br.traffic.arrived_bytes == sr.traffic.arrived_bytes
        assert br.traffic.served_bytes == sr.traffic.served_bytes
        assert br.traffic.queue_bytes == sr.traffic.queue_bytes
        assert np.array_equal(br.traffic.delays_s, sr.traffic.delays_s)
        assert np.array_equal(br.traffic.delay_categories, sr.traffic.delay_categories)
        assert np.array_equal(
            br.traffic.served_per_client, sr.traffic.served_per_client
        )


class TestRoundEngineBitIdentity:
    @pytest.mark.parametrize("traffic,kwargs", TRAFFIC_CASES)
    @pytest.mark.parametrize("mode,antenna_mode", [
        (MacMode.MIDAS, AntennaMode.DAS),
        (MacMode.CAS, AntennaMode.CAS),
    ])
    def test_three_ap_batch_matches_scalar(self, traffic, kwargs, mode, antenna_mode):
        scenarios = [three_ap_scenario(ENV, seed=s)[antenna_mode] for s in SEEDS]
        batch = RoundBasedEvaluatorBatch(
            scenarios, mode, seeds=SEEDS, traffic=traffic, traffic_kwargs=kwargs
        ).run(8)
        for i, seed in enumerate(SEEDS):
            scalar = RoundBasedEvaluator(
                scenarios[i], mode, seed=seed, traffic=traffic, traffic_kwargs=kwargs
            ).run(8)
            _assert_traffic_equal(batch[i], scalar)

    def test_single_ap_batch_matches_scalar(self):
        scenarios = [
            single_ap_scenario(ENV, AntennaMode.DAS, seed=s) for s in SEEDS
        ]
        batch = RoundBasedEvaluatorBatch(
            scenarios, MacMode.MIDAS, seeds=SEEDS,
            traffic="poisson", traffic_kwargs={"rate_mbps": 10.0},
        ).run(12)
        for i, seed in enumerate(SEEDS):
            scalar = RoundBasedEvaluator(
                scenarios[i], MacMode.MIDAS, seed=seed,
                traffic="poisson", traffic_kwargs={"rate_mbps": 10.0},
            ).run(12)
            _assert_traffic_equal(batch[i], scalar)
            assert batch[i].throughput_mbps == scalar.throughput_mbps
            assert np.array_equal(batch[i].delay_samples_s, scalar.delay_samples_s)

    def test_item_mask_skips_inactive_items(self):
        scenarios = [
            single_ap_scenario(ENV, AntennaMode.DAS, seed=s) for s in SEEDS
        ]
        mask = np.array([True, False, True])
        results = RoundBasedEvaluatorBatch(
            scenarios, MacMode.MIDAS, seeds=SEEDS,
            traffic="poisson", traffic_kwargs={"rate_mbps": 10.0},
        ).run(6, item_mask=mask)
        assert results[1] is None
        scalar = RoundBasedEvaluator(
            scenarios[2], MacMode.MIDAS, seed=SEEDS[2],
            traffic="poisson", traffic_kwargs={"rate_mbps": 10.0},
        ).run(6)
        _assert_traffic_equal(results[2], scalar)


class TestFullBufferNoOp:
    def test_full_buffer_equals_no_traffic_scalar(self):
        scenario = three_ap_scenario(ENV, seed=0)[AntennaMode.DAS]
        plain = RoundBasedEvaluator(scenario, MacMode.MIDAS, seed=0).run(6)
        full = RoundBasedEvaluator(
            scenario, MacMode.MIDAS, seed=0, traffic="full_buffer"
        ).run(6)
        assert [r.capacity_bps_hz for r in plain.rounds] == [
            r.capacity_bps_hz for r in full.rounds
        ]
        assert all(r.traffic is None for r in full.rounds)

    def test_full_buffer_equals_no_traffic_batch(self):
        scenarios = [three_ap_scenario(ENV, seed=s)[AntennaMode.DAS] for s in SEEDS]
        plain = RoundBasedEvaluatorBatch(scenarios, MacMode.MIDAS, seeds=SEEDS).run(6)
        full = RoundBasedEvaluatorBatch(
            scenarios, MacMode.MIDAS, seeds=SEEDS, traffic="full_buffer"
        ).run(6)
        for p, f in zip(plain, full):
            assert [r.capacity_bps_hz for r in p.rounds] == [
                r.capacity_bps_hz for r in f.rounds
            ]

    def test_accessors_raise_without_traffic(self):
        scenario = single_ap_scenario(ENV, AntennaMode.DAS, seed=0)
        result = RoundBasedEvaluator(scenario, MacMode.MIDAS, seed=0).run(2)
        assert not result.has_traffic
        with pytest.raises(ValueError, match="full-buffer"):
            result.mean_delay_s
        with pytest.raises(ValueError, match="full-buffer"):
            result.throughput_mbps


class TestResultAccessors:
    @pytest.fixture(scope="class")
    def loaded(self):
        scenario = single_ap_scenario(ENV, AntennaMode.DAS, seed=1)
        return RoundBasedEvaluator(
            scenario, MacMode.MIDAS, seed=1,
            traffic="poisson", traffic_kwargs={"rate_mbps": 8.0},
        ).run(30)

    def test_conservation_and_positivity(self, loaded):
        assert loaded.has_traffic
        assert loaded.served_bytes <= loaded.offered_bytes
        assert loaded.served_bytes > 0
        assert np.all(loaded.delay_samples_s > 0)
        assert loaded.mean_queue_bytes <= loaded.max_queue_bytes

    def test_throughput_consistent_with_bytes(self, loaded):
        expected = loaded.served_bytes * 8 / loaded.duration_s / 1e6
        assert loaded.throughput_mbps == expected

    def test_delay_statistics_ordered(self, loaded):
        assert loaded.mean_delay_s > 0
        assert loaded.delay_quantile(0.95) >= loaded.delay_quantile(0.5)
        assert np.isfinite(loaded.delay_jitter_s)

    def test_per_client_served_sums_to_total(self, loaded):
        per_client = loaded.per_client_served_bytes()
        assert per_client.shape == (4,)
        assert per_client.sum() == pytest.approx(loaded.served_bytes)


class TestLatencyVsLoadExperiment:
    SPEC = RunSpec(
        "latency_vs_load",
        n_topologies=3,
        seed=0,
        params={"offered_loads_mbps": [10.0, 80.0], "rounds_per_topology": 10},
    )

    @pytest.fixture(scope="class")
    def results(self):
        return (
            Runner(backend="loop").run(self.SPEC),
            Runner(backend="vectorized").run(self.SPEC),
        )

    def test_backends_bit_identical(self, results):
        loop, vectorized = results
        assert set(loop.series) == set(vectorized.series)
        for key in loop.series:
            assert np.array_equal(loop.series[key], vectorized.series[key]), key

    def test_series_shapes_and_sanity(self, results):
        loop, __ = results
        for system in ("cas", "midas"):
            for metric in ("throughput_mbps", "delay_ms", "p95_delay_ms", "queue_kbytes"):
                assert loop.series[f"{system}_{metric}"].shape == (3, 2)
            delay = loop.series[f"{system}_delay_ms"]
            # Median delay grows with offered load (queueing).
            assert np.median(delay[:, 1]) >= np.median(delay[:, 0])

    def test_traffic_spec_override(self):
        spec = self.SPEC.replace(traffic="cbr", n_topologies=2)
        result = Runner().run(spec)
        assert result.params["traffic"] == "cbr"

    def test_full_buffer_rejected(self):
        with pytest.raises(ValueError, match="finite-load"):
            Runner().run(self.SPEC.replace(traffic="full_buffer", n_topologies=1))

    def test_analysis_helpers(self, results):
        from repro.analysis import (
            delay_cdf,
            delay_percentiles,
            saturation_load_mbps,
            throughput_delay_curve,
        )

        loop, __ = results
        offered, throughput, delay = throughput_delay_curve(loop, "midas")
        assert np.array_equal(offered, [10.0, 80.0])
        assert throughput.shape == delay.shape == (2,)
        assert saturation_load_mbps(loop, "midas", delay_budget_ms=1e9) == 80.0
        samples = np.asarray([0.001, 0.002, 0.004])
        assert len(delay_cdf(samples)) == 3
        assert np.array_equal(
            delay_percentiles(samples, (0.0, 1.0)), [0.001, 0.004]
        )
        # Both empty-run helpers raise with the same documented message.
        with pytest.raises(ValueError, match="no departed packets"):
            delay_cdf(np.array([]))
        with pytest.raises(ValueError, match="no departed packets"):
            delay_percentiles(np.array([]))


class TestExistingExperimentsFullBuffer:
    def test_fig15_accepts_full_buffer_spec(self):
        base = RunSpec("fig15", n_topologies=2, seed=0,
                       params={"rounds_per_topology": 4})
        with_traffic = base.replace(traffic="full_buffer")
        a = Runner().run(base)
        b = Runner().run(with_traffic)
        for key in a.series:
            assert np.array_equal(a.series[key], b.series[key]), key


class TestDynamicMacTraffic:
    def test_finite_load_metrics(self):
        scenario = three_ap_scenario(ENV, seed=0)[AntennaMode.DAS]
        result = NetworkSimulation(
            scenario, MacMode.MIDAS, SimConfig(duration_s=0.04), seed=0,
            traffic="poisson", traffic_kwargs={"rate_mbps": 5.0},
        ).run()
        summary = result.traffic
        assert summary is not None
        assert 0 < summary.served_bytes <= summary.arrived_bytes
        assert summary.delays_s.size > 0
        assert np.all(summary.delays_s > 0)
        assert summary.throughput_mbps > 0
        assert np.isfinite(summary.mean_delay_s)

    def test_full_buffer_unchanged(self):
        scenario = three_ap_scenario(ENV, seed=0)[AntennaMode.DAS]
        sim_cfg = SimConfig(duration_s=0.03)
        plain = NetworkSimulation(scenario, MacMode.MIDAS, sim_cfg, seed=0).run()
        full = NetworkSimulation(
            scenario, MacMode.MIDAS, sim_cfg, seed=0, traffic="full_buffer"
        ).run()
        assert plain.traffic is None and full.traffic is None
        assert np.array_equal(
            plain.per_client_bits_per_hz, full.per_client_bits_per_hz
        )
        assert plain.txop_count == full.txop_count

    def test_no_zero_byte_bursts_on_decodable_streams(self, monkeypatch):
        # Regression: eligibility once saw arrival-window packets timestamped
        # after the contention decision, so an AP could win a TXOP for a
        # client whose packets the serve-time arrival cutoff then excluded --
        # a full TXOP burned for zero bytes and a wrong DRR settlement.
        # With eligibility cut off at the decision time, a selected client
        # always has a servable packet: a burst serves zero bytes only when
        # every stream's SINR is below MCS 0.
        from repro.phy.mcs import MCS_TABLE
        from repro.traffic import TrafficState

        calls = []
        original = TrafficState.serve_burst

        def recording(self, clients, sinrs, payload_s, t_depart_s=None,
                      arrival_cutoff_s=None):
            served = original(self, clients, sinrs, payload_s, t_depart_s,
                              arrival_cutoff_s)
            calls.append((served, np.max(np.asarray(sinrs, dtype=float))))
            return served

        monkeypatch.setattr(TrafficState, "serve_burst", recording)
        scenario = single_ap_scenario(ENV, AntennaMode.DAS, seed=0)
        NetworkSimulation(
            scenario, MacMode.MIDAS, SimConfig(duration_s=0.5), seed=0,
            traffic="poisson", traffic_kwargs={"rate_mbps": 0.5},
        ).run()
        assert calls, "expected TXOP bursts under light load"
        mcs0 = 10 ** (MCS_TABLE[0].min_snr_db / 10.0)
        wasted = [c for c in calls if c[0] == 0.0 and c[1] >= mcs0]
        assert not wasted, f"{len(wasted)}/{len(calls)} zero-byte bursts"

    def test_light_load_delays_below_saturation_queueing(self):
        scenario = single_ap_scenario(ENV, AntennaMode.DAS, seed=3)
        light = NetworkSimulation(
            scenario, MacMode.MIDAS, SimConfig(duration_s=0.05), seed=3,
            traffic="poisson", traffic_kwargs={"rate_mbps": 1.0},
        ).run()
        heavy = NetworkSimulation(
            scenario, MacMode.MIDAS, SimConfig(duration_s=0.05), seed=3,
            traffic="poisson", traffic_kwargs={"rate_mbps": 60.0},
        ).run()
        assert light.traffic.queue_bytes <= heavy.traffic.queue_bytes
