"""Shadowing field tests."""

import numpy as np
import pytest

from repro.channel.shadowing import ShadowingField, group_antenna_sites


class TestShadowingField:
    def test_zero_sigma_is_zero_everywhere(self):
        field = ShadowingField(np.random.default_rng(0), 0.0, 8.0)
        np.testing.assert_array_equal(field.sample([(1, 2), (3, 4)]), [0.0, 0.0])

    def test_consistent_resampling(self):
        field = ShadowingField(np.random.default_rng(0), 6.0, 8.0)
        pts = [(1.0, 2.0), (-3.0, 0.5)]
        np.testing.assert_array_equal(field.sample(pts), field.sample(pts))

    def test_marginal_std_close_to_sigma(self):
        field = ShadowingField(np.random.default_rng(1), 6.0, 8.0)
        rng = np.random.default_rng(2)
        # Sample far-apart points so they are nearly independent draws.
        pts = rng.uniform(-500, 500, (600, 2))
        values = field.sample(pts)
        assert np.std(values) == pytest.approx(6.0, rel=0.15)

    def test_nearby_points_are_correlated(self):
        sigma = 6.0
        diffs_near, diffs_far = [], []
        for seed in range(60):
            field = ShadowingField(np.random.default_rng(seed), sigma, 8.0)
            base, near, far = field.sample([(10.0, 10.0), (10.5, 10.0), (300.0, 300.0)])
            diffs_near.append(base - near)
            diffs_far.append(base - far)
        assert np.std(diffs_near) < np.std(diffs_far) * 0.5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ShadowingField(np.random.default_rng(0), -1.0, 8.0)
        with pytest.raises(ValueError):
            ShadowingField(np.random.default_rng(0), 5.0, 0.0)


class TestSiteGrouping:
    def test_colocated_antennas_share_site(self):
        sites = group_antenna_sites([(0, 0), (0.03, 0), (0.06, 0)])
        assert len(set(sites)) == 1

    def test_distributed_antennas_get_distinct_sites(self):
        sites = group_antenna_sites([(0, 0), (8, 0), (0, 9)])
        assert len(set(sites)) == 3

    def test_mixed_grouping(self):
        sites = group_antenna_sites([(0, 0), (0.05, 0), (10, 0), (10.05, 0)])
        assert sites[0] == sites[1]
        assert sites[2] == sites[3]
        assert sites[0] != sites[2]

    def test_chained_triplet_single_linkage(self):
        # A-B and B-C are each within tolerance while A-C is not: true
        # single-linkage puts all three in one site.  The old greedy pass
        # visited A first, pulled in B, and then orphaned C into its own
        # site because C was only close to (already-assigned) B.
        sites = group_antenna_sites([(0.0, 0.0), (0.8, 0.0), (1.6, 0.0)])
        assert len(set(sites)) == 1

    def test_chain_order_independent(self):
        # Same chained triplet in every visiting order: one site each time.
        triplet = np.array([(0.0, 0.0), (0.8, 0.0), (1.6, 0.0)])
        for order in ([0, 1, 2], [1, 0, 2], [2, 0, 1], [0, 2, 1]):
            sites = group_antenna_sites(triplet[order])
            assert len(set(sites)) == 1, order

    def test_site_ids_keep_first_visit_order(self):
        # Cluster ids must come out in first-antenna order (the generator
        # spawn order the channel model relies on), including for clusters
        # merged through a chain.
        sites = group_antenna_sites(
            [(0.0, 0.0), (20.0, 0.0), (1.6, 0.0), (0.8, 0.0)]
        )
        np.testing.assert_array_equal(sites, [0, 1, 0, 0])


class TestVectorizedSampling:
    """The vectorized sampler must match the historical point-by-point walk
    exactly -- same lattice draws (first-visit order), same interpolation."""

    @staticmethod
    def _reference_sample(field, points):
        """The historical scalar implementation, driven through the public
        node cache so generator draws interleave exactly as they used to."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if field.sigma_db == 0.0:
            return np.zeros(len(pts))
        scaled = pts / field.correlation_m
        base = np.floor(scaled).astype(int)
        frac = scaled - base
        values = np.empty(len(pts))
        for i, ((ix, iy), (fx, fy)) in enumerate(zip(map(tuple, base), frac)):
            w00 = (1 - fx) * (1 - fy)
            w10 = fx * (1 - fy)
            w01 = (1 - fx) * fy
            w11 = fx * fy
            raw = (
                w00 * field._node(ix, iy)
                + w10 * field._node(ix + 1, iy)
                + w01 * field._node(ix, iy + 1)
                + w11 * field._node(ix + 1, iy + 1)
            )
            norm = np.sqrt(w00**2 + w10**2 + w01**2 + w11**2)
            values[i] = raw / norm
        return values * field.sigma_db

    @pytest.mark.parametrize("n_points", [3, 500])
    def test_matches_scalar_reference(self, n_points):
        # 3 points exercises the small-query fast path, 500 the unique path.
        rng = np.random.default_rng(4)
        points = rng.uniform(-25, 25, (n_points, 2))
        fast = ShadowingField(np.random.default_rng(77), 9.0, 8.0)
        reference = ShadowingField(np.random.default_rng(77), 9.0, 8.0)
        np.testing.assert_array_equal(
            fast.sample(points), self._reference_sample(reference, points)
        )
        # A second overlapping query reuses cached nodes identically.
        more = rng.uniform(-25, 25, (n_points, 2))
        np.testing.assert_array_equal(
            fast.sample(more), self._reference_sample(reference, more)
        )
