"""SU beamforming / SVD comparator tests (paper §7)."""

import numpy as np
import pytest

from repro.core.svd import su_beamforming_precoder, svd_waterfilling

NOISE = 1e-9


class TestSuBeamforming:
    def test_full_power_per_antenna(self):
        h = np.array([1 + 1j, 2 - 1j, -0.5 + 0.2j])
        v = su_beamforming_precoder(h, 4.0)
        np.testing.assert_allclose(np.abs(v.ravel()) ** 2, 4.0)

    def test_coherent_combining(self):
        h = np.array([1 + 1j, 2 - 1j, -0.5 + 0.2j])
        v = su_beamforming_precoder(h, 4.0)
        received = h @ v.ravel()
        expected = np.sqrt(4.0) * np.sum(np.abs(h))
        assert abs(received) == pytest.approx(expected)

    def test_beats_single_antenna(self):
        rng = np.random.default_rng(0)
        h = rng.standard_normal(4) + 1j * rng.standard_normal(4)
        v = su_beamforming_precoder(h, 4.0)
        combined = np.abs(h @ v.ravel()) ** 2
        best_single = 4.0 * np.max(np.abs(h)) ** 2
        assert combined > best_single

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            su_beamforming_precoder(np.array([]), 4.0)

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ValueError):
            su_beamforming_precoder(np.array([1.0 + 0j]), 0.0)


class TestSvdWaterfilling:
    def _channel(self, seed=0, n_rx=2, n_tx=4):
        rng = np.random.default_rng(seed)
        return (rng.standard_normal((n_rx, n_tx)) + 1j * rng.standard_normal((n_rx, n_tx))) * 1e-4

    def test_power_budget_met(self):
        alloc = svd_waterfilling(self._channel(), 8.0, NOISE)
        assert alloc.stream_powers_mw.sum() == pytest.approx(8.0, rel=1e-6)

    def test_stronger_modes_get_more_power(self):
        alloc = svd_waterfilling(self._channel(1), 8.0, NOISE)
        powers = alloc.stream_powers_mw
        order = np.argsort(-alloc.singular_values)
        assert powers[order[0]] >= powers[order[-1]] - 1e-12

    def test_capacity_beats_equal_split(self):
        h = self._channel(2)
        alloc = svd_waterfilling(h, 8.0, NOISE)
        gains = alloc.singular_values**2 / NOISE
        equal = np.sum(np.log2(1 + gains * (8.0 / len(gains))))
        assert alloc.capacity_bps_hz(NOISE) >= equal - 1e-9

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ValueError):
            svd_waterfilling(self._channel(), 0.0, NOISE)
