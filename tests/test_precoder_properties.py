"""Backend-independent properties of the precoder zoo.

The equivalence suites pin backends to each other; these tests pin the
*mathematics* regardless of backend: zero-forcing residuals, power-budget
feasibility, and waterfilling KKT conditions must hold on the loop path,
the vectorized path, and the array_api path alike -- including the
float32 configuration, where bit-equality is unavailable and only the
properties themselves can certify the result.

Each property is checked against a backend-appropriate slack: float64
paths get ULP-scale tolerances, the float32 path gets epsilon-scaled
ones.  Metamorphic companions check invariances no numeric contract can
express as a single run: global phase rotation leaves capacities
unchanged, and growing the power budget never hurts.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.xp as xpmod
from repro.api import precoder_matrix, precoder_matrix_batch
from repro.config import RadioConfig
from repro.core import batch as core_batch
from repro.phy.capacity import stream_sinrs, sum_capacity_bps_hz

RADIO = RadioConfig()
P_MW = RADIO.per_antenna_power_mw
NOISE = RADIO.noise_mw

#: Backends under test and the relative slack their arithmetic earns.
BACKENDS = {
    "loop": 1e-10,
    "vectorized": 1e-10,
    "array_api-numpy-f64": 1e-10,
    "array_api-numpy-f32": 5e-4,
}


def _channel_stack(batch: int, n_clients: int, n_antennas: int, seed: int):
    rng = np.random.default_rng(seed)
    scale = 10 ** rng.uniform(-4, -2, (batch, n_clients, 1))
    return scale * (
        rng.standard_normal((batch, n_clients, n_antennas))
        + 1j * rng.standard_normal((batch, n_clients, n_antennas))
    )


@pytest.fixture(params=sorted(BACKENDS))
def backend(request) -> str:
    return request.param


def _solve(backend: str, name: str, h: np.ndarray) -> np.ndarray:
    """Precoder stack for ``h`` on the requested backend, as host float64."""
    if backend == "loop":
        return np.stack([precoder_matrix(name, item, P_MW, NOISE) for item in h])
    if backend == "vectorized":
        return np.asarray(precoder_matrix_batch(name, h, P_MW, NOISE))
    dtype = "float32" if backend.endswith("f32") else "float64"
    with xpmod.use(xpmod.get_namespace("numpy", "cpu", dtype)):
        v = precoder_matrix_batch(name, h, P_MW, NOISE)
    return np.asarray(v, dtype=complex)


# ----------------------------------------------------------------------
# Zero-forcing residual
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["naive", "balanced", "total_power"])
@pytest.mark.parametrize("seed", [0, 4])
def test_zfbf_family_keeps_cross_stream_leakage_below_tolerance(
    backend, name, seed
):
    # Every ZFBF-derived precoder must keep h @ v (effectively) diagonal:
    # off-diagonal leakage bounded relative to the weakest desired signal.
    h = _channel_stack(12, 4, 4, seed)
    v = _solve(backend, name, h)
    e = np.abs(h @ v)
    diag = np.diagonal(e, axis1=-2, axis2=-1)
    off = e - diag[..., None] * np.eye(h.shape[-2])[None]
    # Leakage is bounded relative to the *strongest* desired signal: the
    # rounding floor scales with the channel magnitude, while the weakest
    # stream's amplitude is a power-allocation choice, not a noise scale.
    floor = diag.max(axis=-1)[..., None, None]
    assert np.all(off <= BACKENDS[backend] * floor + 1e-300)


# ----------------------------------------------------------------------
# Power feasibility
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["naive", "balanced"])
@pytest.mark.parametrize("seed", [1, 7])
def test_per_antenna_budget_is_never_exceeded(backend, name, seed):
    h = _channel_stack(16, 4, 4, seed)
    v = _solve(backend, name, h)
    row_powers = np.sum(np.abs(v) ** 2, axis=-1)
    # The balanced solver drives the busiest antenna *to* the cap and stops
    # within its own convergence tolerance (~1e-9 relative), so feasibility
    # carries that slack on top of the backend's arithmetic slack.
    assert np.all(row_powers <= P_MW * (1.0 + BACKENDS[backend] + 1e-8))


@pytest.mark.parametrize("seed", [2, 9])
def test_total_power_budget_is_never_exceeded(backend, seed):
    h = _channel_stack(16, 4, 4, seed)
    v = _solve(backend, "total_power", h)
    total = np.sum(np.abs(v) ** 2, axis=(-2, -1))
    budget = h.shape[-1] * P_MW
    assert np.all(total <= budget * (1.0 + BACKENDS[backend]))


@pytest.mark.parametrize("seed", [3, 11])
def test_balanced_precoder_saturates_at_least_one_antenna(backend, seed):
    # MIDAS power balancing exists to push *some* antenna to its cap
    # (otherwise naive scaling would already be optimal); on real channels
    # the busiest antenna must sit at the budget, not below it.
    h = _channel_stack(16, 4, 4, seed)
    v = _solve(backend, "balanced", h)
    peak = np.max(np.sum(np.abs(v) ** 2, axis=-1), axis=-1)
    assert np.all(peak >= P_MW * (1.0 - 10 * BACKENDS[backend]))


# ----------------------------------------------------------------------
# Waterfilling KKT conditions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [5, 13])
def test_svd_waterfilling_satisfies_kkt_conditions(backend, seed):
    # Waterfilling optimality: active streams share one water level
    # mu = p_i + noise/g_i, inactive streams have noise/g_i >= mu, and the
    # budget is spent exactly.
    if backend == "loop":
        pytest.skip("svd_waterfilling's loop form is covered via the batch "
                    "solver's bit-equality suite")
    h = _channel_stack(12, 3, 5, seed)
    total = h.shape[-1] * P_MW
    tol = BACKENDS[backend]
    if backend.endswith("f32"):
        with xpmod.use(xpmod.get_namespace("numpy", "cpu", "float32")):
            alloc = core_batch.svd_waterfilling(h, total, NOISE)
    else:
        alloc = core_batch.svd_waterfilling(h, total, NOISE)
    powers = np.asarray(alloc.stream_powers_mw, dtype=float)
    gains = np.linalg.svd(h, compute_uv=False) ** 2
    assert np.allclose(powers.sum(axis=-1), total, rtol=10 * tol)
    inverse = NOISE / np.maximum(gains, 1e-300)
    for i in range(len(h)):
        active = powers[i] > tol * total
        levels = powers[i][active] + inverse[i][active]
        mu = levels.mean()
        assert np.allclose(levels, mu, rtol=50 * tol)  # common water level
        assert np.all(inverse[i][~active] >= mu * (1.0 - 50 * tol))


# ----------------------------------------------------------------------
# Metamorphic invariances
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["naive", "balanced", "total_power"])
def test_global_phase_rotation_leaves_capacity_unchanged(backend, name):
    # h -> e^{j theta} h is the same physical channel; any sensible
    # precoder yields the same capacities (exactly equal phase-invariant
    # pipelines would be a stronger claim than float32 supports).
    h = _channel_stack(8, 4, 4, seed=21)
    rotated = np.exp(1j * 0.7) * h
    cap = sum_capacity_bps_hz(stream_sinrs(h, _solve(backend, name, h), NOISE))
    cap_rot = sum_capacity_bps_hz(
        stream_sinrs(rotated, _solve(backend, name, rotated), NOISE)
    )
    assert np.allclose(cap, cap_rot, rtol=max(BACKENDS[backend], 1e-12))


def test_growing_the_power_budget_never_hurts(backend):
    # Monotonicity: total_power capacity is nondecreasing in the budget.
    h = _channel_stack(8, 4, 4, seed=22)

    def capacity(budget_scale: float) -> np.ndarray:
        if backend == "loop":
            v = np.stack(
                [
                    precoder_matrix("total_power", item, budget_scale * P_MW, NOISE)
                    for item in h
                ]
            )
        elif backend == "vectorized":
            v = precoder_matrix_batch("total_power", h, budget_scale * P_MW, NOISE)
        else:
            dtype = "float32" if backend.endswith("f32") else "float64"
            with xpmod.use(xpmod.get_namespace("numpy", "cpu", dtype)):
                v = precoder_matrix_batch(
                    "total_power", h, budget_scale * P_MW, NOISE
                )
        return np.asarray(
            sum_capacity_bps_hz(stream_sinrs(h, np.asarray(v, dtype=complex), NOISE))
        )

    low, high = capacity(1.0), capacity(4.0)
    assert np.all(high >= low * (1.0 - BACKENDS[backend]))


def test_real_das_channels_also_satisfy_the_properties(backend, das_channel):
    # Synthetic stacks above; one spot check on a genuine office-B DAS
    # channel so the properties hold on the paper's own distribution.
    h = das_channel.channel_matrix()[None]
    v = _solve(backend, "balanced", h)
    row_powers = np.sum(np.abs(v) ** 2, axis=-1)
    assert np.all(row_powers <= P_MW * (1.0 + BACKENDS[backend] + 1e-8))
    e = np.abs(h @ v)
    diag = np.diagonal(e, axis1=-2, axis2=-1)
    off = e - diag[..., None] * np.eye(h.shape[-2])[None]
    assert np.all(off <= BACKENDS[backend] * diag.max() + 1e-300)
