"""Public API surface tests: the README quickstart must keep working."""

import numpy as np

import repro


class TestImportSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestReadmeQuickstart:
    def test_quickstart_flow(self):
        scenario = repro.single_ap_scenario(
            repro.office_b(), repro.AntennaMode.DAS, seed=7
        )
        model = repro.ChannelModel(scenario.deployment, scenario.radio, seed=7)
        h = model.channel_matrix()
        p = scenario.radio.per_antenna_power_mw
        noise = scenario.radio.noise_mw

        result = repro.power_balanced_precoder(h, p, noise)
        baseline = repro.naive_scaled_precoder(h, p)

        balanced_capacity = repro.sum_capacity_bps_hz(
            repro.stream_sinrs(h, result.v, noise)
        )
        naive_capacity = repro.sum_capacity_bps_hz(
            repro.stream_sinrs(h, baseline, noise)
        )
        assert result.converged
        assert balanced_capacity > 0 and naive_capacity > 0

    def test_docstring_example_values(self):
        # The module docstring promises converged=True for seed 7.
        scenario = repro.single_ap_scenario(
            repro.office_b(), repro.AntennaMode.DAS, seed=7
        )
        model = repro.ChannelModel(scenario.deployment, scenario.radio, seed=7)
        result = repro.power_balanced_precoder(
            model.channel_matrix(),
            scenario.radio.per_antenna_power_mw,
            scenario.radio.noise_mw,
        )
        assert result.converged

    def test_cdf_helpers_exported(self):
        cdf = repro.EmpiricalCdf(np.array([1.0, 2.0, 3.0]))
        assert cdf.median == 2.0
        assert repro.median_gain([2.0], [1.0]) == 1.0

    def test_range_helpers_exported(self):
        radio = repro.RadioConfig()
        mac = repro.MacConfig()
        assert repro.coverage_range_m(radio) > 0
        assert repro.cs_range_m(radio, mac) > 0
