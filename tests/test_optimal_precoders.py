"""Numerical optimal / WMMSE / naive comparator tests."""

import numpy as np
import pytest

from helpers import random_channel
from repro.core.naive import naive_scaled_precoder
from repro.core.optimal import full_optimal_precoder, optimal_power_allocation
from repro.core.power_balance import power_balanced_precoder
from repro.core.wmmse import wmmse_precoder
from repro.phy.capacity import per_antenna_row_power, stream_sinrs, sum_capacity_bps_hz

P = 6.3
NOISE = 1e-9


def capacity(h, v):
    return sum_capacity_bps_hz(stream_sinrs(h, v, NOISE))


class TestNaive:
    def test_feasible(self):
        for seed in range(8):
            v = naive_scaled_precoder(random_channel(seed), P)
            assert per_antenna_row_power(v).max() <= P * (1 + 1e-9)

    def test_no_scaling_when_feasible(self):
        h = np.eye(4, dtype=complex) * 1e-4
        v = naive_scaled_precoder(h, P)
        # Equal split of 4P over 4 diagonal streams: each row exactly P.
        np.testing.assert_allclose(per_antenna_row_power(v), P, rtol=1e-9)

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ValueError):
            naive_scaled_precoder(random_channel(0), -1.0)


class TestOptimalZf:
    def test_feasible(self):
        for seed in range(5):
            result = optimal_power_allocation(random_channel(seed), P, NOISE)
            assert per_antenna_row_power(result.v).max() <= P * (1 + 1e-6)

    def test_dominates_naive(self):
        for seed in range(8):
            h = random_channel(seed)
            opt = optimal_power_allocation(h, P, NOISE)
            assert opt.capacity_bps_hz >= capacity(h, naive_scaled_precoder(h, P)) - 1e-6

    def test_dominates_or_matches_balanced(self):
        # The convex optimum searches the same feasible family the greedy
        # power balancing walks, so it can never lose by more than tolerance.
        for seed in range(8):
            h = random_channel(seed)
            opt = optimal_power_allocation(h, P, NOISE)
            balanced = power_balanced_precoder(h, P, NOISE)
            assert opt.capacity_bps_hz >= capacity(h, balanced.v) * (1 - 5e-3)

    def test_balanced_is_near_optimal(self):
        # The paper's Fig 11 claim: within ~99% of the numerical optimum.
        effs = []
        for seed in range(12):
            h = random_channel(seed)
            opt = optimal_power_allocation(h, P, NOISE)
            balanced = power_balanced_precoder(h, P, NOISE)
            effs.append(capacity(h, balanced.v) / max(opt.capacity_bps_hz, 1e-12))
        assert np.median(effs) > 0.97


class TestFullOptimal:
    def test_feasible_and_dominates_naive(self):
        h = random_channel(0)
        result = full_optimal_precoder(h, P, NOISE, maxiter=80)
        assert per_antenna_row_power(result.v).max() <= P * (1 + 1e-6)
        assert result.capacity_bps_hz >= capacity(h, naive_scaled_precoder(h, P)) - 1e-9


class TestWmmse:
    def test_feasible(self):
        h = random_channel(1)
        result = wmmse_precoder(h, P, NOISE, iterations=15)
        assert per_antenna_row_power(result.v).max() <= P * (1 + 1e-6)

    def test_never_below_naive(self):
        # WMMSE starts from the naive point and keeps the best iterate.
        for seed in range(4):
            h = random_channel(seed)
            result = wmmse_precoder(h, P, NOISE, iterations=15)
            assert result.capacity_bps_hz >= capacity(h, naive_scaled_precoder(h, P)) - 1e-9

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            wmmse_precoder(random_channel(0), 0.0, NOISE)
