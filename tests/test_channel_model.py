"""Composite channel model tests."""

import numpy as np
import pytest

from repro.channel.model import ChannelModel, apply_csi_error
from repro.topology.deployment import AntennaMode
from repro.topology.scenarios import office_b, single_ap_scenario


@pytest.fixture(scope="module")
def scenario():
    return single_ap_scenario(office_b(), AntennaMode.DAS, seed=5)


@pytest.fixture(scope="module")
def model(scenario):
    return ChannelModel(scenario.deployment, scenario.radio, seed=5)


class TestChannelMatrix:
    def test_shape(self, scenario, model):
        h = model.channel_matrix()
        assert h.shape == (scenario.deployment.n_clients, scenario.deployment.n_antennas)

    def test_complex_dtype(self, model):
        assert np.iscomplexobj(model.channel_matrix())

    def test_deterministic_by_seed(self, scenario):
        a = ChannelModel(scenario.deployment, scenario.radio, seed=9).channel_matrix()
        b = ChannelModel(scenario.deployment, scenario.radio, seed=9).channel_matrix()
        np.testing.assert_array_equal(a, b)

    def test_advance_changes_matrix(self, scenario):
        m = ChannelModel(scenario.deployment, scenario.radio, seed=9)
        before = m.channel_matrix().copy()
        m.advance(0.5)
        assert not np.allclose(before, m.channel_matrix())

    def test_advance_tracks_time(self, scenario):
        m = ChannelModel(scenario.deployment, scenario.radio, seed=9)
        m.advance(0.25)
        assert m.time_s == pytest.approx(0.25)

    def test_magnitude_matches_large_scale_gain(self, scenario):
        m = ChannelModel(scenario.deployment, scenario.radio, seed=9)
        h = m.channel_matrix()
        gain_linear = 10 ** (m.client_gain_db() / 10.0)
        # Fading is unit power, so |h|^2 should be the right order of magnitude.
        ratio = np.abs(h) ** 2 / gain_linear
        assert np.median(ratio) == pytest.approx(1.0, abs=0.9)


class TestLargeScaleMaps:
    def test_gain_decreases_with_distance(self, scenario):
        radio = scenario.radio.with_(shadowing_sigma_db=0.0, cable_loss_db_per_m=0.0)
        m = ChannelModel(scenario.deployment, radio, seed=1)
        antenna = scenario.deployment.antenna_positions[0]
        near = antenna + np.array([1.0, 0.0])
        far = antenna + np.array([12.0, 0.0])
        gain = m.large_scale_gain_db([near, far])
        assert gain[0, 0] > gain[1, 0]

    def test_rx_power_offsets_gain_by_tx_power(self, model, scenario):
        pts = [(1.0, 1.0)]
        gain = model.large_scale_gain_db(pts)
        rx = model.rx_power_dbm(pts)
        np.testing.assert_allclose(rx - gain, scenario.radio.per_antenna_power_dbm)

    def test_snr_map_offsets_by_noise(self, model, scenario):
        from repro import units

        pts = [(2.0, 2.0)]
        snr = model.snr_db_map(pts)
        rx = model.rx_power_dbm(pts)
        np.testing.assert_allclose(
            snr, rx - units.mw_to_dbm(scenario.radio.noise_mw)
        )

    def test_cable_loss_zero_for_cas(self):
        cas = single_ap_scenario(office_b(), AntennaMode.CAS, seed=5)
        m = ChannelModel(cas.deployment, cas.radio, seed=5)
        assert np.all(m.cable_loss_db < 0.1)

    def test_cable_loss_positive_for_das(self, model, scenario):
        expected_min = 5.0 * scenario.radio.cable_loss_db_per_m
        assert np.all(model.cable_loss_db >= expected_min - 1e-9)

    def test_antenna_cross_power_diagonal_infinite(self, model):
        cross = model.antenna_cross_power_dbm()
        assert np.all(np.isinf(np.diag(cross)))

    def test_antenna_cross_power_shape(self, model, scenario):
        n = scenario.deployment.n_antennas
        assert model.antenna_cross_power_dbm().shape == (n, n)

    def test_client_rx_power_uses_cached_gains(self, model, scenario):
        rssi = model.client_rx_power_dbm()
        np.testing.assert_allclose(
            rssi, scenario.radio.per_antenna_power_dbm + model.client_gain_db()
        )


class TestCsiError:
    def test_zero_error_returns_same_object(self):
        h = np.ones((2, 2), dtype=complex)
        assert apply_csi_error(h, 0.0, np.random.default_rng(0)) is h

    def test_error_scales_with_magnitude(self):
        rng = np.random.default_rng(0)
        h = np.full((200, 200), 10.0 + 0j)
        noisy = apply_csi_error(h, 0.1, rng)
        rel = np.abs(noisy - h) / np.abs(h)
        assert np.mean(rel) == pytest.approx(0.1, rel=0.25)

    def test_negative_error_rejected(self):
        with pytest.raises(ValueError):
            apply_csi_error(np.ones((1, 1), dtype=complex), -0.1, np.random.default_rng(0))


class TestVectorizedGainLoops:
    """The per-site vectorization of the old per-antenna loops must be a pure
    refactor: equality against a reference per-antenna walk, draw for draw."""

    @staticmethod
    def _reference_gain_db(scenario, seed, rx_points):
        """The historical per-antenna implementation of large_scale_gain_db,
        replayed on a fresh model with the same seed."""
        from repro.channel import walls
        from repro.channel.pathloss import LogDistancePathLoss
        from repro.topology import geometry

        model = ChannelModel(scenario.deployment, scenario.radio, seed=seed)
        radio = scenario.radio
        pts = geometry.as_points(rx_points)
        pathloss = LogDistancePathLoss.from_radio(radio)
        dists = geometry.pairwise_distances(pts, scenario.deployment.antenna_positions)
        gain = -pathloss.loss_db(dists)
        if radio.wall_loss_db > 0:
            gain -= walls.wall_loss_db(
                pts,
                scenario.deployment.antenna_positions,
                radio.wall_spacing_m,
                radio.wall_loss_db,
                max_walls=radio.max_wall_count,
            )
        for k in range(scenario.deployment.n_antennas):
            field = model._site_fields[model._site_of_antenna[k]]
            gain[:, k] += field.sample(pts)
        gain -= model._cable_loss_db[None, :]
        return gain

    def test_large_scale_gain_matches_per_antenna_reference(self, scenario):
        points = np.random.default_rng(2).uniform(-10, 10, (30, 2))
        vectorized = ChannelModel(
            scenario.deployment, scenario.radio, seed=11
        ).large_scale_gain_db(points)
        reference = self._reference_gain_db(scenario, 11, points)
        np.testing.assert_array_equal(vectorized, reference)

    def test_cas_and_das_site_structures(self):
        # CAS: one shared field; DAS: one per antenna.  Both must match the
        # per-antenna reference exactly.
        env = office_b()
        for mode in (AntennaMode.CAS, AntennaMode.DAS):
            scenario = single_ap_scenario(env, mode, seed=21)
            points = scenario.deployment.client_positions
            vectorized = ChannelModel(
                scenario.deployment, scenario.radio, seed=21
            ).large_scale_gain_db(points)
            reference = self._reference_gain_db(scenario, 21, points)
            np.testing.assert_array_equal(vectorized, reference)

    def test_antenna_cross_power_matches_per_antenna_reference(self, scenario):
        model = ChannelModel(scenario.deployment, scenario.radio, seed=13)
        reference_model = ChannelModel(scenario.deployment, scenario.radio, seed=13)
        pts = scenario.deployment.antenna_positions
        # Reference: recompute the shadowing sum with an explicit antenna loop
        # on an identically-seeded model.
        expected_shadow = np.zeros((len(pts), scenario.deployment.n_antennas))
        for k in range(scenario.deployment.n_antennas):
            field = reference_model._site_fields[reference_model._site_of_antenna[k]]
            expected_shadow[:, k] = field.sample(pts)
        np.testing.assert_array_equal(model.shadowing_db(pts), expected_shadow)
        np.testing.assert_array_equal(
            model.antenna_cross_power_dbm(),
            reference_model.antenna_cross_power_dbm(),
        )
