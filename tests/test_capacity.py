"""SINR / capacity math tests (paper eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.capacity import (
    effective_channel,
    per_antenna_row_power,
    per_stream_column_power,
    sinr_matrix,
    stream_sinrs,
    sum_capacity_bps_hz,
)


class TestEffectiveChannel:
    def test_identity_channel(self):
        h = np.eye(2, dtype=complex)
        v = np.array([[2.0, 0.0], [0.0, 3.0]], dtype=complex)
        np.testing.assert_allclose(effective_channel(h, v), v)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            effective_channel(np.ones((2, 3)), np.ones((2, 2)))


class TestSinr:
    def test_diagonal_channel_no_interference(self):
        h = np.diag([2.0, 3.0]).astype(complex)
        v = np.eye(2, dtype=complex)
        rho = stream_sinrs(h, v, noise_mw=1.0)
        np.testing.assert_allclose(rho, [4.0, 9.0])

    def test_interference_lowers_sinr(self):
        h = np.array([[1.0, 0.5], [0.5, 1.0]], dtype=complex)
        v = np.eye(2, dtype=complex)
        rho = stream_sinrs(h, v, noise_mw=1.0)
        # Desired power 1, interference power 0.25 at each client.
        np.testing.assert_allclose(rho, [1.0 / 1.25, 1.0 / 1.25])

    def test_external_interference_vector(self):
        h = np.diag([2.0, 2.0]).astype(complex)
        v = np.eye(2, dtype=complex)
        clean = stream_sinrs(h, v, 1.0)
        dirty = stream_sinrs(h, v, 1.0, external_interference_mw=np.array([0.0, 3.0]))
        assert dirty[0] == pytest.approx(clean[0])
        assert dirty[1] == pytest.approx(clean[1] / 4.0)

    def test_sinr_matrix_orientation(self):
        # S[i, j] = power of stream i at client j (paper's convention).
        h = np.array([[1.0, 0.0], [0.0, 2.0]], dtype=complex)
        v = np.eye(2, dtype=complex)
        s = sinr_matrix(h, v, 1.0)
        np.testing.assert_allclose(s, [[1.0, 0.0], [0.0, 4.0]])

    def test_nonpositive_noise_rejected(self):
        with pytest.raises(ValueError):
            stream_sinrs(np.eye(2, dtype=complex), np.eye(2, dtype=complex), 0.0)

    def test_nonsquare_pairing_rejected(self):
        with pytest.raises(ValueError):
            stream_sinrs(np.ones((3, 4), dtype=complex), np.ones((4, 2), dtype=complex), 1.0)


class TestCapacity:
    def test_known_value(self):
        # SINR 1 -> 1 bit, SINR 3 -> 2 bits.
        assert sum_capacity_bps_hz([1.0, 3.0]) == pytest.approx(3.0)

    def test_zero_sinr_contributes_zero(self):
        assert sum_capacity_bps_hz([0.0]) == 0.0

    def test_negative_sinr_rejected(self):
        with pytest.raises(ValueError):
            sum_capacity_bps_hz([-0.5])

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=8))
    @settings(max_examples=50)
    def test_monotone_in_each_sinr(self, sinrs):
        base = sum_capacity_bps_hz(sinrs)
        bumped = sum_capacity_bps_hz([s + 1.0 for s in sinrs])
        assert bumped > base


class TestPowerAccounting:
    def test_row_power(self):
        v = np.array([[1.0, 2.0], [0.0, 2.0]], dtype=complex)
        np.testing.assert_allclose(per_antenna_row_power(v), [5.0, 4.0])

    def test_column_power(self):
        v = np.array([[1.0, 2.0], [0.0, 2.0]], dtype=complex)
        np.testing.assert_allclose(per_stream_column_power(v), [1.0, 8.0])

    def test_total_power_consistency(self):
        rng = np.random.default_rng(0)
        v = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        assert per_antenna_row_power(v).sum() == pytest.approx(
            per_stream_column_power(v).sum()
        )
