"""CampaignRunner: exactness vs monolithic runs, caching, resume, CLI."""

import json
import math

import numpy as np
import pytest

from repro.api import Runner, RunSpec
from repro.campaign import (
    CampaignError,
    CampaignJournal,
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
)
from repro.experiments.registry import main


def _quiet_runner(tmp_path, name="camp", **kwargs):
    kwargs.setdefault("progress", False)
    return CampaignRunner(campaign_dir=tmp_path / name, **kwargs)


class TestAggregateExactness:
    def test_sharded_campaign_matches_monolithic_run_exactly(self, tmp_path):
        n = 24
        campaign = CampaignSpec("fig07", n_topologies=n, shard_size=7, seed=3)
        result = _quiet_runner(tmp_path).run(campaign)
        mono = Runner(backend="vectorized").run(
            RunSpec("fig07", n_topologies=n, seed=3)
        )
        cell = result.cells[0]
        assert set(cell.series) == set(mono.series)
        assert cell.n_attempted == cell.n_accepted == n
        for name, flat in mono.series.items():
            flat = np.asarray(flat, dtype=float).ravel()
            agg = cell.series[name]
            assert agg.count == flat.size
            # Bit-exact: ExactSum makes the sharded mean equal the one
            # correctly-rounded mean of the full sample set.
            assert agg.mean == math.fsum(flat.tolist()) / flat.size
            assert agg.min == flat.min()
            assert agg.max == flat.max()
            # Sketch guarantee: within one resolution of an order statistic
            # adjacent to the median rank.
            srt = np.sort(flat)
            rank = 0.5 * (flat.size - 1)
            err = min(
                abs(agg.median - srt[math.floor(rank)]),
                abs(agg.median - srt[math.ceil(rank)]),
            )
            assert err <= campaign.sketch_resolution + 1e-12

    def test_parallel_jobs_report_identical_aggregates(self, tmp_path):
        campaign = CampaignSpec("fig07", n_topologies=12, shard_size=3, seed=1)
        serial = _quiet_runner(tmp_path, "serial", jobs=1).run(campaign)
        parallel = _quiet_runner(tmp_path, "parallel", jobs=2).run(campaign)
        assert serial.aggregates_equal(parallel)

    def test_rejecting_experiment_covers_window_not_count(self, tmp_path):
        # fig15 gates topologies on client placement: shards contribute the
        # accepted subset of their window, and n_accepted <= n_attempted.
        campaign = CampaignSpec("fig15", n_topologies=8, shard_size=4, seed=0)
        result = _quiet_runner(tmp_path).run(campaign)
        cell = result.cells[0]
        assert cell.n_attempted == 8
        assert 0 < cell.n_accepted <= 8
        for agg in cell.series.values():
            assert agg.count > 0


class TestCachingAndResume:
    def test_shared_cache_serves_second_campaign(self, tmp_path):
        campaign = CampaignSpec("fig07", n_topologies=8, shard_size=4, seed=2)
        cache = tmp_path / "shared-cache"
        first = _quiet_runner(tmp_path, "a", cache_dir=cache).run(campaign)
        assert first.notes["n_from_cache"] == 0
        second = _quiet_runner(tmp_path, "b", cache_dir=cache).run(campaign)
        assert second.notes["n_from_cache"] == second.notes["n_shards"]
        assert first.aggregates_equal(second)

    def test_campaigns_share_shards_regardless_of_total(self, tmp_path):
        # The cache key is (spec, window): a 4-topology campaign's shard is
        # the first shard of an 8-topology campaign over the same spec.
        cache = tmp_path / "shared-cache"
        small = CampaignSpec("fig07", n_topologies=4, shard_size=4, seed=2)
        big = CampaignSpec("fig07", n_topologies=8, shard_size=4, seed=2)
        _quiet_runner(tmp_path, "small", cache_dir=cache).run(small)
        result = _quiet_runner(tmp_path, "big", cache_dir=cache).run(big)
        assert result.notes["n_from_cache"] == 1

    def test_resume_completed_campaign_recomputes_nothing(self, tmp_path):
        campaign = CampaignSpec("fig07", n_topologies=8, shard_size=4, seed=0)
        runner = _quiet_runner(tmp_path)
        first = runner.run(campaign)
        journal = CampaignJournal(runner.campaign_dir / "journal.jsonl")
        done_before = len(journal.completed_shards())
        again = _quiet_runner(tmp_path).run(campaign, resume=True)
        assert again.notes["n_resumed"] == again.notes["n_shards"] == done_before
        assert len(journal.completed_shards()) == done_before  # nothing re-ran
        assert first.aggregates_equal(again)

    def test_second_run_without_resume_is_refused(self, tmp_path):
        campaign = CampaignSpec("fig07", n_topologies=4, shard_size=4)
        runner = _quiet_runner(tmp_path)
        runner.run(campaign)
        with pytest.raises(CampaignError, match="resume"):
            _quiet_runner(tmp_path).run(campaign)

    def test_directory_of_a_different_campaign_is_refused(self, tmp_path):
        runner = _quiet_runner(tmp_path)
        runner.run(CampaignSpec("fig07", n_topologies=4, shard_size=4))
        other = CampaignSpec("fig07", n_topologies=8, shard_size=4)
        with pytest.raises(CampaignError, match="different campaign"):
            _quiet_runner(tmp_path).run(other, resume=True)

    def test_resume_with_nothing_to_resume_warns_and_runs(self, tmp_path):
        campaign = CampaignSpec("fig07", n_topologies=4, shard_size=4)
        with pytest.warns(RuntimeWarning, match="nothing to resume"):
            result = _quiet_runner(tmp_path).run(campaign, resume=True)
        assert result.cells[0].n_accepted == 4

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError, match="jobs"):
            CampaignRunner(tmp_path, jobs=0)
        with pytest.raises(ValueError, match="retries"):
            CampaignRunner(tmp_path, retries=-1)
        with pytest.raises(ValueError, match="timeout"):
            CampaignRunner(tmp_path, timeout_s=0.0)


class TestResultRoundTrip:
    def test_save_load_and_result_json(self, tmp_path):
        campaign = CampaignSpec(
            "fig09",
            n_topologies=4,
            shard_size=2,
            axes={"precoder": ["naive", "balanced"]},
        )
        runner = _quiet_runner(tmp_path)
        result = runner.run(campaign)
        # The runner writes result.json into the campaign dir on its own.
        on_disk = CampaignResult.load(runner.campaign_dir / "result.json")
        assert on_disk.aggregates_equal(result)
        clone = CampaignResult.from_json(result.to_json())
        assert clone.aggregates_equal(result)
        assert clone.campaign == campaign

    def test_cell_lookup(self, tmp_path):
        campaign = CampaignSpec(
            "fig09",
            n_topologies=4,
            shard_size=4,
            axes={"precoder": ["naive", "balanced"], "antenna_counts": [[2], [4]]},
        )
        result = _quiet_runner(tmp_path).run(campaign)
        cell = result.cell(precoder="naive", antenna_counts=[4])
        assert cell.coords == {"antenna_counts": [4], "precoder": "naive"}
        with pytest.raises(KeyError, match="no cell matches"):
            result.cell(precoder="wmmse")
        with pytest.raises(KeyError, match="more coordinates"):
            result.cell(precoder="naive")
        assert "midas_4x4" in result.series_names()
        assert "precoder=naive" in result.summary()

    def test_sketch_resolution_flows_into_aggregates(self, tmp_path):
        campaign = CampaignSpec(
            "fig07", n_topologies=4, shard_size=4, sketch_resolution=1 / 32
        )
        result = _quiet_runner(tmp_path).run(campaign)
        for agg in result.cells[0].series.values():
            assert agg.sketch.resolution == 1 / 32

    def test_unsupported_format_version_rejected(self):
        payload = {"format_version": 99, "campaign": {}, "cells": []}
        with pytest.raises(ValueError, match="format version"):
            CampaignResult.from_json(json.dumps(payload))


class TestCli:
    def test_campaign_subcommand_end_to_end(self, tmp_path, capsys):
        camp_dir = tmp_path / "cli-camp"
        rc = main(
            [
                "campaign",
                "fig07",
                "--campaign-dir",
                str(camp_dir),
                "--topologies",
                "6",
                "--shard-size",
                "3",
                "--quiet",
                "--out",
                str(tmp_path / "extra.json"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign fig07" in out
        assert "das_snr_db" in out
        result = CampaignResult.load(camp_dir / "result.json")
        extra = CampaignResult.load(tmp_path / "extra.json")
        assert result.aggregates_equal(extra)

    def test_campaign_subcommand_axes_and_resume(self, tmp_path, capsys):
        args = [
            "campaign",
            "fig09",
            "--campaign-dir",
            str(tmp_path / "cli-camp"),
            "--topologies",
            "4",
            "--shard-size",
            "2",
            "--axis",
            "precoder=naive,balanced",
            "--param",
            "antenna_counts=[2]",
            "--quiet",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "precoder=naive" in first and "precoder=balanced" in first
        assert main(args + ["--resume"]) == 0
        result = CampaignResult.load(tmp_path / "cli-camp" / "result.json")
        assert result.notes["n_resumed"] == result.notes["n_shards"]
        assert result.campaign.params == {"antenna_counts": [2]}
        assert result.campaign.axes == {"precoder": ["naive", "balanced"]}

    def test_classic_single_run_cli_still_works(self, tmp_path, capsys):
        rc = main(["fig03", "--topologies", "2", "--seed", "1"])
        assert rc == 0
        assert "fig03" in capsys.readouterr().out
