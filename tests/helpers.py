"""Shared non-fixture test helpers.

Kept out of ``conftest.py`` so test modules can import them explicitly --
``from conftest import ...`` is ambiguous when several conftests (tests/,
benchmarks/) are on ``sys.path``.
"""

from __future__ import annotations

import numpy as np


def random_channel(seed: int, n_clients: int = 4, n_antennas: int = 4) -> np.ndarray:
    """A well-conditioned random complex channel with DAS-like row scales."""
    rng = np.random.default_rng(seed)
    scales = 10 ** rng.uniform(-5.0, -3.0, size=(n_clients, 1))
    fading = (
        rng.standard_normal((n_clients, n_antennas))
        + 1j * rng.standard_normal((n_clients, n_antennas))
    ) / np.sqrt(2)
    return scales * fading
