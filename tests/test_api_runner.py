"""Runner execution: param resolution, determinism, caching, CLI."""

import numpy as np
import pytest

from repro.api import RunResult, Runner, RunSpec, UnknownNameError, resolve_params
from repro.api.experiments import get_experiment_def
from repro.experiments.registry import main


class TestResolveParams:
    def test_defaults_apply(self):
        defn = get_experiment_def("fig03")
        params = resolve_params(defn, RunSpec("fig03"))
        assert params["n_topologies"] == 60
        assert params["seed"] == 0
        assert params["environment"] == "office_b"

    def test_spec_overrides_defaults(self):
        defn = get_experiment_def("fig03")
        params = resolve_params(
            defn, RunSpec("fig03", n_topologies=3, seed=9, environment="office_a")
        )
        assert params["n_topologies"] == 3
        assert params["seed"] == 9
        assert params["environment"] == "office_a"

    def test_unknown_param_rejected_with_allowed_names(self):
        defn = get_experiment_def("fig03")
        with pytest.raises(ValueError, match="n_antennas"):
            resolve_params(defn, RunSpec("fig03", params={"bogus": 1}))

    def test_precoder_override_requires_declared_param(self):
        with pytest.raises(ValueError, match="precoder"):
            resolve_params(
                get_experiment_def("fig03"), RunSpec("fig03", precoder="wmmse")
            )
        params = resolve_params(
            get_experiment_def("fig09"), RunSpec("fig09", precoder="wmmse")
        )
        assert params["precoder"] == "wmmse"

    def test_unknown_precoder_lists_registered(self):
        with pytest.raises(UnknownNameError, match="balanced"):
            resolve_params(
                get_experiment_def("fig09"), RunSpec("fig09", precoder="magic")
            )

    def test_unknown_environment_fails_in_parent(self):
        # Validated before any worker runs, so jobs>1 gets the clean error
        # instead of a broken pool.
        with pytest.raises(UnknownNameError, match="office_b"):
            resolve_params(
                get_experiment_def("fig03"), RunSpec("fig03", environment="ofice_b")
            )

    def test_unknown_experiment_lists_registered(self):
        with pytest.raises(UnknownNameError, match="fig03"):
            Runner().run(RunSpec("not_an_experiment"))


class TestRunnerExecution:
    def test_serial_result_shape(self):
        result = Runner().run(RunSpec("fig03", n_topologies=2, seed=1))
        assert isinstance(result, RunResult)
        assert set(result.series) == {"cas_drop", "das_drop"}
        assert result.spec.experiment == "fig03"

    def test_serial_vs_parallel_identical(self):
        spec = RunSpec("fig03", n_topologies=3, seed=5)
        serial = Runner(jobs=1).run(spec)
        parallel = Runner(jobs=2).run(spec)
        for key in serial.series:
            np.testing.assert_array_equal(serial.series[key], parallel.series[key])

    def test_batch_size_does_not_change_results(self):
        spec = RunSpec("fig03", n_topologies=3, seed=5)
        small = Runner(batch_size=1).run(spec)
        large = Runner(batch_size=32).run(spec)
        for key in small.series:
            np.testing.assert_array_equal(small.series[key], large.series[key])

    def test_matches_legacy_entry_point(self):
        from repro.experiments.fig03_naive_drop import run

        spec_result = Runner().run(RunSpec("fig03", n_topologies=2, seed=4))
        with pytest.warns(DeprecationWarning):
            legacy = run(n_topologies=2, seed=4)
        np.testing.assert_array_equal(
            spec_result.series["das_drop"], legacy.series["das_drop"]
        )

    def test_bad_runner_config_rejected(self):
        with pytest.raises(ValueError):
            Runner(jobs=0)
        with pytest.raises(ValueError):
            Runner(batch_size=0)


class TestRunnerCache:
    def test_cache_round_trip(self, tmp_path):
        spec = RunSpec("fig03", n_topologies=2, seed=2)
        runner = Runner(cache_dir=tmp_path)
        first = runner.run(spec)
        cached_files = list(tmp_path.glob("fig03-*.json"))
        assert len(cached_files) == 1
        second = runner.run(spec)
        for key in first.series:
            np.testing.assert_array_equal(first.series[key], second.series[key])

    def test_cache_hit_skips_computation(self, tmp_path, monkeypatch):
        spec = RunSpec("fig03", n_topologies=2, seed=2)
        runner = Runner(cache_dir=tmp_path)
        runner.run(spec)

        def boom(*args, **kwargs):
            raise AssertionError("sweep ran despite cache hit")

        monkeypatch.setattr(Runner, "_sweep", boom)
        result = runner.run(spec)
        assert set(result.series) == {"cas_drop", "das_drop"}

    def test_different_specs_get_different_entries(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        runner.run(RunSpec("fig03", n_topologies=2, seed=2))
        runner.run(RunSpec("fig03", n_topologies=2, seed=3))
        assert len(list(tmp_path.glob("fig03-*.json"))) == 2

    def test_explicit_default_shares_cache_entry(self, tmp_path):
        # The key hashes resolved params, so relying on a default and
        # stating it explicitly are the same cached computation.
        runner = Runner(cache_dir=tmp_path)
        runner.run(RunSpec("fig03", n_topologies=2, seed=2))
        runner.run(RunSpec("fig03", n_topologies=2, seed=2, environment="office_b"))
        assert len(list(tmp_path.glob("fig03-*.json"))) == 1

    def test_package_version_invalidates_cache(self, tmp_path, monkeypatch):
        # Entries must not survive algorithm changes across releases: the
        # same spec under a different package version gets a fresh key.
        import repro.api.runner as runner_mod

        spec = RunSpec("fig03", n_topologies=2, seed=2)
        Runner(cache_dir=tmp_path).run(spec)
        assert len(list(tmp_path.glob("fig03-*.json"))) == 1
        monkeypatch.setattr(runner_mod, "_PACKAGE_VERSION", "0.0.0-test")
        Runner(cache_dir=tmp_path).run(spec)
        assert len(list(tmp_path.glob("fig03-*.json"))) == 2


class TestVectorizedFallback:
    def test_missing_batch_hook_warns_with_experiment_name(self):
        from repro.api.experiments import ExperimentDef, register_experiment
        from repro.api.registry import EXPERIMENTS
        from repro.api.result import ExperimentResult

        name = "_loop_only_probe"
        register_experiment(
            ExperimentDef(
                name=name,
                description="loop-only probe experiment",
                build=lambda seed, params: {"x": float(seed % 7)},
                finalize=lambda outcomes, params: ExperimentResult(
                    name=name,
                    description="probe",
                    series={"x": np.asarray([o["x"] for o in outcomes])},
                    params={},
                ),
                defaults={"n_topologies": 2},
            )
        )
        try:
            with pytest.warns(RuntimeWarning, match=name):
                Runner(backend="vectorized").run(RunSpec(name, n_topologies=2))
        finally:
            EXPERIMENTS._items.pop(name, None)

    def test_batched_experiment_does_not_warn(self, recwarn):
        Runner(backend="vectorized").run(RunSpec("fig03", n_topologies=2, seed=1))
        assert not [
            w for w in recwarn.list if issubclass(w.category, RuntimeWarning)
        ]


class TestLegacyEnvironments:
    def test_custom_environment_instance_respected(self):
        import numpy as np

        from repro.config import RadioConfig
        from repro.experiments.fig03_naive_drop import run
        from repro.topology.scenarios import OfficeEnvironment, office_b

        custom = OfficeEnvironment(
            name="office_b", radio=RadioConfig(pathloss_exponent=2.0)
        )
        with pytest.warns(DeprecationWarning):
            modified = run(n_topologies=2, seed=0, environment=custom)
            stock = run(n_topologies=2, seed=0, environment=office_b())
        # The old API honored arbitrary instances; the shim must too.
        assert not np.array_equal(
            modified.series["das_drop"], stock.series["das_drop"]
        )

    def test_unregistered_environment_name_works(self):
        from repro.config import RadioConfig
        from repro.experiments.fig03_naive_drop import run
        from repro.topology.scenarios import OfficeEnvironment

        env = OfficeEnvironment(
            name="warehouse", radio=RadioConfig(pathloss_exponent=4.5)
        )
        with pytest.warns(DeprecationWarning):
            result = run(n_topologies=1, seed=0, environment=env)
        assert set(result.series) == {"cas_drop", "das_drop"}


class TestCli:
    def test_jobs_and_out_smoke(self, tmp_path, capsys):
        out = tmp_path / "fig03.json"
        code = main(
            ["fig03", "--topologies", "2", "--seed", "1", "--jobs", "2",
             "--out", str(out)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "fig03" in printed and "median" in printed
        restored = RunResult.load(out)
        assert restored.spec.seed == 1
        assert set(restored.series) == {"cas_drop", "das_drop"}

    def test_npz_out(self, tmp_path):
        out = tmp_path / "fig03.npz"
        assert main(["fig03", "--topologies", "2", "--out", str(out)]) == 0
        assert RunResult.load(out).spec.experiment == "fig03"

    def test_cache_dir_flag(self, tmp_path):
        cache = tmp_path / "cache"
        argv = ["fig03", "--topologies", "2", "--cache-dir", str(cache)]
        assert main(argv) == 0
        assert len(list(cache.glob("fig03-*.json"))) == 1
        assert main(argv) == 0  # second run served from cache

    def test_precoder_flag(self, capsys):
        code = main(
            ["fig09", "--topologies", "1", "--seed", "0", "--precoder", "naive"]
        )
        assert code == 0
        assert "fig08_09" in capsys.readouterr().out
