"""Runner execution: param resolution, determinism, caching, CLI."""

import numpy as np
import pytest

from repro.api import RunResult, Runner, RunSpec, UnknownNameError, resolve_params
from repro.api.experiments import get_experiment_def
from repro.experiments.registry import main


class TestResolveParams:
    def test_defaults_apply(self):
        defn = get_experiment_def("fig03")
        params = resolve_params(defn, RunSpec("fig03"))
        assert params["n_topologies"] == 60
        assert params["seed"] == 0
        assert params["environment"] == "office_b"

    def test_spec_overrides_defaults(self):
        defn = get_experiment_def("fig03")
        params = resolve_params(
            defn, RunSpec("fig03", n_topologies=3, seed=9, environment="office_a")
        )
        assert params["n_topologies"] == 3
        assert params["seed"] == 9
        assert params["environment"] == "office_a"

    def test_unknown_param_rejected_with_allowed_names(self):
        defn = get_experiment_def("fig03")
        with pytest.raises(ValueError, match="n_antennas"):
            resolve_params(defn, RunSpec("fig03", params={"bogus": 1}))

    def test_precoder_override_requires_declared_param(self):
        with pytest.raises(ValueError, match="precoder"):
            resolve_params(
                get_experiment_def("fig03"), RunSpec("fig03", precoder="wmmse")
            )
        params = resolve_params(
            get_experiment_def("fig09"), RunSpec("fig09", precoder="wmmse")
        )
        assert params["precoder"] == "wmmse"

    def test_unknown_precoder_lists_registered(self):
        with pytest.raises(UnknownNameError, match="balanced"):
            resolve_params(
                get_experiment_def("fig09"), RunSpec("fig09", precoder="magic")
            )

    def test_unknown_environment_fails_in_parent(self):
        # Validated before any worker runs, so jobs>1 gets the clean error
        # instead of a broken pool.
        with pytest.raises(UnknownNameError, match="office_b"):
            resolve_params(
                get_experiment_def("fig03"), RunSpec("fig03", environment="ofice_b")
            )

    def test_unknown_experiment_lists_registered(self):
        with pytest.raises(UnknownNameError, match="fig03"):
            Runner().run(RunSpec("not_an_experiment"))


class TestRunnerExecution:
    def test_serial_result_shape(self):
        result = Runner().run(RunSpec("fig03", n_topologies=2, seed=1))
        assert isinstance(result, RunResult)
        assert set(result.series) == {"cas_drop", "das_drop"}
        assert result.spec.experiment == "fig03"

    def test_serial_vs_parallel_identical(self):
        spec = RunSpec("fig03", n_topologies=3, seed=5)
        serial = Runner(jobs=1).run(spec)
        parallel = Runner(jobs=2).run(spec)
        for key in serial.series:
            np.testing.assert_array_equal(serial.series[key], parallel.series[key])

    def test_batch_size_does_not_change_results(self):
        spec = RunSpec("fig03", n_topologies=3, seed=5)
        small = Runner(batch_size=1).run(spec)
        large = Runner(batch_size=32).run(spec)
        for key in small.series:
            np.testing.assert_array_equal(small.series[key], large.series[key])

    def test_matches_legacy_entry_point(self):
        from repro.experiments.fig03_naive_drop import run

        spec_result = Runner().run(RunSpec("fig03", n_topologies=2, seed=4))
        with pytest.warns(DeprecationWarning):
            legacy = run(n_topologies=2, seed=4)
        np.testing.assert_array_equal(
            spec_result.series["das_drop"], legacy.series["das_drop"]
        )

    def test_bad_runner_config_rejected(self):
        with pytest.raises(ValueError):
            Runner(jobs=0)
        with pytest.raises(ValueError):
            Runner(batch_size=0)


class TestRunnerCache:
    def test_cache_round_trip(self, tmp_path):
        spec = RunSpec("fig03", n_topologies=2, seed=2)
        runner = Runner(cache_dir=tmp_path)
        first = runner.run(spec)
        cached_files = list(tmp_path.glob("fig03-*.json"))
        assert len(cached_files) == 1
        second = runner.run(spec)
        for key in first.series:
            np.testing.assert_array_equal(first.series[key], second.series[key])

    def test_cache_hit_skips_computation(self, tmp_path, monkeypatch):
        spec = RunSpec("fig03", n_topologies=2, seed=2)
        runner = Runner(cache_dir=tmp_path)
        runner.run(spec)

        def boom(*args, **kwargs):
            raise AssertionError("sweep ran despite cache hit")

        monkeypatch.setattr(Runner, "_sweep", boom)
        result = runner.run(spec)
        assert set(result.series) == {"cas_drop", "das_drop"}

    def test_different_specs_get_different_entries(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        runner.run(RunSpec("fig03", n_topologies=2, seed=2))
        runner.run(RunSpec("fig03", n_topologies=2, seed=3))
        assert len(list(tmp_path.glob("fig03-*.json"))) == 2

    def test_explicit_default_shares_cache_entry(self, tmp_path):
        # The key hashes resolved params, so relying on a default and
        # stating it explicitly are the same cached computation.
        runner = Runner(cache_dir=tmp_path)
        runner.run(RunSpec("fig03", n_topologies=2, seed=2))
        runner.run(RunSpec("fig03", n_topologies=2, seed=2, environment="office_b"))
        assert len(list(tmp_path.glob("fig03-*.json"))) == 1

    def test_package_version_invalidates_cache(self, tmp_path, monkeypatch):
        # Entries must not survive algorithm changes across releases: the
        # same spec under a different package version gets a fresh key.
        import repro.api.runner as runner_mod

        spec = RunSpec("fig03", n_topologies=2, seed=2)
        Runner(cache_dir=tmp_path).run(spec)
        assert len(list(tmp_path.glob("fig03-*.json"))) == 1
        monkeypatch.setattr(runner_mod, "_PACKAGE_VERSION", "0.0.0-test")
        Runner(cache_dir=tmp_path).run(spec)
        assert len(list(tmp_path.glob("fig03-*.json"))) == 2


class TestVectorizedFallback:
    def test_missing_batch_hook_warns_with_experiment_name(self):
        from repro.api.experiments import ExperimentDef, register_experiment
        from repro.api.registry import EXPERIMENTS
        from repro.api.result import ExperimentResult

        name = "_loop_only_probe"
        register_experiment(
            ExperimentDef(
                name=name,
                description="loop-only probe experiment",
                build=lambda seed, params: {"x": float(seed % 7)},
                finalize=lambda outcomes, params: ExperimentResult(
                    name=name,
                    description="probe",
                    series={"x": np.asarray([o["x"] for o in outcomes])},
                    params={},
                ),
                defaults={"n_topologies": 2},
            )
        )
        try:
            with pytest.warns(RuntimeWarning, match=name):
                Runner(backend="vectorized").run(RunSpec(name, n_topologies=2))
        finally:
            EXPERIMENTS._items.pop(name, None)

    def test_batched_experiment_does_not_warn(self, recwarn):
        Runner(backend="vectorized").run(RunSpec("fig03", n_topologies=2, seed=1))
        assert not [
            w for w in recwarn.list if issubclass(w.category, RuntimeWarning)
        ]


class TestLegacyEnvironments:
    def test_custom_environment_instance_respected(self):
        import numpy as np

        from repro.config import RadioConfig
        from repro.experiments.fig03_naive_drop import run
        from repro.topology.scenarios import OfficeEnvironment, office_b

        custom = OfficeEnvironment(
            name="office_b", radio=RadioConfig(pathloss_exponent=2.0)
        )
        with pytest.warns(DeprecationWarning):
            modified = run(n_topologies=2, seed=0, environment=custom)
            stock = run(n_topologies=2, seed=0, environment=office_b())
        # The old API honored arbitrary instances; the shim must too.
        assert not np.array_equal(
            modified.series["das_drop"], stock.series["das_drop"]
        )

    def test_unregistered_environment_name_works(self):
        from repro.config import RadioConfig
        from repro.experiments.fig03_naive_drop import run
        from repro.topology.scenarios import OfficeEnvironment

        env = OfficeEnvironment(
            name="warehouse", radio=RadioConfig(pathloss_exponent=4.5)
        )
        with pytest.warns(DeprecationWarning):
            result = run(n_topologies=1, seed=0, environment=env)
        assert set(result.series) == {"cas_drop", "das_drop"}


class TestCli:
    def test_jobs_and_out_smoke(self, tmp_path, capsys):
        out = tmp_path / "fig03.json"
        code = main(
            ["fig03", "--topologies", "2", "--seed", "1", "--jobs", "2",
             "--out", str(out)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "fig03" in printed and "median" in printed
        restored = RunResult.load(out)
        assert restored.spec.seed == 1
        assert set(restored.series) == {"cas_drop", "das_drop"}

    def test_npz_out(self, tmp_path):
        out = tmp_path / "fig03.npz"
        assert main(["fig03", "--topologies", "2", "--out", str(out)]) == 0
        assert RunResult.load(out).spec.experiment == "fig03"

    def test_cache_dir_flag(self, tmp_path):
        cache = tmp_path / "cache"
        argv = ["fig03", "--topologies", "2", "--cache-dir", str(cache)]
        assert main(argv) == 0
        assert len(list(cache.glob("fig03-*.json"))) == 1
        assert main(argv) == 0  # second run served from cache

    def test_precoder_flag(self, capsys):
        code = main(
            ["fig09", "--topologies", "1", "--seed", "0", "--precoder", "naive"]
        )
        assert code == 0
        assert "fig08_09" in capsys.readouterr().out


class TestCacheRobustness:
    """Unreadable or torn cache entries must behave as cache misses."""

    def _first_entry(self, cache_dir, pattern):
        (path,) = list(cache_dir.glob(pattern))
        return path

    def test_truncated_json_entry_recomputed_and_rewritten(self, tmp_path):
        spec = RunSpec("fig03", n_topologies=2, seed=2)
        runner = Runner(cache_dir=tmp_path)
        good = runner.run(spec)
        path = self._first_entry(tmp_path, "fig03-*.json")
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.warns(RuntimeWarning, match="unreadable"):
            recovered = runner.run(spec)
        for key in good.series:
            np.testing.assert_array_equal(good.series[key], recovered.series[key])
        # The poisoned entry was rewritten: the next run loads it silently.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", RuntimeWarning)
            runner.run(spec)

    def test_truncated_npz_entry_recomputed(self, tmp_path):
        spec = RunSpec("fig03", n_topologies=2, seed=2)
        runner = Runner(cache_dir=tmp_path, cache_format="npz")
        good = runner.run(spec)
        path = self._first_entry(tmp_path, "fig03-*.npz")
        path.write_bytes(path.read_bytes()[:40])  # torn mid-header
        with pytest.warns(RuntimeWarning, match="unreadable"):
            recovered = runner.run(spec)
        for key in good.series:
            np.testing.assert_array_equal(good.series[key], recovered.series[key])

    def test_garbage_entry_recomputed(self, tmp_path):
        spec = RunSpec("fig03", n_topologies=2, seed=2)
        runner = Runner(cache_dir=tmp_path)
        runner.run(spec)
        self._first_entry(tmp_path, "fig03-*.json").write_text("not json {")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            runner.run(spec)


class TestAtomicSave:
    def test_save_leaves_no_temp_siblings(self, tmp_path):
        result = Runner().run(RunSpec("fig03", n_topologies=2, seed=1))
        for name in ("out.json", "out.npz"):
            path = result.save(tmp_path / name)
            assert path.exists()
            leftovers = [
                p for p in tmp_path.iterdir() if p.name not in ("out.json", "out.npz")
            ]
            assert leftovers == []
            assert RunResult.load(path).spec == result.spec

    def test_save_creates_parent_directories(self, tmp_path):
        result = Runner().run(RunSpec("fig03", n_topologies=2, seed=1))
        nested = tmp_path / "a" / "b" / "out.npz"
        result.save(nested)
        assert RunResult.load(nested).spec == result.spec


class TestRunWindow:
    def test_window_union_equals_monolithic_run(self):
        runner = Runner(backend="vectorized")
        mono = runner.run(RunSpec("fig07", n_topologies=10, seed=4))
        parts = [
            runner.run_window(RunSpec("fig07", seed=4), 0, 4),
            runner.run_window(RunSpec("fig07", seed=4), 4, 4),
            runner.run_window(RunSpec("fig07", seed=4), 8, 2),
        ]
        for key in mono.series:
            glued = np.concatenate([np.asarray(p.series[key]) for p in parts])
            np.testing.assert_array_equal(glued, np.asarray(mono.series[key]))

    def test_rejecting_experiment_windows_partition_consistently(self):
        # fig15 rejects some placements: two adjacent windows must accept
        # exactly what one window covering both does.
        runner = Runner(backend="vectorized")
        whole = runner.run_window(RunSpec("fig15"), 0, 12)
        parts = [
            runner.run_window(RunSpec("fig15"), 0, 6),
            runner.run_window(RunSpec("fig15"), 6, 6),
        ]
        assert whole.notes["n_accepted"] == sum(
            p.notes["n_accepted"] for p in parts
        )
        for key in whole.series:
            glued = np.concatenate([np.asarray(p.series[key]) for p in parts])
            np.testing.assert_array_equal(glued, np.asarray(whole.series[key]))

    def test_window_notes_and_validation(self):
        runner = Runner()
        result = runner.run_window(RunSpec("fig07", seed=1), 3, 2)
        assert result.notes["seed_window"] == [3, 2]
        assert result.notes["n_accepted"] == 2
        with pytest.raises(ValueError, match="seed_start"):
            runner.run_window(RunSpec("fig07"), -1, 2)
        with pytest.raises(ValueError, match="seed_count"):
            runner.run_window(RunSpec("fig07"), 0, 0)

    def test_window_cache_key_distinct_from_full_run(self, tmp_path):
        runner = Runner(cache_dir=tmp_path)
        spec = RunSpec("fig07", seed=1)
        runner.run_window(spec, 0, 2)
        runner.run(RunSpec("fig07", n_topologies=2, seed=1))
        # Same resolved params, but the window is folded into the key.
        assert len(list(tmp_path.glob("fig07-*.json"))) == 2
        cached = runner.run_window(spec, 0, 2)  # second call is a cache hit
        assert cached.notes["seed_window"] == [0, 2]


class TestRunMany:
    def test_shared_pool_results_bit_identical_to_serial(self, tmp_path):
        specs = [
            RunSpec("fig03", n_topologies=2, seed=5),
            RunSpec("fig07", n_topologies=3, seed=5),
            RunSpec("fig03", n_topologies=2, seed=6),
        ]
        serial = [Runner(jobs=1).run(s) for s in specs]
        shared = Runner(jobs=2).run_many(specs)
        assert len(shared) == len(serial)
        for a, b in zip(serial, shared):
            assert set(a.series) == set(b.series)
            for key in a.series:
                np.testing.assert_array_equal(a.series[key], b.series[key])

    def test_shared_pool_cleared_after_run_many(self):
        runner = Runner(jobs=2)
        runner.run_many([RunSpec("fig03", n_topologies=2, seed=1)] * 2)
        assert runner._shared_pool is None

    def test_run_many_serial_path(self):
        runner = Runner(jobs=1)
        results = runner.run_many([RunSpec("fig03", n_topologies=2, seed=1)])
        assert len(results) == 1
