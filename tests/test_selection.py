"""DRR client selection tests (paper §3.2.5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection import (
    DeficitRoundRobin,
    SelectionOutcome,
    select_clients_for_antennas,
)
from repro.core.tagging import TagTable


class TestDrrPick:
    def test_largest_deficit_wins(self):
        drr = DeficitRoundRobin(3)
        drr.settle([0], [1, 2])  # 0 pays, 1 and 2 accrue
        assert drr.pick([0, 1, 2]) in (1, 2)

    def test_tie_breaks_to_lowest_index(self):
        drr = DeficitRoundRobin(3)
        assert drr.pick([2, 1]) == 1

    def test_empty_candidates(self):
        assert DeficitRoundRobin(2).pick([]) is None

    def test_rejects_zero_clients(self):
        with pytest.raises(ValueError):
            DeficitRoundRobin(0)


class TestDrrSettle:
    def test_paper_update_rule(self):
        # n=2 streams served, m=2 backlogged losers: losers gain nT/m = 1 each.
        drr = DeficitRoundRobin(4)
        drr.settle([0, 1], [2, 3], txop_units=1.0)
        np.testing.assert_allclose(drr.counters, [-1.0, -1.0, 1.0, 1.0])

    def test_counter_conservation(self):
        drr = DeficitRoundRobin(5)
        drr.settle([0, 1, 2], [3, 4], txop_units=2.0)
        assert drr.counters.sum() == pytest.approx(0.0)

    def test_no_losers_no_credit(self):
        drr = DeficitRoundRobin(2)
        drr.settle([0, 1], [], txop_units=1.0)
        np.testing.assert_allclose(drr.counters, [-1.0, -1.0])

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            DeficitRoundRobin(3).settle([0], [0, 1])

    def test_credit_adds_waiting_airtime(self):
        drr = DeficitRoundRobin(3)
        drr.credit([0, 2], txop_units=1.5)
        np.testing.assert_allclose(drr.counters, [1.5, 0.0, 1.5])
        drr.credit([], txop_units=1.0)  # no clients, no change
        np.testing.assert_allclose(drr.counters, [1.5, 0.0, 1.5])

    def test_long_run_fairness(self):
        # Two clients alternate single-stream service: counters stay bounded
        # and both get half the service.
        drr = DeficitRoundRobin(2)
        served = [0, 0]
        for __ in range(200):
            pick = drr.pick([0, 1])
            served[pick] += 1
            drr.settle([pick], [1 - pick])
        assert abs(served[0] - served[1]) <= 1
        assert np.max(np.abs(drr.counters)) < 5.0

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=50, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_fairness_property(self, n_clients, rounds):
        drr = DeficitRoundRobin(n_clients)
        counts = np.zeros(n_clients)
        for __ in range(rounds):
            pick = drr.pick(range(n_clients))
            counts[pick] += 1
            drr.settle([pick], [c for c in range(n_clients) if c != pick])
        assert counts.max() - counts.min() <= 2


class TestAntennaSpecificSelection:
    RSSI = np.array(
        [
            [-50.0, -60.0, -70.0, -80.0],
            [-80.0, -50.0, -60.0, -70.0],
            [-70.0, -80.0, -50.0, -60.0],
            [-60.0, -70.0, -80.0, -50.0],
        ]
    )

    def test_one_client_per_antenna(self):
        tags = TagTable.from_rssi(self.RSSI, tag_width=2)
        drr = DeficitRoundRobin(4)
        outcome = select_clients_for_antennas([0, 1, 2, 3], tags, drr, range(4))
        assert len(outcome.clients) == len(set(outcome.clients))
        assert len(outcome.antenna_client_pairs) == 4

    def test_respects_tags(self):
        tags = TagTable.from_rssi(self.RSSI, tag_width=2)
        drr = DeficitRoundRobin(4)
        outcome = select_clients_for_antennas([1], tags, drr, range(4))
        assert outcome.clients[0] in (0, 1)  # only clients tagged to antenna 1

    def test_respects_backlog(self):
        tags = TagTable.from_rssi(self.RSSI, tag_width=2)
        drr = DeficitRoundRobin(4)
        outcome = select_clients_for_antennas([0, 1], tags, drr, [1])
        assert outcome.clients == [1]

    def test_unmatched_antenna_skipped(self):
        # Antenna 3 has tags from clients 2 and 3 only; if both are taken by
        # earlier antennas the antenna stays unpaired.
        tags = TagTable.from_rssi(self.RSSI, tag_width=2)
        drr = DeficitRoundRobin(4)
        outcome = select_clients_for_antennas([2, 3], tags, drr, [2, 3])
        assert len(outcome.antenna_client_pairs) == 2

    def test_deficit_steers_choice(self):
        tags = TagTable.from_rssi(self.RSSI, tag_width=2)
        drr = DeficitRoundRobin(4)
        drr.settle([0], [1, 2, 3])  # client 0 already served
        outcome = select_clients_for_antennas([0], tags, drr, range(4))
        # Antenna 0's tagged clients are 0 and 3; 3 now has higher deficit.
        assert outcome.clients == [3]

    def test_outcome_accessors(self):
        outcome = SelectionOutcome(antenna_client_pairs=[(2, 1), (0, 3)])
        assert outcome.antennas == [2, 0]
        assert outcome.clients == [1, 3]
