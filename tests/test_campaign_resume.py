"""Crash-resume: a campaign survives kill -9 and never redoes finished shards."""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignResult, CampaignRunner, CampaignSpec

_SRC = str(Path(__file__).resolve().parent.parent / "src")

# Sized so one shard takes ~0.1s: the campaign is comfortably alive when
# the signal lands, and the whole test stays in the seconds range.
_EXPERIMENT = "fig07"
_TOPOLOGIES = 3200
_SHARD_SIZE = 200  # -> 16 shards


def _campaign_argv(campaign_dir, resume=False):
    argv = [
        sys.executable,
        "-m",
        "repro.experiments",
        "campaign",
        _EXPERIMENT,
        "--campaign-dir",
        str(campaign_dir),
        "--topologies",
        str(_TOPOLOGIES),
        "--shard-size",
        str(_SHARD_SIZE),
        "--jobs",
        "1",
    ]
    if resume:
        argv.append("--resume")
    return argv


def _journal_events(campaign_dir):
    path = Path(campaign_dir) / "journal.jsonl"
    if not path.exists():
        return []
    events = []
    for line in path.read_text().splitlines():
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            break  # torn tail from the kill
    return events


def _done_keys(events):
    return [e["shard"] for e in events if e["event"] == "shard_done"]


@pytest.mark.slow
def test_sigkilled_campaign_resumes_without_recomputing(tmp_path):
    campaign_dir = tmp_path / "campaign"
    env = dict(os.environ, PYTHONPATH=_SRC)

    # Start the campaign, wait until some shards have landed in the
    # journal, then kill -9 the process mid-flight.
    proc = subprocess.Popen(
        _campaign_argv(campaign_dir),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 120.0
    try:
        while len(_done_keys(_journal_events(campaign_dir))) < 2:
            assert time.monotonic() < deadline, "campaign produced no shards"
            assert proc.poll() is None, "campaign finished before it was killed"
            time.sleep(0.01)
    finally:
        if proc.poll() is None:
            proc.kill()
    proc.wait(timeout=30)

    events = _journal_events(campaign_dir)
    done_before_kill = _done_keys(events)
    assert len(done_before_kill) >= 2
    assert not any(e["event"] == "campaign_done" for e in events), (
        "campaign completed before the kill; shrink the shard size"
    )

    # Resume through the CLI; it must run to completion.
    completed = subprocess.run(
        _campaign_argv(campaign_dir, resume=True),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr

    # No shard completed before the kill was executed again: its key
    # appears exactly once in the journal, and the resumed process counted
    # it as resumed rather than recomputed.
    events = _journal_events(campaign_dir)
    final_keys = _done_keys(events)
    expected_shards = -(-_TOPOLOGIES // _SHARD_SIZE)
    assert len(final_keys) == expected_shards
    assert len(set(final_keys)) == expected_shards
    for key in done_before_kill:
        assert final_keys.count(key) == 1
    assert any(e["event"] == "campaign_done" for e in events)

    result = CampaignResult.load(campaign_dir / "result.json")
    assert result.notes["n_resumed"] == len(done_before_kill)

    # The interrupted-and-resumed aggregates are bit-identical to an
    # uninterrupted run in a fresh directory (fresh cache too).
    clean = CampaignRunner(tmp_path / "clean", progress=False).run(
        CampaignSpec(_EXPERIMENT, n_topologies=_TOPOLOGIES, shard_size=_SHARD_SIZE)
    )
    assert result.aggregates_equal(clean)
