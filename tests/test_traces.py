"""Channel trace record/replay tests."""

import numpy as np
import pytest

from repro.channel.model import ChannelModel
from repro.channel.traces import ChannelTrace, record_trace
from repro.topology.deployment import AntennaMode
from repro.topology.scenarios import office_b, single_ap_scenario


@pytest.fixture()
def model():
    scenario = single_ap_scenario(office_b(), AntennaMode.DAS, seed=3)
    return ChannelModel(scenario.deployment, scenario.radio, seed=3)


class TestRecord:
    def test_shape(self, model):
        trace = record_trace(model, n_blocks=5, block_duration_s=0.02)
        assert trace.h.shape == (5, 4, 4)
        assert trace.n_blocks == 5
        assert trace.n_clients == 4
        assert trace.n_antennas == 4

    def test_blocks_differ(self, model):
        trace = record_trace(model, n_blocks=3, block_duration_s=0.05)
        assert not np.allclose(trace.block(0), trace.block(2))

    def test_advances_model_time(self, model):
        record_trace(model, n_blocks=4, block_duration_s=0.02)
        assert model.time_s == pytest.approx(0.06)

    def test_rejects_zero_blocks(self, model):
        with pytest.raises(ValueError):
            record_trace(model, n_blocks=0, block_duration_s=0.02)

    def test_iteration(self, model):
        trace = record_trace(model, n_blocks=3, block_duration_s=0.02)
        blocks = list(trace)
        assert len(blocks) == 3


class TestSerialization:
    def test_roundtrip(self, model, tmp_path):
        trace = record_trace(
            model, n_blocks=4, block_duration_s=0.02, metadata={"scenario": "unit"}
        )
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = ChannelTrace.load(path)
        np.testing.assert_array_equal(loaded.h, trace.h)
        assert loaded.block_duration_s == trace.block_duration_s
        assert loaded.noise_mw == trace.noise_mw
        assert loaded.metadata["scenario"] == "unit"


class TestValidation:
    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            ChannelTrace(h=np.zeros((2, 2)), block_duration_s=0.02, noise_mw=1e-9)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            ChannelTrace(h=np.zeros((1, 2, 2)), block_duration_s=0.0, noise_mw=1e-9)

    def test_rejects_bad_noise(self):
        with pytest.raises(ValueError):
            ChannelTrace(h=np.zeros((1, 2, 2)), block_duration_s=0.02, noise_mw=0.0)
