"""Physical carrier sensing tests."""

import numpy as np
import pytest

from repro.config import MacConfig
from repro.mac.carrier_sense import CarrierSenseModel


def model(cross_dbm, **mac_kwargs):
    mac = MacConfig(**mac_kwargs) if mac_kwargs else MacConfig()
    return CarrierSenseModel(np.asarray(cross_dbm, dtype=float), mac)


class TestBusyVerdicts:
    def test_loud_neighbor_is_busy(self):
        cross = [[np.inf, -60.0], [-60.0, np.inf]]
        cs = model(cross)
        assert cs.is_busy(0, [1])

    def test_quiet_neighbor_is_idle(self):
        cross = [[np.inf, -95.0], [-95.0, np.inf]]
        cs = model(cross)
        assert not cs.is_busy(0, [1])

    def test_aggregation_crosses_threshold(self):
        # Two signals each 2 dB below threshold sum to ~1 dB above it.
        mac = MacConfig()
        below = mac.cs_threshold_dbm - 2.0
        cross = [
            [np.inf, below, below],
            [below, np.inf, below],
            [below, below, np.inf],
        ]
        cs = model(cross)
        assert not cs.is_busy(0, [1])
        assert cs.is_busy(0, [1, 2])

    def test_own_transmission_ignored_in_sensing(self):
        cross = [[np.inf, -95.0], [-95.0, np.inf]]
        cs = model(cross)
        assert cs.sensed_power_mw(0, [0]) == 0.0

    def test_busy_mask_marks_transmitters(self):
        cross = [[np.inf, -95.0], [-95.0, np.inf]]
        cs = model(cross)
        mask = cs.busy_mask([0])
        assert mask[0]
        assert not mask[1]

    def test_empty_transmitters(self):
        cross = [[np.inf, -60.0], [-60.0, np.inf]]
        cs = model(cross)
        assert not cs.busy_mask([]).any()


class TestNavDecoding:
    def test_decodable_above_threshold(self):
        mac = MacConfig()
        cross = [[np.inf, mac.nav_decode_dbm + 1], [mac.nav_decode_dbm + 1, np.inf]]
        cs = model(cross)
        assert cs.decodes(0, 1)

    def test_not_decodable_below_threshold(self):
        mac = MacConfig()
        cross = [[np.inf, mac.nav_decode_dbm - 1], [mac.nav_decode_dbm - 1, np.inf]]
        cs = model(cross)
        assert not cs.decodes(0, 1)

    def test_capture_blocks_decoding_under_interference(self):
        # Transmitter at -70, interferer also at -70: 0 dB SINR < capture.
        cross = [
            [np.inf, -70.0, -70.0],
            [-70.0, np.inf, -60.0],
            [-70.0, -60.0, np.inf],
        ]
        cs = model(cross)
        assert cs.decodes(0, 1)  # clean medium
        assert not cs.decodes(0, 1, interferers=[2])

    def test_strong_preamble_captures(self):
        cross = [
            [np.inf, -55.0, -75.0],
            [-55.0, np.inf, -60.0],
            [-75.0, -60.0, np.inf],
        ]
        cs = model(cross)
        assert cs.decodes(0, 1, interferers=[2])  # 20 dB SINR

    def test_nav_listeners_includes_self(self):
        cross = [[np.inf, -60.0], [-60.0, np.inf]]
        cs = model(cross)
        assert 1 in cs.nav_listeners(1)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            CarrierSenseModel(np.zeros((2, 3)), MacConfig())
