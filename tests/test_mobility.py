"""Mobility subsystem tests: models, state, engine threading, staleness.

The two contracts every test here circles around:

* ``mobility=None`` and ``mobility="static"`` are bit-identical to each
  other and to the pre-mobility engines (the frozen-topology path is
  untouched), and
* finite-speed series are bit-identical between the scalar and vectorized
  round engines (``array_equal``, no tolerances).
"""

import numpy as np
import pytest

from repro.api import MOBILITY, RunSpec, Runner
from repro.config import SimConfig
from repro.mobility import (
    GaussMarkovMobility,
    MobilityState,
    RandomWaypointMobility,
    StaticMobility,
    TraceMobility,
    build_mobility_state,
    mobility_names,
    resolve_mobility,
)
from repro.sim.batch import RoundBasedEvaluatorBatch
from repro.sim.network import MacMode, NetworkSimulation
from repro.sim.rounds import RoundBasedEvaluator
from repro.topology.deployment import AntennaMode
from repro.topology.scenarios import office_b, single_ap_scenario, three_ap_scenario

ENV = office_b()
SEEDS = [0, 1, 2]

MOVING_CASES = [
    ("gauss_markov", {"speed_mps": 1.5}),
    ("random_waypoint", {"speed_mps": 2.0}),
]


def _deployment(seed=0):
    return single_ap_scenario(ENV, AntennaMode.DAS, seed=seed).deployment


class TestRegistry:
    def test_builtin_names(self):
        for name in ("static", "random_waypoint", "gauss_markov", "trace"):
            assert name in mobility_names()
            assert name in MOBILITY

    def test_resolve_by_name_with_kwargs(self):
        model = resolve_mobility("gauss_markov", speed_mps=2.0)
        assert isinstance(model, GaussMarkovMobility)
        assert model.speed_mps == 2.0

    def test_resolve_passthrough_instance(self):
        model = StaticMobility()
        assert resolve_mobility(model) is model
        with pytest.raises(ValueError):
            resolve_mobility(model, speed_mps=1.0)

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="gauss_markov"):
            resolve_mobility("levy_flight")


class TestModels:
    def test_static_is_static(self):
        assert StaticMobility().is_static
        assert not GaussMarkovMobility().is_static

    def test_random_waypoint_speed_mps_sets_range(self):
        model = RandomWaypointMobility(speed_mps=2.0)
        assert model.speed_min_mps == pytest.approx(1.0)
        assert model.speed_max_mps == pytest.approx(3.0)

    def test_random_waypoint_invalid_speeds(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility(speed_min_mps=3.0, speed_max_mps=1.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(speed_mps=-1.0)

    def test_gauss_markov_validation(self):
        with pytest.raises(ValueError):
            GaussMarkovMobility(alpha=1.5)
        with pytest.raises(ValueError):
            GaussMarkovMobility(speed_mps=-0.1)

    def test_gauss_markov_speed_std_scales_with_speed(self):
        assert GaussMarkovMobility(speed_mps=0.0).speed_std_mps == 0.0
        assert GaussMarkovMobility(speed_mps=2.0).speed_std_mps == pytest.approx(0.6)

    @pytest.mark.parametrize("name,kwargs", MOVING_CASES)
    def test_clients_move_and_stay_in_roaming_box(self, name, kwargs):
        deployment = _deployment()
        model = resolve_mobility(name, **kwargs)
        state = MobilityState(model, deployment, np.random.default_rng(0))
        start = state.positions.copy()
        lo, hi = model.roaming_bounds(deployment)
        for __ in range(200):
            state.advance(0.02)
            assert np.all(state.positions >= lo - 1e-9)
            assert np.all(state.positions <= hi + 1e-9)
        assert not np.allclose(state.positions, start)
        assert np.all(state.speeds_mps >= 0)

    def test_gauss_markov_mean_speed_tracks_parameter(self):
        deployment = _deployment()
        model = GaussMarkovMobility(speed_mps=1.2)
        state = MobilityState(model, deployment, np.random.default_rng(1))
        speeds = []
        for __ in range(500):
            state.advance(0.02)
            speeds.append(state.speeds_mps.copy())
        assert np.mean(speeds) == pytest.approx(1.2, rel=0.2)

    def test_zero_speed_gauss_markov_parks_clients(self):
        deployment = _deployment()
        state = MobilityState(
            GaussMarkovMobility(speed_mps=0.0), deployment, np.random.default_rng(2)
        )
        start = state.positions.copy()
        for __ in range(20):
            state.advance(0.02)
        np.testing.assert_array_equal(state.positions, start)
        np.testing.assert_array_equal(state.speeds_mps, np.zeros(len(start)))

    def test_trace_playback_interpolates(self):
        deployment = _deployment()
        n = deployment.n_clients
        points = [
            [[0.0, float(i), 0.0], [1.0, float(i), 10.0]] for i in range(n)
        ]
        state = MobilityState(
            TraceMobility(points=points), deployment, np.random.default_rng(0)
        )
        state.advance(0.5)
        np.testing.assert_allclose(state.positions[:, 1], 5.0)
        np.testing.assert_allclose(state.speeds_mps, 10.0)
        # Clamped past the recorded span.
        state.advance(2.0)
        np.testing.assert_allclose(state.positions[:, 1], 10.0)

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            TraceMobility(points=())
        with pytest.raises(ValueError, match="increase"):
            TraceMobility(points=[[[0.0, 0.0, 0.0], [0.0, 1.0, 1.0]]])
        deployment = _deployment()
        one_client = TraceMobility(points=[[[0.0, 0.0, 0.0]]])
        with pytest.raises(ValueError, match="clients"):
            MobilityState(one_client, deployment, np.random.default_rng(0))


class TestMobilityState:
    def test_doppler_from_speed(self):
        deployment = _deployment()
        state = MobilityState(
            GaussMarkovMobility(speed_mps=1.5), deployment, np.random.default_rng(0)
        )
        state.advance(0.02)
        np.testing.assert_array_equal(
            state.doppler_hz(0.05), state.speeds_mps / 0.05
        )
        with pytest.raises(ValueError):
            state.doppler_hz(0.0)

    def test_static_model_rejected(self):
        with pytest.raises(ValueError, match="static"):
            MobilityState(StaticMobility(), _deployment(), np.random.default_rng(0))

    def test_build_helper_sentinels(self):
        deployment = _deployment()
        rng = np.random.default_rng(0)
        assert build_mobility_state(None, None, deployment, rng) is None
        assert build_mobility_state("static", None, deployment, rng) is None
        state = build_mobility_state(
            "gauss_markov", {"speed_mps": 1.0}, deployment, rng
        )
        assert isinstance(state, MobilityState)


class TestStaticBitIdentity:
    """``mobility=None`` == ``mobility="static"`` on every engine, and the
    first round of a moving run (sounded, not yet moved) matches static."""

    def test_round_engine_static_sentinel(self):
        scenario = single_ap_scenario(ENV, AntennaMode.DAS, seed=3)
        a = RoundBasedEvaluator(scenario, MacMode.MIDAS, seed=3).run(6)
        b = RoundBasedEvaluator(
            scenario, MacMode.MIDAS, seed=3, mobility="static"
        ).run(6)
        for ra, rb in zip(a.rounds, b.rounds):
            assert ra.capacity_bps_hz == rb.capacity_bps_hz
            assert ra.n_streams == rb.n_streams
            assert ra.sounding_us == rb.sounding_us == 0.0

    def test_batch_engine_static_sentinel(self):
        scenarios = [three_ap_scenario(ENV, seed=s)[AntennaMode.DAS] for s in SEEDS]
        a = RoundBasedEvaluatorBatch(scenarios, MacMode.MIDAS, seeds=SEEDS).run(4)
        b = RoundBasedEvaluatorBatch(
            scenarios, MacMode.MIDAS, seeds=SEEDS, mobility="static"
        ).run(4)
        for ra, rb in zip(a, b):
            for round_a, round_b in zip(ra.rounds, rb.rounds):
                assert round_a.capacity_bps_hz == round_b.capacity_bps_hz

    def test_network_sim_static_sentinel(self):
        scenario = three_ap_scenario(ENV, seed=0)[AntennaMode.DAS]
        sim = SimConfig(duration_s=0.03)
        a = NetworkSimulation(scenario, MacMode.MIDAS, sim, seed=0).run()
        b = NetworkSimulation(
            scenario, MacMode.MIDAS, sim, seed=0, mobility="static"
        ).run()
        np.testing.assert_array_equal(
            a.per_client_bits_per_hz, b.per_client_bits_per_hz
        )
        assert a.txop_count == b.txop_count

    def test_first_round_matches_static(self):
        # Round 0 of a mobility run is freshly sounded and nothing has
        # moved yet, so its plan/precoders/SINRs must equal the static
        # run's round 0 exactly (tags re-derive to the same tables).
        scenario = single_ap_scenario(ENV, AntennaMode.DAS, seed=5)
        static = RoundBasedEvaluator(scenario, MacMode.MIDAS, seed=5)
        moving = RoundBasedEvaluator(
            scenario, MacMode.MIDAS, seed=5,
            mobility="gauss_markov", mobility_kwargs={"speed_mps": 2.0},
            resound_period_rounds=3,
        )
        a = static.evaluate_round(0)
        b = moving.evaluate_round(0)
        assert a.capacity_bps_hz == b.capacity_bps_hz
        assert a.n_streams == b.n_streams


class TestFiniteSpeedBackendBitIdentity:
    @pytest.mark.parametrize("name,kwargs", MOVING_CASES)
    @pytest.mark.parametrize("mode,antenna_mode", [
        (MacMode.MIDAS, AntennaMode.DAS),
        (MacMode.CAS, AntennaMode.CAS),
    ])
    def test_three_ap_batch_matches_scalar(self, name, kwargs, mode, antenna_mode):
        scenarios = [three_ap_scenario(ENV, seed=s)[antenna_mode] for s in SEEDS]
        batch = RoundBasedEvaluatorBatch(
            scenarios, mode, seeds=SEEDS, mobility=name, mobility_kwargs=kwargs,
            resound_period_rounds=3,
        ).run(8)
        for i, seed in enumerate(SEEDS):
            scalar = RoundBasedEvaluator(
                scenarios[i], mode, seed=seed, mobility=name,
                mobility_kwargs=kwargs, resound_period_rounds=3,
            ).run(8)
            for br, sr in zip(batch[i].rounds, scalar.rounds):
                assert br.capacity_bps_hz == sr.capacity_bps_hz
                assert br.n_streams == sr.n_streams
                assert br.sounding_us == sr.sounding_us
                np.testing.assert_array_equal(br.per_ap_streams, sr.per_ap_streams)

    def test_mobility_with_traffic_matches_scalar(self):
        scenarios = [
            single_ap_scenario(ENV, AntennaMode.DAS, seed=s) for s in SEEDS
        ]
        common = dict(
            traffic="poisson", traffic_kwargs={"rate_mbps": 10.0},
            mobility="gauss_markov", mobility_kwargs={"speed_mps": 1.2},
            resound_period_rounds=2,
        )
        batch = RoundBasedEvaluatorBatch(
            scenarios, MacMode.MIDAS, seeds=SEEDS, **common
        ).run(8)
        for i, seed in enumerate(SEEDS):
            scalar = RoundBasedEvaluator(
                scenarios[i], MacMode.MIDAS, seed=seed, **common
            ).run(8)
            np.testing.assert_array_equal(
                batch[i].delay_samples_s, scalar.delay_samples_s
            )
            assert batch[i].throughput_mbps == scalar.throughput_mbps
            assert batch[i].mean_sounding_us == scalar.mean_sounding_us

    def test_item_mask_matches_scalar(self):
        scenarios = [
            single_ap_scenario(ENV, AntennaMode.DAS, seed=s) for s in SEEDS
        ]
        mask = np.array([True, False, True])
        results = RoundBasedEvaluatorBatch(
            scenarios, MacMode.MIDAS, seeds=SEEDS,
            mobility="gauss_markov", mobility_kwargs={"speed_mps": 1.5},
            resound_period_rounds=2,
        ).run(6, item_mask=mask)
        assert results[1] is None
        for i in (0, 2):
            scalar = RoundBasedEvaluator(
                scenarios[i], MacMode.MIDAS, seed=SEEDS[i],
                mobility="gauss_markov", mobility_kwargs={"speed_mps": 1.5},
                resound_period_rounds=2,
            ).run(6)
            for br, sr in zip(results[i].rounds, scalar.rounds):
                assert br.capacity_bps_hz == sr.capacity_bps_hz


class TestStaleness:
    def test_resound_period_charges_sounding_only_on_sounding_rounds(self):
        scenario = single_ap_scenario(ENV, AntennaMode.DAS, seed=1)
        result = RoundBasedEvaluator(
            scenario, MacMode.MIDAS, seed=1,
            mobility="gauss_markov", mobility_kwargs={"speed_mps": 1.0},
            resound_period_rounds=3,
        ).run(9)
        charged = [r.sounding_us > 0 for r in result.rounds]
        assert charged == [True, False, False] * 3
        assert result.total_sounding_us == pytest.approx(
            sum(r.sounding_us for r in result.rounds)
        )
        assert result.mean_sounding_us > 0

    def test_stale_csi_costs_capacity_at_speed(self):
        # With pedestrian Doppler at 5 GHz the channel decorrelates within
        # a few coherence blocks, so precoding on 8-round-old CSI must lose
        # capacity against per-round re-sounding on the same trajectory.
        scenario = single_ap_scenario(ENV, AntennaMode.DAS, seed=2)
        kwargs = dict(
            mobility="gauss_markov", mobility_kwargs={"speed_mps": 1.5},
        )
        fresh = RoundBasedEvaluator(
            scenario, MacMode.MIDAS, seed=2, resound_period_rounds=1, **kwargs
        ).run(24)
        stale = RoundBasedEvaluator(
            scenario, MacMode.MIDAS, seed=2, resound_period_rounds=8, **kwargs
        ).run(24)
        assert stale.mean_capacity_bps_hz < fresh.mean_capacity_bps_hz

    def test_invalid_resound_period(self):
        scenario = single_ap_scenario(ENV, AntennaMode.DAS, seed=0)
        with pytest.raises(ValueError):
            RoundBasedEvaluator(
                scenario, MacMode.MIDAS, seed=0, resound_period_rounds=0
            )

    def test_network_sim_mobility_runs(self):
        scenario = three_ap_scenario(ENV, seed=0)[AntennaMode.DAS]
        result = NetworkSimulation(
            scenario, MacMode.MIDAS, SimConfig(duration_s=0.03), seed=0,
            mobility="gauss_markov", mobility_kwargs={"speed_mps": 1.5},
            resound_interval_s=0.01,
        ).run()
        assert result.txop_count > 0
        assert result.network_capacity_bps_hz > 0

    def test_network_sim_mobility_without_interval_runs(self):
        # No re-sounding interval: every TXOP sounds fresh CSI and the
        # tags re-derive per TXOP (anchor handoff without staleness).
        scenario = three_ap_scenario(ENV, seed=0)[AntennaMode.DAS]
        result = NetworkSimulation(
            scenario, MacMode.MIDAS, SimConfig(duration_s=0.03), seed=0,
            mobility="gauss_markov", mobility_kwargs={"speed_mps": 1.5},
        ).run()
        assert result.txop_count > 0
        assert result.network_capacity_bps_hz > 0


class TestRunSpecMobility:
    def test_mobility_omitted_from_canonical_json_when_unset(self):
        spec = RunSpec("fig09", n_topologies=2)
        assert "mobility" not in spec.to_dict()
        assert "mobility" not in spec.canonical_json()

    def test_mobility_round_trips(self):
        spec = RunSpec("mobility_capacity", n_topologies=2, mobility="gauss_markov")
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()
        assert spec.spec_hash() != spec.replace(mobility=None).spec_hash()

    def test_static_accepted_everywhere(self):
        base = RunSpec("fig07", n_topologies=1, seed=0)
        a = Runner().run(base)
        b = Runner().run(base.replace(mobility="static"))
        for key in a.series:
            np.testing.assert_array_equal(a.series[key], b.series[key])

    def test_moving_model_rejected_without_parameter(self):
        with pytest.raises(ValueError, match="mobility override"):
            Runner().run(
                RunSpec("fig07", n_topologies=1, mobility="gauss_markov")
            )

    def test_unknown_mobility_rejected(self):
        with pytest.raises(ValueError, match="mobility"):
            Runner().run(RunSpec("mobility_capacity", n_topologies=1,
                                 mobility="warp_drive"))

    def test_static_rejected_by_mobility_capacity(self):
        with pytest.raises(ValueError, match="moving mobility"):
            Runner().run(
                RunSpec("mobility_capacity", n_topologies=1,
                        mobility="static",
                        params={"rounds_per_topology": 2,
                                "speeds_mps": [1.0]})
            )

    def test_trace_rejected_by_mobility_capacity(self):
        # Trace playback has no speed to sweep; the experiment must say so
        # instead of surfacing the trace factory's own construction error.
        with pytest.raises(ValueError, match="speed_mps"):
            Runner().run(
                RunSpec("mobility_capacity", n_topologies=1,
                        mobility="trace",
                        params={"rounds_per_topology": 2,
                                "speeds_mps": [1.0]})
            )


class TestMobilityCapacityExperiment:
    SPEC = RunSpec(
        "mobility_capacity",
        n_topologies=2,
        seed=0,
        params={"rounds_per_topology": 6, "speeds_mps": [0.0, 2.0]},
    )

    def test_backends_bit_identical(self):
        loop = Runner(backend="loop").run(self.SPEC)
        vec = Runner(backend="vectorized").run(self.SPEC)
        assert set(loop.series) == {
            "cas_capacity_bps_hz", "cas_sounding_fraction",
            "midas_capacity_bps_hz", "midas_sounding_fraction",
        }
        for key in loop.series:
            np.testing.assert_array_equal(loop.series[key], vec.series[key])
        assert loop.series["midas_capacity_bps_hz"].shape == (2, 2)

    def test_sounding_fraction_in_unit_interval(self):
        result = Runner().run(self.SPEC)
        for system in ("cas", "midas"):
            fractions = result.series[f"{system}_sounding_fraction"]
            assert np.all(fractions > 0)
            assert np.all(fractions < 1)