"""Discrete-event engine tests."""

import importlib
import sys

import pytest

from repro.sim import EventQueue


class TestDeprecatedEngineShim:
    def test_shim_still_warns_and_reexports(self):
        sys.modules.pop("repro.sim.engine", None)
        with pytest.warns(DeprecationWarning, match="repro.sim.engine is deprecated"):
            shim = importlib.import_module("repro.sim.engine")
        assert shim.EventQueue is EventQueue


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        seen = []
        q.schedule(30.0, lambda t: seen.append(("b", t)))
        q.schedule(10.0, lambda t: seen.append(("a", t)))
        q.schedule(20.0, lambda t: seen.append(("c", t)))
        q.run_until(100.0)
        assert [s[0] for s in seen] == ["a", "c", "b"]
        assert [s[1] for s in seen] == [10.0, 20.0, 30.0]

    def test_tie_break_by_insertion_order(self):
        q = EventQueue()
        seen = []
        q.schedule(10.0, lambda t: seen.append("first"))
        q.schedule(10.0, lambda t: seen.append("second"))
        q.run_until(100.0)
        assert seen == ["first", "second"]

    def test_run_until_boundary_inclusive(self):
        q = EventQueue()
        seen = []
        q.schedule(50.0, lambda t: seen.append(t))
        ran = q.run_until(50.0)
        assert ran == 1 and seen == [50.0]

    def test_events_beyond_horizon_deferred(self):
        q = EventQueue()
        seen = []
        q.schedule(60.0, lambda t: seen.append(t))
        q.run_until(50.0)
        assert seen == []
        q.run_until(70.0)
        assert seen == [60.0]

    def test_events_scheduled_during_run(self):
        q = EventQueue()
        seen = []

        def chain(t):
            seen.append(t)
            if t < 30.0:
                q.schedule(t + 10.0, chain)

        q.schedule(10.0, chain)
        q.run_until(100.0)
        assert seen == [10.0, 20.0, 30.0]

    def test_scheduling_in_past_rejected(self):
        q = EventQueue()
        q.schedule(10.0, lambda t: q.schedule(5.0, lambda t2: None))
        with pytest.raises(ValueError):
            q.run_until(100.0)

    def test_clock_advances_to_horizon(self):
        q = EventQueue()
        q.run_until(42.0)
        assert q.now_us == 42.0

    def test_len_counts_pending(self):
        q = EventQueue()
        q.schedule(10.0, lambda t: None)
        q.schedule(20.0, lambda t: None)
        assert len(q) == 2
