"""Round-based (quasi-static) evaluator tests."""

import numpy as np
import pytest

from repro.sim.network import MacMode, aps_mutually_overhear
from repro.sim.rounds import RoundBasedEvaluator, RoundBasedResult
from repro.topology.deployment import AntennaMode
from repro.topology.scenarios import office_b, three_ap_scenario


@pytest.fixture(scope="module")
def overhearing_pair():
    # Find a topology where the CAS APs mutually overhear (the paper's rule).
    for seed in range(200):
        pair = three_ap_scenario(office_b(), seed=seed)
        ev = RoundBasedEvaluator(pair[AntennaMode.CAS], MacMode.CAS, seed=seed)
        if aps_mutually_overhear(ev.carrier_sense, ev.deployment):
            return pair, seed
    pytest.skip("no overhearing topology found in 200 seeds")


class TestCasRounds:
    def test_serialization_under_full_overhearing(self, overhearing_pair):
        pair, seed = overhearing_pair
        ev = RoundBasedEvaluator(pair[AntennaMode.CAS], MacMode.CAS, seed=seed)
        result = ev.run(6)
        for rnd in result.rounds:
            # Exactly one AP transmits its four streams per round.
            assert rnd.n_streams == 4
            assert (rnd.per_ap_streams > 0).sum() == 1

    def test_primary_rotates(self, overhearing_pair):
        pair, seed = overhearing_pair
        ev = RoundBasedEvaluator(pair[AntennaMode.CAS], MacMode.CAS, seed=seed)
        result = ev.run(6)
        actives = [int(np.argmax(r.per_ap_streams)) for r in result.rounds]
        assert set(actives) == {0, 1, 2}


class TestMidasRounds:
    def test_primary_always_full(self, overhearing_pair):
        pair, seed = overhearing_pair
        ev = RoundBasedEvaluator(pair[AntennaMode.DAS], MacMode.MIDAS, seed=seed)
        result = ev.run(6)
        for index, rnd in enumerate(result.rounds):
            primary = index % 3
            assert rnd.per_ap_streams[primary] >= 1

    def test_streams_at_least_cas(self, overhearing_pair):
        pair, seed = overhearing_pair
        cas = RoundBasedEvaluator(pair[AntennaMode.CAS], MacMode.CAS, seed=seed).run(12)
        midas = RoundBasedEvaluator(pair[AntennaMode.DAS], MacMode.MIDAS, seed=seed).run(12)
        assert midas.mean_streams >= cas.mean_streams * 0.9

    def test_capacity_positive(self, overhearing_pair):
        pair, seed = overhearing_pair
        result = RoundBasedEvaluator(
            pair[AntennaMode.DAS], MacMode.MIDAS, seed=seed
        ).run(4)
        assert result.mean_capacity_bps_hz > 0

    def test_rejects_zero_rounds(self, overhearing_pair):
        pair, seed = overhearing_pair
        ev = RoundBasedEvaluator(pair[AntennaMode.DAS], MacMode.MIDAS, seed=seed)
        with pytest.raises(ValueError):
            ev.run(0)

    def test_deterministic(self, overhearing_pair):
        pair, seed = overhearing_pair
        a = RoundBasedEvaluator(pair[AntennaMode.DAS], MacMode.MIDAS, seed=seed).run(5)
        b = RoundBasedEvaluator(pair[AntennaMode.DAS], MacMode.MIDAS, seed=seed).run(5)
        assert a.mean_capacity_bps_hz == pytest.approx(b.mean_capacity_bps_hz)


class TestEmptyResult:
    def test_means_raise_on_empty_rounds(self):
        empty = RoundBasedResult(rounds=[])
        with pytest.raises(ValueError, match="no rounds"):
            empty.mean_capacity_bps_hz
        with pytest.raises(ValueError, match="no rounds"):
            empty.mean_streams


class TestDrrSettlement:
    def test_blocked_aps_accrue_waiting_credit(self, overhearing_pair):
        # Regression: every AP settles every round.  Under full CAS
        # overhearing only the primary transmits; the other two APs send
        # nothing, and before the fix their DRR counters never moved.
        pair, seed = overhearing_pair
        ev = RoundBasedEvaluator(pair[AntennaMode.CAS], MacMode.CAS, seed=seed)
        result = ev.evaluate_round(primary_ap=0)
        np.testing.assert_array_equal(np.flatnonzero(result.per_ap_streams), [0])
        # Counters are global-axis: only the blocked AP's own members move.
        for blocked_ap in (1, 2):
            members = ev.association.members(blocked_ap)
            expected = np.zeros(ev.deployment.n_clients)
            expected[members] = 1.0
            np.testing.assert_array_equal(
                ev._drr[blocked_ap].counters, expected
            )

    def test_transmitting_ap_settles_paper_rule(self, overhearing_pair):
        pair, seed = overhearing_pair
        ev = RoundBasedEvaluator(pair[AntennaMode.CAS], MacMode.CAS, seed=seed)
        result = ev.evaluate_round(primary_ap=0)
        # Four streams, four clients: everyone served, counters at -1 each.
        assert result.per_ap_streams[0] == 4
        expected = np.zeros(ev.deployment.n_clients)
        expected[ev.association.members(0)] = -1.0
        np.testing.assert_array_equal(ev._drr[0].counters, expected)
