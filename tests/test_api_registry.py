"""Registry mechanics and the built-in registrations."""

import pytest

from repro.api import (
    ENVIRONMENTS,
    EXPERIMENTS,
    PRECODERS,
    SCENARIOS,
    DuplicateNameError,
    Registry,
    UnknownNameError,
    load_builtin_experiments,
)


class TestRegistryMechanics:
    def test_register_and_get(self):
        reg = Registry("thing")

        @reg.register("one")
        def one():
            return 1

        assert reg.get("one") is one
        assert "one" in reg
        assert reg.names() == ["one"]

    def test_duplicate_name_rejected(self):
        reg = Registry("thing")
        reg.add("x", 1)
        with pytest.raises(DuplicateNameError):
            reg.add("x", 2)

    def test_unknown_name_lists_registered(self):
        reg = Registry("thing")
        reg.add("alpha", 1)
        reg.add("beta", 2)
        with pytest.raises(UnknownNameError, match="alpha.*beta"):
            reg.get("gamma")

    def test_unknown_name_is_keyerror_and_valueerror(self):
        reg = Registry("thing")
        with pytest.raises(KeyError):
            reg.get("nope")
        with pytest.raises(ValueError):
            reg.get("nope")

    def test_bad_registration_name_rejected(self):
        reg = Registry("thing")
        with pytest.raises(TypeError):
            reg.register("")
        with pytest.raises(TypeError):
            reg.register(3)

    def test_unknown_name_error_pickles(self):
        # Worker processes must be able to ship the error back intact.
        import pickle

        err = pickle.loads(pickle.dumps(UnknownNameError("thing", "x", ["a", "b"])))
        assert err.kind == "thing" and err.known == ["a", "b"]
        assert "a, b" in str(err)

    def test_iteration_is_sorted(self):
        reg = Registry("thing")
        reg.add("b", 2)
        reg.add("a", 1)
        assert list(reg) == ["a", "b"]
        assert len(reg) == 2


class TestBuiltinRegistrations:
    def test_precoder_zoo_registered(self):
        for name in ("naive", "balanced", "total_power", "optimal_zf",
                     "wmmse", "full_optimal"):
            assert name in PRECODERS

    def test_environments_registered(self):
        assert "office_a" in ENVIRONMENTS and "office_b" in ENVIRONMENTS

    def test_scenarios_registered(self):
        for name in ("single_ap", "paired", "three_ap", "eight_ap",
                     "hidden_terminal"):
            assert name in SCENARIOS

    def test_all_16_experiments_registered(self):
        load_builtin_experiments()
        expected = {
            "fig03", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15", "fig16", "hidden_terminals",
            "ablation_tag_width", "ablation_das_radius",
            "ablation_precoders", "ablation_csi_error",
        }
        assert expected <= set(EXPERIMENTS.names())

    def test_experiment_defs_have_defaults(self):
        load_builtin_experiments()
        for name, defn in EXPERIMENTS.items():
            assert "n_topologies" in defn.defaults, name
            assert callable(defn.build) and callable(defn.finalize), name
