"""RunSpec validation/hashing and RunResult serialization round-trips."""

import numpy as np
import pytest

from repro.api import RunResult, RunSpec


class TestRunSpecValidation:
    def test_minimal_spec(self):
        spec = RunSpec("fig03")
        assert spec.experiment == "fig03"
        assert spec.n_topologies is None and spec.seed == 0

    def test_empty_experiment_rejected(self):
        with pytest.raises(ValueError):
            RunSpec("")

    def test_bad_topology_count_rejected(self):
        with pytest.raises(ValueError):
            RunSpec("fig03", n_topologies=0)
        with pytest.raises(ValueError):
            RunSpec("fig03", n_topologies=2.5)

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError):
            RunSpec("fig03", seed="zero")

    def test_params_must_be_json_safe(self):
        with pytest.raises(TypeError):
            RunSpec("fig03", params={"model": object()})

    def test_tuples_normalize_to_lists(self):
        spec = RunSpec("fig09", params={"antenna_counts": (2, 4)})
        assert spec.params["antenna_counts"] == [2, 4]

    def test_replace(self):
        spec = RunSpec("fig03", seed=1)
        assert spec.replace(seed=2).seed == 2
        assert spec.seed == 1


class TestRunSpecHashing:
    def test_round_trip_through_dict(self):
        spec = RunSpec("fig09", n_topologies=5, seed=3, precoder="wmmse",
                       params={"antenna_counts": [2]})
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            RunSpec.from_dict({"experiment": "fig03", "jobs": 4})

    def test_hash_is_stable(self):
        a = RunSpec("fig03", n_topologies=4, seed=1)
        b = RunSpec("fig03", n_topologies=4, seed=1)
        assert a.spec_hash() == b.spec_hash()

    def test_specs_usable_in_sets_and_dicts(self):
        a = RunSpec("fig03", seed=1, params={"n_antennas": 4})
        b = RunSpec("fig03", seed=1, params={"n_antennas": 4})
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_hash_differs_on_any_field(self):
        base = RunSpec("fig03", n_topologies=4, seed=1)
        assert base.spec_hash() != base.replace(seed=2).spec_hash()
        assert base.spec_hash() != base.replace(n_topologies=5).spec_hash()
        assert base.spec_hash() != RunSpec("fig07", n_topologies=4, seed=1).spec_hash()


def _result() -> RunResult:
    return RunResult(
        name="toy",
        description="round-trip fixture",
        series={
            "a": np.array([1.0, 2.0, 3.0]),
            "flags": np.array([True, False]),
        },
        params={"n_topologies": 3, "seed": 0, "widths": [1, 2]},
        notes={"example": {"points": np.arange(6, dtype=float).reshape(3, 2)}},
        spec=RunSpec("fig03", n_topologies=3),
    )


class TestRunResultJson:
    def test_json_round_trip(self):
        original = _result()
        restored = RunResult.from_json(original.to_json())
        assert restored.name == original.name
        assert restored.spec == original.spec
        assert restored.params == original.params
        for key in original.series:
            np.testing.assert_array_equal(restored.series[key], original.series[key])
            assert restored.series[key].dtype == original.series[key].dtype
        np.testing.assert_array_equal(
            restored.notes["example"]["points"], original.notes["example"]["points"]
        )

    def test_bad_version_rejected(self):
        text = _result().to_json().replace('"format_version": 1', '"format_version": 99')
        with pytest.raises(ValueError):
            RunResult.from_json(text)


class TestRunResultFiles:
    def test_npz_round_trip(self, tmp_path):
        original = _result()
        path = original.save_npz(tmp_path / "r.npz")
        restored = RunResult.load_npz(path)
        for key in original.series:
            np.testing.assert_array_equal(restored.series[key], original.series[key])
        assert restored.spec == original.spec
        np.testing.assert_array_equal(
            restored.notes["example"]["points"], original.notes["example"]["points"]
        )

    def test_save_dispatches_on_suffix(self, tmp_path):
        original = _result()
        json_path = original.save(tmp_path / "r.json")
        npz_path = original.save(tmp_path / "r.npz")
        assert RunResult.load(json_path).name == "toy"
        assert RunResult.load(npz_path).name == "toy"

    def test_summary_still_works(self):
        # RunResult keeps the full ExperimentResult analysis surface.
        result = _result()
        assert "toy" in result.summary()
        assert result.median("a") == 2.0
