"""Configuration dataclass tests."""

import math

import pytest

from repro import units
from repro.config import MacConfig, MidasConfig, RadioConfig, SimConfig


class TestRadioConfig:
    def test_per_antenna_power_conversion(self):
        radio = RadioConfig(per_antenna_power_dbm=10.0)
        assert radio.per_antenna_power_mw == pytest.approx(10.0)

    def test_noise_includes_noise_figure(self):
        quiet = RadioConfig(noise_figure_db=0.0)
        noisy = RadioConfig(noise_figure_db=10.0)
        assert noisy.noise_mw == pytest.approx(10.0 * quiet.noise_mw)

    def test_wavelength(self):
        radio = RadioConfig(carrier_hz=5.25e9)
        assert radio.wavelength_m == pytest.approx(units.wavelength(5.25e9))

    def test_coherence_time_infinite_without_doppler(self):
        assert math.isinf(RadioConfig(doppler_hz=0.0).coherence_time_s)

    def test_coherence_time_jakes_rule(self):
        radio = RadioConfig(doppler_hz=10.0)
        assert radio.coherence_time_s == pytest.approx(0.0423)

    def test_with_replaces_field(self):
        radio = RadioConfig().with_(pathloss_exponent=2.0)
        assert radio.pathloss_exponent == 2.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RadioConfig().pathloss_exponent = 1.0  # type: ignore[misc]


class TestMacConfig:
    def test_difs_is_sifs_plus_two_slots(self):
        mac = MacConfig()
        assert mac.difs_us == pytest.approx(mac.sifs_us + 2 * mac.slot_us)

    def test_nav_threshold_more_sensitive_than_cs(self):
        mac = MacConfig()
        assert mac.nav_decode_dbm < mac.cs_threshold_dbm

    def test_threshold_conversions(self):
        mac = MacConfig(cs_threshold_dbm=-80.0)
        assert mac.cs_threshold_mw == pytest.approx(1e-8)

    def test_with_replaces_field(self):
        assert MacConfig().with_(tag_width=3).tag_width == 3


class TestSimAndBundle:
    def test_sim_with(self):
        assert SimConfig().with_(duration_s=1.0).duration_s == 1.0

    def test_bundle_defaults(self):
        bundle = MidasConfig()
        assert bundle.radio == RadioConfig()
        assert bundle.mac == MacConfig()
        assert bundle.sim == SimConfig()
