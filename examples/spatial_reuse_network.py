"""Spatial reuse in a 3-AP network: the paper's §5.3-§5.4 MAC story.

Runs both the paper's quasi-static protocol (Figs 12 and 15) and this
library's closed-loop discrete-event MAC (an extension the paper's open-loop
WARP platform could not measure) on the same topologies, and prints
simultaneous-stream counts and network capacities.

Run:  python examples/spatial_reuse_network.py [n_topologies]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import RunSpec, Runner


def main(n_topologies: int = 8) -> None:
    print(f"3-AP network, {n_topologies} mutually-overhearing topologies\n")
    runner = Runner()

    fig12 = runner.run(RunSpec("fig12", n_topologies=n_topologies, seed=0))
    ratios = fig12.series["stream_ratio"]
    print("-- Fig 12 protocol: simultaneous streams, MIDAS / CAS --")
    print(f"median ratio {np.median(ratios):.2f}  (paper: ~1.5)")
    print(f"range {ratios.min():.2f} - {ratios.max():.2f}  (paper: ~0.8 - 2.0)")
    print(f"below 1.0: {(ratios < 1.0).sum()}/{len(ratios)}  (paper: ~2/30)\n")

    fig15 = runner.run(
        RunSpec(
            "fig15",
            n_topologies=n_topologies,
            seed=0,
            params={"rounds_per_topology": 20},
        )
    )
    print("-- Fig 15 protocol: end-to-end network capacity --")
    print(f"CAS   median {fig15.median('cas'):6.1f} b/s/Hz")
    print(f"MIDAS median {fig15.median('midas'):6.1f} b/s/Hz")
    print(f"gain {fig15.gain('midas', 'cas'):+.0%}  (paper: ~+200%)\n")

    dynamic = runner.run(
        RunSpec(
            "fig15",
            n_topologies=max(2, n_topologies // 2),
            seed=0,
            params={"dynamic": True, "duration_s": 0.08},
        )
    )
    print("-- Extension: closed-loop discrete-event MAC --")
    print(f"CAS   median {dynamic.median('cas'):6.1f} b/s/Hz")
    print(f"MIDAS median {dynamic.median('midas'):6.1f} b/s/Hz")
    print(f"gain {dynamic.gain('midas', 'cas'):+.0%}")
    print(
        "(the dynamic MAC fragments TXOPs under contention, a behaviour the\n"
        " paper's open-loop WARP methodology could not observe)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
