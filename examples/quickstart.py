"""Quickstart: the declarative ``RunSpec`` -> ``Runner`` -> ``RunResult`` API.

Three stops:

1. run a registered experiment (Fig 10, precoding impact) from one spec,
2. swap the precoder by registry name (``RunSpec(precoder=...)``) and cache
   results on disk keyed by spec hash,
3. drop below the session API to inspect a single channel with the
   low-level library surface, like the paper's §3.1 walkthrough.

Run:  python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    AntennaMode,
    ChannelModel,
    Runner,
    RunSpec,
    office_b,
    power_balanced_precoder,
    single_ap_scenario,
    stream_sinrs,
    sum_capacity_bps_hz,
)


def main(seed: int = 7) -> None:
    # -- 1. one spec, one result -------------------------------------------
    runner = Runner()
    result = runner.run(RunSpec("fig10", n_topologies=12, seed=seed))
    print(result.summary())
    print(
        "power-balanced uplift: "
        f"CAS {result.gain('cas_balanced', 'cas_naive'):+.0%}, "
        f"DAS {result.gain('das_balanced', 'das_naive'):+.0%} "
        "(paper: ~+12% / ~+30%)\n"
    )

    # -- 2. pluggable precoders + cached, serializable results -------------
    with tempfile.TemporaryDirectory() as tmp:
        cached = Runner(cache_dir=Path(tmp) / "cache")
        for precoder in ("balanced", "wmmse"):
            spec = RunSpec("fig09", n_topologies=6, seed=seed, precoder=precoder)
            capacity = cached.run(spec)  # second identical run would be a cache hit
            print(
                f"fig09 with precoder={precoder!r}: "
                f"median 4x4 MIDAS capacity {capacity.median('midas_4x4'):.2f} b/s/Hz"
            )
        saved = capacity.save(Path(tmp) / "fig09.json")
        print(f"results round-trip through JSON/npz (wrote {saved.name})\n")

    # -- 3. the low-level library is still right there ---------------------
    scenario = single_ap_scenario(office_b(), AntennaMode.DAS, seed=seed)
    model = ChannelModel(scenario.deployment, scenario.radio, seed=seed)
    h = model.channel_matrix()
    balanced = power_balanced_precoder(
        h, scenario.radio.per_antenna_power_mw, scenario.radio.noise_mw
    )
    sinrs_db = 10 * np.log10(
        stream_sinrs(h, balanced.v, scenario.radio.noise_mw)
    )
    print(f"one {scenario.name} channel, power-balanced by hand:")
    print(
        f"  capacity {sum_capacity_bps_hz(stream_sinrs(h, balanced.v, scenario.radio.noise_mw)):.2f} "
        f"b/s/Hz, converged in {balanced.rounds} round(s)"
    )
    print("  per-client SINR (dB):", np.round(sinrs_db, 1))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
