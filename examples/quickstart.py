"""Quickstart: power-balanced MU-MIMO precoding on one DAS topology.

Builds a single 4-antenna MIDAS AP in the paper's Office B environment,
draws a channel, and compares the three precoders of §3.1 (naive global
scaling, MIDAS power-balanced, numerical optimum) on the same channel.

Run:  python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    AntennaMode,
    ChannelModel,
    naive_scaled_precoder,
    office_b,
    optimal_power_allocation,
    power_balanced_precoder,
    single_ap_scenario,
    stream_sinrs,
    sum_capacity_bps_hz,
)
from repro.phy.capacity import per_antenna_row_power


def main(seed: int = 7) -> None:
    scenario = single_ap_scenario(office_b(), AntennaMode.DAS, seed=seed)
    model = ChannelModel(scenario.deployment, scenario.radio, seed=seed)
    h = model.channel_matrix()
    p = scenario.radio.per_antenna_power_mw
    noise = scenario.radio.noise_mw

    print(f"scenario: {scenario.name} (seed {seed})")
    print(f"per-antenna budget: {scenario.radio.per_antenna_power_dbm:.0f} dBm")
    print()

    naive_v = naive_scaled_precoder(h, p)
    balanced = power_balanced_precoder(h, p, noise)
    optimal = optimal_power_allocation(h, p, noise)

    rows = [
        ("naive global scaling", naive_v),
        ("MIDAS power-balanced", balanced.v),
        ("numerical optimum", optimal.v),
    ]
    print(f"{'precoder':<24}{'capacity b/s/Hz':>16}{'worst row / P':>15}")
    for name, v in rows:
        capacity = sum_capacity_bps_hz(stream_sinrs(h, v, noise))
        worst = per_antenna_row_power(v).max() / p
        print(f"{name:<24}{capacity:>16.2f}{worst:>15.3f}")

    print()
    print(f"power balancing converged in {balanced.rounds} round(s)")
    print(
        "per-stream scaling weights:",
        np.round(balanced.cumulative_weights, 3),
    )
    sinrs_db = 10 * np.log10(stream_sinrs(h, balanced.v, noise))
    print("per-client SINR (dB):", np.round(sinrs_db, 1))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
