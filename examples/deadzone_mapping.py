"""Coverage mapping: deadzones (Fig 13) and hidden terminals (§5.3.4).

Surveys the coverage area of one AP in CAS and MIDAS modes on a grid,
prints deadspot statistics, renders an ASCII deadzone map pair (the
counterpart of the paper's Fig 13), and reports hidden-terminal spot
removal for a two-AP corridor.

Run:  python examples/deadzone_mapping.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import RunSpec, Runner


def ascii_map(points: np.ndarray, mask: np.ndarray, cell_m: float = 2.0) -> str:
    """Render deadspots ('#') vs covered area ('.') on a coarse text grid."""
    x0, y0 = points.min(axis=0)
    cols = np.floor((points[:, 0] - x0) / cell_m).astype(int)
    rows = np.floor((points[:, 1] - y0) / cell_m).astype(int)
    grid = np.full((rows.max() + 1, cols.max() + 1), " ")
    grid[rows, cols] = "."
    grid[rows[mask], cols[mask]] = "#"
    return "\n".join("".join(row) for row in grid[::-1])


def main(seed: int = 0) -> None:
    runner = Runner()
    fig13 = runner.run(RunSpec("fig13", n_topologies=6, seed=seed))
    cas = fig13.series["cas_deadspots"]
    das = fig13.series["das_deadspots"]
    print("-- Fig 13: deadspots per deployment (0.5 m grid) --")
    print(f"CAS   mean {cas.mean():7.0f} spots")
    print(f"MIDAS mean {das.mean():7.0f} spots")
    print(
        f"mean reduction {np.mean(fig13.series['reduction']):.0%}  (paper: ~91%)\n"
    )

    maps = fig13.notes["example_maps"]
    print("example CAS deadzone map ('#' = deadspot):")
    print(ascii_map(maps["points"], maps["cas_mask"]))
    print()
    print("same deployment, MIDAS:")
    print(ascii_map(maps["points"], maps["das_mask"]))
    print()

    hidden = runner.run(RunSpec("hidden_terminals", n_topologies=6, seed=seed))
    print("-- §5.3.4: hidden-terminal spots (1 m grid, 2 APs) --")
    print(f"CAS   mean {hidden.series['cas_spots'].mean():7.0f} spots")
    print(f"MIDAS mean {hidden.series['das_spots'].mean():7.0f} spots")
    print(
        f"mean removal {np.mean(hidden.series['removal']):.0%}  (paper: ~94%)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
