"""Campaign quickstart: a sharded, resumable grid sweep with streamed CDFs.

Three stops:

1. describe a parameter grid as a ``CampaignSpec`` (axes over RunSpec
   fields or experiment parameters) and watch it expand into cells and
   deterministic, cache-keyed shards,
2. execute it with a ``CampaignRunner`` -- shards fan out over worker
   processes, every completion is journaled, and the streamed per-cell
   aggregates (exact means, lattice-sketch CDFs) are independent of shard
   completion order,
3. interrupt-proof it: run the *same* campaign directory again with
   ``resume=True`` and observe that every shard is served from the journal
   and the shard cache -- nothing is recomputed, aggregates are
   bit-identical.

Run:  python examples/campaign_sweep.py [n_topologies]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import CampaignRunner, CampaignSpec

n_topologies = int(sys.argv[1]) if len(sys.argv) > 1 else 256

# -- 1. describe the grid ---------------------------------------------------
# Fig 9's capacity experiment swept over the precoder registry: 2 cells x
# n_topologies seed indices, split into shards of <= 64 indices each.
campaign = CampaignSpec(
    "fig09",
    n_topologies=n_topologies,
    shard_size=64,
    axes={"precoder": ["naive", "balanced"]},
)
print(campaign.describe())
for shard in list(campaign)[:3]:
    print(f"  shard {shard.index}: {shard.key}  cell={shard.coords}")
print(f"  ... {campaign.n_shards} shards total\n")

with tempfile.TemporaryDirectory() as tmp:
    campaign_dir = Path(tmp) / "fig09-campaign"

    # -- 2. execute ---------------------------------------------------------
    runner = CampaignRunner(campaign_dir, jobs=2, progress=False)
    result = runner.run(campaign)
    print(result.summary())

    # Paper-style reads: per-cell medians and CDF curves from the sketches.
    for precoder in ("naive", "balanced"):
        cell = result.cell(precoder=precoder)
        print(
            f"{precoder:>9}: median 4x4 MIDAS capacity "
            f"{cell.median('midas_4x4'):.2f} bps/Hz "
            f"({cell.series['midas_4x4'].count} samples)"
        )
    xs, fs = result.cell(precoder="balanced").cdf_curve("midas_4x4")
    print(f"CDF curve: {len(xs)} step points on a 1/128 bps/Hz lattice\n")

    # -- 3. resume ----------------------------------------------------------
    # Same directory, resume=True: the journal already records every shard,
    # so this "run" recomputes nothing and reports identical aggregates.
    again = CampaignRunner(campaign_dir, jobs=2, progress=False).run(
        campaign, resume=True
    )
    print(
        f"resumed: {again.notes['n_resumed']}/{again.notes['n_shards']} "
        f"shards from the journal, aggregates identical: "
        f"{again.aggregates_equal(result)}"
    )
