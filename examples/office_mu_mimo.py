"""Office capacity study: Figs 8-10 in miniature.

Sweeps random Office-B topologies and prints the CAS vs MIDAS capacity
distributions for 2x2 and 4x4 MU-MIMO, plus the isolated contribution of
power-balanced precoding on each antenna mode -- the paper's §5.2 story.

Run:  python examples/office_mu_mimo.py [n_topologies]
"""

from __future__ import annotations

import sys

from repro import RunSpec, Runner
from repro.analysis.report import format_cdf_summary, format_gain_line


def main(n_topologies: int = 40) -> None:
    print(f"Office B, {n_topologies} random topologies\n")
    runner = Runner()

    capacity = runner.run(RunSpec("fig09", n_topologies=n_topologies, seed=0))
    print(format_cdf_summary(capacity.series, unit="b/s/Hz"))
    print()
    for n in (2, 4):
        gain = capacity.gain(f"midas_{n}x{n}", f"cas_{n}x{n}")
        print(format_gain_line(f"MIDAS over CAS, {n}x{n}", gain))
    print("(paper: +40-67% at 2x2, +45-80% at 4x4)\n")

    precoding = runner.run(RunSpec("fig10", n_topologies=n_topologies, seed=0))
    print(format_cdf_summary(precoding.series, unit="b/s/Hz"))
    print()
    print(
        format_gain_line(
            "power balancing on CAS", precoding.gain("cas_balanced", "cas_naive")
        )
    )
    print(
        format_gain_line(
            "power balancing on DAS", precoding.gain("das_balanced", "das_naive")
        )
    )
    print("(paper: +12% on CAS, ~+30% on DAS)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40)
