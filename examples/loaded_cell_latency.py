"""Finite-load latency: what delay does a loaded MIDAS cell deliver?

The paper evaluates under saturation; this example loads the same Office-B
cell with per-client Poisson traffic swept across offered loads (the
``latency_vs_load`` experiment) and prints throughput-delay curves for CAS
vs MIDAS, the saturation knee under a 10 ms delay budget, and a voice-class
CBR run showing EDCA prioritization in the round engine.

Run:  python examples/loaded_cell_latency.py [n_topologies]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import RunSpec, Runner
from repro.analysis import saturation_load_mbps, throughput_delay_curve
from repro.sim.network import MacMode
from repro.sim.rounds import RoundBasedEvaluator
from repro.topology.deployment import AntennaMode
from repro.topology.scenarios import office_b, single_ap_scenario


def main(n_topologies: int = 8) -> None:
    loads = [10.0, 20.0, 40.0, 80.0, 160.0]
    print(f"Office B single cell, {n_topologies} topologies, Poisson downlink\n")

    result = Runner(backend="vectorized").run(
        RunSpec(
            "latency_vs_load",
            n_topologies=n_topologies,
            seed=0,
            params={"offered_loads_mbps": loads, "rounds_per_topology": 30},
        )
    )

    print("-- throughput-delay curves (medians over topologies) --")
    print(f"{'offered':>10} | {'CAS Mb/s':>9} {'CAS ms':>8} | {'MIDAS Mb/s':>10} {'MIDAS ms':>8}")
    __, cas_thr, cas_delay = throughput_delay_curve(result, "cas")
    __, midas_thr, midas_delay = throughput_delay_curve(result, "midas")
    for i, offered in enumerate(loads):
        print(
            f"{offered:>10.0f} | {cas_thr[i]:>9.1f} {cas_delay[i]:>8.2f} | "
            f"{midas_thr[i]:>10.1f} {midas_delay[i]:>8.2f}"
        )
    budget = 10.0
    print(
        f"\nsaturation knee (median delay <= {budget:.0f} ms): "
        f"CAS {saturation_load_mbps(result, 'cas', budget):.0f} Mb/s, "
        f"MIDAS {saturation_load_mbps(result, 'midas', budget):.0f} Mb/s\n"
    )

    # -- EDCA classes: voice CBR rides VOICE and sees low jitter ----------
    scenario = single_ap_scenario(office_b(), AntennaMode.DAS, seed=1)
    voice = RoundBasedEvaluator(
        scenario,
        MacMode.MIDAS,
        seed=1,
        traffic="cbr",
        traffic_kwargs={"rate_mbps": 0.5, "packet_bytes": 200.0, "category": "voice"},
    ).run(50)
    print("-- 0.5 Mb/s voice CBR per client (EDCA VOICE class) --")
    print(
        f"mean delay {voice.mean_delay_s * 1e3:.2f} ms, "
        f"p95 {voice.delay_quantile(0.95) * 1e3:.2f} ms, "
        f"jitter {voice.delay_jitter_s * 1e3:.2f} ms, "
        f"goodput {voice.throughput_mbps:.2f} Mb/s"
    )
    assert np.all(voice.delay_samples_s > 0)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
