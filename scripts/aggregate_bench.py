#!/usr/bin/env python
"""Fold benchsmoke timing artifacts into the committed perf trajectory.

The benchmark-smoke CI job writes one small JSON per benchmark
(``vectorized_timings*.json``, ``campaign_timings*.json``,
``array_api_timings*.json``).  Those artifacts are ephemeral; this script
folds them into ``BENCH_trajectory.json`` -- one entry per package
version, committed to the repo -- so speedups are *tracked across PRs*,
not just asserted once.

Usage (from the repo root, after a benchsmoke run)::

    python scripts/aggregate_bench.py \
        --artifacts . --out BENCH_trajectory.json

The entry for the current version is replaced if it already exists
(re-running is idempotent); other versions' entries are preserved
verbatim.  ``--version`` overrides the label (e.g. to backfill an entry
from an older release's artifacts).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import warnings
from pathlib import Path

_PATTERNS = (
    "vectorized_timings*.json",
    "campaign_timings*.json",
    "array_api_timings*.json",
    "telemetry_timings*.json",
)

_NOTE = (
    "Perf trajectory across PRs: one entry per package version, built by "
    "scripts/aggregate_bench.py from the benchsmoke timing artifacts "
    "(python -m pytest benchmarks/ -m benchsmoke). Absolute seconds are "
    "machine-dependent; compare entries recorded on the same machine "
    "string, and lean on the ratio fields (speedup, *_overhead), which "
    "are self-normalizing."
)


def _package_version() -> str:
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    import repro

    return repro.__version__


def collect(artifact_dir: Path) -> dict[str, dict]:
    """Every timing artifact in ``artifact_dir``, keyed by file stem.

    Unreadable (torn mid-write, truncated) or malformed artifacts are
    warned about and skipped -- one bad artifact never sinks the fold.
    """
    sources: dict[str, dict] = {}
    for pattern in _PATTERNS:
        for path in sorted(artifact_dir.glob(pattern)):
            try:
                data = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError) as exc:
                warnings.warn(
                    f"skipping unreadable artifact {path}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if not isinstance(data, dict):
                warnings.warn(
                    f"skipping malformed artifact {path}: not a JSON object",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            sources[path.stem] = data
    return sources


def _phase_breakdown(sources: dict[str, dict]) -> dict[str, float]:
    """Per-phase span totals (microseconds) lifted from telemetry artifacts."""
    phases: dict[str, float] = {}
    for _stem, data in sorted(sources.items()):
        totals = data.get("span_totals")
        if not isinstance(totals, dict):
            continue
        for name, info in totals.items():
            if isinstance(info, dict) and "total_us" in info:
                phases[name] = phases.get(name, 0.0) + round(
                    float(info["total_us"]), 3
                )
    return phases


def _dedupe(entries: list) -> list:
    """Keep the latest entry per version; warn about what gets dropped."""
    latest: dict[str, dict] = {}
    order: list[str] = []
    for entry in entries:
        if not isinstance(entry, dict) or "version" not in entry:
            warnings.warn(
                "dropping a trajectory entry with no version label",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        version = str(entry["version"])
        if version in latest:
            warnings.warn(
                f"duplicate trajectory entries for version {version}; "
                f"keeping the latest",
                RuntimeWarning,
                stacklevel=2,
            )
            order.remove(version)
        latest[version] = entry
        order.append(version)
    return [latest[v] for v in order]


def fold(trajectory_path: Path, version: str, sources: dict[str, dict]) -> dict:
    """Replace-or-append the ``version`` entry; keep the rest verbatim.

    A torn/unparseable trajectory file is warned about and rebuilt from
    scratch (every artifact fold is additive, so losing the file only
    loses history, never current data); duplicate same-version entries
    from earlier runs are collapsed to the latest one.
    """
    trajectory = {"note": _NOTE, "entries": []}
    if trajectory_path.exists():
        try:
            loaded = json.loads(trajectory_path.read_text())
        except (json.JSONDecodeError, OSError) as exc:
            loaded = None
            warnings.warn(
                f"trajectory {trajectory_path} is unreadable ({exc}); "
                f"starting a fresh one",
                RuntimeWarning,
                stacklevel=2,
            )
        if isinstance(loaded, dict) and isinstance(loaded.get("entries"), list):
            trajectory = loaded
        elif loaded is not None:
            warnings.warn(
                f"trajectory {trajectory_path} is malformed; starting a "
                f"fresh one",
                RuntimeWarning,
                stacklevel=2,
            )
    entry = {
        "version": version,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "sources": sources,
    }
    phases = _phase_breakdown(sources)
    if phases:
        entry["phases"] = phases
    entries = _dedupe(trajectory["entries"])
    entries = [e for e in entries if e["version"] != version]
    entries.append(entry)
    trajectory["entries"] = entries
    trajectory.setdefault("note", _NOTE)
    return trajectory


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts",
        type=Path,
        default=Path("."),
        metavar="DIR",
        help="directory holding the benchsmoke timing JSONs (default: .)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_trajectory.json"),
        metavar="PATH",
        help="trajectory file to fold into (default: BENCH_trajectory.json)",
    )
    parser.add_argument(
        "--version",
        default=None,
        help="entry label (default: the installed repro.__version__)",
    )
    args = parser.parse_args(argv)

    sources = collect(args.artifacts)
    if not sources:
        patterns = ", ".join(_PATTERNS)
        print(f"no timing artifacts matching [{patterns}] in {args.artifacts}")
        return 1
    version = args.version or _package_version()
    trajectory = fold(args.out, version, sources)
    args.out.write_text(json.dumps(trajectory, indent=2) + "\n")
    versions = [e["version"] for e in trajectory["entries"]]
    print(
        f"folded {len(sources)} artifact(s) into {args.out} as version "
        f"{version} ({len(versions)} entries: {', '.join(versions)})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
