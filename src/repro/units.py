"""Unit conversions and physical constants used throughout the library.

All internal computation is done in *linear* units (milliwatts for power,
meters for distance, seconds / microseconds for time).  Decibel scales are
only used at the API boundary because they are the units the paper (and the
802.11 standard) reports.

Conventions
-----------
* ``*_dbm``  -- power relative to 1 mW, in decibels.
* ``*_db``   -- dimensionless ratio in decibels (gains, SNRs, path loss).
* ``*_mw``   -- linear power in milliwatts.
"""

from __future__ import annotations

import math

import numpy as np

#: Speed of light (m/s).
SPEED_OF_LIGHT = 299_792_458.0

#: Boltzmann constant (J/K).
BOLTZMANN = 1.380649e-23

#: Reference temperature used for thermal noise (Kelvin).
ROOM_TEMPERATURE_K = 290.0

#: Thermal noise power spectral density at 290 K, in dBm/Hz (~ -173.98).
THERMAL_NOISE_DBM_PER_HZ = 10.0 * math.log10(BOLTZMANN * ROOM_TEMPERATURE_K * 1e3)


def db_to_linear(value_db):
    """Convert a dB ratio to a linear ratio.

    Works element-wise on numpy arrays as well as on scalars.
    """
    return 10.0 ** (np.asarray(value_db, dtype=float) / 10.0) if isinstance(
        value_db, np.ndarray
    ) else 10.0 ** (value_db / 10.0)


def linear_to_db(value):
    """Convert a linear ratio to dB.  Raises ``ValueError`` on non-positive input."""
    arr = np.asarray(value, dtype=float)
    if np.any(arr <= 0):
        raise ValueError("linear_to_db requires strictly positive input")
    out = 10.0 * np.log10(arr)
    return out if isinstance(value, np.ndarray) else float(out)


def dbm_to_mw(power_dbm):
    """Convert dBm to milliwatts."""
    return db_to_linear(power_dbm)


def mw_to_dbm(power_mw):
    """Convert milliwatts to dBm.  Raises ``ValueError`` on non-positive input."""
    return linear_to_db(power_mw)


def wavelength(carrier_hz: float) -> float:
    """Wavelength in meters for a carrier frequency in Hz."""
    if carrier_hz <= 0:
        raise ValueError("carrier frequency must be positive")
    return SPEED_OF_LIGHT / carrier_hz


def thermal_noise_mw(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise power over ``bandwidth_hz`` including a receiver noise figure.

    ``kTB`` noise at 290 K plus the noise figure, returned in milliwatts.
    """
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    noise_dbm = THERMAL_NOISE_DBM_PER_HZ + 10.0 * math.log10(bandwidth_hz) + noise_figure_db
    return dbm_to_mw(noise_dbm)


def free_space_path_loss_db(distance_m: float, carrier_hz: float) -> float:
    """Friis free-space path loss in dB for ``distance_m`` >= a small epsilon.

    Used as the reference loss at the path-loss model's reference distance.
    """
    if distance_m <= 0:
        raise ValueError("distance must be positive")
    lam = wavelength(carrier_hz)
    return 20.0 * math.log10(4.0 * math.pi * distance_m / lam)


def microseconds(seconds: float) -> float:
    """Seconds -> microseconds."""
    return seconds * 1e6


def seconds(microsec: float) -> float:
    """Microseconds -> seconds."""
    return microsec * 1e-6
