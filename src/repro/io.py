"""Atomic filesystem primitives shared by every persistence layer.

Cache entries, campaign manifests, run results, channel traces, and
telemetry exports are all read back by resume logic or other processes;
a crash (including ``kill -9``) mid-write must leave either the old file
or nothing -- never a torn file.  The one sanctioned pattern is a
same-directory temp sibling renamed into place with ``os.replace``
(same-filesystem rename, hence atomic).  ``repro.lint`` rule RPL006
statically enforces that persistence writes in the owning modules go
through this pattern.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable


def atomic_write(path: str | Path, write_to: Callable[[Path], None]) -> Path:
    """Write via a same-directory temp file, then ``os.replace``.

    ``write_to(tmp)`` produces the full content at the temp path; on any
    failure the temp file is removed and the destination is untouched.
    The temp name embeds the PID so concurrent writers never collide on
    the staging file (last rename wins, each file complete).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        write_to(tmp)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    return atomic_write(path, lambda tmp: tmp.write_text(text, encoding="utf-8"))
