"""Antenna-specific, fairness-driven client selection (paper §3.2.5).

MIDAS deliberately selects MU-MIMO clients *without* fresh CSI: antennas are
visited in NAV-expiry order, and each picks -- among backlogged clients whose
packets are tagged to it -- the client with the largest deficit-round-robin
counter.  A client already claimed by an earlier antenna is skipped.  After
the transmission, DRR counters are settled: every served client pays one
TXOP ``T``, and the aggregate service ``n*T`` is credited equally to the
backlogged clients that were left out, steering the long-run schedule toward
fairness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tagging import TagTable


class DeficitRoundRobin:
    """Deficit counters in TXOP units (paper §3.2.5's scheduling policy)."""

    def __init__(self, n_clients: int):
        if n_clients < 1:
            raise ValueError("need at least one client")
        self._counters = np.zeros(n_clients, dtype=float)

    @property
    def counters(self) -> np.ndarray:
        """Current per-client deficit counters (a copy)."""
        return self._counters.copy()

    def pick(self, candidates) -> int | None:
        """Client with the largest deficit among ``candidates``.

        Ties break toward the lowest client index (deterministic).  Returns
        ``None`` when no candidates are offered.
        """
        cand = np.unique(np.asarray(list(candidates), dtype=int))
        if cand.size == 0:
            return None
        # np.unique sorts, so argmax's first-match rule breaks ties toward
        # the lowest client index deterministically.
        best = cand[np.argmax(self._counters[cand])]
        return int(best)

    def settle(self, served, backlogged_unserved, txop_units: float = 1.0) -> None:
        """Apply the paper's counter update after one MU-MIMO round.

        ``served`` clients are decremented by ``T``; each backlogged client
        that was not chosen is incremented by ``n*T/m`` where ``n`` is the
        number of streams just transmitted and ``m`` the number of losers.
        The aggregate counter change is zero whenever ``m > 0``.
        """
        served = np.asarray(list(served), dtype=int)
        losers = np.asarray(list(backlogged_unserved), dtype=int)
        if np.intersect1d(served, losers).size:
            raise ValueError("a client cannot be both served and unserved")
        if served.size == 0:
            return
        self._counters[served] -= txop_units
        if losers.size:
            self._counters[losers] += len(served) * txop_units / losers.size

    def credit(self, clients, txop_units: float = 1.0) -> None:
        """Credit ``clients`` for ``txop_units`` of airtime they waited out.

        The paper's update rule (:meth:`settle`) only moves counters when the
        AP itself transmitted.  When the AP is blocked for a whole round, its
        backlogged clients still watched that round's TXOP go by; crediting
        the waiting time keeps their deficits growing so a long-blocked AP's
        clients win access as soon as their AP next transmits.
        """
        clients = np.asarray(list(clients), dtype=int)
        if clients.size:
            self._counters[clients] += txop_units


class BatchDeficitRoundRobin:
    """Stacked :class:`DeficitRoundRobin`: one counter row per batch item.

    Every operation takes boolean ``(n_items, n_clients)`` masks and applies
    the scalar arithmetic per item under ``np.where`` -- the masked
    control-flow idiom of :mod:`repro.core.batch` -- so item ``i``'s counters
    are bit-identical to a scalar instance fed item ``i``'s rounds.
    """

    def __init__(self, n_items: int, n_clients: int):
        if n_items < 1 or n_clients < 1:
            raise ValueError("need at least one item and one client")
        self._counters = np.zeros((n_items, n_clients), dtype=float)

    @property
    def counters(self) -> np.ndarray:
        """Current ``(n_items, n_clients)`` deficit counters (a copy)."""
        return self._counters.copy()

    def pick(self, candidate_mask: np.ndarray) -> np.ndarray:
        """Largest-deficit candidate per item, ``-1`` where none offered.

        Ties break toward the lowest client index (``argmax`` returns the
        first maximum), matching the scalar :meth:`DeficitRoundRobin.pick`.
        """
        candidate_mask = np.asarray(candidate_mask, dtype=bool)
        masked = np.where(candidate_mask, self._counters, -np.inf)
        picks = np.argmax(masked, axis=1)
        return np.where(candidate_mask.any(axis=1), picks, -1)

    def settle(
        self,
        served_mask: np.ndarray,
        loser_mask: np.ndarray,
        txop_units: float = 1.0,
    ) -> None:
        """Per-item paper update: served pay ``T``, losers split ``n*T``.

        Items whose ``served_mask`` row is empty are untouched (the scalar
        early return); items with no losers only debit the served.
        """
        served_mask = np.asarray(served_mask, dtype=bool)
        loser_mask = np.asarray(loser_mask, dtype=bool)
        if (served_mask & loser_mask).any():
            raise ValueError("a client cannot be both served and unserved")
        n_served = served_mask.sum(axis=1)
        m_losers = loser_mask.sum(axis=1)
        self._counters = np.where(
            served_mask, self._counters - txop_units, self._counters
        )
        share = n_served * txop_units / np.maximum(m_losers, 1)
        apply = loser_mask & ((n_served > 0) & (m_losers > 0))[:, None]
        self._counters = np.where(
            apply, self._counters + share[:, None], self._counters
        )

    def credit(self, client_mask: np.ndarray, txop_units: float = 1.0) -> None:
        """Masked mirror of :meth:`DeficitRoundRobin.credit`."""
        client_mask = np.asarray(client_mask, dtype=bool)
        self._counters = np.where(
            client_mask, self._counters + txop_units, self._counters
        )


@dataclass(frozen=True)
class SelectionOutcome:
    """Result of one antenna-specific selection round."""

    antenna_client_pairs: list[tuple[int, int]]

    @property
    def clients(self) -> list[int]:
        return [client for __, client in self.antenna_client_pairs]

    @property
    def antennas(self) -> list[int]:
        return [antenna for antenna, __ in self.antenna_client_pairs]


def select_clients_for_antennas(
    antennas_in_order,
    tag_table: TagTable,
    drr: DeficitRoundRobin,
    backlogged,
) -> SelectionOutcome:
    """Pick one client per available antenna (paper §3.2.1 Step 3).

    Parameters
    ----------
    antennas_in_order:
        Available antenna indices, ordered by NAV expiry (primary first).
    tag_table:
        Virtual packet tags (a client is considered at an antenna only if
        tagged to it).
    drr:
        Fairness counters; the largest-deficit tagged client wins.
    backlogged:
        Boolean mask or index list of clients with queued packets.

    Returns
    -------
    SelectionOutcome
        ``antenna_client_pairs`` in antenna visit order.  An antenna with no
        eligible client is left unpaired (it still radiates precoded energy
        for the chosen streams -- paper §3.2.5's closing note -- but anchors
        no client of its own).
    """
    backlog_mask = np.zeros(tag_table.n_clients, dtype=bool)
    backlog_mask[np.asarray(list(backlogged), dtype=int)] = True

    chosen: list[tuple[int, int]] = []
    taken = np.zeros(tag_table.n_clients, dtype=bool)
    for antenna in antennas_in_order:
        tagged = tag_table.clients_tagged_to(int(antenna))
        candidates = [c for c in tagged if backlog_mask[c] and not taken[c]]
        client = drr.pick(candidates)
        if client is None:
            continue
        taken[client] = True
        chosen.append((int(antenna), client))
    return SelectionOutcome(antenna_client_pairs=chosen)
