"""MIDAS core: the paper's contribution.

PHY side: zero-forcing beamforming plus the power-balanced precoder built on
reverse water-filling (§3.1), with naive and numerically-optimal comparators.

MAC side: virtual packet tagging (§3.2.4) and antenna-specific deficit
round-robin client selection (§3.2.5); the full MAC machinery lives in
:mod:`repro.mac`.
"""

from .naive import naive_scaled_precoder
from .optimal import full_optimal_precoder, optimal_power_allocation
from .power_balance import PrecodingResult, power_balanced_precoder
from .selection import DeficitRoundRobin, select_clients_for_antennas
from .svd import su_beamforming_precoder, svd_waterfilling
from .tagging import TagTable, antenna_preferences
from .waterfill import reverse_waterfill
from .wmmse import wmmse_precoder
from .zfbf import zf_interference_leakage, zfbf_directions, zfbf_equal_power

__all__ = [
    "naive_scaled_precoder",
    "full_optimal_precoder",
    "optimal_power_allocation",
    "PrecodingResult",
    "power_balanced_precoder",
    "DeficitRoundRobin",
    "select_clients_for_antennas",
    "su_beamforming_precoder",
    "svd_waterfilling",
    "TagTable",
    "antenna_preferences",
    "reverse_waterfill",
    "wmmse_precoder",
    "zf_interference_leakage",
    "zfbf_directions",
    "zfbf_equal_power",
]
