"""Virtual packet tagging (paper §3.2.4).

The MIDAS AP ranks its antennas per client by average received signal
strength and tags every queued packet with the client's ``tag_width``
strongest antennas (two at medium client density).  A packet is eligible for
a MU-MIMO round only if at least one of its tagged antennas is free -- which
both raises per-stream rate (close antennas) and avoids transmitting toward
clients whose local medium is busy (the nearby antenna's channel state
proxies the client's).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def antenna_preferences(rssi_dbm: np.ndarray) -> np.ndarray:
    """Per-client antenna ranking, strongest first.

    ``rssi_dbm`` has shape ``(n_clients, n_antennas)``; the result row ``j``
    lists antenna indices in decreasing order of client ``j``'s RSSI.
    """
    rssi = np.asarray(rssi_dbm, dtype=float)
    if rssi.ndim != 2:
        raise ValueError("rssi_dbm must be (n_clients, n_antennas)")
    # argsort is ascending; negate for descending.  mergesort keeps ties stable.
    return np.argsort(-rssi, axis=1, kind="stable")


@dataclass(frozen=True)
class TagTable:
    """Per-client antenna tags plus the underlying full preference order."""

    tags: np.ndarray  # bool (n_clients, n_antennas)
    preferences: np.ndarray  # int (n_clients, n_antennas), strongest first
    tag_width: int

    @classmethod
    def from_rssi(cls, rssi_dbm: np.ndarray, tag_width: int = 2) -> "TagTable":
        """Build tags from an RSSI table (paper default: two antennas/client)."""
        prefs = antenna_preferences(rssi_dbm)
        n_clients, n_antennas = prefs.shape
        if not 1 <= tag_width <= n_antennas:
            raise ValueError(f"tag_width must be in [1, {n_antennas}]")
        tags = np.zeros((n_clients, n_antennas), dtype=bool)
        rows = np.repeat(np.arange(n_clients), tag_width)
        cols = prefs[:, :tag_width].ravel()
        tags[rows, cols] = True
        return cls(tags=tags, preferences=prefs, tag_width=tag_width)

    @property
    def n_clients(self) -> int:
        return self.tags.shape[0]

    @property
    def n_antennas(self) -> int:
        return self.tags.shape[1]

    def clients_tagged_to(self, antenna: int) -> np.ndarray:
        """Client indices whose packets carry antenna ``antenna``'s tag."""
        return np.flatnonzero(self.tags[:, antenna])

    def eligible_clients(self, available_antennas) -> np.ndarray:
        """Clients with at least one tagged antenna in ``available_antennas``
        (the paper's filtering rule)."""
        available = np.zeros(self.n_antennas, dtype=bool)
        available[np.asarray(available_antennas, dtype=int)] = True
        return np.flatnonzero((self.tags & available[None, :]).any(axis=1))

    def best_antenna(self, client: int) -> int:
        """The client's single strongest antenna."""
        return int(self.preferences[client, 0])
