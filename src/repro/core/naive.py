"""The naive per-antenna power repair the paper argues against (§3.1.1).

Conventional ZFBF splits power equally across streams; to satisfy the
per-antenna constraint one can find the antenna that violates it the most
(paper eq. 5) and scale *all streams on all antennas* by a single factor.
This preserves zero-forcing but strands power on every other antenna --
acceptably in a CAS, where the rows of ``V`` are nearly balanced, but
disastrously in a DAS, whose topology imbalance makes rows wildly unequal
(paper Fig 3).  This is the paper's precoding baseline ("a simple extension
to conventional ZFBF", §5.1).
"""

from __future__ import annotations

import numpy as np

from ..phy.capacity import per_antenna_row_power
from .zfbf import zfbf_equal_power


def naive_scaled_precoder(
    h: np.ndarray,
    per_antenna_power_mw: float,
    total_power_mw: float | None = None,
) -> np.ndarray:
    """Equal-power ZFBF followed by one global scaling to per-antenna feasibility.

    Parameters
    ----------
    h:
        Channel matrix ``(n_clients, n_antennas)``.
    per_antenna_power_mw:
        The per-antenna budget ``P`` (paper eq. 3).
    total_power_mw:
        Total budget used for the initial equal split; defaults to
        ``n_antennas * per_antenna_power_mw``.

    Returns
    -------
    numpy.ndarray
        Precoder ``(n_antennas, n_clients)`` satisfying every row constraint.
    """
    if per_antenna_power_mw <= 0:
        raise ValueError("per_antenna_power_mw must be positive")
    h = np.asarray(h, dtype=complex)
    n_antennas = h.shape[1]
    if total_power_mw is None:
        total_power_mw = n_antennas * per_antenna_power_mw
    v = zfbf_equal_power(h, total_power_mw)
    worst_row = float(per_antenna_row_power(v).max())
    if worst_row > per_antenna_power_mw:
        v = v * np.sqrt(per_antenna_power_mw / worst_row)
    return v
