"""WMMSE precoding under per-antenna power -- an *extension* comparator.

The paper notes that non-ZF precoders with per-antenna constraints are "too
computationally complex to realize" in an AP's real-time path [11, 32].  This
module implements the classic WMMSE iteration (Shi et al. 2011) specialized
to single-antenna clients, with the per-antenna constraint enforced by
Euclidean projection (row rescaling) after each precoder update.  The
projection makes the method a heuristic rather than a convergent algorithm,
so the iteration tracks and returns the best *feasible* iterate seen.

It serves the ablation bench as a "what if we paid for a heavyweight non-ZF
precoder" data point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..phy.capacity import per_antenna_row_power, stream_sinrs, sum_capacity_bps_hz
from .naive import naive_scaled_precoder


@dataclass(frozen=True)
class WmmseResult:
    """Best feasible WMMSE iterate and its capacity."""

    v: np.ndarray
    capacity_bps_hz: float
    iterations: int


def _project_per_antenna(v: np.ndarray, per_antenna_power_mw: float) -> np.ndarray:
    """Euclidean projection onto the per-antenna power ball: rescale only the
    rows that exceed the budget."""
    row_powers = per_antenna_row_power(v)
    scale = np.ones_like(row_powers)
    over = row_powers > per_antenna_power_mw
    scale[over] = np.sqrt(per_antenna_power_mw / row_powers[over])
    return v * scale[:, None]


def wmmse_precoder(
    h: np.ndarray,
    per_antenna_power_mw: float,
    noise_mw: float,
    *,
    iterations: int = 60,
    mu_grid: int = 30,
) -> WmmseResult:
    """Run projected WMMSE and return the best feasible precoder found.

    Parameters
    ----------
    h:
        Channel ``(n_clients, n_antennas)``.
    per_antenna_power_mw, noise_mw:
        Constraint and noise floor.
    iterations:
        Outer WMMSE rounds.
    mu_grid:
        Bisection steps when solving for the total-power multiplier inside
        each precoder update.
    """
    if per_antenna_power_mw <= 0 or noise_mw <= 0:
        raise ValueError("powers must be positive")
    h = np.asarray(h, dtype=complex)
    n_clients, n_antennas = h.shape
    total_power = n_antennas * per_antenna_power_mw

    v = naive_scaled_precoder(h, per_antenna_power_mw)
    best_v = v
    best_capacity = sum_capacity_bps_hz(stream_sinrs(h, v, noise_mw))

    eye = np.eye(n_antennas)
    for it in range(iterations):
        # Receiver update (scalar MMSE per single-antenna client).
        e = h @ v  # (clients, streams)
        rx_power = np.sum(np.abs(e) ** 2, axis=1) + noise_mw
        u = np.conj(np.diag(e)) / rx_power  # u_j
        # MSE weights.
        mse = 1.0 - np.real(u * np.diag(e))
        mse = np.clip(mse, 1e-9, None)
        w = 1.0 / mse
        # Precoder update: V(mu) = (A + mu I)^-1 B, mu via total-power bisection.
        a = np.zeros((n_antennas, n_antennas), dtype=complex)
        b = np.zeros((n_antennas, n_clients), dtype=complex)
        for j in range(n_clients):
            hj = h[j : j + 1, :]  # (1, T)
            a += w[j] * (np.abs(u[j]) ** 2) * (hj.conj().T @ hj)
            b[:, j] = w[j] * np.conj(u[j]) * hj.conj().ravel()

        def v_of_mu(mu: float) -> np.ndarray:
            return np.linalg.solve(a + mu * eye, b)

        lo, hi = 0.0, 1.0
        # Grow hi until the total power is under budget.
        for _ in range(60):
            if float(np.sum(np.abs(v_of_mu(hi)) ** 2)) <= total_power:
                break
            hi *= 4.0
        if float(np.sum(np.abs(v_of_mu(lo + 1e-15)) ** 2)) <= total_power:
            v_new = v_of_mu(lo + 1e-15)
        else:
            for _ in range(mu_grid):
                mid = 0.5 * (lo + hi)
                if float(np.sum(np.abs(v_of_mu(mid)) ** 2)) > total_power:
                    lo = mid
                else:
                    hi = mid
            v_new = v_of_mu(hi)

        v = _project_per_antenna(v_new, per_antenna_power_mw)
        capacity = sum_capacity_bps_hz(stream_sinrs(h, v, noise_mw))
        if capacity > best_capacity:
            best_capacity = capacity
            best_v = v

    return WmmseResult(v=best_v, capacity_bps_hz=best_capacity, iterations=iterations)
