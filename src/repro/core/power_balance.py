"""MIDAS power-balanced precoding (paper §3.1.2, Steps 1-4).

The iteration:

1. compute equal-power ZFBF (total budget = ``n_antennas * P``);
2. find the antenna (row) violating the per-antenna constraint the most;
3. reverse water-fill that row to obtain per-stream scaling weights;
4. apply each weight to the stream's whole *column* -- which preserves the
   zero-forcing property -- and repeat until all rows are feasible.

Because weights never exceed 1, previously-repaired rows can only get
lighter, so the loop terminates in at most ``n_antennas`` rounds (asserted
here and property-tested).  Each round is closed-form, which is the point:
the precoder is fast enough to run inside a channel coherence time, unlike
the numerical optimum (Fig 11's discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..phy.capacity import per_antenna_row_power, stream_sinrs
from .waterfill import reverse_waterfill
from .zfbf import zfbf_equal_power


@dataclass(frozen=True)
class PrecodingResult:
    """A precoder together with how it was reached."""

    v: np.ndarray  # (n_antennas, n_clients)
    rounds: int  # water-filling rounds executed
    converged: bool  # all rows feasible at exit
    row_powers_mw: np.ndarray  # final per-antenna powers
    cumulative_weights: np.ndarray  # product of all column scalings applied

    @property
    def n_antennas(self) -> int:
        return self.v.shape[0]

    @property
    def n_clients(self) -> int:
        return self.v.shape[1]


def power_balanced_precoder(
    h: np.ndarray,
    per_antenna_power_mw: float,
    noise_mw: float,
    *,
    total_power_mw: float | None = None,
    min_weight: float = 0.1,
    rtol: float = 1e-9,
) -> PrecodingResult:
    """Compute the MIDAS power-balanced ZFBF precoder.

    Parameters
    ----------
    h:
        Channel matrix ``(n_clients, n_antennas)``.
    per_antenna_power_mw:
        The 802.11ac per-antenna budget ``P`` (paper eq. 3).
    noise_mw:
        Receiver noise floor; the water-filling weights depend on the current
        stream SINRs (paper eq. 9).
    total_power_mw:
        Initial equal-split budget; defaults to ``n_antennas * P``.
    min_weight:
        Floor on any single round's scaling weight so no stream is zeroed.
    rtol:
        Relative tolerance on the per-antenna constraint.

    Returns
    -------
    PrecodingResult
        The final precoder; ``result.rounds <= n_antennas`` whenever the
        min-weight floor never binds.
    """
    if per_antenna_power_mw <= 0:
        raise ValueError("per_antenna_power_mw must be positive")
    if noise_mw <= 0:
        raise ValueError("noise_mw must be positive")
    h = np.asarray(h, dtype=complex)
    n_antennas = h.shape[1]
    n_clients = h.shape[0]
    if total_power_mw is None:
        total_power_mw = n_antennas * per_antenna_power_mw

    v = zfbf_equal_power(h, total_power_mw)
    cumulative = np.ones(n_clients)
    budget = per_antenna_power_mw * (1.0 + rtol)

    rounds = 0
    # The paper's bound is n_antennas rounds; allow a few extra for the rare
    # case the min-weight cap binds and a row needs a second visit.
    max_rounds = 3 * n_antennas + 5
    while rounds < max_rounds:
        row_powers = per_antenna_row_power(v)
        worst = int(np.argmax(row_powers))
        if row_powers[worst] <= budget:
            break
        rounds += 1
        sinrs = stream_sinrs(h, v, noise_mw)
        result = reverse_waterfill(
            np.abs(v[worst, :]) ** 2,
            sinrs,
            per_antenna_power_mw,
            min_weight=min_weight,
        )
        v = v * result.weights[None, :]
        cumulative = cumulative * result.weights
        if result.capped:
            # Min-weight floor bound: finish the row with a uniform scale so
            # the loop is guaranteed to make progress (ZF still preserved).
            row_power = float(per_antenna_row_power(v)[worst])
            if row_power > per_antenna_power_mw:
                scale = np.sqrt(per_antenna_power_mw / row_power)
                v = v * scale
                cumulative = cumulative * scale

    row_powers = per_antenna_row_power(v)
    return PrecodingResult(
        v=v,
        rounds=rounds,
        converged=bool(row_powers.max() <= budget),
        row_powers_mw=row_powers,
        cumulative_weights=cumulative,
    )
