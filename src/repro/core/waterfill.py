"""Reverse water-filling (paper §3.1.2, eqs. 7-9).

Given the most-violating antenna (row ``k*`` of the precoding matrix), we
must *remove* enough power from the row to restore the per-antenna budget
``P`` while losing as little sum rate as possible.  The paper's Lagrangian
solution gives the power reduction of stream ``j`` as

    ``P_j = [ (1 + 1/rho_j) * |v_kj|^2  -  1/lambda ]+``

where ``rho_j`` is the stream's current SINR and ``1/lambda`` plays the role
of the water level: streams whose (SINR-weighted) row power pokes above the
level are shaved down to it, streams below it are untouched.  Two paper
requirements shape the solver:

* (i) **no stream may reach zero power** -- a zeroed column would drop the
  stream entirely, so reductions are capped at ``(1 - min_weight^2)`` of the
  element's power;
* (ii) **only reductions are allowed** (``P_j >= 0``) -- increases could
  re-violate antennas that were already fixed and prevent convergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Tolerance on meeting the power budget, relative to the budget.
_BUDGET_RTOL = 1e-9


@dataclass(frozen=True)
class WaterfillResult:
    """Outcome of one reverse water-filling on one antenna row."""

    weights: np.ndarray  # per-stream scaling weights w_j in (0, 1]
    reductions_mw: np.ndarray  # per-stream power removed from this row
    water_level: float  # 1/lambda at the solution
    capped: bool  # True if the min-weight floor was binding

    @property
    def feasible(self) -> bool:
        """Whether the requested budget was actually reached."""
        return not self.capped


def reverse_waterfill(
    row_powers_mw: np.ndarray,
    sinrs: np.ndarray,
    power_budget_mw: float,
    min_weight: float = 0.1,
) -> WaterfillResult:
    """Compute scaling weights for one violating antenna row.

    Parameters
    ----------
    row_powers_mw:
        ``|v_kj|^2`` for each stream ``j`` on the violating antenna ``k``.
    sinrs:
        Current stream SINRs ``rho_j`` (post-ZF, so SNRs).
    power_budget_mw:
        The per-antenna constraint ``P`` the row must meet.
    min_weight:
        Floor on each weight so no stream is eliminated (paper req. (i)).

    Returns
    -------
    WaterfillResult
        ``weights`` multiply the *columns* of the precoder (so the ZF
        property is preserved); ``weights[j] = sqrt(1 - P_j / |v_kj|^2)``.
    """
    q = np.asarray(row_powers_mw, dtype=float)
    rho = np.asarray(sinrs, dtype=float)
    if q.shape != rho.shape or q.ndim != 1:
        raise ValueError("row_powers_mw and sinrs must be 1-D with equal length")
    if power_budget_mw <= 0:
        raise ValueError("power_budget_mw must be positive")
    if not 0.0 < min_weight < 1.0:
        raise ValueError("min_weight must be in (0, 1)")
    if np.any(q < 0) or np.any(rho < 0):
        raise ValueError("row powers and SINRs must be non-negative")

    total = float(q.sum())
    required_reduction = total - power_budget_mw
    if required_reduction <= 0:
        return WaterfillResult(
            weights=np.ones_like(q),
            reductions_mw=np.zeros_like(q),
            water_level=float(np.inf),
            capped=False,
        )

    # Guard against zero-SINR streams: (1 + 1/rho) -> a large finite weight so
    # such streams are shaved first (they carry ~no rate anyway).
    rho_safe = np.maximum(rho, 1e-12)
    marginal = (1.0 + 1.0 / rho_safe) * q  # water-level coordinates per stream
    caps = (1.0 - min_weight**2) * q  # max removable power per stream (req. i)

    def total_reduction(level: float) -> float:
        return float(np.sum(np.clip(marginal - level, 0.0, caps)))

    max_possible = total_reduction(0.0)
    if required_reduction >= max_possible:
        # Min-weight caps bind everywhere: return the deepest allowed cut.
        reductions = caps
        weights = np.sqrt(np.maximum(1.0 - reductions / np.maximum(q, 1e-300), 0.0))
        weights = np.where(q > 0, np.maximum(weights, min_weight), 1.0)
        return WaterfillResult(
            weights=weights, reductions_mw=reductions, water_level=0.0, capped=True
        )

    # total_reduction is continuous and non-increasing in the level; bisect.
    low, high = 0.0, float(marginal.max())
    for _ in range(200):
        mid = 0.5 * (low + high)
        if total_reduction(mid) > required_reduction:
            low = mid
        else:
            high = mid
        if high - low <= _BUDGET_RTOL * max(1.0, high):
            break
    level = 0.5 * (low + high)
    reductions = np.clip(marginal - level, 0.0, caps)

    # Exact budget: distribute any residual due to bisection tolerance across
    # the streams that are strictly between 0 and their cap.
    residual = required_reduction - float(reductions.sum())
    if abs(residual) > _BUDGET_RTOL * power_budget_mw:
        active = (reductions > 0) & (reductions < caps)
        n_active = int(active.sum())
        if n_active:
            adjusted = reductions[active] + residual / n_active
            reductions = reductions.copy()
            reductions[active] = np.clip(adjusted, 0.0, caps[active])

    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(q > 0, reductions / np.maximum(q, 1e-300), 0.0)
    weights = np.sqrt(np.clip(1.0 - ratio, min_weight**2, 1.0))
    return WaterfillResult(
        weights=weights,
        reductions_mw=reductions,
        water_level=level,
        capped=False,
    )
