"""Single-user comparators from the paper's §7 discussion.

* :func:`su_beamforming_precoder` -- beamforming all antennas to one client.
  Under a per-antenna constraint the optimal single-stream beamformer is
  *equal-gain*: every antenna transmits at full power with the phase that
  aligns its contribution at the client.  §7 argues its logarithmic SNR gain
  (and network-wide silencing) make it the wrong default for MIDAS.
* :func:`svd_waterfilling` -- classic SVD precoding with water-filling for a
  multi-antenna client under a *total* power constraint.  §7 explains why
  SVD's power allocation does not fit DAS's per-antenna constraint; the
  returned allocation lets benches quantify that misfit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def su_beamforming_precoder(h_row: np.ndarray, per_antenna_power_mw: float) -> np.ndarray:
    """Equal-gain transmit beamforming to a single single-antenna client.

    Returns a column vector ``(n_antennas, 1)`` with ``|v_k|^2 =
    per_antenna_power_mw`` and phases conjugate to the channel, so
    contributions add coherently: received amplitude ``sum_k sqrt(P) |h_k|``.
    """
    if per_antenna_power_mw <= 0:
        raise ValueError("per_antenna_power_mw must be positive")
    h_row = np.asarray(h_row, dtype=complex).ravel()
    if h_row.size == 0:
        raise ValueError("need at least one antenna")
    phases = np.exp(-1j * np.angle(h_row))
    return (np.sqrt(per_antenna_power_mw) * phases)[:, None]


@dataclass(frozen=True)
class SvdAllocation:
    """SVD precoding solution for one multi-antenna client."""

    v: np.ndarray  # (n_tx, n_streams) precoder, columns carry stream powers
    stream_powers_mw: np.ndarray
    singular_values: np.ndarray

    def capacity_bps_hz(self, noise_mw: float) -> float:
        """Shannon capacity of the parallel streams."""
        snrs = self.stream_powers_mw * self.singular_values**2 / noise_mw
        return float(np.sum(np.log2(1.0 + snrs)))


def svd_waterfilling(
    h: np.ndarray, total_power_mw: float, noise_mw: float
) -> SvdAllocation:
    """SVD precoding + water-filling power allocation (total power constraint).

    ``h`` is the single client's MIMO channel ``(n_rx, n_tx)``.  Streams ride
    the right singular vectors; powers solve the classic water-filling
    problem over the singular-value channels.
    """
    if total_power_mw <= 0 or noise_mw <= 0:
        raise ValueError("powers must be positive")
    h = np.asarray(h, dtype=complex)
    __, singular_values, vh = np.linalg.svd(h, full_matrices=False)
    gains = singular_values**2 / noise_mw  # per-stream SNR per unit power
    usable = gains > 0
    if not np.any(usable):
        raise ValueError("channel has no usable singular modes")

    # Water-filling: p_i = max(0, mu - 1/g_i) with sum p_i = total power.
    inv_gains = 1.0 / gains[usable]
    order = np.argsort(inv_gains)
    sorted_inv = inv_gains[order]
    n = len(sorted_inv)
    mu = 0.0
    active = n
    for k in range(n, 0, -1):
        candidate_mu = (total_power_mw + np.sum(sorted_inv[:k])) / k
        if candidate_mu > sorted_inv[k - 1]:
            mu = candidate_mu
            active = k
            break
    powers_sorted = np.clip(mu - sorted_inv, 0.0, None)
    powers_sorted[active:] = 0.0
    powers = np.zeros(gains.shape)
    usable_idx = np.flatnonzero(usable)
    powers[usable_idx[order]] = powers_sorted

    v = vh.conj().T * np.sqrt(powers)[None, :]
    return SvdAllocation(v=v, stream_powers_mw=powers, singular_values=singular_values)
