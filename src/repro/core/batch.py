"""Batched linear-algebra precoders over stacked channel matrices.

Every function mirrors its scalar sibling in :mod:`repro.core` but operates
on a *stack* of channels ``(batch, n_clients, n_antennas)`` at once, using
broadcasting ``linalg`` (stacked ``svd``/``pinv``/``eigh``/matmul loop over
the trailing two axes inside one call).  The contract -- asserted by the
equivalence suite -- is **bit-identity** on the NumPy namespace: slice ``i``
of every output equals the scalar function applied to slice ``i`` of the
input, including the data-dependent control flow of the power-balancing
iteration and the reverse water-filling bisection, which run with per-item
masks that freeze an item the same round the scalar loop would exit.

This is the heart of the ``backend="vectorized"`` Runner path: Monte-Carlo
sweeps spend their time in many tiny (4x4-ish) matrix problems, where the
Python dispatch overhead of one-matrix-at-a-time evaluation dwarfs the
arithmetic; stacking turns the sweep into a handful of LAPACK gufunc calls.

All functions are namespace-generic (:mod:`repro.xp`): the governing ``xp``
is inferred from the input stack, so NumPy input computes with NumPy's own
functions (bit-identical to the pre-dispatch code) while torch input stays
on-device through the whole solve.  Rank-deficiency errors are raised as
:class:`numpy.linalg.LinAlgError` on every namespace so callers keep one
exception type.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..phy.capacity import per_antenna_row_power, stream_sinrs
from ..xp import array_namespace, to_numpy
from .waterfill import _BUDGET_RTOL


def _as_channel_stack(h):
    xp = array_namespace(h)
    h = xp.asarray(h, dtype=xp.complex_dtype)
    if h.ndim < 3:
        raise ValueError(
            f"expected a stacked channel (batch, n_clients, n_antennas); "
            f"got shape {tuple(h.shape)} (use repro.core for single matrices)"
        )
    return h


# ----------------------------------------------------------------------
# ZFBF and the naive repair
# ----------------------------------------------------------------------
def zfbf_directions(h, rcond: float = 1e-12):
    """Stacked unit-norm ZFBF columns (see :func:`repro.core.zfbf.zfbf_directions`).

    Raises :class:`numpy.linalg.LinAlgError` if *any* item is numerically
    rank deficient -- matching the loop backend, where the first offending
    topology aborts the sweep.
    """
    h = _as_channel_stack(h)
    xp = array_namespace(h)
    n_clients, n_antennas = h.shape[-2:]
    if n_clients > n_antennas:
        raise ValueError(
            f"ZFBF needs n_clients <= n_antennas, got {n_clients} > {n_antennas}"
        )
    if n_clients == 0:
        raise ValueError("need at least one client")
    singular_values = xp.linalg.svd(h, compute_uv=False)
    if xp.any(singular_values[..., -1] <= rcond * singular_values[..., 0]):
        raise np.linalg.LinAlgError(
            "a channel matrix in the batch is (numerically) rank deficient; "
            "zero-forcing cannot separate these clients"
        )
    v = xp.linalg.pinv(h, rcond=rcond)
    norms = xp.linalg.norm(v, axis=-2)
    return v / norms[..., None, :]


def zfbf_equal_power(h, total_power_mw: float, rcond: float = 1e-12):
    """Stacked equal-power ZFBF under a total budget (paper eq. 2a)."""
    if total_power_mw <= 0:
        raise ValueError("total_power_mw must be positive")
    directions = zfbf_directions(h, rcond=rcond)
    n_streams = directions.shape[-1]
    per_stream = total_power_mw / n_streams
    return directions * math.sqrt(per_stream)


def naive_scaled_precoder(
    h,
    per_antenna_power_mw: float,
    total_power_mw: float | None = None,
):
    """Stacked naive repair: equal-power ZFBF, then one global scaling per
    item whose worst row violates the per-antenna budget (paper eq. 5)."""
    if per_antenna_power_mw <= 0:
        raise ValueError("per_antenna_power_mw must be positive")
    h = _as_channel_stack(h)
    xp = array_namespace(h)
    n_antennas = h.shape[-1]
    if total_power_mw is None:
        total_power_mw = n_antennas * per_antenna_power_mw
    v = zfbf_equal_power(h, total_power_mw)
    worst_row = xp.max(per_antenna_row_power(v), axis=-1)
    # Items already feasible multiply by exactly 1.0 (a bit-exact no-op),
    # mirroring the scalar branch that skips the scaling.
    scale = xp.where(
        worst_row > per_antenna_power_mw,
        xp.sqrt(per_antenna_power_mw / worst_row),
        1.0,
    )
    return v * scale[..., None, None]


# ----------------------------------------------------------------------
# Reverse water-filling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchWaterfillResult:
    """Stacked outcome of reverse water-filling, one row solution per item."""

    weights: np.ndarray  # (..., n_streams) scaling weights in (0, 1]
    reductions_mw: np.ndarray  # (..., n_streams) power removed per stream
    water_level: np.ndarray  # (...,) 1/lambda at each item's solution
    capped: np.ndarray  # (...,) True where the min-weight floor bound


def reverse_waterfill(
    row_powers_mw,
    sinrs,
    power_budget_mw: float,
    min_weight: float = 0.1,
) -> BatchWaterfillResult:
    """Stacked :func:`repro.core.waterfill.reverse_waterfill`.

    ``row_powers_mw`` and ``sinrs`` are ``(..., n_streams)`` stacks; the
    budget and weight floor are shared scalars (one radio config per batch).
    The bisection iterates all items together but freezes each item the
    iteration its own tolerance is met, reproducing the scalar early exit.
    """
    xp = array_namespace(row_powers_mw, sinrs)
    q = xp.asarray(row_powers_mw, dtype=xp.float_dtype)
    rho = xp.asarray(sinrs, dtype=xp.float_dtype)
    if tuple(q.shape) != tuple(rho.shape) or q.ndim < 2:
        raise ValueError(
            "row_powers_mw and sinrs must be equal-shape stacks (..., n_streams)"
        )
    if power_budget_mw <= 0:
        raise ValueError("power_budget_mw must be positive")
    if not 0.0 < min_weight < 1.0:
        raise ValueError("min_weight must be in (0, 1)")
    if xp.any(q < 0) or xp.any(rho < 0):
        raise ValueError("row powers and SINRs must be non-negative")

    total = xp.sum(q, axis=-1)
    required = total - power_budget_mw
    trivial = required <= 0

    rho_safe = xp.maximum(rho, 1e-12)
    marginal = (1.0 + 1.0 / rho_safe) * q  # water-level coordinates per stream
    caps = (1.0 - min_weight**2) * q  # max removable power per stream (req. i)

    def total_reduction(level):
        return xp.sum(xp.clip(marginal - level[..., None], 0.0, caps), axis=-1)

    max_possible = total_reduction(xp.zeros_like(required))
    capped = ~trivial & (required >= max_possible)

    # --- capped branch: min-weight caps bind everywhere ----------------
    capped_reductions = caps
    capped_weights = xp.sqrt(
        xp.maximum(1.0 - capped_reductions / xp.maximum(q, 1e-300), 0.0)
    )
    capped_weights = xp.where(q > 0, xp.maximum(capped_weights, min_weight), 1.0)

    # --- bisection branch, per-item freeze on convergence --------------
    bisect = ~trivial & ~capped
    low = xp.zeros_like(required)
    high = xp.max(marginal, axis=-1)
    active = xp.copy(bisect)
    for _ in range(200):
        if not xp.any(active):
            break
        mid = 0.5 * (low + high)
        reduce_mid = total_reduction(mid)
        go_low = reduce_mid > required
        low = xp.where(active & go_low, mid, low)
        high = xp.where(active & ~go_low, mid, high)
        active = active & (high - low > _BUDGET_RTOL * xp.maximum(1.0, high))
    level = 0.5 * (low + high)
    reductions = xp.clip(marginal - level[..., None], 0.0, caps)

    # Exact budget: distribute any bisection residual across the streams
    # strictly between 0 and their cap (same repair as the scalar solver).
    residual = required - xp.sum(reductions, axis=-1)
    between = (reductions > 0) & (reductions < caps)
    n_active = xp.sum(between, axis=-1)
    fix = bisect & (xp.abs(residual) > _BUDGET_RTOL * power_budget_mw) & (n_active > 0)
    if xp.any(fix):
        adjusted = xp.clip(
            reductions + (residual / xp.maximum(n_active, 1))[..., None],
            0.0,
            caps,
        )
        reductions = xp.where(fix[..., None] & between, adjusted, reductions)

    with xp.errstate(divide="ignore", invalid="ignore"):
        ratio = xp.where(q > 0, reductions / xp.maximum(q, 1e-300), 0.0)
    bisect_weights = xp.sqrt(xp.clip(1.0 - ratio, min_weight**2, 1.0))

    # --- select per-item branch results --------------------------------
    ones = xp.ones_like(q)
    weights = xp.where(
        trivial[..., None],
        ones,
        xp.where(capped[..., None], capped_weights, bisect_weights),
    )
    reductions_out = xp.where(
        trivial[..., None],
        xp.zeros_like(q),
        xp.where(capped[..., None], capped_reductions, reductions),
    )
    water_level = xp.where(trivial, xp.inf, xp.where(capped, 0.0, level))
    return BatchWaterfillResult(
        weights=weights,
        reductions_mw=reductions_out,
        water_level=water_level,
        capped=capped,
    )


# ----------------------------------------------------------------------
# MIDAS power balancing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchPrecodingResult:
    """Stacked precoders together with how each item reached its solution."""

    v: np.ndarray  # (batch, n_antennas, n_clients)
    rounds: np.ndarray  # (batch,) water-filling rounds per item
    converged: np.ndarray  # (batch,) all rows feasible at exit
    row_powers_mw: np.ndarray  # (batch, n_antennas) final per-antenna powers
    cumulative_weights: np.ndarray  # (batch, n_clients) product of scalings

    @property
    def n_antennas(self) -> int:
        return self.v.shape[-2]

    @property
    def n_clients(self) -> int:
        return self.v.shape[-1]


def power_balanced_precoder(
    h,
    per_antenna_power_mw: float,
    noise_mw: float,
    *,
    total_power_mw: float | None = None,
    min_weight: float = 0.1,
    rtol: float = 1e-9,
) -> BatchPrecodingResult:
    """Stacked MIDAS power-balanced precoding (paper §3.1.2, Steps 1-4).

    The repair loop runs over the whole batch with an *active* mask: each
    round, items whose worst row is already feasible stop updating (their
    precoders are multiplied by exact 1.0 weights), so every item traces
    the identical round sequence -- and bit pattern -- of the scalar
    :func:`repro.core.power_balance.power_balanced_precoder`.
    """
    if per_antenna_power_mw <= 0:
        raise ValueError("per_antenna_power_mw must be positive")
    if noise_mw <= 0:
        raise ValueError("noise_mw must be positive")
    h = _as_channel_stack(h)
    xp = array_namespace(h)
    n_clients, n_antennas = h.shape[-2:]
    if total_power_mw is None:
        total_power_mw = n_antennas * per_antenna_power_mw

    v = zfbf_equal_power(h, total_power_mw)
    batch_shape = tuple(h.shape[:-2])
    cumulative = xp.ones(batch_shape + (n_clients,), dtype=xp.float_dtype)
    budget = per_antenna_power_mw * (1.0 + rtol)

    rounds = xp.zeros(batch_shape, dtype=xp.int_dtype)
    active = xp.ones(batch_shape, dtype=xp.bool_dtype)
    # The paper's bound is n_antennas rounds; allow a few extra for the rare
    # case the min-weight cap binds and a row needs a second visit.
    max_rounds = 3 * n_antennas + 5
    for _ in range(max_rounds):
        row_powers = per_antenna_row_power(v)
        worst = xp.argmax(row_powers, axis=-1)
        worst_power = xp.take_along_axis(row_powers, worst[..., None], axis=-1)[..., 0]
        active = active & (worst_power > budget)
        if not xp.any(active):
            break
        rounds = rounds + xp.where(active, 1, 0)
        sinrs = stream_sinrs(h, v, noise_mw)
        worst_rows = xp.take_along_axis(v, worst[..., None, None], axis=-2)[..., 0, :]
        result = reverse_waterfill(
            xp.abs(worst_rows) ** 2,
            sinrs,
            per_antenna_power_mw,
            min_weight=min_weight,
        )
        weights = xp.where(active[..., None], result.weights, 1.0)
        v = v * weights[..., None, :]
        cumulative = cumulative * weights
        capped_now = active & result.capped
        if xp.any(capped_now):
            # Min-weight floor bound: finish the row with a uniform scale so
            # the loop is guaranteed to make progress (ZF still preserved).
            row_power = xp.take_along_axis(
                per_antenna_row_power(v), worst[..., None], axis=-1
            )[..., 0]
            needs_scale = capped_now & (row_power > per_antenna_power_mw)
            scale = xp.where(
                needs_scale, xp.sqrt(per_antenna_power_mw / row_power), 1.0
            )
            v = v * scale[..., None, None]
            cumulative = cumulative * scale[..., None]

    row_powers = per_antenna_row_power(v)
    return BatchPrecodingResult(
        v=v,
        rounds=rounds,
        converged=xp.max(row_powers, axis=-1) <= budget,
        row_powers_mw=row_powers,
        cumulative_weights=cumulative,
    )


# ----------------------------------------------------------------------
# Single-user SVD water-filling (paper §7 comparator)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchSvdAllocation:
    """Stacked SVD precoding solutions for a batch of single-client links."""

    v: np.ndarray  # (batch, n_tx, n_streams)
    stream_powers_mw: np.ndarray  # (batch, n_streams)
    singular_values: np.ndarray  # (batch, n_streams)

    def capacity_bps_hz(self, noise_mw: float):
        """Shannon capacity of the parallel streams, per item."""
        xp = array_namespace(self.stream_powers_mw, self.singular_values)
        snrs = self.stream_powers_mw * self.singular_values**2 / noise_mw
        return xp.sum(xp.log2(1.0 + snrs), axis=-1)


def svd_waterfilling(
    h, total_power_mw: float, noise_mw: float
) -> BatchSvdAllocation:
    """Stacked :func:`repro.core.svd.svd_waterfilling`: batched SVD plus the
    classic water-filling allocation, solved for all items at once.

    The vectorized fast path assumes every singular mode is usable
    (positive gain), which holds for the random indoor channels the sweeps
    draw; a batch containing a rank-deficient item falls back to the scalar
    solver item by item, so results stay bit-identical either way.
    """
    if total_power_mw <= 0 or noise_mw <= 0:
        raise ValueError("powers must be positive")
    h = _as_channel_stack(h)
    xp = array_namespace(h)
    __, singular_values, vh = xp.linalg.svd(h, full_matrices=False)
    gains = singular_values**2 / noise_mw  # per-stream SNR per unit power
    if not xp.all(gains > 0):
        # Some item has an unusable mode: defer to the scalar solver's
        # usable-mode masking (and its error for fully degenerate items).
        from .svd import svd_waterfilling as scalar_svd_waterfilling

        solutions = [
            scalar_svd_waterfilling(item, total_power_mw, noise_mw)
            for item in to_numpy(h)
        ]
        return BatchSvdAllocation(
            v=xp.asarray(
                np.stack([s.v for s in solutions]), dtype=xp.complex_dtype
            ),
            stream_powers_mw=xp.asarray(
                np.stack([s.stream_powers_mw for s in solutions]),
                dtype=xp.float_dtype,
            ),
            singular_values=xp.asarray(
                np.stack([s.singular_values for s in solutions]),
                dtype=xp.float_dtype,
            ),
        )

    inv_gains = 1.0 / gains
    order = xp.argsort(inv_gains, axis=-1)
    sorted_inv = xp.take_along_axis(inv_gains, order, axis=-1)
    n = sorted_inv.shape[-1]

    # Walk k = n..1 exactly like the scalar solver, taking each item's
    # first (largest-k) water level that clears the k-th channel.
    item_shape = tuple(sorted_inv.shape[:-1])
    mu = xp.zeros(item_shape, dtype=xp.float_dtype)
    n_active = xp.full(item_shape, n)
    found = xp.zeros(item_shape, dtype=xp.bool_dtype)
    for k in range(n, 0, -1):
        candidate_mu = (total_power_mw + xp.sum(sorted_inv[..., :k], axis=-1)) / k
        take = ~found & (candidate_mu > sorted_inv[..., k - 1])
        mu = xp.where(take, candidate_mu, mu)
        n_active = xp.where(take, k, n_active)
        found = found | take

    powers_sorted = xp.clip(mu[..., None] - sorted_inv, 0.0, None)
    powers_sorted = xp.where(
        xp.arange(n) < n_active[..., None], powers_sorted, 0.0
    )
    powers = xp.zeros_like(powers_sorted)
    xp.put_along_axis(powers, order, powers_sorted, axis=-1)

    v = xp.conj(xp.swapaxes(vh, -1, -2)) * xp.sqrt(powers)[..., None, :]
    return BatchSvdAllocation(
        v=v, stream_powers_mw=powers, singular_values=singular_values
    )
