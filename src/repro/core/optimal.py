"""Numerical optimal precoding comparators (the paper's "MATLAB toolbox").

Fig 11 compares MIDAS's closed form against an optimal precoder obtained by
numerical optimization.  Two comparators are provided:

* :func:`optimal_power_allocation` -- the convex problem the paper's
  formulation induces: fix the ZFBF directions (so eq. 2b holds by
  construction) and optimize the per-stream powers subject to the
  per-antenna constraints.  This is the default Fig 11 comparator: the
  power-balanced precoder searches the same feasible set greedily, so
  "within 99% of optimal" is a meaningful statement.
* :func:`full_optimal_precoder` -- drops the ZF restriction and optimizes the
  complex precoding matrix directly (sum-rate objective with interference),
  which is the expensive general problem the paper cites as "too
  computationally complex to realize" [11, 32].

Both are deliberately allowed to be slow; they exist to bound the fast
closed form, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..phy.capacity import (
    per_antenna_row_power,
    stream_sinrs,
    sum_capacity_bps_hz,
)
from .naive import naive_scaled_precoder
from .zfbf import zfbf_directions


@dataclass(frozen=True)
class OptimalResult:
    """Precoder found by a numerical solver, with solver diagnostics."""

    v: np.ndarray
    capacity_bps_hz: float
    solver_success: bool
    iterations: int


def optimal_power_allocation(
    h: np.ndarray,
    per_antenna_power_mw: float,
    noise_mw: float,
    *,
    rtol: float = 1e-9,
) -> OptimalResult:
    """Optimal per-stream powers over fixed ZFBF directions (convex).

    maximize   sum_j log2(1 + g_j p_j)
    subject to sum_j B[k, j] p_j <= P  for every antenna k,   p >= 0

    where ``B[k, j] = |v~_kj|^2`` for unit-norm ZF columns ``v~_j`` and
    ``g_j`` is stream ``j``'s post-ZF channel gain over noise.
    """
    if per_antenna_power_mw <= 0 or noise_mw <= 0:
        raise ValueError("powers must be positive")
    h = np.asarray(h, dtype=complex)
    directions = zfbf_directions(h)
    n_clients = directions.shape[1]

    e = h @ directions
    gains = np.abs(np.diag(e)) ** 2 / noise_mw  # g_j
    b = np.abs(directions) ** 2  # (n_antennas, n_clients)

    def objective(p):
        return -float(np.sum(np.log1p(gains * p)))

    def objective_grad(p):
        return -gains / (1.0 + gains * p)

    # Feasible start: the naive global-scaling solution's per-stream powers.
    v_naive = naive_scaled_precoder(h, per_antenna_power_mw)
    p0 = np.sum(np.abs(v_naive) ** 2, axis=0)

    constraints = [
        {
            "type": "ineq",
            "fun": lambda p, row=b[k]: per_antenna_power_mw - float(row @ p),
            "jac": lambda p, row=b[k]: -row,
        }
        for k in range(b.shape[0])
    ]
    bounds = [(0.0, per_antenna_power_mw * b.shape[0])] * n_clients
    solution = optimize.minimize(
        objective,
        p0,
        jac=objective_grad,
        bounds=bounds,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": 500, "ftol": 1e-12},
    )
    p = np.clip(solution.x, 0.0, None)
    v = directions * np.sqrt(p)[None, :]
    # Numerical safety: never report an infeasible precoder.
    worst = float(per_antenna_row_power(v).max())
    if worst > per_antenna_power_mw * (1.0 + rtol):
        v = v * np.sqrt(per_antenna_power_mw / worst)
    capacity = sum_capacity_bps_hz(stream_sinrs(h, v, noise_mw))
    return OptimalResult(
        v=v,
        capacity_bps_hz=capacity,
        solver_success=bool(solution.success),
        iterations=int(solution.nit),
    )


def full_optimal_precoder(
    h: np.ndarray,
    per_antenna_power_mw: float,
    noise_mw: float,
    *,
    maxiter: int = 300,
) -> OptimalResult:
    """General sum-rate-optimal precoder search (no ZF restriction).

    Optimizes the real/imaginary parts of ``V`` directly with SLSQP under the
    per-antenna power constraints, starting from the naive ZF point.  Slow by
    design; used as an upper-bound sanity check in tests and the ablation
    bench.
    """
    if per_antenna_power_mw <= 0 or noise_mw <= 0:
        raise ValueError("powers must be positive")
    h = np.asarray(h, dtype=complex)
    n_clients, n_antennas = h.shape
    shape = (n_antennas, n_clients)

    def unpack(x):
        half = x.size // 2
        return (x[:half] + 1j * x[half:]).reshape(shape)

    def pack(v):
        flat = v.ravel()
        return np.concatenate((flat.real, flat.imag))

    def objective(x):
        v = unpack(x)
        sinrs = stream_sinrs(h, v, noise_mw)
        return -sum_capacity_bps_hz(sinrs)

    def row_constraint(x, k):
        v = unpack(x)
        return per_antenna_power_mw - float(np.sum(np.abs(v[k, :]) ** 2))

    v0 = naive_scaled_precoder(h, per_antenna_power_mw)
    constraints = [
        {"type": "ineq", "fun": (lambda x, k=k: row_constraint(x, k))}
        for k in range(n_antennas)
    ]
    solution = optimize.minimize(
        objective,
        pack(v0),
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": maxiter, "ftol": 1e-10},
    )
    v = unpack(solution.x)
    worst = float(per_antenna_row_power(v).max())
    if worst > per_antenna_power_mw * (1.0 + 1e-9):
        v = v * np.sqrt(per_antenna_power_mw / worst)
    capacity = sum_capacity_bps_hz(stream_sinrs(h, v, noise_mw))
    # Never return something worse than the feasible start.
    start_capacity = sum_capacity_bps_hz(stream_sinrs(h, v0, noise_mw))
    if start_capacity > capacity:
        v, capacity = v0, start_capacity
    return OptimalResult(
        v=v,
        capacity_bps_hz=capacity,
        solver_success=bool(solution.success),
        iterations=int(solution.nit),
    )
