"""Zero-forcing beamforming (ZFBF) primitives (paper §3.1.1).

ZFBF chooses the precoder as the pseudo-inverse of the channel, ``V = H†``,
so every stream is nulled at every other client (paper eq. 2b).  Power is
then split across streams independently of the directions -- which is what
makes ZFBF lightweight, and what breaks the *per-antenna* power constraint
that the rest of :mod:`repro.core` repairs.
"""

from __future__ import annotations

import numpy as np


def zfbf_directions(h: np.ndarray, rcond: float = 1e-12) -> np.ndarray:
    """Unit-norm ZFBF columns: the pseudo-inverse of ``H`` with each column
    (stream) normalized to unit transmit power.

    Parameters
    ----------
    h:
        Channel matrix ``(n_clients, n_antennas)`` with ``n_clients <=
        n_antennas`` (802.11ac MU-MIMO serves at most as many single-antenna
        clients as AP antennas).
    """
    h = np.asarray(h, dtype=complex)
    if h.ndim != 2:
        raise ValueError("h must be 2-D (clients x antennas)")
    n_clients, n_antennas = h.shape
    if n_clients > n_antennas:
        raise ValueError(
            f"ZFBF needs n_clients <= n_antennas, got {n_clients} > {n_antennas}"
        )
    if n_clients == 0:
        raise ValueError("need at least one client")
    singular_values = np.linalg.svd(h, compute_uv=False)
    if singular_values[-1] <= rcond * singular_values[0]:
        raise np.linalg.LinAlgError(
            "channel matrix is (numerically) rank deficient; zero-forcing "
            "cannot separate these clients"
        )
    v = np.linalg.pinv(h, rcond=rcond)
    norms = np.linalg.norm(v, axis=0)
    return v / norms[None, :]


def zfbf_equal_power(
    h: np.ndarray, total_power_mw: float, rcond: float = 1e-12
) -> np.ndarray:
    """Conventional ZFBF under a *total* power constraint (paper eq. 2a):
    pseudo-inverse directions with the budget split equally across streams.

    This is the paper's Step 1 + Step 2: the starting point that the
    power-balancing iteration then repairs for per-antenna feasibility.
    """
    if total_power_mw <= 0:
        raise ValueError("total_power_mw must be positive")
    directions = zfbf_directions(h, rcond=rcond)
    n_streams = directions.shape[1]
    per_stream = total_power_mw / n_streams
    return directions * np.sqrt(per_stream)


def zf_interference_leakage(h: np.ndarray, v: np.ndarray) -> float:
    """Worst-case relative interference leakage of precoder ``V`` on ``H``.

    For an exact zero-forcing precoder the effective channel ``H @ V`` is
    diagonal; this returns ``max_offdiag |E| / min_diag |E|``, a unit-free
    measure the tests assert stays tiny under column scaling.
    """
    e = np.abs(np.asarray(h) @ np.asarray(v))
    diag = np.diag(e).copy()
    if np.any(diag <= 0):
        return float("inf")
    off = e - np.diag(diag)
    return float(off.max() / diag.min())
