"""The per-run mobility driver shared by every execution engine.

:class:`MobilityState` owns one topology's client trajectory: current
positions, the per-client speed over the last step, and the model's
mutable state.  The scalar round engine holds one; the vectorized engine
holds one *per batch item* and advances it with the same draws in the same
order, which is the bit-identity argument for finite-speed series --
every position update is plain per-item arithmetic on the item's own
spawned generator.

The engines consume two things per round:

* :attr:`positions` -- drives re-evaluation of the large-scale channel
  (pathloss / walls / shadowing along the trajectory; the shadowing
  lattice cache makes spatially consistent resampling cheap), and
* :meth:`doppler_hz` -- the per-client Doppler ``v / wavelength`` that
  replaces the global :attr:`RadioConfig.doppler_hz` in the fading
  evolution, so fast clients decorrelate faster than parked ones.
"""

from __future__ import annotations

import numpy as np

from .models import MobilityModel, resolve_mobility


class MobilityState:
    """Trajectory state for one topology run."""

    def __init__(self, model: MobilityModel, deployment, rng: np.random.Generator):
        if model.is_static:
            raise ValueError(
                "static mobility needs no MobilityState; run the engine "
                "without a mobility model instead"
            )
        self.model = model
        self._rng = rng
        self._bounds = model.roaming_bounds(deployment)
        self.positions = np.array(deployment.client_positions, dtype=float, copy=True)
        self.speeds_mps = np.zeros(len(self.positions))
        self._model_state = model.init_state(rng, self.positions, self._bounds)
        self._time_s = 0.0

    @property
    def n_clients(self) -> int:
        return len(self.positions)

    @property
    def time_s(self) -> float:
        """Trajectory clock (seconds since the topology draw)."""
        return self._time_s

    def advance(self, dt_s: float) -> np.ndarray:
        """Move every client by ``dt_s`` seconds; returns the new positions."""
        if dt_s < 0:
            raise ValueError("dt_s must be non-negative")
        if dt_s == 0:
            return self.positions
        self.positions, self.speeds_mps = self.model.step(
            self._model_state,
            self._rng,
            self.positions,
            dt_s,
            self._bounds,
            self._time_s,
        )
        self._time_s += dt_s
        return self.positions

    def doppler_hz(self, wavelength_m: float) -> np.ndarray:
        """Per-client Doppler spread ``v / wavelength`` over the last step."""
        if wavelength_m <= 0:
            raise ValueError("wavelength_m must be positive")
        return self.speeds_mps / wavelength_m


def build_mobility_state(
    mobility, mobility_kwargs, deployment, rng
) -> MobilityState | None:
    """Resolve an engine's ``mobility=`` argument into a per-run state.

    ``None`` and ``"static"`` both yield ``None`` -- the engines then take
    their historical frozen-topology path untouched (bit-identical to every
    pre-mobility release).
    """
    if mobility is None:
        return None
    model = resolve_mobility(mobility, **dict(mobility_kwargs or {}))
    if model.is_static:
        return None
    return MobilityState(model, deployment, rng)
