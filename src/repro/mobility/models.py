"""Client mobility models: per-round position updates along a trajectory.

A mobility model is a frozen parameter bundle (mirroring
:mod:`repro.traffic.models`); all mutable state (headings, waypoints,
playback clocks) lives in an explicit per-run state object so one model
instance can drive every item of a vectorized batch.  Every draw consumes
the caller-supplied generator in client-index order -- the same order on
both execution backends -- so finite-speed results are bit-identical
between the scalar and batched round engines.

Registered factories (the ``mobility`` registry, mirroring the traffic
registry):

``static``
    Frozen clients -- the library's historical default, bit-identical to
    running without a mobility model at all.
``random_waypoint``
    Classic random-waypoint: each client walks toward a uniformly drawn
    waypoint inside the roaming box at a per-leg uniform speed, then draws
    the next waypoint.
``gauss_markov``
    Pedestrian Gauss-Markov: speed and heading are first-order
    autoregressive processes around a mean walking speed, reflected at the
    roaming-box walls (the standard smooth-turn pedestrian model).
``trace``
    Trace playback: piecewise-linear interpolation of per-client
    ``[t_s, x, y]`` waypoint logs (vehicular/pedestrian measurement traces
    such as the ``wifi-vehicles`` datasets), clamped at both ends.

Speeds are in meters/second.  The engines convert each client's current
speed into its Doppler spread ``f_d = v / wavelength`` and feed it to the
channel layer, replacing the global :attr:`RadioConfig.doppler_hz` for
moving clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..api.registry import MOBILITY, register_mobility


class MobilityModel:
    """Base class: stateless parameters + explicit per-run state."""

    #: Static sentinels short-circuit the engines back onto the frozen
    #: topology path (no position updates, no CSI staleness machinery).
    is_static = False

    #: Padding added around the deployment's bounding box to form the
    #: roaming region clients may wander into.
    margin_m = 3.0

    def roaming_bounds(self, deployment) -> tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` corners of the roaming box: the bounding box
        of every AP, antenna, and client, padded by ``margin_m``.  Purely
        deterministic in the deployment so both backends agree."""
        pts = np.vstack(
            [
                deployment.ap_positions,
                deployment.antenna_positions,
                deployment.client_positions,
            ]
        )
        lo = pts.min(axis=0) - self.margin_m
        hi = pts.max(axis=0) + self.margin_m
        return lo, hi

    def init_state(self, rng: np.random.Generator, positions: np.ndarray, bounds):
        """Fresh mutable state for one run (``None`` when the model has none)."""
        return None

    def step(
        self,
        state,
        rng: np.random.Generator,
        positions: np.ndarray,
        dt_s: float,
        bounds,
        t_s: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance every client by ``dt_s`` seconds from time ``t_s``.

        Returns ``(new_positions, speeds_mps)`` -- positions ``(n, 2)`` and
        the per-client speed actually moved at over the interval ``(n,)``.
        """
        raise NotImplementedError


def _reflect(positions: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Mirror positions back into the ``[lo, hi]`` box (billiard reflection).

    Coordinates already inside the box pass through bit-exactly (no float
    round-trip), so a parked client's position never drifts.
    """
    out_of_box = (positions < lo) | (positions > hi)
    if not np.any(out_of_box):
        return positions
    span = hi - lo
    # Fold into a [0, 2*span) sawtooth, then mirror the upper half.
    folded = np.mod(positions - lo, 2.0 * span)
    reflected = lo + np.where(folded > span, 2.0 * span - folded, folded)
    return np.where(out_of_box, reflected, positions)


@register_mobility("static")
@dataclass(frozen=True)
class StaticMobility(MobilityModel):
    """Frozen clients (the historical default)."""

    is_static = True

    def step(self, state, rng, positions, dt_s, bounds, t_s):
        raise RuntimeError("static mobility never steps; run without a model")


@register_mobility("random_waypoint")
@dataclass(frozen=True)
class RandomWaypointMobility(MobilityModel):
    """Random waypoint inside the roaming box.

    ``speed_mps`` is a convenience mean: when set, per-leg speeds are drawn
    uniformly from ``[0.5, 1.5] * speed_mps`` (overriding the explicit
    bounds).  ``speed_mps = 0`` degenerates to clients parked at their
    starting positions (but still exercising the CSI-staleness machinery).
    """

    speed_min_mps: float = 0.6
    speed_max_mps: float = 1.8
    speed_mps: float | None = None
    margin_m: float = 3.0

    def __post_init__(self):
        if self.speed_mps is not None:
            if self.speed_mps < 0:
                raise ValueError("speed_mps must be non-negative")
            object.__setattr__(self, "speed_min_mps", 0.5 * self.speed_mps)
            object.__setattr__(self, "speed_max_mps", 1.5 * self.speed_mps)
        if self.speed_min_mps < 0 or self.speed_max_mps < self.speed_min_mps:
            raise ValueError("need 0 <= speed_min_mps <= speed_max_mps")

    def _draw_leg(self, rng, n: int, lo, hi) -> tuple[np.ndarray, np.ndarray]:
        waypoints = rng.uniform(lo, hi, (n, 2))
        speeds = rng.uniform(self.speed_min_mps, self.speed_max_mps, n)
        return waypoints, speeds

    def init_state(self, rng, positions, bounds):
        lo, hi = bounds
        waypoints, speeds = self._draw_leg(rng, len(positions), lo, hi)
        return {"waypoint": waypoints, "speed": speeds}

    def step(self, state, rng, positions, dt_s, bounds, t_s):
        lo, hi = bounds
        new_positions = positions.copy()
        moved = np.zeros(len(positions))
        for client in range(len(positions)):
            remaining = dt_s
            pos = new_positions[client]
            travelled = 0.0
            # Walk leg by leg; a fast client can finish several within one
            # round.  Draws happen per arrival in client order, identically
            # on both backends.
            while remaining > 0:
                target = state["waypoint"][client]
                speed = float(state["speed"][client])
                if speed <= 0:
                    break
                to_target = target - pos
                dist = float(np.hypot(*to_target))
                if dist <= speed * remaining:
                    pos = target.copy()
                    travelled += dist
                    remaining -= dist / speed
                    waypoint, leg_speed = self._draw_leg(rng, 1, lo, hi)
                    state["waypoint"][client] = waypoint[0]
                    state["speed"][client] = leg_speed[0]
                else:
                    pos = pos + to_target / dist * speed * remaining
                    travelled += speed * remaining
                    remaining = 0.0
            new_positions[client] = pos
            moved[client] = travelled
        speeds = moved / dt_s if dt_s > 0 else np.zeros(len(positions))
        return new_positions, speeds


@register_mobility("gauss_markov")
@dataclass(frozen=True)
class GaussMarkovMobility(MobilityModel):
    """Pedestrian Gauss-Markov mobility (speed and heading AR(1) processes).

    ``alpha`` is the memory coefficient over one reference step
    ``step_ref_s`` (1 = straight-line cruise, 0 = memoryless
    Brownian-like jitter); steps of other durations raise it to the
    ``dt / step_ref`` power, so the trajectory's temporal statistics do
    not depend on the caller's stepping cadence (the round engines step
    per coherence block, the event-driven MAC at irregular TXOP times).
    ``speed_std_mps`` defaults to ``0.3 * speed_mps`` so a zero-speed
    sweep point is genuinely parked.
    """

    speed_mps: float = 1.2
    alpha: float = 0.85
    speed_std_mps: float | None = None
    heading_std_rad: float = 0.6
    step_ref_s: float = 0.02
    margin_m: float = 3.0

    def __post_init__(self):
        if self.speed_mps < 0:
            raise ValueError("speed_mps must be non-negative")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.step_ref_s <= 0:
            raise ValueError("step_ref_s must be positive")
        if self.speed_std_mps is None:
            object.__setattr__(self, "speed_std_mps", 0.3 * self.speed_mps)
        if self.speed_std_mps < 0 or self.heading_std_rad < 0:
            raise ValueError("standard deviations must be non-negative")

    def init_state(self, rng, positions, bounds):
        n = len(positions)
        mean_heading = rng.uniform(0.0, 2.0 * np.pi, n)
        return {
            "speed": np.full(n, float(self.speed_mps)),
            "heading": mean_heading.copy(),
            "mean_heading": mean_heading,
        }

    def step(self, state, rng, positions, dt_s, bounds, t_s):
        n = len(positions)
        # Memory decays per unit time (alpha is defined over step_ref_s),
        # so irregular step sizes leave the process statistics unchanged.
        ratio = dt_s / self.step_ref_s
        alpha = self.alpha if ratio == 1.0 else self.alpha**ratio
        noise_scale = np.sqrt(max(0.0, 1.0 - alpha * alpha))
        speed = (
            alpha * state["speed"]
            + (1.0 - alpha) * self.speed_mps
            + noise_scale * self.speed_std_mps * rng.standard_normal(n)
        )
        speed = np.maximum(speed, 0.0)
        heading = (
            alpha * state["heading"]
            + (1.0 - alpha) * state["mean_heading"]
            + noise_scale * self.heading_std_rad * rng.standard_normal(n)
        )
        state["speed"] = speed
        stride = (speed * dt_s)[:, None] * np.column_stack(
            (np.cos(heading), np.sin(heading))
        )
        lo, hi = bounds
        tentative = positions + stride
        # Mirror the heading *state* (current and mean) along with the
        # position, otherwise a client whose mean heading points at a wall
        # mean-reverts into it forever and stays pinned to the boundary.
        out_x = (tentative[:, 0] < lo[0]) | (tentative[:, 0] > hi[0])
        out_y = (tentative[:, 1] < lo[1]) | (tentative[:, 1] > hi[1])
        heading = np.where(out_x, np.pi - heading, heading)
        mean_heading = np.where(out_x, np.pi - state["mean_heading"], state["mean_heading"])
        heading = np.where(out_y, -heading, heading)
        mean_heading = np.where(out_y, -mean_heading, mean_heading)
        state["heading"] = heading
        state["mean_heading"] = mean_heading
        return _reflect(tentative, lo, hi), speed


@register_mobility("trace")
@dataclass(frozen=True)
class TraceMobility(MobilityModel):
    """Playback of recorded per-client trajectories.

    ``points`` is one waypoint log per client: a list of ``[t_s, x, y]``
    rows with strictly increasing timestamps (JSON-friendly, so traces can
    ride inside a :class:`~repro.api.spec.RunSpec`).  Positions are
    interpolated piecewise-linearly and clamped to the first/last waypoint
    outside the recorded span.  The trace *overrides* the topology's drawn
    client positions from the first step onward.
    """

    points: tuple = field(default=())

    def __post_init__(self):
        if not self.points:
            raise ValueError("trace mobility needs one waypoint log per client")
        normalized = []
        for client, rows in enumerate(self.points):
            log = np.asarray(rows, dtype=float)
            if log.ndim != 2 or log.shape[1] != 3 or len(log) < 1:
                raise ValueError(
                    f"client {client}: trace rows must be [t_s, x, y] "
                    f"(got shape {log.shape})"
                )
            if np.any(np.diff(log[:, 0]) <= 0):
                raise ValueError(f"client {client}: timestamps must increase")
            normalized.append(log)
        object.__setattr__(self, "points", tuple(normalized))

    def _positions_at(self, t_s: float) -> np.ndarray:
        out = np.empty((len(self.points), 2))
        for client, log in enumerate(self.points):
            out[client, 0] = np.interp(t_s, log[:, 0], log[:, 1])
            out[client, 1] = np.interp(t_s, log[:, 0], log[:, 2])
        return out

    def init_state(self, rng, positions, bounds):
        if len(self.points) != len(positions):
            raise ValueError(
                f"trace holds {len(self.points)} clients but the deployment "
                f"has {len(positions)}"
            )
        return None

    def step(self, state, rng, positions, dt_s, bounds, t_s):
        new_positions = self._positions_at(t_s + dt_s)
        if dt_s > 0:
            speeds = np.linalg.norm(new_positions - self._positions_at(t_s), axis=1) / dt_s
        else:
            speeds = np.zeros(len(new_positions))
        return new_positions, speeds


def resolve_mobility(model, **kwargs) -> MobilityModel:
    """Coerce a mobility argument -- a registered name or an already-built
    :class:`MobilityModel` -- into a model instance."""
    if isinstance(model, MobilityModel):
        if kwargs:
            raise ValueError("kwargs only apply when resolving by name")
        return model
    factory = MOBILITY.get(model)
    return factory(**kwargs)


def mobility_names() -> list[str]:
    """All registered mobility-model names."""
    return MOBILITY.names()
