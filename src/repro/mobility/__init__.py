"""Client mobility & CSI staleness: moving channels for every engine.

The paper's headline claim for MIDAS's closed-form reverse water-filling is
that it runs inside a channel coherence time and so beats slow numerical
optima *on moving channels* (Fig. 11).  This package supplies the moving
part: registered mobility models (``static``, ``random_waypoint``,
``gauss_markov``, ``trace`` -- see
:func:`register_mobility <repro.api.registry.register_mobility>`) drive
per-round client position updates, the large-scale channel is re-evaluated
along each trajectory, per-client Doppler follows actual speed, and the
engines model CSI staleness end-to-end: precoders are computed from the CSI
captured at the last sounding and scored against the current channel, with
a configurable re-sounding period charged through
:mod:`repro.phy.sounding`.

Quick use::

    from repro.sim.rounds import RoundBasedEvaluator
    from repro.sim.network import MacMode

    result = RoundBasedEvaluator(
        scenario, MacMode.MIDAS, seed=0, mobility="gauss_markov",
        mobility_kwargs={"speed_mps": 1.2}, resound_period_rounds=4,
    ).run(40)
    result.mean_capacity_bps_hz, result.mean_sounding_us

or declaratively, ``RunSpec("mobility_capacity", mobility="gauss_markov")``.
"""

from .models import (
    GaussMarkovMobility,
    MobilityModel,
    RandomWaypointMobility,
    StaticMobility,
    TraceMobility,
    mobility_names,
    resolve_mobility,
)
from .state import MobilityState, build_mobility_state

__all__ = [
    "GaussMarkovMobility",
    "MobilityModel",
    "RandomWaypointMobility",
    "StaticMobility",
    "TraceMobility",
    "mobility_names",
    "resolve_mobility",
    "MobilityState",
    "build_mobility_state",
]
