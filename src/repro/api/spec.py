"""Declarative run specifications.

A :class:`RunSpec` names *what* to compute -- a registered experiment, the
topology count, the root seed, and optional environment/precoder overrides --
without saying anything about *how* (serial vs. parallel, caching); that is
the :class:`~repro.api.runner.Runner`'s job.  Specs are JSON-serializable
and content-hashable so results can be cached and reloaded by spec.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping


def normalize_params(value: Any) -> Any:
    """Coerce parameter values to canonical JSON-safe types.

    Tuples become lists, numpy scalars become Python scalars, mappings are
    normalized recursively.  Anything else non-JSON raises ``TypeError`` so
    un-hashable specs are rejected at construction, not at cache time.
    """
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [normalize_params(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): normalize_params(v) for k, v in value.items()}
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        return normalize_params(item())
    raise TypeError(
        f"RunSpec parameters must be JSON-serializable; got {type(value).__name__}"
    )


@dataclass(frozen=True)
class RunSpec:
    """One declarative unit of work: ``Runner.run(spec) -> RunResult``.

    Parameters
    ----------
    experiment:
        Name of a registered experiment (see ``repro.api.EXPERIMENTS``).
    n_topologies:
        Topology count; ``None`` uses the experiment's registered default.
    seed:
        Root seed; per-topology seeds derive deterministically from it.
    environment:
        Registered environment name (e.g. ``"office_a"``) overriding the
        experiment default, or ``None``.
    precoder:
        Registered precoder name overriding the experiment default (only
        valid for experiments that declare a ``precoder`` parameter).
    traffic:
        Registered traffic-model name (see :mod:`repro.traffic`).
        ``"full_buffer"`` is accepted by every experiment (it is the
        universal default and changes nothing); any other model requires
        the experiment to declare a ``traffic`` parameter.
    mobility:
        Registered mobility-model name (see :mod:`repro.mobility`).
        ``"static"`` is accepted by every experiment (it is the universal
        default and changes nothing); any other model requires the
        experiment to declare a ``mobility`` parameter.
    association:
        Registered association-policy name (see :mod:`repro.assoc`).
        ``"nearest_anchor"`` is accepted by every experiment (it is the
        universal default and changes nothing); any other policy requires
        the experiment to declare an ``association`` parameter.
    coordination:
        Registered coordination-mode name (see
        :class:`repro.assoc.CoordinationMode`).  ``"independent"`` is
        accepted by every experiment (the universal default); any other
        mode requires the experiment to declare a ``coordination``
        parameter.
    params:
        Extra experiment keyword parameters; keys must be declared by the
        experiment's defaults.
    """

    experiment: str
    n_topologies: int | None = None
    seed: int = 0
    environment: str | None = None
    precoder: str | None = None
    traffic: str | None = None
    mobility: str | None = None
    association: str | None = None
    coordination: str | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if not isinstance(self.experiment, str) or not self.experiment:
            raise ValueError("RunSpec.experiment must be a non-empty string")
        if self.n_topologies is not None:
            if not isinstance(self.n_topologies, int) or isinstance(self.n_topologies, bool):
                raise ValueError("RunSpec.n_topologies must be an int or None")
            if self.n_topologies < 1:
                raise ValueError("RunSpec.n_topologies must be >= 1")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError("RunSpec.seed must be an int")
        for label in (
            "environment", "precoder", "traffic", "mobility",
            "association", "coordination",
        ):
            value = getattr(self, label)
            if value is not None and (not isinstance(value, str) or not value):
                raise ValueError(f"RunSpec.{label} must be a non-empty string or None")
        if not isinstance(self.params, Mapping):
            raise ValueError("RunSpec.params must be a mapping")
        object.__setattr__(self, "params", normalize_params(dict(self.params)))

    def replace(self, **changes) -> "RunSpec":
        """A copy of this spec with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        data = {
            "experiment": self.experiment,
            "n_topologies": self.n_topologies,
            "seed": self.seed,
            "environment": self.environment,
            "precoder": self.precoder,
            "params": self.params,
        }
        # Omitted when unset so canonical encodings, spec hashes, and saved
        # results from before the traffic/mobility/association axes existed
        # stay valid verbatim.
        if self.traffic is not None:
            data["traffic"] = self.traffic
        if self.mobility is not None:
            data["mobility"] = self.mobility
        if self.association is not None:
            data["association"] = self.association
        if self.coordination is not None:
            data["coordination"] = self.coordination
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RunSpec fields: {sorted(unknown)}")
        return cls(**{k: data[k] for k in known if k in data})

    def canonical_json(self) -> str:
        """Stable JSON encoding (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        """SHA-256 hex digest of the canonical encoding (spec identity)."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def __hash__(self) -> int:
        # The generated frozen-dataclass __hash__ would choke on the dict
        # params field; hash the canonical encoding instead (consistent
        # with the generated field-wise __eq__).
        return hash(self.canonical_json())
