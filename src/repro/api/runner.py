"""The session runner: executes a :class:`RunSpec` into a :class:`RunResult`.

The runner owns everything the declarative spec deliberately leaves out:

* **backend** -- ``"loop"`` (default) evaluates one topology at a time;
  ``"vectorized"`` hands whole seed batches to the experiment's
  ``build_batch`` hook, which evaluates all draws as stacked arrays
  (batched channel synthesis + broadcasting linalg precoders).  Both
  backends walk the same derived-seed stream and are **bit-identical**;
  experiments without a batch hook fall back to the loop path with a
  warning naming the experiment;
* **parallelism** -- per-topology evaluations fan out over a
  ``ProcessPoolExecutor`` when ``jobs > 1``; topology seeds are drawn in
  vectorized batches from the same derived-seed stream the serial path
  walks, and outcomes are accepted in stream order, so ``jobs=1`` and
  ``jobs=N`` produce bit-identical series for a fixed seed (``jobs`` only
  applies to the loop path -- the vectorized backend is in-process, its
  parallelism is the array math itself);
* **rejection sampling** -- experiments may reject topologies (placement
  constraints); the runner keeps drawing seed batches until the requested
  count is met (with the classic generous attempt cap);
* **caching** -- with a ``cache_dir``, results are persisted as JSON keyed
  by a hash of the fully resolved parameters plus the package version, and
  reloaded on a hit (the backend is deliberately *not* part of the key:
  backends are bit-equal; the version *is*, because algorithm changes
  between releases must invalidate stale entries).
"""

from __future__ import annotations

import hashlib
import json
import math
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import repeat
from pathlib import Path

from .. import __version__ as _PACKAGE_VERSION
from .. import rng as rng_mod
from .experiments import ExperimentDef, get_experiment_def, load_builtin_experiments
from .registry import ENVIRONMENTS, MOBILITY, PRECODERS, TRAFFIC
from .result import RunResult
from .spec import RunSpec, normalize_params


def resolve_params(defn: ExperimentDef, spec: RunSpec) -> dict:
    """Merge a spec over an experiment's declared defaults.

    Spec-level overrides (``environment``, ``precoder``) and every key in
    ``spec.params`` must be parameters the experiment declares; anything
    else raises with the allowed names so typos fail loudly.
    """
    allowed = set(defn.defaults)
    params = dict(defn.defaults)
    params["seed"] = spec.seed
    if spec.n_topologies is not None:
        params["n_topologies"] = spec.n_topologies
    if spec.environment is not None:
        if "environment" not in allowed:
            raise ValueError(
                f"experiment {defn.name!r} does not take an environment override"
            )
        ENVIRONMENTS.get(spec.environment)  # fail early, listing registered names
        params["environment"] = spec.environment
    if spec.precoder is not None:
        if "precoder" not in allowed:
            raise ValueError(
                f"experiment {defn.name!r} does not take a precoder override; "
                f"experiments with a 'precoder' parameter do"
            )
        PRECODERS.get(spec.precoder)  # fail early, listing registered names
        params["precoder"] = spec.precoder
    def axis_override(field: str, registry, universal: str, populate) -> None:
        """Shared validation for model axes with a universal no-op default
        (traffic's full_buffer, mobility's static): fail early on unknown
        names, fold into params only for experiments declaring the axis."""
        value = getattr(spec, field)
        if value is None:
            return
        populate()  # import the built-in models so the registry is loaded
        registry.get(value)  # fail early, listing registered names
        if field in allowed:
            params[field] = value
        elif value != universal:
            raise ValueError(
                f"experiment {defn.name!r} does not take a {field} override; "
                f"experiments with a {field!r} parameter do ({universal!r} is "
                f"accepted everywhere because it is the universal default)"
            )

    def _load_traffic():
        from ..traffic import models  # noqa: F401

    def _load_mobility():
        from ..mobility import models  # noqa: F401

    axis_override("traffic", TRAFFIC, "full_buffer", _load_traffic)
    axis_override("mobility", MOBILITY, "static", _load_mobility)
    unknown = set(spec.params) - allowed
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for experiment "
            f"{defn.name!r}; allowed: {sorted(allowed)}"
        )
    params.update(spec.params)
    return params


def _build_one(experiment: str, topo_seed: int, params: dict):
    """Worker entry point: evaluate one topology of one experiment.

    Module-level (picklable) and self-bootstrapping so it works under both
    ``fork`` and ``spawn`` start methods.
    """
    load_builtin_experiments()
    defn = get_experiment_def(experiment)
    return defn.build(topo_seed, params)


#: Seeds per round under the vectorized backend (when ``batch_size`` is
#: unset).  Large enough that a typical sweep runs as one stacked batch.
_VECTORIZED_BATCH_CAP = 1024

_BACKENDS = ("loop", "vectorized")


@dataclass
class Runner:
    """Executes :class:`RunSpec`\\ s; one instance can serve many specs.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) runs in-process.  Only the
        loop backend fans out over processes.
    cache_dir:
        Directory for on-disk result caching keyed by spec hash, or
        ``None`` (default) to disable caching.
    batch_size:
        Upper bound on topology seeds scheduled per round; defaults to
        ``max(8, 4*jobs)`` for the loop backend and 1024 for the
        vectorized one.  Affects scheduling only, never results.
    backend:
        ``"loop"`` (default) or ``"vectorized"``.  Bit-identical results;
        the vectorized backend evaluates stacked topology batches through
        the experiment's ``build_batch`` hook when it defines one.
    """

    jobs: int = 1
    cache_dir: str | Path | None = None
    batch_size: int | None = None
    backend: str = "loop"

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError("Runner.jobs must be >= 1")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("Runner.batch_size must be >= 1")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"Runner.backend must be one of {_BACKENDS}, got {self.backend!r}"
            )

    def run(self, spec: RunSpec) -> RunResult:
        """Execute ``spec`` (or load it from cache) into a :class:`RunResult`."""
        defn = get_experiment_def(spec.experiment)
        params = resolve_params(defn, spec)

        cache_path = self._cache_path(spec, params)
        if cache_path is not None and cache_path.exists():
            return RunResult.load(cache_path)

        outcomes = self._sweep(defn, params)
        base = defn.finalize(outcomes, params)
        result = RunResult.from_experiment_result(base, spec)

        if cache_path is not None:
            result.save(cache_path)
        return result

    def run_many(self, specs) -> list[RunResult]:
        """Execute several specs in order (shared cache, shared pool sizing)."""
        return [self.run(spec) for spec in specs]

    # ------------------------------------------------------------------
    def _cache_path(self, spec: RunSpec, params: dict) -> Path | None:
        """Cache file keyed by the *resolved* parameters.

        Hashing the resolved params (experiment defaults merged in) rather
        than the raw spec means a spec relying on a default and a spec
        stating it explicitly share one entry, and editing an experiment's
        registered defaults invalidates stale cached results.  The package
        version is folded in so entries do not survive algorithm changes
        across releases.
        """
        if self.cache_dir is None:
            return None
        payload = json.dumps(
            {
                "experiment": spec.experiment,
                "params": normalize_params(params),
                "version": _PACKAGE_VERSION,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
        return Path(self.cache_dir) / f"{spec.experiment}-{digest}.json"

    def _sweep(self, defn: ExperimentDef, params: dict) -> list:
        """Accepted per-topology outcomes, in derived-seed-stream order."""
        n = int(params["n_topologies"])
        if n < 1:
            raise ValueError("need at least one topology")
        root_seed = int(params["seed"])
        max_attempts = max(200, 80 * n)
        vectorized = self.backend == "vectorized" and defn.build_batch is not None
        if self.backend == "vectorized" and defn.build_batch is None:
            warnings.warn(
                f"experiment {defn.name!r} defines no build_batch hook; "
                f"falling back to the per-topology loop backend",
                RuntimeWarning,
                stacklevel=2,
            )
        if self.batch_size is not None:
            batch_cap = self.batch_size
        elif vectorized:
            batch_cap = _VECTORIZED_BATCH_CAP
        else:
            batch_cap = max(8, 4 * self.jobs)

        accepted: list = []
        attempts = 0
        executor: ProcessPoolExecutor | None = None
        try:
            while len(accepted) < n and attempts < max_attempts:
                # Aim for exactly what is still needed (padded to keep every
                # worker busy) so a parallel run schedules no more builds
                # than a serial one; the cap only bounds a single round.
                target = max(n - len(accepted), min(self.jobs, batch_cap))
                if vectorized and attempts:
                    # Rejection-heavy sweeps would otherwise shrink to
                    # deficit-sized (eventually single-seed) batches and
                    # forfeit the stacking win.  Overdraw by the observed
                    # acceptance rate instead: the derived-seed stream and
                    # each seed's accept/reject verdict are deterministic
                    # and outcomes are consumed in stream order up to n,
                    # so results are unchanged -- extra draws only cost the
                    # (rejected) build work.
                    rate = max(len(accepted) / attempts, 1.0 / 64.0)
                    target = max(target, math.ceil((n - len(accepted)) / rate))
                count = min(target, batch_cap, max_attempts - attempts)
                seeds = rng_mod.derived_seeds(root_seed, attempts, count)
                attempts += count
                if vectorized:
                    outcomes = defn.build_batch(seeds, params)
                elif self.jobs > 1:
                    if executor is None:
                        executor = ProcessPoolExecutor(max_workers=self.jobs)
                    outcomes = executor.map(
                        _build_one, repeat(defn.name), seeds, repeat(params)
                    )
                else:
                    outcomes = (defn.build(s, params) for s in seeds)
                for outcome in outcomes:
                    if outcome is None:
                        continue
                    accepted.append(outcome)
                    if len(accepted) == n:
                        break
        finally:
            if executor is not None:
                executor.shutdown()
        if len(accepted) < n:
            raise RuntimeError(
                f"only {len(accepted)}/{n} topologies satisfied the "
                f"placement constraints after {attempts} attempts"
            )
        return accepted
