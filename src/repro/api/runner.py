"""The session runner: executes a :class:`RunSpec` into a :class:`RunResult`.

The runner owns everything the declarative spec deliberately leaves out:

* **backend** -- ``"loop"`` (default) evaluates one topology at a time;
  ``"vectorized"`` hands whole seed batches to the experiment's
  ``build_batch`` hook, which evaluates all draws as stacked arrays
  (batched channel synthesis + broadcasting linalg precoders);
  ``"array_api"`` is the vectorized path executed under an explicit
  :mod:`repro.xp` namespace (``namespace``/``device``/``dtype``), which is
  how the same code runs on torch/CUDA.  ``"loop"``, ``"vectorized"``, and
  ``"array_api"`` on the default NumPy/float64 namespace walk the same
  derived-seed stream and are **bit-identical**; other namespace
  configurations meet documented tolerance contracts instead (see
  ``docs/api.md``).  Experiments without a batch hook fall back to the
  loop path with a warning naming the experiment;
* **parallelism** -- per-topology evaluations fan out over a
  ``ProcessPoolExecutor`` when ``jobs > 1``; topology seeds are drawn in
  vectorized batches from the same derived-seed stream the serial path
  walks, and outcomes are accepted in stream order, so ``jobs=1`` and
  ``jobs=N`` produce bit-identical series for a fixed seed (``jobs`` only
  applies to the loop path -- the vectorized backend is in-process, its
  parallelism is the array math itself);
* **rejection sampling** -- experiments may reject topologies (placement
  constraints); the runner keeps drawing seed batches until the requested
  count is met (with the classic generous attempt cap);
* **caching** -- with a ``cache_dir``, results are persisted as JSON keyed
  by a hash of the fully resolved parameters plus the package version, and
  reloaded on a hit (the backend is deliberately *not* part of the key:
  backends are bit-equal; the version *is*, because algorithm changes
  between releases must invalidate stale entries).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import math
import warnings
import zipfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import repeat
from pathlib import Path

from .. import __version__ as _PACKAGE_VERSION
from .. import obs as obsmod
from .. import rng as rng_mod
from .. import xp as xpmod
from .experiments import ExperimentDef, get_experiment_def, load_builtin_experiments
from .registry import ASSOCIATION, COORDINATION, ENVIRONMENTS, MOBILITY, PRECODERS, TRAFFIC
from .result import RunResult
from .spec import RunSpec, normalize_params


def resolve_params(defn: ExperimentDef, spec: RunSpec) -> dict:
    """Merge a spec over an experiment's declared defaults.

    Spec-level overrides (``environment``, ``precoder``) and every key in
    ``spec.params`` must be parameters the experiment declares; anything
    else raises with the allowed names so typos fail loudly.
    """
    allowed = set(defn.defaults)
    params = dict(defn.defaults)
    params["seed"] = spec.seed
    if spec.n_topologies is not None:
        params["n_topologies"] = spec.n_topologies
    if spec.environment is not None:
        if "environment" not in allowed:
            raise ValueError(
                f"experiment {defn.name!r} does not take an environment override"
            )
        ENVIRONMENTS.get(spec.environment)  # fail early, listing registered names
        params["environment"] = spec.environment
    if spec.precoder is not None:
        if "precoder" not in allowed:
            raise ValueError(
                f"experiment {defn.name!r} does not take a precoder override; "
                f"experiments with a 'precoder' parameter do"
            )
        PRECODERS.get(spec.precoder)  # fail early, listing registered names
        params["precoder"] = spec.precoder
    def axis_override(field: str, registry, universal: str, populate) -> None:
        """Shared validation for model axes with a universal no-op default
        (traffic's full_buffer, mobility's static): fail early on unknown
        names, fold into params only for experiments declaring the axis."""
        value = getattr(spec, field)
        if value is None:
            return
        populate()  # import the built-in models so the registry is loaded
        registry.get(value)  # fail early, listing registered names
        if field in allowed:
            params[field] = value
        elif value != universal:
            raise ValueError(
                f"experiment {defn.name!r} does not take a {field} override; "
                f"experiments with a {field!r} parameter do ({universal!r} is "
                f"accepted everywhere because it is the universal default)"
            )

    def _load_traffic():
        from ..traffic import models  # noqa: F401

    def _load_mobility():
        from ..mobility import models  # noqa: F401

    def _load_association():
        from .. import assoc  # noqa: F401

    axis_override("traffic", TRAFFIC, "full_buffer", _load_traffic)
    axis_override("mobility", MOBILITY, "static", _load_mobility)
    axis_override("association", ASSOCIATION, "nearest_anchor", _load_association)
    axis_override("coordination", COORDINATION, "independent", _load_association)
    unknown = set(spec.params) - allowed
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for experiment "
            f"{defn.name!r}; allowed: {sorted(allowed)}"
        )
    params.update(spec.params)
    return params


def _build_one(experiment: str, topo_seed: int, params: dict):
    """Worker entry point: evaluate one topology of one experiment.

    Module-level (picklable) and self-bootstrapping so it works under both
    ``fork`` and ``spawn`` start methods.
    """
    load_builtin_experiments()
    defn = get_experiment_def(experiment)
    return defn.build(topo_seed, params)


#: Seeds per round under the vectorized backend (when ``batch_size`` is
#: unset).  Large enough that a typical sweep runs as one stacked batch.
_VECTORIZED_BATCH_CAP = 1024

_BACKENDS = ("loop", "vectorized", "array_api")

_CACHE_FORMATS = ("json", "npz")

#: Everything a cache entry can legitimately throw when the file on disk is
#: truncated, torn, or otherwise unreadable.  ``Runner`` treats these as a
#: cache miss (recompute and rewrite) rather than crashing forever on the
#: same poisoned entry.
_CACHE_READ_ERRORS = (
    OSError,
    EOFError,
    KeyError,
    ValueError,  # includes json.JSONDecodeError and format-version errors
    zipfile.BadZipFile,
)


@dataclass
class Runner:
    """Executes :class:`RunSpec`\\ s; one instance can serve many specs.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) runs in-process.  Only the
        loop backend fans out over processes.
    cache_dir:
        Directory for on-disk result caching keyed by spec hash, or
        ``None`` (default) to disable caching.
    batch_size:
        Upper bound on topology seeds scheduled per round; defaults to
        ``max(8, 4*jobs)`` for the loop backend and 1024 for the
        vectorized one.  Affects scheduling only, never results.
    backend:
        ``"loop"`` (default), ``"vectorized"``, or ``"array_api"``.  The
        vectorized backend evaluates stacked topology batches through the
        experiment's ``build_batch`` hook when it defines one;
        ``"array_api"`` runs that same code path under the namespace
        selected by ``namespace``/``device``/``dtype``.  Results are
        bit-identical across ``loop``/``vectorized``/``array_api``-on-
        NumPy-float64; other configurations (torch, float32) meet the
        documented tolerance contracts.
    namespace / device / dtype:
        The :mod:`repro.xp` configuration of the ``"array_api"`` backend
        (ignored by the other backends, which always compute on the
        default NumPy/float64 namespace).  ``namespace`` is ``"numpy"``
        (always available) or ``"torch"`` (optional dependency; a missing
        install raises :class:`repro.xp.BackendUnavailableError` naming
        the extra).  ``device`` is ``"cpu"`` or a torch device string like
        ``"cuda"``; ``dtype`` is ``"float64"`` or ``"float32"``.
    cache_format:
        On-disk cache encoding: ``"json"`` (default, human-readable) or
        ``"npz"`` (binary series; what campaign shards use).  Both
        round-trip losslessly; the format is not part of the cache key
        beyond the file suffix.
    telemetry:
        An optional :class:`repro.obs.Telemetry` installed (via
        :func:`repro.obs.use`) around every :meth:`run` /
        :meth:`run_window` call, collecting spans and counters from the
        engines and the runner itself.  ``None`` (default) keeps the
        null-object fast path.  Telemetry is pure observation: it never
        enters cache keys, never changes control flow, and engine outputs
        are byte-identical with it on or off.  Results carry a
        :class:`repro.obs.TelemetrySummary` snapshot in
        ``RunResult.telemetry`` when set.
    """

    jobs: int = 1
    cache_dir: str | Path | None = None
    batch_size: int | None = None
    backend: str = "loop"
    namespace: str = "numpy"
    device: str = "cpu"
    dtype: str = "float64"
    cache_format: str = "json"
    # Observation only: excluded from repr/compare and (deliberately) from
    # _cache_path -- a traced run and an untraced run share cache entries.
    telemetry: obsmod.Telemetry | None = field(
        default=None, repr=False, compare=False
    )
    # A pool installed by run_many() so consecutive specs share workers
    # instead of paying pool startup per spec; never part of identity.
    _shared_pool: ProcessPoolExecutor | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError("Runner.jobs must be >= 1")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("Runner.batch_size must be >= 1")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"Runner.backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.cache_format not in _CACHE_FORMATS:
            raise ValueError(
                f"Runner.cache_format must be one of {_CACHE_FORMATS}, "
                f"got {self.cache_format!r}"
            )
        if self.telemetry is not None and not isinstance(
            self.telemetry, obsmod.Telemetry
        ):
            raise TypeError(
                "Runner.telemetry must be a repro.obs.Telemetry or None, "
                f"got {type(self.telemetry).__name__}"
            )
        xp_config = (self.namespace, self.device, self.dtype)
        if self.backend != "array_api" and xp_config != ("numpy", "cpu", "float64"):
            raise ValueError(
                f"namespace/device/dtype select the array-API namespace and "
                f"require backend='array_api'; backend={self.backend!r} always "
                f"computes on the default NumPy/float64 namespace"
            )
        if self.backend == "array_api":
            # Resolve eagerly so a missing optional dependency (torch) or a
            # bad device/dtype fails at construction with a clean error, not
            # mid-sweep.
            self._resolve_namespace()

    def _resolve_namespace(self):
        """The :class:`repro.xp.ArrayNamespace` the array_api backend uses.

        Raises :class:`repro.xp.BackendUnavailableError` (naming the extra
        to install) when the namespace's optional dependency is missing.
        """
        return xpmod.get_namespace(self.namespace, self.device, self.dtype)

    def _obs_scope(self):
        """Context installing this runner's telemetry (no-op when unset)."""
        if self.telemetry is None:
            return contextlib.nullcontext()
        return obsmod.use(self.telemetry)

    def _attach_summary(self, result: RunResult) -> RunResult:
        """Snapshot the telemetry onto ``result`` (in memory only).

        ``RunResult.telemetry`` is never serialized, so cached entries stay
        byte-identical whether a run was traced or not.
        """
        if self.telemetry is not None:
            object.__setattr__(result, "telemetry", self.telemetry.summary())
        return result

    def run(self, spec: RunSpec) -> RunResult:
        """Execute ``spec`` (or load it from cache) into a :class:`RunResult`."""
        with self._obs_scope():
            with obsmod.active().span(
                "runner.run", experiment=spec.experiment, backend=self.backend
            ):
                result = self._execute(spec)
        return self._attach_summary(result)

    def _execute(self, spec: RunSpec) -> RunResult:
        defn = get_experiment_def(spec.experiment)
        params = resolve_params(defn, spec)

        cache_path = self._cache_path(spec, params)
        cached = self._load_cache(cache_path)
        if cached is not None:
            obsmod.active().count("runner.cache.hits")
            return cached
        if cache_path is not None:
            obsmod.active().count("runner.cache.misses")

        outcomes = self._sweep(defn, params)
        base = defn.finalize(outcomes, params)
        result = RunResult.from_experiment_result(base, spec)

        if cache_path is not None:
            result.save(cache_path)
        return result

    def run_window(self, spec: RunSpec, seed_start: int, seed_count: int) -> RunResult:
        """Execute ``spec`` over a fixed window of the derived-seed stream.

        Evaluates exactly the topology-seed indices
        ``seed_start .. seed_start + seed_count - 1`` of ``spec.seed``'s
        derived stream -- the same seeds :meth:`run` would walk -- and
        keeps whatever passes the experiment's placement constraints (no
        rejection top-up: the window *is* the work unit, so a partition of
        windows always covers each seed index exactly once).  This is the
        shard primitive of :mod:`repro.campaign`: disjoint windows of one
        spec are independently computable, independently cacheable (the
        window is folded into the cache key; keys without a window are
        unchanged), and their union reproduces a monolithic sweep.

        ``spec.n_topologies`` is ignored; the window defines the work.
        The result's ``notes`` record the window and the accepted count.
        """
        if seed_start < 0:
            raise ValueError("seed_start must be >= 0")
        if seed_count < 1:
            raise ValueError("seed_count must be >= 1")
        with self._obs_scope():
            with obsmod.active().span(
                "runner.run",
                experiment=spec.experiment,
                backend=self.backend,
                seed_start=int(seed_start),
                seed_count=int(seed_count),
            ):
                result = self._execute_window(spec, seed_start, seed_count)
        return self._attach_summary(result)

    def _execute_window(
        self, spec: RunSpec, seed_start: int, seed_count: int
    ) -> RunResult:
        defn = get_experiment_def(spec.experiment)
        params = resolve_params(defn, spec)
        params["n_topologies"] = seed_count
        window = (int(seed_start), int(seed_count))

        cache_path = self._cache_path(spec, params, window=window)
        cached = self._load_cache(cache_path)
        if cached is not None:
            obsmod.active().count("runner.cache.hits")
            return cached
        if cache_path is not None:
            obsmod.active().count("runner.cache.misses")

        outcomes = self._sweep(defn, params, window=window)
        base = defn.finalize(outcomes, params)
        result = RunResult.from_experiment_result(base, spec)
        notes = dict(result.notes)
        notes["seed_window"] = [window[0], window[1]]
        notes["n_accepted"] = len(outcomes)
        result = RunResult(
            name=result.name,
            description=result.description,
            series=result.series,
            params=result.params,
            notes=notes,
            spec=result.spec,
        )

        if cache_path is not None:
            result.save(cache_path)
        return result

    def run_many(self, specs) -> list[RunResult]:
        """Execute several specs in order, sharing one worker pool.

        With ``jobs > 1`` a single ``ProcessPoolExecutor`` serves every
        spec in the list (instead of paying pool startup/teardown per
        spec); scheduling only -- results stay bit-identical to running
        each spec on its own.
        """
        specs = list(specs)
        if self.jobs > 1 and len(specs) > 1 and self._shared_pool is None:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                self._shared_pool = pool
                try:
                    return [self.run(spec) for spec in specs]
                finally:
                    self._shared_pool = None
        return [self.run(spec) for spec in specs]

    # ------------------------------------------------------------------
    def window_cache_path(
        self, spec: RunSpec, seed_start: int, seed_count: int
    ) -> Path | None:
        """Cache file a :meth:`run_window` call would use (or ``None``)."""
        defn = get_experiment_def(spec.experiment)
        params = resolve_params(defn, spec)
        params["n_topologies"] = int(seed_count)
        return self._cache_path(
            spec, params, window=(int(seed_start), int(seed_count))
        )

    def _cache_path(
        self,
        spec: RunSpec,
        params: dict,
        window: tuple[int, int] | None = None,
    ) -> Path | None:
        """Cache file keyed by the *resolved* parameters.

        Hashing the resolved params (experiment defaults merged in) rather
        than the raw spec means a spec relying on a default and a spec
        stating it explicitly share one entry, and editing an experiment's
        registered defaults invalidates stale cached results.  The package
        version is folded in so entries do not survive algorithm changes
        across releases.  Seed-window runs additionally fold the window
        into the key (full runs keep their historical keys verbatim);
        because the resolved ``n_topologies`` of a window run is the
        window length, shard entries are shared by every campaign that
        covers the same (spec, window) -- regardless of campaign totals.
        """
        if self.cache_dir is None:
            return None
        body = {
            "experiment": spec.experiment,
            "params": normalize_params(params),
            "version": _PACKAGE_VERSION,
        }
        if window is not None:
            body["seed_window"] = [int(window[0]), int(window[1])]
        if self.backend == "array_api":
            namespace = self._resolve_namespace()
            if not namespace.is_exact:
                # Non-bit-exact configurations (torch, float32) get their own
                # cache entries; the exact NumPy/float64 namespace keeps
                # sharing entries with the loop/vectorized backends, because
                # their results are array_equal by construction.
                body["xp"] = namespace.config_dict()
        payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
        suffix = "npz" if self.cache_format == "npz" else "json"
        return Path(self.cache_dir) / f"{spec.experiment}-{digest}.{suffix}"

    @staticmethod
    def _load_cache(cache_path: Path | None) -> RunResult | None:
        """Load a cache entry, treating unreadable/corrupt files as a miss."""
        if cache_path is None or not cache_path.exists():
            return None
        try:
            return RunResult.load(cache_path)
        except _CACHE_READ_ERRORS as exc:
            obsmod.active().count("runner.cache.recomputes")
            warnings.warn(
                f"cache entry {cache_path} is unreadable "
                f"({type(exc).__name__}: {exc}); recomputing",
                RuntimeWarning,
                stacklevel=3,
            )
            return None

    def _sweep(
        self,
        defn: ExperimentDef,
        params: dict,
        window: tuple[int, int] | None = None,
    ) -> list:
        """Accepted per-topology outcomes, in derived-seed-stream order.

        With ``window=(start, count)`` the sweep evaluates exactly the
        seed-stream indices ``start .. start+count-1`` -- no rejection
        top-up, no attempt cap -- and returns whatever those indices
        accept (the campaign shard contract).  Without a window it keeps
        drawing until ``params["n_topologies"]`` topologies are accepted.
        """
        n = int(params["n_topologies"])
        if n < 1:
            raise ValueError("need at least one topology")
        root_seed = int(params["seed"])
        stream_start = 0 if window is None else int(window[0])
        max_attempts = n if window is not None else max(200, 80 * n)
        batched_backend = self.backend in ("vectorized", "array_api")
        vectorized = batched_backend and defn.build_batch is not None
        if batched_backend and defn.build_batch is None:
            obsmod.active().count("runner.loop_fallbacks")
            warnings.warn(
                f"experiment {defn.name!r} defines no build_batch hook; "
                f"falling back to the per-topology loop backend",
                RuntimeWarning,
                stacklevel=2,
            )
        # The array_api backend is the vectorized sweep executed under an
        # active repro.xp namespace; build_batch hooks (and the compute
        # boundaries they call) pick it up via repro.xp.active().
        xp_namespace = (
            self._resolve_namespace() if self.backend == "array_api" else None
        )
        if self.batch_size is not None:
            batch_cap = self.batch_size
        elif vectorized:
            batch_cap = _VECTORIZED_BATCH_CAP
        else:
            batch_cap = max(8, 4 * self.jobs)

        accepted: list = []
        attempts = 0
        executor = self._shared_pool
        owns_executor = False
        try:
            while attempts < max_attempts and (
                window is not None or len(accepted) < n
            ):
                if window is not None:
                    # The window is the work unit: evaluate every index in
                    # it, chunked only to bound per-round memory.
                    target = max_attempts - attempts
                else:
                    # Aim for exactly what is still needed (padded to keep
                    # every worker busy) so a parallel run schedules no more
                    # builds than a serial one; the cap only bounds a single
                    # round.
                    target = max(n - len(accepted), min(self.jobs, batch_cap))
                    if vectorized and attempts:
                        # Rejection-heavy sweeps would otherwise shrink to
                        # deficit-sized (eventually single-seed) batches and
                        # forfeit the stacking win.  Overdraw by the observed
                        # acceptance rate instead: the derived-seed stream and
                        # each seed's accept/reject verdict are deterministic
                        # and outcomes are consumed in stream order up to n,
                        # so results are unchanged -- extra draws only cost
                        # the (rejected) build work.
                        rate = max(len(accepted) / attempts, 1.0 / 64.0)
                        target = max(target, math.ceil((n - len(accepted)) / rate))
                count = min(target, batch_cap, max_attempts - attempts)
                seeds = rng_mod.derived_seeds(
                    root_seed, stream_start + attempts, count
                )
                attempts += count
                if vectorized:
                    if xp_namespace is not None:
                        with xpmod.use(xp_namespace):
                            outcomes = defn.build_batch(seeds, params)
                    else:
                        outcomes = defn.build_batch(seeds, params)
                elif self.jobs > 1:
                    if executor is None:
                        executor = ProcessPoolExecutor(max_workers=self.jobs)
                        owns_executor = True
                    outcomes = executor.map(
                        _build_one, repeat(defn.name), seeds, repeat(params)
                    )
                else:
                    outcomes = (defn.build(s, params) for s in seeds)
                for outcome in outcomes:
                    if outcome is None:
                        continue
                    accepted.append(outcome)
                    if window is None and len(accepted) == n:
                        break
        finally:
            if owns_executor and executor is not None:
                executor.shutdown()
        if window is None and len(accepted) < n:
            raise RuntimeError(
                f"only {len(accepted)}/{n} topologies satisfied the "
                f"placement constraints after {attempts} attempts"
            )
        return accepted
