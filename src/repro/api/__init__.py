"""Public session API: ``RunSpec`` -> ``Runner`` -> ``RunResult``.

One declarative spec replaces one bespoke experiment module::

    from repro.api import RunSpec, Runner

    result = Runner(jobs=4).run(RunSpec("fig09", n_topologies=60, seed=0))
    print(result.summary())

Pluggability comes from three decorator-driven registries --
:func:`register_precoder`, :func:`register_scenario` (plus
:func:`register_environment`), and :func:`register_experiment` -- so new
algorithms and workloads drop in by name without touching the runner.
"""

from .experiments import (
    ExperimentDef,
    experiment_names,
    get_experiment_def,
    load_builtin_experiments,
    register_experiment,
)
from .precoders import (
    capacity_for,
    capacity_for_batch,
    precoder_matrix,
    precoder_matrix_batch,
)
from .registry import (
    ASSOCIATION,
    BATCH_PRECODERS,
    COORDINATION,
    ENVIRONMENTS,
    EXPERIMENTS,
    MOBILITY,
    PRECODERS,
    SCENARIOS,
    TRAFFIC,
    DuplicateNameError,
    Registry,
    UnknownNameError,
    register_association,
    register_batch_precoder,
    register_environment,
    register_mobility,
    register_precoder,
    register_scenario,
    register_traffic,
)
from .result import ExperimentResult, RunResult
from .runner import Runner, resolve_params
from .scenarios import environment_named, resolve_environment, scenario_factory
from .spec import RunSpec

__all__ = [
    "ExperimentDef",
    "experiment_names",
    "get_experiment_def",
    "load_builtin_experiments",
    "register_experiment",
    "capacity_for",
    "capacity_for_batch",
    "precoder_matrix",
    "precoder_matrix_batch",
    "ASSOCIATION",
    "BATCH_PRECODERS",
    "COORDINATION",
    "ENVIRONMENTS",
    "EXPERIMENTS",
    "MOBILITY",
    "PRECODERS",
    "SCENARIOS",
    "TRAFFIC",
    "DuplicateNameError",
    "Registry",
    "UnknownNameError",
    "register_association",
    "register_batch_precoder",
    "register_environment",
    "register_mobility",
    "register_precoder",
    "register_scenario",
    "register_traffic",
    "ExperimentResult",
    "RunResult",
    "Runner",
    "resolve_params",
    "environment_named",
    "resolve_environment",
    "scenario_factory",
    "RunSpec",
]
