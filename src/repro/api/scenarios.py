"""Environment and scenario factories as registries.

The paper's two office environments and five deployment generators are
registered by name so specs, CLIs, and user code can select them with a
string instead of importing factory functions.  Third-party environments
and scenario generators plug in with the same decorators::

    @register_environment("warehouse")
    def warehouse() -> OfficeEnvironment: ...
"""

from __future__ import annotations

from ..topology.scenarios import (
    OfficeEnvironment,
    campus_scenario,
    dense_office_scenario,
    eight_ap_scenario,
    grid_region_scenario,
    hidden_terminal_scenario,
    office_a,
    office_b,
    paired_scenarios,
    single_ap_scenario,
    three_ap_scenario,
)
from .registry import ENVIRONMENTS, SCENARIOS, register_environment, register_scenario

register_environment("office_a")(office_a)
register_environment("office_b")(office_b)

register_scenario("single_ap")(single_ap_scenario)
register_scenario("paired")(paired_scenarios)
register_scenario("three_ap")(three_ap_scenario)
register_scenario("eight_ap")(eight_ap_scenario)
register_scenario("grid_region")(grid_region_scenario)
register_scenario("campus")(campus_scenario)
register_scenario("dense_office")(dense_office_scenario)
register_scenario("hidden_terminal")(hidden_terminal_scenario)


def environment_named(name: str) -> OfficeEnvironment:
    """Instantiate the registered environment ``name``."""
    return ENVIRONMENTS.get(name)()


def resolve_environment(value, default: str = "office_b") -> OfficeEnvironment:
    """Resolve an environment given as a name, an instance, or ``None``.

    ``None`` falls back to ``default``; :class:`OfficeEnvironment` instances
    pass through unchanged (legacy call sites construct them directly).
    """
    if value is None:
        return environment_named(default)
    if isinstance(value, OfficeEnvironment):
        return value
    return environment_named(value)


def scenario_factory(name: str):
    """Look up the registered scenario factory ``name``."""
    return SCENARIOS.get(name)
