"""Named-plugin registries for precoders, scenarios, and experiments.

A :class:`Registry` maps string keys to callables (or richer definition
objects) and replaces the ad-hoc if/elif dispatch and hand-maintained dicts
the experiment layer grew up with.  Registration is decorator-driven::

    @register_precoder("balanced")
    def balanced(h, per_antenna_power_mw, noise_mw): ...

Lookups of unknown names raise :class:`UnknownNameError`, which lists every
registered name -- and subclasses both :class:`KeyError` and
:class:`ValueError` so existing callers catching either keep working.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")


class UnknownNameError(KeyError, ValueError):
    """Lookup of a name that was never registered."""

    def __init__(self, kind: str, name: str, known: list[str]):
        self.kind = kind
        self.name = name
        self.known = known
        hint = ", ".join(known) if known else "<registry is empty>"
        super().__init__(f"unknown {kind} {name!r}; registered: {hint}")

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]

    def __reduce__(self):  # default reduction passes args=(message,) to __init__
        return (UnknownNameError, (self.kind, self.name, self.known))


class DuplicateNameError(ValueError):
    """Registration under a name that is already taken."""


class Registry(Generic[T]):
    """An ordered name -> object mapping with decorator registration."""

    def __init__(self, kind: str):
        self.kind = kind
        self._items: dict[str, T] = {}

    def register(self, name: str) -> Callable[[T], T]:
        """Decorator registering the wrapped object under ``name``."""
        if not isinstance(name, str) or not name:
            raise TypeError(f"{self.kind} name must be a non-empty string")

        def wrap(obj: T) -> T:
            self.add(name, obj)
            return obj

        return wrap

    def add(self, name: str, obj: T) -> T:
        """Imperative registration (the decorator's workhorse)."""
        if name in self._items:
            raise DuplicateNameError(
                f"{self.kind} {name!r} is already registered"
            )
        self._items[name] = obj
        return obj

    def get(self, name: str) -> T:
        try:
            return self._items[name]
        except KeyError:
            raise UnknownNameError(self.kind, name, self.names()) from None

    def names(self) -> list[str]:
        return sorted(self._items)

    def items(self):
        return self._items.items()

    def __contains__(self, name: object) -> bool:
        return name in self._items

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._items))

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {self.names()})"


#: The built-in registries backing the public API.
PRECODERS: Registry = Registry("precoder")
BATCH_PRECODERS: Registry = Registry("batched precoder")
SCENARIOS: Registry = Registry("scenario")
ENVIRONMENTS: Registry = Registry("environment")
EXPERIMENTS: Registry = Registry("experiment")
TRAFFIC: Registry = Registry("traffic model")
MOBILITY: Registry = Registry("mobility model")
ASSOCIATION: Registry = Registry("association policy")
COORDINATION: Registry = Registry("coordination mode")


def register_precoder(name: str):
    """Register ``fn(h, per_antenna_power_mw, noise_mw) -> v`` as a precoder."""
    return PRECODERS.register(name)


def register_batch_precoder(name: str):
    """Register the *batched* implementation of precoder ``name``.

    The callable takes a stacked channel ``(batch, n_clients, n_antennas)``
    and must return precoders bit-identical, slice for slice, to the scalar
    registration under the same name (the vectorized backend's contract).
    """
    return BATCH_PRECODERS.register(name)


def register_scenario(name: str):
    """Register a scenario factory (``repro.topology.scenarios`` signature)."""
    return SCENARIOS.register(name)


def register_environment(name: str):
    """Register an :class:`OfficeEnvironment` factory."""
    return ENVIRONMENTS.register(name)


def register_traffic(name: str):
    """Register ``fn(rate_mbps, **kwargs) -> TrafficModel`` as an arrival
    process (see :mod:`repro.traffic`)."""
    return TRAFFIC.register(name)


def register_mobility(name: str):
    """Register ``fn(**kwargs) -> MobilityModel`` as a client mobility model
    (see :mod:`repro.mobility`)."""
    return MOBILITY.register(name)


def register_association(name: str):
    """Register ``fn(**kwargs) -> AssociationPolicy`` as a client<->AP
    association policy (see :mod:`repro.assoc`).  The policy owns the
    client->AP map: it is re-evaluated at every sounding, and the engines
    consume its membership, tag, and handoff state instead of computing
    their own."""
    return ASSOCIATION.register(name)
