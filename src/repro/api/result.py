"""Structured run results with JSON / ``.npz`` round-trips.

:class:`ExperimentResult` is the classic in-memory result the experiment
modules have always produced (named series + params + notes).
:class:`RunResult` extends it with the :class:`~repro.api.spec.RunSpec`
that produced it and lossless serialization, so results can be cached on
disk keyed by spec hash and fed back into ``repro.analysis`` unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..analysis.cdf import EmpiricalCdf, median_gain
from ..analysis.report import format_cdf_summary
from ..io import atomic_write as _atomic_write
from .spec import RunSpec

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ExperimentResult:
    """Named data series regenerating one paper figure."""

    name: str
    description: str
    series: dict[str, np.ndarray]
    params: dict = field(default_factory=dict)
    notes: dict = field(default_factory=dict)

    def cdf(self, series_name: str) -> EmpiricalCdf:
        """Empirical CDF of one series (most paper figures are CDFs)."""
        return EmpiricalCdf(self.series[series_name])

    def median(self, series_name: str) -> float:
        return float(np.median(self.series[series_name]))

    def gain(self, treatment: str, baseline: str) -> float:
        """Median relative gain between two series."""
        return median_gain(self.series[treatment], self.series[baseline])

    def summary(self) -> str:
        """Paper-style text table of all series."""
        header = f"== {self.name}: {self.description} =="
        return header + "\n" + format_cdf_summary(self.series)


def _encode(value: Any) -> Any:
    """JSON-encode nested params/notes, tagging numpy arrays losslessly."""
    if isinstance(value, np.ndarray):
        if np.iscomplexobj(value):
            raise TypeError("complex arrays are not serializable in results")
        return {
            "__ndarray__": value.tolist(),
            "dtype": str(value.dtype),
            "shape": list(value.shape),
        }
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    raise TypeError(f"cannot serialize {type(value).__name__} in a RunResult")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if "__ndarray__" in value:
            arr = np.asarray(value["__ndarray__"], dtype=np.dtype(value["dtype"]))
            return arr.reshape(value["shape"])
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


@dataclass(frozen=True)
class RunResult(ExperimentResult):
    """An :class:`ExperimentResult` plus provenance and serialization."""

    spec: RunSpec | None = None
    #: In-memory :class:`repro.obs.TelemetrySummary` snapshot attached by a
    #: ``Runner`` configured with telemetry; ``None`` otherwise.  Pure
    #: observation: never serialized (JSON and npz round-trips drop it), never
    #: compared, and never part of cache identity.
    telemetry: Any | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_json(self, indent: int | None = None) -> str:
        payload = {
            "format_version": _FORMAT_VERSION,
            "spec": self.spec.to_dict() if self.spec is not None else None,
            "name": self.name,
            "description": self.description,
            "series": {k: _encode(np.asarray(v)) for k, v in self.series.items()},
            "params": _encode(self.params),
            "notes": _encode(self.notes),
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        payload = json.loads(text)
        version = payload.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported RunResult format version {version!r}")
        spec = payload.get("spec")
        return cls(
            name=payload["name"],
            description=payload["description"],
            series={k: _decode(v) for k, v in payload["series"].items()},
            params=_decode(payload.get("params", {})),
            notes=_decode(payload.get("notes", {})),
            spec=RunSpec.from_dict(spec) if spec is not None else None,
        )

    # ------------------------------------------------------------------
    # npz round-trip (arrays stay binary; metadata rides in a JSON header)
    # ------------------------------------------------------------------
    def save_npz(self, path: str | Path) -> Path:
        path = Path(path)
        meta = {
            "format_version": _FORMAT_VERSION,
            "spec": self.spec.to_dict() if self.spec is not None else None,
            "name": self.name,
            "description": self.description,
            "params": _encode(self.params),
            "notes": _encode(self.notes),
        }
        arrays = {f"series/{k}": np.asarray(v) for k, v in self.series.items()}

        def write_to(tmp: Path) -> None:
            # An open handle keeps numpy from appending ".npz" to the temp
            # file's name and makes the rename below atomic.
            with open(tmp, "wb") as fh:
                np.savez(
                    fh, __meta__=np.array(json.dumps(meta, sort_keys=True)), **arrays
                )

        _atomic_write(path, write_to)
        return path

    @classmethod
    def load_npz(cls, path: str | Path) -> "RunResult":
        with np.load(Path(path), allow_pickle=False) as data:
            meta = json.loads(str(data["__meta__"]))
            series = {
                key[len("series/"):]: data[key]
                for key in data.files
                if key.startswith("series/")
            }
        version = meta.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported RunResult format version {version!r}")
        spec = meta.get("spec")
        return cls(
            name=meta["name"],
            description=meta["description"],
            series=series,
            params=_decode(meta.get("params", {})),
            notes=_decode(meta.get("notes", {})),
            spec=RunSpec.from_dict(spec) if spec is not None else None,
        )

    # ------------------------------------------------------------------
    # Suffix-dispatching convenience
    # ------------------------------------------------------------------
    def save(self, path: str | Path, indent: int | None = 2) -> Path:
        """Write to ``path``; ``.npz`` saves binary, anything else JSON.

        Both formats write atomically (temp sibling + ``os.replace``), so
        an interrupted save never leaves a torn file behind.
        """
        path = Path(path)
        if path.suffix == ".npz":
            return self.save_npz(path)
        text = self.to_json(indent=indent)
        _atomic_write(path, lambda tmp: tmp.write_text(text))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunResult":
        path = Path(path)
        if path.suffix == ".npz":
            return cls.load_npz(path)
        return cls.from_json(path.read_text())

    @classmethod
    def from_experiment_result(
        cls, base: ExperimentResult, spec: RunSpec | None
    ) -> "RunResult":
        return cls(
            name=base.name,
            description=base.description,
            series=base.series,
            params=base.params,
            notes=base.notes,
            spec=spec,
        )
