"""Experiment definitions: the pluggable unit the :class:`Runner` executes.

An experiment is a pair of pure functions over plain parameter dicts:

``build(topo_seed, params) -> dict | None``
    Evaluate one topology.  Returning ``None`` rejects the topology
    (placement constraints) and the runner draws another seed.  ``build``
    must be a module-level callable so worker processes can resolve it.

``finalize(outcomes, params) -> ExperimentResult``
    Reduce the accepted per-topology outcomes into named series.

An experiment may additionally provide a *batched* build hook:

``build_batch(topo_seeds, params) -> list[dict | None]``
    Evaluate a whole batch of topology seeds at once (stacked channel
    synthesis + batched linear algebra), returning one outcome per seed in
    order, ``None`` for rejected draws.  The contract is bit-identity:
    entry ``i`` must equal ``build(topo_seeds[i], params)`` exactly.  The
    runner uses this hook when constructed with ``backend="vectorized"``
    and falls back to per-topology ``build`` calls when it is absent.

Modules register experiments with the :func:`register_experiment`
decorator, either on an :class:`ExperimentDef` factory call or on a class
carrying ``name``/``description``/``defaults``/``build``/``finalize``
(and optionally ``build_batch``) attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from .registry import EXPERIMENTS
from .result import ExperimentResult

BuildFn = Callable[[int, dict], "dict | None"]
BatchBuildFn = Callable[[Sequence[int], dict], "list[dict | None]"]
FinalizeFn = Callable[[list, dict], ExperimentResult]

_RESERVED_PARAMS = {"seed"}


@dataclass(frozen=True)
class ExperimentDef:
    """A registered experiment: defaults plus build/finalize callables."""

    name: str
    description: str
    build: BuildFn
    finalize: FinalizeFn
    defaults: Mapping[str, Any] = field(default_factory=dict)
    build_batch: BatchBuildFn | None = None

    def __post_init__(self):
        if "n_topologies" not in self.defaults:
            raise ValueError(
                f"experiment {self.name!r} must declare an n_topologies default"
            )
        bad = _RESERVED_PARAMS & set(self.defaults)
        if bad:
            raise ValueError(
                f"experiment {self.name!r} defaults may not include {sorted(bad)}"
            )


def register_experiment(obj):
    """Register an :class:`ExperimentDef` (or a class describing one).

    Usable as a decorator on a definition class::

        @register_experiment
        class Fig03:
            name = "fig03"
            description = "..."
            defaults = {"n_topologies": 60}
            build = staticmethod(_build)
            finalize = staticmethod(_finalize)

    or called directly with an :class:`ExperimentDef`.
    """
    if isinstance(obj, ExperimentDef):
        defn = obj
    else:
        defn = ExperimentDef(
            name=obj.name,
            description=obj.description,
            build=obj.build,
            finalize=obj.finalize,
            defaults=dict(obj.defaults),
            build_batch=getattr(obj, "build_batch", None),
        )
    EXPERIMENTS.add(defn.name, defn)
    return obj


def get_experiment_def(name: str) -> ExperimentDef:
    """Registered definition for ``name`` (loading the built-ins first)."""
    load_builtin_experiments()
    return EXPERIMENTS.get(name)


def experiment_names() -> list[str]:
    """All registered experiment names (loading the built-ins first)."""
    load_builtin_experiments()
    return EXPERIMENTS.names()


def load_builtin_experiments() -> None:
    """Import the built-in experiment modules so they self-register.

    Idempotent; safe to call from worker processes spawned without the
    parent's module state.
    """
    from .. import experiments  # noqa: F401  (import triggers registration)
