"""The precoder zoo as a registry.

Every precoder shares one signature::

    precoder(h, per_antenna_power_mw, noise_mw) -> v   # (n_antennas, n_streams)

replacing the if/elif string dispatch that used to live in
``repro.experiments.common.capacity_for``.  Unknown names raise
:class:`~repro.api.registry.UnknownNameError` listing every registered
precoder.

A second registry, ``BATCH_PRECODERS``, holds *batched* implementations
with the same signature over stacked channels ``(batch, n_clients,
n_antennas)``.  :func:`precoder_matrix_batch` prefers the batched
implementation and falls back to mapping the scalar one over the stack --
so every registered precoder works under ``backend="vectorized"``, and both
paths are bit-identical per item (iterative solvers like WMMSE simply run
item-at-a-time inside the batch call).
"""

from __future__ import annotations

import numpy as np

from ..core import batch as core_batch
from ..core.naive import naive_scaled_precoder
from ..core.optimal import full_optimal_precoder, optimal_power_allocation
from ..core.power_balance import power_balanced_precoder
from ..core.wmmse import wmmse_precoder
from ..core.zfbf import zfbf_equal_power
from ..phy.capacity import stream_sinrs, sum_capacity_bps_hz
from .. import xp as xpmod
from .registry import BATCH_PRECODERS, PRECODERS, register_batch_precoder, register_precoder


@register_precoder("naive")
def naive(h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """The paper's baseline: ZFBF globally scaled to the per-antenna cap."""
    return naive_scaled_precoder(h, p)


@register_precoder("balanced")
def balanced(h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """MIDAS power-balanced precoding (§3.1)."""
    return power_balanced_precoder(h, p, noise).v


@register_precoder("total_power")
def total_power(h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """Equal-split ZFBF under a *total* power budget only (the Fig 3
    reference, ignoring the per-antenna repair)."""
    return zfbf_equal_power(h, h.shape[1] * p)


@register_precoder("optimal_zf")
def optimal_zf(h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """Convex-optimal per-stream power over ZFBF directions."""
    return optimal_power_allocation(h, p, noise).v


@register_precoder("wmmse")
def wmmse(h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """WMMSE iterative precoder under per-antenna constraints."""
    return wmmse_precoder(h, p, noise).v


@register_precoder("full_optimal")
def full_optimal(h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """Full numerical optimum (slow; Fig 11's comparator)."""
    return full_optimal_precoder(h, p, noise).v


@register_batch_precoder("naive")
def naive_batch(h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """Stacked baseline: batched ZFBF globally scaled per item."""
    return core_batch.naive_scaled_precoder(h, p)


@register_batch_precoder("balanced")
def balanced_batch(h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """Stacked MIDAS power balancing (masked iteration, bit-identical)."""
    return core_batch.power_balanced_precoder(h, p, noise).v


@register_batch_precoder("total_power")
def total_power_batch(h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """Stacked equal-split ZFBF under the total budget only."""
    return core_batch.zfbf_equal_power(h, h.shape[-1] * p)


def precoder_matrix(name: str, h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """Precoding matrix of the registered precoder ``name``."""
    return PRECODERS.get(name)(h, p, noise)


def precoder_matrix_batch(
    name: str, h: np.ndarray, p: float, noise: float
) -> np.ndarray:
    """Stacked precoding matrices ``(batch, n_antennas, n_streams)``.

    Uses the registered batched implementation when one exists, otherwise
    maps the scalar precoder over the stack (bit-identical either way, by
    the batched-precoder contract).

    This is a :mod:`repro.xp` compute boundary: the stack is transferred to
    the *active* namespace before the solve (the identity on the default
    NumPy/float64 configuration), so ``Runner(backend="array_api")`` runs
    the registered batched solvers on torch without any experiment changes.
    Scalar fallbacks (iterative solvers without a batched form) always run
    on the host in float64; their results are transferred afterwards.
    """
    xp = xpmod.active()
    h = xp.asarray(h, dtype=xp.complex_dtype)
    if h.ndim < 3:
        raise ValueError(
            f"precoder_matrix_batch expects a stacked channel; got {tuple(h.shape)}"
        )
    if name in BATCH_PRECODERS:
        return BATCH_PRECODERS.get(name)(h, p, noise)
    fn = PRECODERS.get(name)  # raises UnknownNameError with the full list
    stacked = np.stack([fn(item, p, noise) for item in xpmod.to_numpy(h)])
    return xp.asarray(stacked, dtype=xp.complex_dtype)


def capacity_for(scenario, h: np.ndarray, precoder: str) -> float:
    """Sum capacity of one channel snapshot under a registered precoder."""
    radio = scenario.radio
    v = precoder_matrix(precoder, h, radio.per_antenna_power_mw, radio.noise_mw)
    return sum_capacity_bps_hz(stream_sinrs(h, v, radio.noise_mw))


def capacity_for_batch(scenario, h: np.ndarray, precoder: str) -> np.ndarray:
    """Per-item sum capacities ``(batch,)`` of a stacked channel snapshot.

    Bit-identical per item to :func:`capacity_for` on the matching slice
    (on the exact NumPy/float64 namespace).  The precode + SINR + capacity
    chain runs on the active :mod:`repro.xp` namespace; the result always
    comes back as a host NumPy array, so experiment ``finalize`` hooks stay
    backend-agnostic.
    """
    radio = scenario.radio
    xp = xpmod.active()
    h = xp.asarray(h, dtype=xp.complex_dtype)
    v = precoder_matrix_batch(
        precoder, h, radio.per_antenna_power_mw, radio.noise_mw
    )
    return xpmod.to_numpy(sum_capacity_bps_hz(stream_sinrs(h, v, radio.noise_mw)))
