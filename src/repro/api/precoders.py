"""The precoder zoo as a registry.

Every precoder shares one signature::

    precoder(h, per_antenna_power_mw, noise_mw) -> v   # (n_antennas, n_streams)

replacing the if/elif string dispatch that used to live in
``repro.experiments.common.capacity_for``.  Unknown names raise
:class:`~repro.api.registry.UnknownNameError` listing every registered
precoder.
"""

from __future__ import annotations

import numpy as np

from ..core.naive import naive_scaled_precoder
from ..core.optimal import full_optimal_precoder, optimal_power_allocation
from ..core.power_balance import power_balanced_precoder
from ..core.wmmse import wmmse_precoder
from ..core.zfbf import zfbf_equal_power
from ..phy.capacity import stream_sinrs, sum_capacity_bps_hz
from .registry import PRECODERS, register_precoder


@register_precoder("naive")
def naive(h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """The paper's baseline: ZFBF globally scaled to the per-antenna cap."""
    return naive_scaled_precoder(h, p)


@register_precoder("balanced")
def balanced(h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """MIDAS power-balanced precoding (§3.1)."""
    return power_balanced_precoder(h, p, noise).v


@register_precoder("total_power")
def total_power(h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """Equal-split ZFBF under a *total* power budget only (the Fig 3
    reference, ignoring the per-antenna repair)."""
    return zfbf_equal_power(h, h.shape[1] * p)


@register_precoder("optimal_zf")
def optimal_zf(h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """Convex-optimal per-stream power over ZFBF directions."""
    return optimal_power_allocation(h, p, noise).v


@register_precoder("wmmse")
def wmmse(h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """WMMSE iterative precoder under per-antenna constraints."""
    return wmmse_precoder(h, p, noise).v


@register_precoder("full_optimal")
def full_optimal(h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """Full numerical optimum (slow; Fig 11's comparator)."""
    return full_optimal_precoder(h, p, noise).v


def precoder_matrix(name: str, h: np.ndarray, p: float, noise: float) -> np.ndarray:
    """Precoding matrix of the registered precoder ``name``."""
    return PRECODERS.get(name)(h, p, noise)


def capacity_for(scenario, h: np.ndarray, precoder: str) -> float:
    """Sum capacity of one channel snapshot under a registered precoder."""
    radio = scenario.radio
    v = precoder_matrix(precoder, h, radio.per_antenna_power_mw, radio.noise_mw)
    return sum_capacity_bps_hz(stream_sinrs(h, v, radio.noise_mw))
