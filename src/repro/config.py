"""Configuration dataclasses holding every calibration constant in one place.

The paper evaluates on WARP hardware in two offices; our substrate is a
calibrated simulation, and these dataclasses are the calibration surface.
Experiments construct (or accept) these configs so that every number that
could move a result is explicit, documented and testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from . import units


@dataclass(frozen=True)
class RadioConfig:
    """Physical-layer and propagation constants.

    Defaults model an 802.11ac AP in the 5 GHz band on a 20 MHz channel with
    one power amplifier per antenna (the per-antenna constraint of paper
    eq. 3).  Path-loss exponents and shadowing follow common indoor-office
    values; Office A (enterprise) vs Office B (crowded lab) in the paper are
    modelled by the two named presets in :mod:`repro.topology.scenarios`.
    """

    carrier_hz: float = 5.25e9
    bandwidth_hz: float = 20e6
    #: Per-antenna transmit power (dBm).  Each antenna has its own PA.
    #: Calibrated to a WARP-like SDR front-end so per-stream SINRs land in
    #: the paper's 5-30 dB operating range.
    per_antenna_power_dbm: float = 8.0
    #: Receiver noise figure (dB).
    noise_figure_db: float = 10.0
    #: Log-distance path-loss exponent (indoor NLOS office, AP/antenna to
    #: desk-level client).
    pathloss_exponent: float = 4.0
    #: Path-loss exponent for antenna-to-antenna *sensing* links.  Mounted
    #: antennas (ceiling height, clear of furniture and bodies) see cleaner
    #: propagation than antenna-to-client links, which is what lets APs
    #: overhear each other across a floor while clients escape each other's
    #: interference (ITU indoor models make the same height distinction).
    sensing_pathloss_exponent: float = 3.3
    #: Reference distance for the log-distance model (m).
    reference_distance_m: float = 1.0
    #: Attenuation per interior wall crossed (dB).  0 disables the wall model
    #: (the default: the NLOS exponent already absorbs average obstruction
    #: loss; the explicit wall grid is available for coverage-map studies).
    wall_loss_db: float = 0.0
    #: Interior wall grid spacing (room size), meters.
    wall_spacing_m: float = 5.0
    #: Wall-count saturation: beyond this many partitions energy arrives via
    #: corridors/diffraction rather than the straight-line path.
    max_wall_count: int = 2
    #: RF coax attenuation per meter feeding each *distributed* antenna
    #: (paper §4: DAS realized with RF coaxial cables).  The cable length is
    #: taken as the antenna's distance from its AP; co-located antennas sit
    #: on the AP so they lose nothing.
    cable_loss_db_per_m: float = 0.4
    #: Log-normal shadowing standard deviation (dB).
    shadowing_sigma_db: float = 9.0
    #: Shadowing decorrelation distance (m) for spatially correlated shadowing.
    shadowing_correlation_m: float = 8.0
    #: Rician K-factor (linear).  0 => pure Rayleigh small-scale fading.
    rician_k: float = 0.0
    #: Doppler spread (Hz) controlling channel coherence time (~0.423/fd).
    doppler_hz: float = 8.0
    #: Azimuth angular spread (degrees) of the scattering seen by a co-located
    #: array.  Indoor offices have limited angular spread (~10-25 deg), which
    #: correlates CAS antennas far more than isotropic (Jakes) scattering
    #: would.  ``None`` selects the isotropic J0 model.
    angular_spread_deg: float | None = 13.0

    @property
    def per_antenna_power_mw(self) -> float:
        """Per-antenna power budget in milliwatts (paper eq. 3's ``P``)."""
        return units.dbm_to_mw(self.per_antenna_power_dbm)

    @property
    def noise_mw(self) -> float:
        """Receiver noise floor in milliwatts over the configured bandwidth."""
        return units.thermal_noise_mw(self.bandwidth_hz, self.noise_figure_db)

    @property
    def wavelength_m(self) -> float:
        """Carrier wavelength in meters."""
        return units.wavelength(self.carrier_hz)

    @property
    def coherence_time_s(self) -> float:
        """Channel coherence time from the Clarke/Jakes rule of thumb."""
        if self.doppler_hz <= 0:
            return math.inf
        return 0.423 / self.doppler_hz

    def with_(self, **changes) -> "RadioConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class MacConfig:
    """802.11 MAC timing and carrier-sensing constants (5 GHz OFDM PHY).

    Timing values are the 802.11a/n/ac 5 GHz numbers.  The carrier-sense
    threshold is a single energy threshold applied to the aggregate received
    power at the sensing antenna; the NAV (virtual carrier sense) additionally
    requires the preamble to be decodable at ``nav_decode_dbm``.
    """

    slot_us: float = 9.0
    sifs_us: float = 16.0
    #: DIFS = SIFS + 2 * slot.  Also MIDAS's opportunistic waiting window.
    difs_us: float = 34.0
    cw_min: int = 15
    cw_max: int = 1023
    #: TXOP duration (microseconds) for one MU-MIMO burst (paper's ``T``).
    txop_us: float = 3008.0
    #: Physical carrier-sense (energy-detect) threshold, dBm.
    cs_threshold_dbm: float = -77.0
    #: Received power needed to decode a preamble and set the NAV, dBm.
    #: Preamble detection is more sensitive than energy detection.
    nav_decode_dbm: float = -80.0
    #: Minimum SNR (dB) for a client to be considered in coverage / decodable.
    decode_snr_db: float = 5.0
    #: Minimum SINR (dB) to decode a preamble when other transmissions are
    #: already in the air (capture effect): a busy medium masks new
    #: preambles, so NAVs are only set on transmitters heard this clearly.
    preamble_capture_db: float = 4.0
    #: Number of preferred antennas each packet is tagged with (paper: 2).
    tag_width: int = 2

    @property
    def cs_threshold_mw(self) -> float:
        """Energy-detect threshold in milliwatts."""
        return units.dbm_to_mw(self.cs_threshold_dbm)

    @property
    def nav_decode_mw(self) -> float:
        """Preamble-decode threshold in milliwatts."""
        return units.dbm_to_mw(self.nav_decode_dbm)

    def with_(self, **changes) -> "MacConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class SimConfig:
    """End-to-end simulation controls."""

    #: Simulated duration in seconds (paper runs 10 s bursts).
    duration_s: float = 0.25
    #: Channel re-draw (block fading) interval in seconds.
    coherence_block_s: float = 0.020
    #: Relative CSI error std (0 => perfect CSI at sounding time).
    csi_error_std: float = 0.0
    #: Whether the AP pays NDP sounding + feedback overhead per TXOP.
    sounding_overhead: bool = True

    def with_(self, **changes) -> "SimConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class MidasConfig:
    """Bundle of the three config layers, convenient for experiments."""

    radio: RadioConfig = field(default_factory=RadioConfig)
    mac: MacConfig = field(default_factory=MacConfig)
    sim: SimConfig = field(default_factory=SimConfig)

    def with_(self, **changes) -> "MidasConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: Shared defaults, used wherever an experiment does not override anything.
DEFAULT_RADIO = RadioConfig()
DEFAULT_MAC = MacConfig()
DEFAULT_SIM = SimConfig()
