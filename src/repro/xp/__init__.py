"""Array-namespace dispatch: one numerical code path for NumPy and torch.

The hot numerical core -- the batched precoder zoo (:mod:`repro.core.batch`),
SINR/capacity scoring (:mod:`repro.phy.capacity`), the vectorized MCS mapping
(:mod:`repro.phy.mcs`), and the masked reductions of the batched simulation
engine (:mod:`repro.sim.batch`) -- is written against an *array namespace*
``xp`` instead of ``numpy`` directly.  A namespace is a thin object exposing
the NumPy-flavored call surface those modules use (``xp.where``,
``xp.linalg.svd``, ``xp.take_along_axis``, ...) plus a device/dtype
configuration:

* :class:`NumpyNamespace` delegates every operation **to numpy itself** --
  the function objects are literally NumPy's, so code running on the default
  namespace is bit-identical to code calling ``np.*`` directly.  This is the
  contract that keeps ``Runner(backend="vectorized")`` byte-stable and makes
  ``backend="array_api"`` on the NumPy namespace ``array_equal`` to it.
* :class:`~repro.xp._torch.TorchNamespace` adapts the same surface onto
  ``torch`` tensors (CPU or CUDA, float32 or float64).  Floating-point
  results then match the NumPy path only to documented tolerances (see
  ``tests/helpers/contracts.py`` and ``docs/api.md``).

Three pieces glue the namespaces into the runner:

* :func:`get_namespace` -- resolve a namespace by name with a device/dtype
  config; a missing optional dependency raises
  :class:`BackendUnavailableError` naming the extra to install.
* :func:`array_namespace` -- infer the namespace (and precision) governing a
  set of arrays, array-API style; library functions call this at entry so
  torch tensors stay on-device through the whole precode/score pipeline.
* :func:`use` / :func:`active` -- a context-local *active* namespace the
  ``Runner`` installs around ``build_batch`` calls so experiments pick the
  backend up without signature changes.

**The RNG bridge.**  Randomness never moves off NumPy: every stochastic
term (topology placement, shadowing lattice nodes, fading innovations, CSI
noise) is drawn from the existing per-topology ``numpy.random.Generator``
trees and *transferred* to the target namespace afterwards
(:class:`RngBridge`, or a plain ``xp.asarray`` at the assembly boundary).
The seed-derivation contract is therefore untouched: every backend consumes
the same generator streams in the same order, and differences between
namespaces come from float arithmetic only.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Iterator

import numpy as np

from ..obs import active as _obs_active

__all__ = [
    "ArrayNamespace",
    "BackendUnavailableError",
    "NumpyNamespace",
    "RngBridge",
    "active",
    "array_namespace",
    "get_namespace",
    "namespace_names",
    "to_numpy",
    "use",
]

#: Supported real dtypes (the complex dtype is always the matching one).
_DTYPES = ("float32", "float64")

#: Namespace names :func:`get_namespace` accepts.
_NAMESPACES = ("numpy", "torch")


class BackendUnavailableError(ImportError):
    """An array namespace's optional dependency is not installed."""


class ArrayNamespace:
    """Base class: a NumPy-flavored op surface plus device/dtype config.

    Subclasses provide the operations; this base owns the configuration and
    the dtype vocabulary shared by all namespaces.  Instances are immutable
    and cached by :func:`get_namespace`, so identity comparison is safe.
    """

    #: Registry name ("numpy", "torch").
    name: str = ""

    def __init__(self, device: str = "cpu", dtype: str = "float64"):
        if dtype not in _DTYPES:
            raise ValueError(f"dtype must be one of {_DTYPES}, got {dtype!r}")
        self.device = device
        self.dtype = dtype

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} device={self.device!r} dtype={self.dtype!r}>"
        )

    @property
    def is_exact(self) -> bool:
        """Whether results on this namespace are bit-identical to the
        default NumPy/float64 path (the ``array_equal`` guarantee)."""
        return self.name == "numpy" and self.dtype == "float64"

    def config_dict(self) -> dict:
        """JSON-safe identity of this namespace (cache-key material)."""
        return {"namespace": self.name, "device": self.device, "dtype": self.dtype}


class NumpyNamespace(ArrayNamespace):
    """The reference namespace: every operation *is* NumPy's.

    Attribute access falls through to the :mod:`numpy` module, so code
    written against ``xp`` executes the identical function objects the
    pre-dispatch code called -- bit-identity by construction.  Only the
    dtype vocabulary is namespace-local (``float32`` runs exist to exercise
    the tolerance tier without torch installed).
    """

    name = "numpy"

    def __init__(self, device: str = "cpu", dtype: str = "float64"):
        if device != "cpu":
            raise ValueError(
                f"the numpy namespace only supports device='cpu', got {device!r}"
            )
        super().__init__(device, dtype)
        self.float_dtype = np.float32 if dtype == "float32" else np.float64
        self.complex_dtype = np.complex64 if dtype == "float32" else np.complex128
        self.int_dtype = np.intp
        self.bool_dtype = np.bool_
        self.linalg = np.linalg

    def __getattr__(self, attr: str):
        # Everything not defined here is numpy itself (functions and
        # constants alike); AttributeError propagates for unknown names.
        return getattr(np, attr)

    def to_numpy(self, x) -> np.ndarray:
        """Identity view: the array already lives in NumPy."""
        return np.asarray(x)


#: Cached namespace instances keyed by (name, device, dtype).
_CACHE: dict[tuple[str, str, str], ArrayNamespace] = {}


def namespace_names() -> tuple[str, ...]:
    """Names :func:`get_namespace` accepts (installed or not)."""
    return _NAMESPACES


def get_namespace(
    name: str = "numpy", device: str = "cpu", dtype: str = "float64"
) -> ArrayNamespace:
    """Resolve an array namespace by name with a device/dtype config.

    ``"numpy"`` always works (CPU only).  ``"torch"`` requires the optional
    torch dependency and raises :class:`BackendUnavailableError` naming the
    missing extra when it is not installed -- the NumPy namespace keeps
    working regardless.
    """
    key = (name, device, dtype)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    if name == "numpy":
        namespace: ArrayNamespace = NumpyNamespace(device, dtype)
    elif name == "torch":
        try:
            import torch  # noqa: F401
        except ImportError as exc:
            raise BackendUnavailableError(
                "array namespace 'torch' needs the optional torch dependency, "
                "which is not installed; install the extra with "
                "'pip install repro-midas[torch]' (or 'pip install torch'). "
                "The 'numpy' namespace works without it."
            ) from exc
        from ._torch import TorchNamespace

        namespace = TorchNamespace(device, dtype)
    else:
        raise ValueError(
            f"unknown array namespace {name!r}; choose from {_NAMESPACES}"
        )
    _CACHE[key] = namespace
    return namespace


def _is_torch(x) -> bool:
    """Torch-tensor check that never imports torch."""
    return type(x).__module__.partition(".")[0] == "torch"


def array_namespace(*arrays) -> ArrayNamespace:
    """The namespace governing ``arrays`` (array-API ``get-namespace``).

    A torch tensor anywhere selects the torch namespace on that tensor's
    device; otherwise NumPy.  Precision follows the first floating/complex
    array: float32/complex64 inputs select the float32 configuration, so a
    single-precision pipeline stays single-precision end to end.  With no
    floating inputs at all, the default float64 namespace is returned.
    """
    for x in arrays:
        if _is_torch(x):
            single = str(x.dtype) in ("torch.float32", "torch.complex64")
            return get_namespace(
                "torch",
                device=str(x.device),
                dtype="float32" if single else "float64",
            )
    for x in arrays:
        dtype = getattr(x, "dtype", None)
        if dtype is None:
            continue
        if dtype == np.float32 or dtype == np.complex64:
            return get_namespace("numpy", dtype="float32")
        if dtype == np.float64 or dtype == np.complex128:
            return get_namespace("numpy", dtype="float64")
    return get_namespace("numpy")


def to_numpy(x) -> np.ndarray:
    """Materialize any namespace's array as a NumPy array (host side).

    The identity for NumPy inputs (no copy); torch tensors are detached and
    moved to the host.  Scalars and nested lists pass through ``asarray``.

    This is the device-to-host compute boundary, so the active telemetry's
    ``xp.to_host.*`` counters account every call here (pure accounting --
    the returned array is byte-identical either way).
    """
    result = x.detach().cpu().numpy() if _is_torch(x) else np.asarray(x)
    telemetry = _obs_active()
    telemetry.count("xp.to_host.calls")
    telemetry.count("xp.to_host.bytes", result.nbytes)
    return result


# ----------------------------------------------------------------------
# Active-namespace context
# ----------------------------------------------------------------------
_ACTIVE: contextvars.ContextVar[ArrayNamespace | None] = contextvars.ContextVar(
    "repro_xp_active", default=None
)


def active() -> ArrayNamespace:
    """The namespace the current context computes on.

    Defaults to NumPy/CPU/float64 -- the bit-exact reference configuration
    -- unless a :func:`use` block (installed by
    ``Runner(backend="array_api")`` around ``build_batch`` calls) says
    otherwise.
    """
    namespace = _ACTIVE.get()
    return namespace if namespace is not None else get_namespace()


@contextlib.contextmanager
def use(namespace: ArrayNamespace) -> Iterator[ArrayNamespace]:
    """Install ``namespace`` as the active one for the enclosed block."""
    if not isinstance(namespace, ArrayNamespace):
        raise TypeError(
            "use() expects an ArrayNamespace (from get_namespace); "
            f"got {type(namespace).__name__}"
        )
    token = _ACTIVE.set(namespace)
    try:
        yield namespace
    finally:
        _ACTIVE.reset(token)


# ----------------------------------------------------------------------
# RNG bridge
# ----------------------------------------------------------------------
class RngBridge:
    """Draws from a NumPy generator, hands back namespace arrays.

    The explicit form of the backend RNG contract: randomness always comes
    from the existing NumPy seed tree (so seed derivation, stream order,
    and bit-level draw values are untouched by the namespace choice) and is
    *transferred* to the compute namespace afterwards.  ``ChannelBatch``
    applies the same rule implicitly by assembling its stochastic stacks in
    NumPy and transferring snapshots at the compute boundary.
    """

    def __init__(self, rng: np.random.Generator, namespace: ArrayNamespace):
        self.rng = rng
        self.xp = namespace

    @staticmethod
    def _count_transfer(array: np.ndarray) -> None:
        telemetry = _obs_active()
        telemetry.count("xp.to_device.calls")
        telemetry.count("xp.to_device.bytes", array.nbytes)

    def standard_normal(self, shape):
        """A float draw, transferred to the namespace's float dtype."""
        draw = self.rng.standard_normal(shape)
        self._count_transfer(np.asarray(draw))
        return self.xp.asarray(draw, dtype=self.xp.float_dtype)

    def standard_complex(self, shape):
        """A unit-variance circular complex draw (real/imag pairs drawn in
        NumPy order), transferred to the namespace's complex dtype."""
        draw = (
            self.rng.standard_normal(shape) + 1j * self.rng.standard_normal(shape)
        ) / np.sqrt(2.0)
        self._count_transfer(np.asarray(draw))
        return self.xp.asarray(draw, dtype=self.xp.complex_dtype)

    def transfer(self, array, kind: str = "float"):
        """Move an already-drawn NumPy array onto the namespace.

        ``kind`` selects the target dtype family: ``"float"``, ``"complex"``,
        or ``"exact"`` (keep integer/bool dtypes untouched).
        """
        self._count_transfer(np.asarray(array))
        if kind == "float":
            return self.xp.asarray(array, dtype=self.xp.float_dtype)
        if kind == "complex":
            return self.xp.asarray(array, dtype=self.xp.complex_dtype)
        if kind == "exact":
            return self.xp.asarray(array)
        raise ValueError("kind must be 'float', 'complex', or 'exact'")
