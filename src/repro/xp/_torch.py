"""Torch adapter for the :mod:`repro.xp` namespace surface.

Maps the NumPy-flavored call surface the numerical core uses onto torch
tensors (CPU or CUDA).  Imported lazily by :func:`repro.xp.get_namespace`
only when the caller asks for the torch namespace, so the package never
requires torch to be installed.

The adapter is deliberately small: it implements exactly the operations the
refactored hot paths call, translating ``axis`` to ``dim`` and NumPy dtypes
to torch dtypes.  Anything outside that surface raises ``AttributeError``
immediately, which is the desired failure mode -- new namespace-generic
code must extend the adapter (and its tests) explicitly.
"""

from __future__ import annotations

import contextlib
import math

import numpy as np
import torch

from . import ArrayNamespace


def _torch_dtype(namespace: "TorchNamespace", dtype):
    """Translate a NumPy/python dtype spec to a torch dtype."""
    if dtype is None or isinstance(dtype, torch.dtype):
        return dtype
    key = np.dtype(dtype)
    mapping = {
        np.dtype(np.float32): torch.float32,
        np.dtype(np.float64): torch.float64,
        np.dtype(np.complex64): torch.complex64,
        np.dtype(np.complex128): torch.complex128,
        np.dtype(np.bool_): torch.bool,
        np.dtype(np.int8): torch.int8,
        np.dtype(np.int16): torch.int16,
        np.dtype(np.int32): torch.int32,
        np.dtype(np.int64): torch.int64,
        np.dtype(np.intp): torch.int64,
    }
    try:
        return mapping[key]
    except KeyError:
        raise TypeError(f"no torch equivalent for dtype {dtype!r}") from None


class _TorchLinalg:
    """``xp.linalg`` surface: svd/pinv/norm with NumPy keyword spellings."""

    #: Raised by the batched ZFBF rank check regardless of namespace.
    LinAlgError = np.linalg.LinAlgError

    def svd(self, a, full_matrices: bool = True, compute_uv: bool = True):
        if not compute_uv:
            return torch.linalg.svdvals(a)
        return torch.linalg.svd(a, full_matrices=full_matrices)

    def svdvals(self, a):
        return torch.linalg.svdvals(a)

    def pinv(self, a, rcond: float = 1e-15):
        # NumPy's rcond is relative to the largest singular value, which is
        # exactly torch.linalg.pinv's rtol semantics.
        return torch.linalg.pinv(a, rtol=rcond)

    def norm(self, a, ord=None, axis=None, keepdims: bool = False):
        return torch.linalg.norm(a, ord=ord, dim=axis, keepdim=keepdims)


class TorchNamespace(ArrayNamespace):
    """Torch implementation of the :mod:`repro.xp` op surface."""

    name = "torch"

    inf = math.inf
    nan = math.nan
    pi = math.pi
    newaxis = None

    def __init__(self, device: str = "cpu", dtype: str = "float64"):
        super().__init__(device, dtype)
        self._device = torch.device(device)
        self.float_dtype = torch.float32 if dtype == "float32" else torch.float64
        self.complex_dtype = (
            torch.complex64 if dtype == "float32" else torch.complex128
        )
        self.int_dtype = torch.int64
        self.bool_dtype = torch.bool
        self.linalg = _TorchLinalg()

    # -- conversion ----------------------------------------------------
    def asarray(self, x, dtype=None):
        return torch.as_tensor(
            x, dtype=_torch_dtype(self, dtype), device=self._device
        )

    def to_numpy(self, x) -> np.ndarray:
        if isinstance(x, torch.Tensor):
            return x.detach().cpu().numpy()
        return np.asarray(x)

    def copy(self, x):
        return self.asarray(x).clone()

    # -- creation ------------------------------------------------------
    def _dtype_or_float(self, dtype):
        mapped = _torch_dtype(self, dtype)
        return self.float_dtype if mapped is None else mapped

    def zeros(self, shape, dtype=None):
        return torch.zeros(shape, dtype=self._dtype_or_float(dtype), device=self._device)

    def ones(self, shape, dtype=None):
        return torch.ones(shape, dtype=self._dtype_or_float(dtype), device=self._device)

    def full(self, shape, fill_value, dtype=None):
        return torch.full(
            tuple(shape) if not isinstance(shape, int) else (shape,),
            fill_value,
            dtype=_torch_dtype(self, dtype),
            device=self._device,
        )

    def zeros_like(self, x, dtype=None):
        return torch.zeros_like(self.asarray(x), dtype=_torch_dtype(self, dtype))

    def ones_like(self, x, dtype=None):
        return torch.ones_like(self.asarray(x), dtype=_torch_dtype(self, dtype))

    def arange(self, *args, dtype=None):
        return torch.arange(*args, dtype=_torch_dtype(self, dtype), device=self._device)

    def eye(self, n, dtype=None):
        return torch.eye(n, dtype=self._dtype_or_float(dtype), device=self._device)

    # -- elementwise ---------------------------------------------------
    def _pair(self, a, b):
        """Promote python scalars so binary torch ops accept the pair."""
        a_t = isinstance(a, torch.Tensor)
        b_t = isinstance(b, torch.Tensor)
        if a_t and not b_t:
            b = torch.as_tensor(b, dtype=a.dtype, device=a.device)
        elif b_t and not a_t:
            a = torch.as_tensor(a, dtype=b.dtype, device=b.device)
        elif not a_t and not b_t:
            a = self.asarray(a)
            b = torch.as_tensor(b, dtype=a.dtype, device=a.device)
        return a, b

    def where(self, cond, a, b):
        a, b = self._pair(a, b)
        return torch.where(cond, a, b)

    def maximum(self, a, b):
        return torch.maximum(*self._pair(a, b))

    def minimum(self, a, b):
        return torch.minimum(*self._pair(a, b))

    def clip(self, x, a_min, a_max):
        # torch.clamp wants min/max to agree on scalar-vs-tensor; promote
        # python scalars when the other bound is a tensor.
        if isinstance(a_min, torch.Tensor) != isinstance(a_max, torch.Tensor):
            if a_min is not None and not isinstance(a_min, torch.Tensor):
                a_min = torch.as_tensor(a_min, dtype=x.dtype, device=x.device)
            if a_max is not None and not isinstance(a_max, torch.Tensor):
                a_max = torch.as_tensor(a_max, dtype=x.dtype, device=x.device)
        return torch.clamp(x, min=a_min, max=a_max)

    def sqrt(self, x):
        return torch.sqrt(self.asarray(x))

    def log2(self, x):
        return torch.log2(self.asarray(x))

    def exp(self, x):
        return torch.exp(self.asarray(x))

    def abs(self, x):
        return torch.abs(x)

    def conj(self, x):
        return torch.conj(x)

    def sign(self, x):
        return torch.sign(x)

    def isinf(self, x):
        return torch.isinf(x)

    def isfinite(self, x):
        return torch.isfinite(x)

    def isnan(self, x):
        return torch.isnan(x)

    # -- reductions ----------------------------------------------------
    def sum(self, x, axis=None):
        return torch.sum(x) if axis is None else torch.sum(x, dim=axis)

    def mean(self, x, axis=None):
        return torch.mean(x) if axis is None else torch.mean(x, dim=axis)

    def max(self, x, axis=None):
        return torch.amax(x) if axis is None else torch.amax(x, dim=axis)

    def min(self, x, axis=None):
        return torch.amin(x) if axis is None else torch.amin(x, dim=axis)

    def any(self, x, axis=None):
        return torch.any(x) if axis is None else torch.any(x, dim=axis)

    def all(self, x, axis=None):
        return torch.all(x) if axis is None else torch.all(x, dim=axis)

    def argmax(self, x, axis=None):
        return torch.argmax(x) if axis is None else torch.argmax(x, dim=axis)

    def argsort(self, x, axis=-1):
        return torch.argsort(x, dim=axis)

    # -- shaping and indexing ------------------------------------------
    def stack(self, arrays, axis=0):
        return torch.stack([self.asarray(a) for a in arrays], dim=axis)

    def concatenate(self, arrays, axis=0):
        return torch.cat([self.asarray(a) for a in arrays], dim=axis)

    def swapaxes(self, x, axis1, axis2):
        return torch.swapaxes(x, axis1, axis2)

    def broadcast_to(self, x, shape):
        return torch.broadcast_to(self.asarray(x), shape)

    def diagonal(self, x, axis1=0, axis2=1):
        return torch.diagonal(x, 0, dim1=axis1, dim2=axis2)

    def take_along_axis(self, x, indices, axis):
        # numpy broadcasts the non-axis dims of ``indices``; expand them
        # explicitly so older take_along_dim versions accept the call.
        shape = list(x.shape)
        shape[axis] = indices.shape[axis]
        return torch.take_along_dim(x, indices.expand(shape), dim=axis)

    def put_along_axis(self, x, indices, values, axis):
        # In-place like numpy.put_along_axis; values must broadcast to the
        # index shape (they do at every call site).
        x.scatter_(axis, indices, torch.broadcast_to(values, indices.shape))

    def searchsorted(self, sorted_sequence, values, side: str = "left"):
        a = self.asarray(sorted_sequence)
        v = self.asarray(values)
        common = torch.promote_types(a.dtype, v.dtype)
        return torch.searchsorted(
            a.to(common), v.to(common), right=(side == "right")
        )

    # -- misc ----------------------------------------------------------
    @contextlib.contextmanager
    def errstate(self, **kwargs):
        # Torch has no fp-error state to toggle; the NumPy call sites only
        # silence warnings, so a no-op context keeps one code path.
        yield
