"""Client<->AP association & multi-AP coordination layer.

See :mod:`repro.assoc.policies` for the policy registry and
:mod:`repro.assoc.state` for the state object the engines consume.
"""

from .policies import (
    AssociationPolicy,
    HysteresisHandoffPolicy,
    NearestAnchorPolicy,
    StrongestRssiPolicy,
)
from .state import (
    AssociationState,
    BatchAssociationState,
    CoordinationMode,
    HandoffEvent,
    association_names,
    build_association_state,
    build_batch_association_state,
    resolve_association,
    resolve_coordination,
)

__all__ = [
    "AssociationPolicy",
    "AssociationState",
    "BatchAssociationState",
    "CoordinationMode",
    "HandoffEvent",
    "HysteresisHandoffPolicy",
    "NearestAnchorPolicy",
    "StrongestRssiPolicy",
    "association_names",
    "build_association_state",
    "build_batch_association_state",
    "resolve_association",
    "resolve_coordination",
]
