"""Association state: the single owner of membership, tags, and handoffs.

:class:`AssociationState` is what the engines actually hold.  It wraps one
:class:`~repro.assoc.policies.AssociationPolicy` and owns everything that
used to be computed inline in three places (``sim/rounds.py``,
``sim/batch.py``, ``sim/network.py``):

* the live **client->AP map** (re-evaluated by the policy at every
  sounding),
* the per-AP **anchor-antenna tag tables** (paper §3.2.4), kept on the
  *global* client axis so dynamic membership never breaks the engines'
  rectangular bookkeeping,
* the **handoff event log** and the outage accounting of clients caught
  mid-handoff (handed off at one sounding, not yet served by the next),
* the **coordination hook**: under ``coordinated_scheduling`` neighboring
  APs exchange their per-round picks, and an AP planning after others
  excludes clients that can overhear an already-committed transmission
  (cross-cell DRR never double-schedules them).

Bit-identity contract: with the default ``nearest_anchor`` policy the
membership equals ``deployment.clients_of(ap)`` forever and the tag masks
are the historical ``TagTable.from_rssi`` rows scattered to global indices
-- every engine consuming this state is bit-identical (``array_equal``) to
v1.6.0.  :class:`BatchAssociationState` holds one scalar state per batch
item, so the vectorized engine's association decisions are the scalar
code's decisions by construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..api.registry import ASSOCIATION, COORDINATION
from ..core.tagging import TagTable
from ..obs import active as _obs_active


class CoordinationMode(str, enum.Enum):
    """How much neighboring APs tell each other while scheduling."""

    #: Every AP schedules alone (the paper's -- and v1.6.0's -- behavior).
    INDEPENDENT = "independent"
    #: APs planning later in a round receive the already-committed picks
    #: and skip clients that can overhear those transmissions.
    COORDINATED_SCHEDULING = "coordinated_scheduling"


COORDINATION.add("independent", CoordinationMode.INDEPENDENT)
COORDINATION.add("coordinated_scheduling", CoordinationMode.COORDINATED_SCHEDULING)


def association_names() -> list[str]:
    """Registered association-policy names."""
    from . import policies  # noqa: F401  (imports register the built-ins)

    return ASSOCIATION.names()


def resolve_association(name: str, **kwargs):
    """Instantiate the registered association policy ``name``."""
    from . import policies  # noqa: F401  (imports register the built-ins)

    return ASSOCIATION.get(name)(**kwargs)


def resolve_coordination(value) -> CoordinationMode:
    """Resolve a coordination mode given as a name, a mode, or ``None``
    (the independent default).  Unknown names list what is registered."""
    if value is None:
        return CoordinationMode.INDEPENDENT
    if isinstance(value, CoordinationMode):
        return value
    return COORDINATION.get(str(value))


@dataclass(frozen=True)
class HandoffEvent:
    """One client switching APs at one sounding."""

    sounding_index: int
    client: int
    from_ap: int
    to_ap: int


class AssociationState:
    """Live association state of one run (one engine instance).

    Parameters
    ----------
    policy:
        An :class:`~repro.assoc.policies.AssociationPolicy` instance (not
        shared -- policies may keep per-client history).
    deployment:
        The topology; its ``client_ap`` is the initial assignment.
    mac:
        MAC constants (``tag_width`` sizes the tags, ``nav_decode_dbm``
        bounds what a client can overhear for coordinated scheduling).
    coordination:
        A :class:`CoordinationMode`, its name, or ``None`` (independent).
    """

    def __init__(self, policy, deployment, mac, coordination=None):
        self.policy = policy
        self.deployment = deployment
        self.mac = mac
        self.coordination = resolve_coordination(coordination)
        self.n_clients = deployment.n_clients
        self.n_aps = deployment.n_aps
        self.client_ap = np.asarray(deployment.client_ap, dtype=int).copy()
        self._antennas_of = [
            deployment.antennas_of(ap) for ap in range(self.n_aps)
        ]
        #: Completed soundings (policy re-evaluations + tag rebuilds).
        self.sounding_count = 0
        #: Tag-table rebuild count; always equals ``sounding_count`` -- the
        #: roaming contract that tags re-derive exactly once per sounding.
        self.tag_builds = 0
        #: Every handoff of the run, in occurrence order.
        self.handoff_events: list[HandoffEvent] = []
        # Clients handed off at the last sounding and not served since; an
        # entry still pending when the *next* sounding arrives is an outage
        # (the client crossed a cell and got nothing from either side).
        self._pending: dict[int, int] = {}
        self._completed_outages = 0
        self._rssi_dbm: np.ndarray | None = None
        self._tag_masks: dict[int, np.ndarray] = {}

    # -- membership ----------------------------------------------------
    def members(self, ap: int) -> np.ndarray:
        """Global client ids currently associated with ``ap`` (sorted)."""
        return np.flatnonzero(self.client_ap == ap)

    def member_mask(self, ap: int) -> np.ndarray:
        """Boolean membership over all clients, ``(n_clients,)``."""
        return self.client_ap == ap

    def tag_mask(self, ap: int) -> np.ndarray:
        """Anchor-antenna tags of ``ap``'s members on the global client
        axis, ``(n_clients, n_own_antennas)`` bool (non-members all-False)."""
        return self._tag_masks[ap]

    def tagged_clients(self, ap: int, local_antenna: int) -> np.ndarray:
        """Global ids of clients tagged to ``ap``'s ``local_antenna``-th
        antenna, sorted ascending (the scalar selection order)."""
        return np.flatnonzero(self._tag_masks[ap][:, local_antenna])

    # -- sounding ------------------------------------------------------
    def resound(self, rssi_dbm: np.ndarray) -> list[HandoffEvent]:
        """One sounding: settle outage accounting, let the policy
        re-evaluate the map, log handoffs, rebuild every AP's tags.

        ``rssi_dbm`` is the current large-scale RSSI,
        ``(n_clients, n_antennas)`` (``ChannelModel.client_rx_power_dbm``).
        Returns the handoffs this sounding produced.
        """
        rssi = np.asarray(rssi_dbm, dtype=float)
        if rssi.shape[0] != self.n_clients:
            raise ValueError(
                f"rssi_dbm must have one row per client ({self.n_clients}), "
                f"got shape {rssi.shape}"
            )
        # A full inter-sounding window passed: anyone still pending was
        # never served after crossing -- count the outage.
        self._completed_outages += len(self._pending)
        _obs_active().count("assoc.outages", len(self._pending))
        self._pending.clear()

        per_ap = np.stack(
            [rssi[:, ants].max(axis=1) for ants in self._antennas_of], axis=1
        )
        new_map = np.asarray(
            self.policy.reevaluate(
                self.client_ap.copy(), per_ap, self.sounding_count
            ),
            dtype=int,
        )
        if new_map.shape != self.client_ap.shape:
            raise ValueError(
                "association policy returned a map of shape "
                f"{new_map.shape}; expected {self.client_ap.shape}"
            )
        if new_map.size and (new_map.min() < 0 or new_map.max() >= self.n_aps):
            raise ValueError("association policy returned an out-of-range AP")
        moved = np.flatnonzero(new_map != self.client_ap)
        events = [
            HandoffEvent(
                sounding_index=self.sounding_count,
                client=int(c),
                from_ap=int(self.client_ap[c]),
                to_ap=int(new_map[c]),
            )
            for c in moved
        ]
        for event in events:
            self._pending[event.client] = event.sounding_index
        _obs_active().count("assoc.handoffs", len(events))
        self.handoff_events.extend(events)
        self.client_ap = new_map
        self._rssi_dbm = rssi
        self._rebuild_tag_masks(rssi)
        self.sounding_count += 1
        return events

    def _rebuild_tag_masks(self, rssi: np.ndarray) -> None:
        for ap in range(self.n_aps):
            antennas = self._antennas_of[ap]
            members = self.members(ap)
            mask = np.zeros((self.n_clients, len(antennas)), dtype=bool)
            if members.size:
                width = min(self.mac.tag_width, len(antennas))
                table = TagTable.from_rssi(rssi[np.ix_(members, antennas)], width)
                mask[members] = table.tags
            self._tag_masks[ap] = mask
        self.tag_builds += 1

    # -- service / handoff accounting ----------------------------------
    def note_served(self, clients) -> None:
        """Record that ``clients`` (global ids) received service; clears
        their pending-handoff outage clocks."""
        if not self._pending:
            return
        for c in np.asarray(clients, dtype=int).ravel():
            self._pending.pop(int(c), None)

    @property
    def handoff_count(self) -> int:
        """Total handoffs so far."""
        return len(self.handoff_events)

    @property
    def outage_count(self) -> int:
        """Handoffs whose client got no service before the next sounding
        (clients still pending at the end of a run count too)."""
        return self._completed_outages + len(self._pending)

    # -- coordination --------------------------------------------------
    def overheard_mask(self, active_antennas) -> np.ndarray:
        """Clients that can decode at least one of ``active_antennas``
        (global ids) at the last-sounded RSSI, ``(n_clients,)`` bool.

        This is the information neighboring APs exchange under
        ``coordinated_scheduling``: a client overhearing a committed
        transmission is already covered this round, so a later-planning AP
        skips it rather than double-scheduling it into interference.
        """
        antennas = np.asarray(list(active_antennas), dtype=int)
        if antennas.size == 0 or self._rssi_dbm is None:
            return np.zeros(self.n_clients, dtype=bool)
        return (
            self._rssi_dbm[:, antennas].max(axis=1) >= self.mac.nav_decode_dbm
        )


class BatchAssociationState:
    """One :class:`AssociationState` per batch item, plus stacked views.

    Keeping real scalar states per item (rather than re-deriving the policy
    math in stacked form) makes the loop/vectorized equivalence structural:
    the batch engine consumes literally the scalar decisions, stacked.
    """

    def __init__(self, items: list[AssociationState]):
        if not items:
            raise ValueError("need at least one association state")
        self.items = list(items)
        first = self.items[0]
        if any(
            st.coordination is not first.coordination for st in self.items[1:]
        ):
            raise ValueError("batched items must share one coordination mode")
        self.n_items = len(self.items)
        self.n_clients = first.n_clients
        self.n_aps = first.n_aps
        self.coordination = first.coordination

    def resound(self, rssi_stack: np.ndarray) -> list[list[HandoffEvent]]:
        """Per-item sounding; ``rssi_stack`` is the batched RSSI
        ``(n_items, n_clients, n_antennas)``."""
        return [
            state.resound(rssi_stack[b]) for b, state in enumerate(self.items)
        ]

    def members_mask(self, ap: int) -> np.ndarray:
        """Stacked membership, ``(n_items, n_clients)`` bool."""
        return np.stack([state.member_mask(ap) for state in self.items])

    def tag_stack(self, ap: int) -> np.ndarray:
        """Stacked global-axis tags, ``(n_items, n_clients, n_own)`` bool."""
        return np.stack([state.tag_mask(ap) for state in self.items])

    def note_served(self, item: int, clients) -> None:
        self.items[item].note_served(clients)

    def overheard_masks(self, active_mask: np.ndarray) -> np.ndarray:
        """Per-item overheard clients, ``(n_items, n_clients)`` bool, from
        a stacked active-antenna mask ``(n_items, n_antennas)``."""
        active_mask = np.asarray(active_mask, dtype=bool)
        return np.stack(
            [
                state.overheard_mask(np.flatnonzero(active_mask[b]))
                for b, state in enumerate(self.items)
            ]
        )

    def handoff_counts(self) -> np.ndarray:
        return np.asarray([state.handoff_count for state in self.items])

    def outage_counts(self) -> np.ndarray:
        return np.asarray([state.outage_count for state in self.items])


def build_association_state(
    association, association_kwargs, deployment, mac, coordination=None
) -> AssociationState:
    """Resolve an engine's ``association=`` argument into live state.

    ``None`` yields the ``nearest_anchor`` default (bit-identical to the
    historical inline tag/anchor logic); a string resolves through the
    association registry; a ready :class:`~repro.assoc.policies.AssociationPolicy`
    instance passes through (kwargs must then be empty).
    """
    kwargs = dict(association_kwargs or {})
    if association is None:
        association = "nearest_anchor"
    if isinstance(association, str):
        policy = resolve_association(association, **kwargs)
    else:
        if kwargs:
            raise ValueError(
                "association_kwargs only apply when the policy is given by "
                "name; pass a configured policy instance instead"
            )
        policy = association
    return AssociationState(policy, deployment, mac, coordination)


def build_batch_association_state(
    association, association_kwargs, deployments, mac, coordination=None
) -> BatchAssociationState:
    """One fresh policy + state per batch item (policies hold per-client
    history, so sharing an instance across items would corrupt it).
    Passing a policy *instance* is therefore rejected here -- give a name."""
    if association is not None and not isinstance(association, str):
        raise ValueError(
            "the batched evaluator needs a registered association name (one "
            "fresh policy is built per item); got a policy instance"
        )
    return BatchAssociationState(
        [
            build_association_state(
                association, association_kwargs, deployment, mac, coordination
            )
            for deployment in deployments
        ]
    )
