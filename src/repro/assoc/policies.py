"""Client<->AP association policies.

The paper's evaluation (and every release through v1.6.0) fixes each client
to the AP whose service annulus it was drawn in -- association is a side
effect of topology generation, never revisited.  That is exactly one policy
among many: real enterprise WLANs re-associate on RSSI with hysteresis, and
the coordinated multi-AP systems in PAPERS.md (the Network MIMO tutorial,
the 6D movable-antenna coordination paper) assume the association layer is
explicit and swappable.

A policy is a small stateful object with one hook: ``reevaluate`` maps the
current client->AP assignment plus the freshly sounded per-AP RSSI to a new
assignment.  :class:`repro.assoc.AssociationState` calls it at every
sounding, diffs the result into handoff events, and rebuilds the per-AP
anchor-antenna tags -- the engines never see the policy itself.

Built-in policies (registered with :func:`repro.api.register_association`):

* ``nearest_anchor`` -- the default: keep the deployment's home-AP map
  forever.  Bit-identical to v1.6.0 on every engine.
* ``strongest_rssi`` -- greedy: at each sounding, associate with the AP
  whose best antenna is loudest.  No memory, so a client on a cell border
  can ping-pong with the shadowing.
* ``hysteresis_handoff`` -- production-style roaming: per-AP RSSI is
  EMA-smoothed across soundings, and a handoff happens only when another
  AP beats the serving AP by ``hysteresis_db`` *and* the client has dwelt
  ``dwell_soundings`` soundings since its last handoff.
"""

from __future__ import annotations

import numpy as np

from ..api.registry import register_association


class AssociationPolicy:
    """One client->AP mapping rule, re-evaluated at every sounding.

    Instances are per-run (never shared between runs or batch items), so
    implementations may keep per-client history across calls.
    """

    def reevaluate(
        self,
        current_ap: np.ndarray,
        per_ap_rssi_dbm: np.ndarray,
        sounding_index: int,
    ) -> np.ndarray:
        """The new client->AP map after one sounding.

        Parameters
        ----------
        current_ap:
            Current assignment, ``(n_clients,)`` int (a private copy; safe
            to mutate or return as-is).
        per_ap_rssi_dbm:
            ``(n_clients, n_aps)`` best-antenna RSSI per client per AP,
            measured at this sounding.
        sounding_index:
            0-based index of this sounding (construction time is 0).
        """
        raise NotImplementedError


@register_association("nearest_anchor")
class NearestAnchorPolicy(AssociationPolicy):
    """Keep the deployment's home-AP assignment forever (the v1.6.0
    behavior, and the universal default: engines built without an
    ``association`` argument run this policy bit-identically)."""

    def reevaluate(self, current_ap, per_ap_rssi_dbm, sounding_index):
        return current_ap


@register_association("strongest_rssi")
class StrongestRssiPolicy(AssociationPolicy):
    """Associate with the loudest AP at every sounding, no hysteresis.

    Ties break toward the lowest AP index (``argmax`` first-match), so the
    map is deterministic for a fixed channel draw.
    """

    def reevaluate(self, current_ap, per_ap_rssi_dbm, sounding_index):
        return np.argmax(np.asarray(per_ap_rssi_dbm, dtype=float), axis=1)


@register_association("hysteresis_handoff")
class HysteresisHandoffPolicy(AssociationPolicy):
    """RSSI-history roaming with a handoff margin and a dwell time.

    Parameters
    ----------
    hysteresis_db:
        A candidate AP must beat the serving AP's smoothed RSSI by at least
        this margin to trigger a handoff (>= 0).
    dwell_soundings:
        Minimum soundings between consecutive handoffs of one client
        (>= 1); also holds every client at its home AP for the first
        ``dwell_soundings`` soundings.
    smoothing:
        EMA weight of the *new* measurement in ``(0, 1]``; ``1.0`` disables
        the history and filters on the margin alone.
    """

    def __init__(
        self,
        hysteresis_db: float = 4.0,
        dwell_soundings: int = 2,
        smoothing: float = 0.5,
    ):
        if hysteresis_db < 0:
            raise ValueError("hysteresis_db must be >= 0")
        if dwell_soundings < 1:
            raise ValueError("dwell_soundings must be >= 1")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.hysteresis_db = float(hysteresis_db)
        self.dwell_soundings = int(dwell_soundings)
        self.smoothing = float(smoothing)
        self._smoothed: np.ndarray | None = None
        self._last_change: np.ndarray | None = None

    def reevaluate(self, current_ap, per_ap_rssi_dbm, sounding_index):
        current_ap = np.asarray(current_ap, dtype=int)
        rssi = np.asarray(per_ap_rssi_dbm, dtype=float)
        if self._smoothed is None:
            # Association "changed" at sounding 0 (initial attach), so the
            # dwell clock starts there for every client.
            self._smoothed = rssi.copy()
            self._last_change = np.zeros(len(current_ap), dtype=int)
        else:
            self._smoothed = (
                self.smoothing * rssi + (1.0 - self.smoothing) * self._smoothed
            )
        clients = np.arange(len(current_ap))
        best = np.argmax(self._smoothed, axis=1)
        margin = self._smoothed[clients, best] - self._smoothed[clients, current_ap]
        dwelt = sounding_index - self._last_change >= self.dwell_soundings
        move = (best != current_ap) & dwelt & (margin >= self.hysteresis_db)
        self._last_change[move] = sounding_index
        return np.where(move, best, current_ap)
