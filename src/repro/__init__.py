"""MIDAS: Multiple-Input Distributed Antenna Systems for 802.11ac.

A full reproduction of Xiong et al., "MIDAS: Empowering 802.11ac Networks
with Multiple-Input Distributed Antenna Systems" (ACM CoNEXT 2014), as a
pure-Python library: the power-balanced MU-MIMO precoder, the DAS-aware MAC
(per-antenna carrier sensing, opportunistic antenna selection, virtual
packet tagging, deficit-round-robin client selection), and the simulation
substrates (indoor channel model, topology generators, discrete-event
802.11 MAC) needed to regenerate every figure of the paper's evaluation.

Quickstart
----------
>>> from repro import (AntennaMode, ChannelModel, office_b,
...                    power_balanced_precoder, single_ap_scenario)
>>> scenario = single_ap_scenario(office_b(), AntennaMode.DAS, seed=7)
>>> model = ChannelModel(scenario.deployment, scenario.radio, seed=7)
>>> h = model.channel_matrix()
>>> result = power_balanced_precoder(
...     h, scenario.radio.per_antenna_power_mw, scenario.radio.noise_mw)
>>> result.converged
True
"""

from .analysis import EmpiricalCdf, median_gain
from .channel import ChannelModel, ChannelTrace, coverage_range_m, cs_range_m, record_trace
from .config import MacConfig, MidasConfig, RadioConfig, SimConfig
from .core import (
    DeficitRoundRobin,
    PrecodingResult,
    TagTable,
    naive_scaled_precoder,
    optimal_power_allocation,
    power_balanced_precoder,
    reverse_waterfill,
    select_clients_for_antennas,
    zfbf_directions,
    zfbf_equal_power,
)
from .phy import stream_sinrs, sum_capacity_bps_hz
from .topology import (
    AntennaMode,
    Deployment,
    Scenario,
    eight_ap_scenario,
    hidden_terminal_scenario,
    office_a,
    office_b,
    single_ap_scenario,
    three_ap_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "EmpiricalCdf",
    "median_gain",
    "ChannelModel",
    "ChannelTrace",
    "coverage_range_m",
    "cs_range_m",
    "record_trace",
    "MacConfig",
    "MidasConfig",
    "RadioConfig",
    "SimConfig",
    "DeficitRoundRobin",
    "PrecodingResult",
    "TagTable",
    "naive_scaled_precoder",
    "optimal_power_allocation",
    "power_balanced_precoder",
    "reverse_waterfill",
    "select_clients_for_antennas",
    "zfbf_directions",
    "zfbf_equal_power",
    "stream_sinrs",
    "sum_capacity_bps_hz",
    "AntennaMode",
    "Deployment",
    "Scenario",
    "eight_ap_scenario",
    "hidden_terminal_scenario",
    "office_a",
    "office_b",
    "single_ap_scenario",
    "three_ap_scenario",
    "__version__",
]
