"""MIDAS: Multiple-Input Distributed Antenna Systems for 802.11ac.

A full reproduction of Xiong et al., "MIDAS: Empowering 802.11ac Networks
with Multiple-Input Distributed Antenna Systems" (ACM CoNEXT 2014), as a
pure-Python library: the power-balanced MU-MIMO precoder, the DAS-aware MAC
(per-antenna carrier sensing, opportunistic antenna selection, virtual
packet tagging, deficit-round-robin client selection), and the simulation
substrates (indoor channel model, topology generators, discrete-event
802.11 MAC) needed to regenerate every figure of the paper's evaluation.

Quickstart
----------
Every workload is a declarative :class:`RunSpec` executed by a
:class:`Runner` -- scenarios, precoders, and experiments are looked up by
name in pluggable registries:

>>> from repro import RunSpec, Runner
>>> result = Runner().run(RunSpec("fig03", n_topologies=2, seed=1))
>>> sorted(result.series)
['cas_drop', 'das_drop']
>>> result.spec.experiment
'fig03'

Scale up with the vectorized backend (whole topology batches as stacked
array math, bit-identical to the loop path) or worker processes, and cache
results on disk keyed by a hash of the fully resolved parameters::

    runner = Runner(backend="vectorized", cache_dir="results/cache")
    result = runner.run(RunSpec("fig09", n_topologies=60, precoder="wmmse"))
    result.save("results/fig09.npz")          # or .json; round-trips losslessly

New algorithms plug in by registration, no runner changes needed::

    from repro import register_precoder

    @register_precoder("my_precoder")
    def my_precoder(h, per_antenna_power_mw, noise_mw): ...

The low-level library surface (channel models, precoders, topology
factories) remains importable directly for custom studies; see
``examples/quickstart.py``.
"""

# Defined before the subpackage imports below: repro.api.runner folds the
# version into its cache keys at import time.
__version__ = "1.9.0"

from .analysis import (
    EmpiricalCdf,
    QuantileSketch,
    RunningStats,
    StreamingSummary,
    median_gain,
)
from .api import (
    ExperimentDef,
    ExperimentResult,
    RunResult,
    Runner,
    RunSpec,
    UnknownNameError,
    experiment_names,
    register_association,
    register_batch_precoder,
    register_environment,
    register_experiment,
    register_mobility,
    register_precoder,
    register_scenario,
    register_traffic,
)
from .assoc import (
    AssociationPolicy,
    CoordinationMode,
    HandoffEvent,
    association_names,
    resolve_association,
    resolve_coordination,
)
from .campaign import CampaignResult, CampaignRunner, CampaignSpec
from .channel import ChannelModel, ChannelTrace, coverage_range_m, cs_range_m, record_trace
from .channel.batch import ChannelBatch
from .config import MacConfig, MidasConfig, RadioConfig, SimConfig
from .mobility import MobilityModel, mobility_names, resolve_mobility
from .core import (
    DeficitRoundRobin,
    PrecodingResult,
    TagTable,
    naive_scaled_precoder,
    optimal_power_allocation,
    power_balanced_precoder,
    reverse_waterfill,
    select_clients_for_antennas,
    zfbf_directions,
    zfbf_equal_power,
)
from .phy import stream_sinrs, sum_capacity_bps_hz
from .xp import (
    ArrayNamespace,
    BackendUnavailableError,
    RngBridge,
    array_namespace,
    get_namespace,
    namespace_names,
)
from .traffic import AmpduConfig, TrafficModel, resolve_traffic, traffic_names
from .topology import (
    AntennaMode,
    Deployment,
    Scenario,
    dense_office_scenario,
    eight_ap_scenario,
    grid_region_scenario,
    hidden_terminal_scenario,
    office_a,
    office_b,
    single_ap_scenario,
    three_ap_scenario,
)

__all__ = [
    "EmpiricalCdf",
    "QuantileSketch",
    "RunningStats",
    "StreamingSummary",
    "median_gain",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "ExperimentDef",
    "ExperimentResult",
    "RunResult",
    "Runner",
    "RunSpec",
    "UnknownNameError",
    "experiment_names",
    "register_association",
    "register_batch_precoder",
    "register_environment",
    "register_experiment",
    "register_mobility",
    "register_precoder",
    "register_scenario",
    "register_traffic",
    "AssociationPolicy",
    "CoordinationMode",
    "HandoffEvent",
    "association_names",
    "resolve_association",
    "resolve_coordination",
    "AmpduConfig",
    "TrafficModel",
    "resolve_traffic",
    "traffic_names",
    "MobilityModel",
    "mobility_names",
    "resolve_mobility",
    "ChannelBatch",
    "ChannelModel",
    "ChannelTrace",
    "coverage_range_m",
    "cs_range_m",
    "record_trace",
    "MacConfig",
    "MidasConfig",
    "RadioConfig",
    "SimConfig",
    "DeficitRoundRobin",
    "PrecodingResult",
    "TagTable",
    "naive_scaled_precoder",
    "optimal_power_allocation",
    "power_balanced_precoder",
    "reverse_waterfill",
    "select_clients_for_antennas",
    "zfbf_directions",
    "zfbf_equal_power",
    "stream_sinrs",
    "sum_capacity_bps_hz",
    "ArrayNamespace",
    "BackendUnavailableError",
    "RngBridge",
    "array_namespace",
    "get_namespace",
    "namespace_names",
    "AntennaMode",
    "Deployment",
    "Scenario",
    "dense_office_scenario",
    "eight_ap_scenario",
    "grid_region_scenario",
    "hidden_terminal_scenario",
    "office_a",
    "office_b",
    "single_ap_scenario",
    "three_ap_scenario",
    "__version__",
]
