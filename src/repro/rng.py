"""Deterministic random-number plumbing.

Every stochastic component (topology placement, shadowing, fading, backoff)
draws from its own child generator spawned from a single root seed, so that

* results are bit-reproducible given a seed, and
* adding draws to one component never perturbs another component's stream.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .obs import active as _obs_active


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent child generators."""
    if count < 0:
        raise ValueError("count must be non-negative")
    _obs_active().count("rng.generators_spawned", count)
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]


def derived_seed(root_seed: int, index: int) -> int:
    """Deterministic integer seed for component ``index`` under ``root_seed``.

    Topology ``i`` always receives the same seed regardless of how many
    topologies a sweep evaluates.
    """
    return int(np.random.SeedSequence((root_seed, index)).generate_state(1)[0])


def derived_seeds(root_seed: int, start: int, count: int) -> list[int]:
    """Batch of derived seeds for indices ``start .. start+count-1``.

    Identical values to :func:`derived_seed` at each index (and hence to a
    :func:`seed_stream` prefix), so batched sweeps reproduce serial ones
    bit-for-bit.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    _obs_active().count("rng.seeds_derived", count)
    return [derived_seed(root_seed, index) for index in range(start, start + count)]


def seed_stream(root_seed: int) -> Iterator[int]:
    """Yield an unbounded stream of derived integer seeds from ``root_seed``."""
    counter = 0
    while True:
        yield derived_seed(root_seed, counter)
        counter += 1
