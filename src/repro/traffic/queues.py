"""Per-client downlink byte queues with EDCA access categories.

The round engines and the discrete-event MAC both drain these queues: a
packet arrives with a timestamp and an :class:`~repro.mac.edca.AccessCategory`,
waits in its client's per-class FIFO, and departs when an A-MPDU burst
serves its last byte.  Service is *fluid at packet boundaries*: a burst may
drain part of a packet (the MPDU continues in the next TXOP), but a packet's
delay is only recorded once its final byte leaves, so delays are
last-byte-out minus arrival.

Both execution backends share this class unchanged -- the vectorized round
engine holds one :class:`ClientQueues` per batch item and feeds it the same
floats as the scalar engine, which is what makes the finite-load series
bit-identical across backends.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..mac.edca import AccessCategory


class Packet:
    """One queued downlink packet (an MPDU-to-be).

    A ``__slots__`` class rather than a dataclass: finite-load sweeps
    create one per arrival, millions per large run.
    """

    __slots__ = ("client", "bytes_total", "t_arrival_s", "category", "bytes_left")

    def __init__(
        self,
        client: int,
        bytes_total: float,
        t_arrival_s: float,
        category: AccessCategory = AccessCategory.BEST_EFFORT,
    ):
        if bytes_total <= 0:
            raise ValueError("packets must carry at least one byte")
        self.client = client
        self.bytes_total = bytes_total
        self.t_arrival_s = t_arrival_s
        self.category = category
        self.bytes_left = float(bytes_total)

    def __repr__(self) -> str:
        return (
            f"Packet(client={self.client}, bytes_total={self.bytes_total}, "
            f"t_arrival_s={self.t_arrival_s}, category={self.category!r}, "
            f"bytes_left={self.bytes_left})"
        )


class ClientQueues:
    """Per-client, per-access-category FIFO byte queues.

    Backlog totals are tracked incrementally as an ``(n_clients, 4)`` float
    array so eligibility masks (the round engines query one per AP per
    round) are O(clients), not O(packets).
    """

    def __init__(self, n_clients: int):
        if n_clients < 1:
            raise ValueError("need at least one client")
        self.n_clients = n_clients
        self._queues: list[dict[AccessCategory, deque[Packet]]] = [
            {ac: deque() for ac in AccessCategory} for _ in range(n_clients)
        ]
        # Integer packet counts drive eligibility (exact by construction);
        # float byte totals back the occupancy metrics only, so incremental
        # float error can never strand a queued packet.
        self._counts = np.zeros((n_clients, len(AccessCategory)), dtype=int)
        self._bytes = np.zeros((n_clients, len(AccessCategory)))

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> None:
        """Append ``packet`` to its client's class queue."""
        if not 0 <= packet.client < self.n_clients:
            raise ValueError(f"client {packet.client} out of range")
        self._queues[packet.client][packet.category].append(packet)
        self._counts[packet.client, packet.category] += 1
        self._bytes[packet.client, packet.category] += packet.bytes_left

    # ------------------------------------------------------------------
    # Backlog queries (the eligibility surface of the round engines)
    # ------------------------------------------------------------------
    def backlog_bytes(self, clients=None, category: AccessCategory | None = None):
        """Queued bytes per client, optionally restricted to one class.

        ``clients`` selects (and orders) the client axis; the result is a
        float array over the selected clients.
        """
        rows = self._bytes if clients is None else self._bytes[np.asarray(clients, dtype=int)]
        if category is None:
            return rows.sum(axis=1)
        return rows[:, category].copy()

    def _client_indices(self, clients) -> np.ndarray:
        if clients is None:
            return np.arange(self.n_clients)
        return np.asarray(clients, dtype=int)

    def _head_arrived(self, client: int, category: AccessCategory, cutoff_s: float) -> bool:
        """Whether ``client`` holds a packet of ``category`` that arrived
        before ``cutoff_s``.  FIFO queues carry nondecreasing timestamps, so
        the head packet decides in O(1)."""
        queue = self._queues[client][category]
        return bool(queue) and queue[0].t_arrival_s < cutoff_s

    def backlog_mask(
        self,
        clients=None,
        category: AccessCategory | None = None,
        arrival_cutoff_s: float | None = None,
    ) -> np.ndarray:
        """Boolean per-client backlog verdicts (the masked-eligibility array
        the batched engine feeds straight into DRR/tag selection).

        ``arrival_cutoff_s`` restricts the verdict to packets that arrived
        before it -- the event-driven MAC passes its decision time so a
        burst is only planned around packets that exist *now*, matching the
        arrival cutoff its service step applies later.
        """
        if arrival_cutoff_s is not None:
            cats = list(AccessCategory) if category is None else [category]
            return np.asarray(
                [
                    any(self._head_arrived(int(c), ac, arrival_cutoff_s) for ac in cats)
                    for c in self._client_indices(clients)
                ],
                dtype=bool,
            )
        rows = self._counts if clients is None else self._counts[np.asarray(clients, dtype=int)]
        if category is None:
            return rows.any(axis=1)
        return rows[:, category] > 0

    def primary_class(
        self, clients=None, arrival_cutoff_s: float | None = None
    ) -> AccessCategory | None:
        """Highest-priority class with backlog among ``clients`` -- the class
        that would win the AP's internal EDCA contention (802.11e), with
        lower classes filling leftover streams.  ``arrival_cutoff_s`` as in
        :meth:`backlog_mask`."""
        if arrival_cutoff_s is not None:
            indices = self._client_indices(clients)
            for ac in AccessCategory:
                if any(self._head_arrived(int(c), ac, arrival_cutoff_s) for c in indices):
                    return ac
            return None
        rows = self._counts if clients is None else self._counts[np.asarray(clients, dtype=int)]
        for ac in AccessCategory:
            if rows[:, ac].any():
                return ac
        return None

    def total_bytes(self) -> float:
        """Aggregate backlog over every client and class."""
        return float(max(0.0, self._bytes.sum()))

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------
    def serve(
        self,
        client: int,
        budget_bytes: float,
        t_depart_s: float,
        arrival_cutoff_s: float | None = None,
    ) -> tuple[float, list[tuple[float, AccessCategory]]]:
        """Drain up to ``budget_bytes`` from ``client``'s queues.

        Classes are served in EDCA priority order (VOICE first), FIFO within
        a class.  ``arrival_cutoff_s`` excludes packets that arrived at or
        after it -- a burst can only aggregate what was queued when it was
        assembled (the event-driven MAC passes its TXOP start; the round
        engine serves the whole window).  Returns the bytes actually served
        and the ``(delay_s, category)`` samples of every packet whose final
        byte departed at ``t_depart_s``.
        """
        served = 0.0
        departures: list[tuple[float, AccessCategory]] = []
        remaining = float(budget_bytes)
        if remaining <= 0:
            return 0.0, departures
        for ac in AccessCategory:
            if self._counts[client, ac] == 0:
                continue
            queue = self._queues[client][ac]
            while remaining > 0 and queue:
                head = queue[0]
                if arrival_cutoff_s is not None and head.t_arrival_s >= arrival_cutoff_s:
                    # FIFO + nondecreasing timestamps: everything behind the
                    # head arrived later still.
                    break
                take = min(remaining, head.bytes_left)
                head.bytes_left -= take
                remaining -= take
                served += take
                self._bytes[client, ac] -= take
                if head.bytes_left <= 0:
                    queue.popleft()
                    self._counts[client, ac] -= 1
                    departures.append((t_depart_s - head.t_arrival_s, ac))
            if not queue:
                # Snap the float total to the truth when the queue empties
                # so ulp-scale drift never accumulates across rounds.
                self._bytes[client, ac] = 0.0
            if remaining <= 0:
                break
        return served, departures
