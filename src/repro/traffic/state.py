"""The per-run traffic driver shared by every execution engine.

:class:`TrafficState` owns one topology's arrival stream, queues, and
latency accounting.  The scalar round engine holds one; the vectorized
engine holds one *per batch item* and feeds it the same floats in the same
order, which is the whole bit-identity argument for finite-load series:
every state transition below is plain scalar arithmetic on inputs the
batched linear algebra already reproduces exactly.

Clock convention: time is carved into fixed TXOP-sized windows
(``round_duration_s``).  ``begin_round`` draws one window of arrivals, the
engines serve streams against their post-precoding SINRs, and
``end_round`` stamps departures at the window's end and emits a
:class:`RoundTrafficMetrics`.  The discrete-event MAC instead calls
``advance_arrivals_to`` with its own clock and passes explicit departure
times (plus an arrival cutoff at the TXOP start) to ``serve_burst``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .ampdu import AmpduConfig
from .models import TrafficModel
from .queues import ClientQueues, Packet


@dataclass(frozen=True)
class RoundTrafficMetrics:
    """Queueing outcome of one evaluation round (whole network)."""

    duration_s: float
    arrived_bytes: float
    served_bytes: float
    queue_bytes: float  # backlog left after this round's service
    delays_s: np.ndarray  # departed-packet delays, seconds
    delay_categories: np.ndarray  # AccessCategory value per delay sample
    served_per_client: np.ndarray


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate queueing outcome of one run (the event-driven MAC's view)."""

    duration_s: float
    arrived_bytes: float
    served_bytes: float
    queue_bytes: float
    delays_s: np.ndarray
    delay_categories: np.ndarray
    served_per_client: np.ndarray

    @property
    def throughput_mbps(self) -> float:
        """Delivered goodput in Mb/s over the run."""
        if self.duration_s <= 0:
            return 0.0
        return self.served_bytes * 8.0 / self.duration_s / 1e6

    @property
    def mean_delay_s(self) -> float:
        """Mean packet delay; ``inf`` when nothing ever departed."""
        if self.delays_s.size == 0:
            return math.inf
        return float(np.mean(self.delays_s))


class TrafficState:
    """Arrivals + queues + latency accounting for one topology run."""

    def __init__(
        self,
        model: TrafficModel,
        n_clients: int,
        rng: np.random.Generator,
        *,
        round_duration_s: float,
        bandwidth_hz: float,
        ampdu: AmpduConfig | None = None,
    ):
        if model.is_full_buffer:
            raise ValueError(
                "full-buffer traffic needs no TrafficState; run the engine "
                "without a traffic model instead"
            )
        if round_duration_s <= 0:
            raise ValueError("round_duration_s must be positive")
        self.model = model
        self.queues = ClientQueues(n_clients)
        self.ampdu = ampdu or AmpduConfig()
        self.n_clients = n_clients
        self.round_duration_s = float(round_duration_s)
        self.bandwidth_hz = float(bandwidth_hz)
        self._rng = rng
        self._model_state = model.init_state(rng, n_clients)
        self._t_s = 0.0  # end of the last generated arrival window
        self._total_arrived = 0.0
        self._total_served = 0.0
        self._delays: list[float] = []
        self._delay_categories: list[int] = []
        self._served_per_client = np.zeros(n_clients)
        self._round_open = False
        self._reset_round()

    # ------------------------------------------------------------------
    def _reset_round(self) -> None:
        self._round_arrived = 0.0
        self._round_served = 0.0
        self._round_delays: list[float] = []
        self._round_categories: list[int] = []
        self._round_served_per_client = np.zeros(self.n_clients)

    def _generate_window(self) -> None:
        packets = self.model.arrivals(
            self._model_state, self._rng, self.n_clients, self._t_s,
            self.round_duration_s,
        )
        for packet in packets:
            self.queues.enqueue(packet)
            self._round_arrived += packet.bytes_total
            self._total_arrived += packet.bytes_total
        self._t_s += self.round_duration_s

    # ------------------------------------------------------------------
    # Round-engine protocol
    # ------------------------------------------------------------------
    def begin_round(self) -> None:
        """Draw one TXOP window of arrivals; eligibility masks queried after
        this call include the round's own arrivals (a packet can be served
        in the window it arrived)."""
        if self._round_open:
            raise RuntimeError("begin_round called twice without end_round")
        self._reset_round()
        self._generate_window()
        self._round_open = True

    def end_round(self) -> RoundTrafficMetrics:
        """Close the round and return its queueing metrics."""
        if not self._round_open:
            raise RuntimeError("end_round called without begin_round")
        self._round_open = False
        return RoundTrafficMetrics(
            duration_s=self.round_duration_s,
            arrived_bytes=self._round_arrived,
            served_bytes=self._round_served,
            queue_bytes=self.queues.total_bytes(),
            delays_s=np.asarray(self._round_delays),
            delay_categories=np.asarray(self._round_categories, dtype=int),
            served_per_client=self._round_served_per_client.copy(),
        )

    # ------------------------------------------------------------------
    # Event-driven protocol
    # ------------------------------------------------------------------
    def advance_arrivals_to(self, t_s: float) -> None:
        """Generate arrival windows until the arrival clock covers ``t_s``."""
        while self._t_s < t_s:
            self._generate_window()

    # ------------------------------------------------------------------
    # Shared service + query surface
    # ------------------------------------------------------------------
    def backlog_mask(self, clients, category=None, arrival_cutoff_s=None) -> np.ndarray:
        """Per-client eligibility verdicts over ``clients``; the optional
        cutoff restricts to packets that have arrived by it (the
        event-driven MAC's decision time)."""
        return self.queues.backlog_mask(clients, category, arrival_cutoff_s)

    def primary_class(self, clients, arrival_cutoff_s=None):
        """The EDCA class that wins internal contention for these clients."""
        return self.queues.primary_class(clients, arrival_cutoff_s)

    def serve_burst(
        self,
        clients: np.ndarray,
        sinrs: np.ndarray,
        payload_s: float,
        t_depart_s: float | None = None,
        arrival_cutoff_s: float | None = None,
    ) -> float:
        """Serve one MU-MIMO burst: per-stream SINR -> MCS -> A-MPDU byte
        budget -> queue drain, one stream per entry of ``clients``/``sinrs``
        (linear SINRs).  Returns the bytes actually delivered.

        The SINR-to-budget arithmetic runs once, vectorized over the burst;
        both execution backends call this with the same float arrays in the
        same stream order, which keeps their queue trajectories
        bit-identical.
        """
        sinrs = np.asarray(sinrs, dtype=float)
        with np.errstate(divide="ignore"):  # sinr == 0 -> -inf dB -> 0 bytes
            sinr_db = 10.0 * np.log10(sinrs)
        budgets = self.ampdu.served_byte_budget(
            sinr_db, self.bandwidth_hz, payload_s
        )
        if t_depart_s is None:
            t_depart_s = self._t_s  # end of the current round's window
        total = 0.0
        for client, budget in zip(clients, budgets):
            client = int(client)
            served, departures = self.queues.serve(
                client, float(budget), t_depart_s, arrival_cutoff_s
            )
            total += served
            self._round_served += served
            self._total_served += served
            self._round_served_per_client[client] += served
            self._served_per_client[client] += served
            for delay, category in departures:
                self._round_delays.append(delay)
                self._round_categories.append(int(category))
                self._delays.append(delay)
                self._delay_categories.append(int(category))
        return total

    def summary(self, duration_s: float | None = None) -> TrafficSummary:
        """Whole-run aggregate (the event-driven MAC attaches this to its
        :class:`~repro.sim.network.SimulationResult`)."""
        return TrafficSummary(
            duration_s=self._t_s if duration_s is None else duration_s,
            arrived_bytes=self._total_arrived,
            served_bytes=self._total_served,
            queue_bytes=self.queues.total_bytes(),
            delays_s=np.asarray(self._delays),
            delay_categories=np.asarray(self._delay_categories, dtype=int),
            served_per_client=self._served_per_client.copy(),
        )


__all__ = [
    "AmpduConfig",
    "ClientQueues",
    "Packet",
    "RoundTrafficMetrics",
    "TrafficState",
    "TrafficSummary",
]
