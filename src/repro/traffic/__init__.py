"""Finite-load traffic & queueing: arrivals, A-MPDU aggregation, latency.

The round engines and the discrete-event MAC are full-buffer by default;
this package opens the finite-load axis.  A registered arrival process
(``full_buffer``, ``poisson``, ``on_off``, ``cbr`` -- see
:func:`register_traffic <repro.api.registry.register_traffic>`) feeds
per-client byte queues carved into 802.11e access categories, an 802.11ac
A-MPDU model converts each stream's post-precoding SINR into served bytes,
and the engines report per-packet delay, jitter, and queue occupancy
alongside the usual capacity series.

Quick use::

    from repro.sim.rounds import RoundBasedEvaluator
    from repro.sim.network import MacMode

    result = RoundBasedEvaluator(
        scenario, MacMode.MIDAS, seed=0, traffic="poisson",
        traffic_kwargs={"rate_mbps": 10.0},
    ).run(40)
    result.mean_delay_s, result.throughput_mbps

or declaratively, ``RunSpec("latency_vs_load", traffic="poisson")``.
"""

from .ampdu import VHT_MAX_AMPDU_BYTES, AmpduConfig
from .models import (
    CbrTraffic,
    FullBufferTraffic,
    OnOffTraffic,
    PoissonTraffic,
    TrafficModel,
    access_category,
    resolve_traffic,
    traffic_names,
)
from .queues import ClientQueues, Packet
from .state import RoundTrafficMetrics, TrafficState, TrafficSummary

__all__ = [
    "AmpduConfig",
    "VHT_MAX_AMPDU_BYTES",
    "CbrTraffic",
    "FullBufferTraffic",
    "OnOffTraffic",
    "PoissonTraffic",
    "TrafficModel",
    "access_category",
    "resolve_traffic",
    "traffic_names",
    "ClientQueues",
    "Packet",
    "RoundTrafficMetrics",
    "TrafficState",
    "TrafficSummary",
]
