"""802.11ac A-MPDU aggregation model.

Converts one stream's post-precoding SINR into the bytes a TXOP burst can
carry: the best decodable VHT MCS fixes the spectral efficiency, the payload
airtime fixes the raw byte budget, and the standard's aggregation ceilings
cap it -- a VHT A-MPDU may not exceed 2^20 - 1 bytes regardless of how fast
the link is, and per-MPDU framing (delimiter + MAC header + FCS) shaves a
fixed overhead off every aggregated subframe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..phy.mcs import rate_bps_hz_for_snr_array

#: VHT maximum A-MPDU length exponent 7 => 2^20 - 1 bytes (802.11ac).
VHT_MAX_AMPDU_BYTES = 2**20 - 1


@dataclass(frozen=True)
class AmpduConfig:
    """Aggregation constants of one 802.11ac transmitter.

    ``per_mpdu_overhead_bytes`` models the MPDU delimiter (4 B), the MAC
    header (~30 B) and the FCS (4 B) that every aggregated subframe pays;
    with 1500-byte MSDUs that is a ~2.5% haircut on goodput.
    """

    max_ampdu_bytes: float = float(VHT_MAX_AMPDU_BYTES)
    per_mpdu_overhead_bytes: float = 38.0
    mpdu_bytes: float = 1500.0

    def __post_init__(self):
        if self.max_ampdu_bytes <= 0:
            raise ValueError("max_ampdu_bytes must be positive")
        if self.per_mpdu_overhead_bytes < 0:
            raise ValueError("per_mpdu_overhead_bytes must be >= 0")
        if self.mpdu_bytes <= 0:
            raise ValueError("mpdu_bytes must be positive")

    @property
    def efficiency(self) -> float:
        """Payload fraction of an aggregated subframe."""
        return self.mpdu_bytes / (self.mpdu_bytes + self.per_mpdu_overhead_bytes)

    def served_byte_budget(
        self, sinr_db, bandwidth_hz: float, payload_s: float
    ) -> np.ndarray:
        """Payload bytes one burst can deliver per stream.

        ``sinr_db`` is scalar or array (one entry per stream); the budget is
        ``min(max A-MPDU, MCS rate * bandwidth * payload airtime / 8)``
        scaled by the subframe efficiency, and exactly 0 where no MCS
        decodes.  Pure float arithmetic shared by both backends.
        """
        rate_bps_hz = rate_bps_hz_for_snr_array(sinr_db)
        raw = rate_bps_hz * bandwidth_hz * payload_s / 8.0
        return np.minimum(raw, self.max_ampdu_bytes) * self.efficiency
