"""Arrival processes feeding the downlink queues.

A traffic model is a frozen parameter bundle; all mutable state (per-client
ON/OFF flags, CBR credit) lives in an explicit state object so one model
instance can drive every item of a vectorized batch.  Arrival draws consume
the caller-supplied generator client by client in index order -- the same
order on both execution backends -- so finite-load results are
bit-identical between the scalar and batched round engines.

Rates are *per client*, in Mb/s.  Registered factories (the ``traffic``
registry, mirroring the precoder/scenario registries):

``full_buffer``
    Infinite backlog -- the library's historical default, bit-identical to
    running without a traffic model at all.
``poisson``
    Per-client Poisson packet arrivals, timestamps uniform in each round.
``on_off``
    Two-state bursty source: exponential-ish ON/OFF dwell times, Poisson
    arrivals at the peak rate while ON (mean rate = ``rate_mbps``).
``cbr``
    Deterministic constant-bit-rate source (voice/video), mapped onto an
    EDCA access category (default VOICE).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..api.registry import TRAFFIC, register_traffic
from ..mac.edca import AccessCategory
from .queues import Packet


def access_category(value) -> AccessCategory:
    """Coerce a category given as enum, index, or name (JSON-friendly)."""
    if isinstance(value, AccessCategory):
        return value
    if isinstance(value, int):
        return AccessCategory(value)
    try:
        return AccessCategory[str(value).upper()]
    except KeyError:
        names = ", ".join(ac.name.lower() for ac in AccessCategory)
        raise ValueError(
            f"unknown access category {value!r}; expected one of: {names}"
        ) from None


class TrafficModel:
    """Base class: stateless parameters + explicit per-run state."""

    #: Full-buffer sentinels short-circuit the engines back onto the
    #: saturation path (no queues, no latency accounting).
    is_full_buffer = False

    def init_state(self, rng: np.random.Generator, n_clients: int):
        """Fresh mutable state for one run (None when the model has none)."""
        return None

    def arrivals(
        self,
        state,
        rng: np.random.Generator,
        n_clients: int,
        t0_s: float,
        dt_s: float,
    ) -> list[Packet]:
        """Packets arriving in ``[t0_s, t0_s + dt_s)``, client-major order."""
        raise NotImplementedError


@dataclass(frozen=True)
class FullBufferTraffic(TrafficModel):
    """Infinite backlog for every client (the saturation default)."""

    is_full_buffer = True

    def arrivals(self, state, rng, n_clients, t0_s, dt_s) -> list[Packet]:
        raise RuntimeError("full-buffer traffic generates no discrete arrivals")


@dataclass(frozen=True)
class PoissonTraffic(TrafficModel):
    """Independent per-client Poisson packet arrivals."""

    rate_mbps: float
    packet_bytes: float = 1500.0
    category: AccessCategory = AccessCategory.BEST_EFFORT

    def __post_init__(self):
        if self.rate_mbps < 0:
            raise ValueError("rate_mbps must be >= 0")
        if self.packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        object.__setattr__(self, "category", access_category(self.category))

    def arrivals(self, state, rng, n_clients, t0_s, dt_s) -> list[Packet]:
        lam = self.rate_mbps * 1e6 * dt_s / (8.0 * self.packet_bytes)
        counts = rng.poisson(lam, n_clients)
        packets: list[Packet] = []
        for client in np.flatnonzero(counts):
            offsets = np.sort(rng.uniform(0.0, dt_s, counts[client]))
            packets.extend(
                Packet(int(client), self.packet_bytes, t0_s + float(off), self.category)
                for off in offsets
            )
        return packets


@dataclass(frozen=True)
class OnOffTraffic(TrafficModel):
    """Markov-modulated bursty source (mean rate ``rate_mbps``).

    Each client flips between ON and OFF with per-round probabilities
    ``dt / mean_dwell``; while ON it emits Poisson arrivals at
    ``rate_mbps / duty_cycle`` so the long-run average is ``rate_mbps``.
    """

    rate_mbps: float
    duty_cycle: float = 0.25
    mean_burst_s: float = 0.05
    packet_bytes: float = 1500.0
    category: AccessCategory = AccessCategory.BEST_EFFORT

    def __post_init__(self):
        if self.rate_mbps < 0:
            raise ValueError("rate_mbps must be >= 0")
        if not 0 < self.duty_cycle <= 1:
            raise ValueError("duty_cycle must be in (0, 1]")
        if self.mean_burst_s <= 0:
            raise ValueError("mean_burst_s must be positive")
        if self.packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        object.__setattr__(self, "category", access_category(self.category))

    def init_state(self, rng, n_clients) -> np.ndarray:
        return rng.uniform(size=n_clients) < self.duty_cycle

    def arrivals(self, state, rng, n_clients, t0_s, dt_s) -> list[Packet]:
        peak_mbps = self.rate_mbps / self.duty_cycle
        lam = peak_mbps * 1e6 * dt_s / (8.0 * self.packet_bytes)
        mean_off_s = self.mean_burst_s * (1.0 - self.duty_cycle) / self.duty_cycle
        p_on_off = min(1.0, dt_s / self.mean_burst_s)
        p_off_on = 1.0 if mean_off_s <= 0 else min(1.0, dt_s / mean_off_s)
        packets: list[Packet] = []
        for client in range(n_clients):
            flip = rng.uniform()
            if state[client]:
                count = int(rng.poisson(lam))
                if count:
                    offsets = np.sort(rng.uniform(0.0, dt_s, count))
                    packets.extend(
                        Packet(client, self.packet_bytes, t0_s + float(off), self.category)
                        for off in offsets
                    )
                if flip < p_on_off:
                    state[client] = False
            elif flip < p_off_on:
                state[client] = True
        return packets


@dataclass(frozen=True)
class CbrTraffic(TrafficModel):
    """Deterministic constant-bit-rate source (voice/video framing).

    Emits fixed-size packets at exactly ``rate_mbps`` using a per-client
    byte-credit accumulator, evenly spacing each round's packets.  Draws no
    randomness at all.
    """

    rate_mbps: float
    packet_bytes: float = 200.0
    category: AccessCategory = AccessCategory.VOICE

    def __post_init__(self):
        if self.rate_mbps < 0:
            raise ValueError("rate_mbps must be >= 0")
        if self.packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        object.__setattr__(self, "category", access_category(self.category))

    def init_state(self, rng, n_clients) -> np.ndarray:
        return np.zeros(n_clients)

    def arrivals(self, state, rng, n_clients, t0_s, dt_s) -> list[Packet]:
        packets: list[Packet] = []
        new_bytes = self.rate_mbps * 1e6 * dt_s / 8.0
        for client in range(n_clients):
            state[client] += new_bytes
            count = int(state[client] // self.packet_bytes)
            if count == 0:
                continue
            state[client] -= count * self.packet_bytes
            spacing = dt_s / count
            packets.extend(
                Packet(
                    client,
                    self.packet_bytes,
                    t0_s + (i + 0.5) * spacing,
                    self.category,
                )
                for i in range(count)
            )
        return packets


# ----------------------------------------------------------------------
# Registered factories (name -> model); every factory takes the per-client
# offered rate first so experiments can sweep loads uniformly.
# ----------------------------------------------------------------------
@register_traffic("full_buffer")
def full_buffer(rate_mbps: float = 0.0, **_unused) -> FullBufferTraffic:
    """Saturation: the rate is ignored, queues are infinitely backlogged."""
    return FullBufferTraffic()


@register_traffic("poisson")
def poisson(rate_mbps: float, **kwargs) -> PoissonTraffic:
    return PoissonTraffic(rate_mbps=rate_mbps, **kwargs)


@register_traffic("on_off")
def on_off(rate_mbps: float, **kwargs) -> OnOffTraffic:
    return OnOffTraffic(rate_mbps=rate_mbps, **kwargs)


@register_traffic("cbr")
def cbr(rate_mbps: float, **kwargs) -> CbrTraffic:
    return CbrTraffic(rate_mbps=rate_mbps, **kwargs)


def resolve_traffic(traffic, rate_mbps: float = 0.0, **kwargs) -> TrafficModel:
    """Coerce a traffic argument into a :class:`TrafficModel`.

    Accepts a model instance (returned unchanged; extra arguments are then
    rejected) or a registered name plus factory keyword arguments.
    """
    if isinstance(traffic, TrafficModel):
        if rate_mbps or kwargs:
            raise ValueError(
                "rate/keyword overrides only apply when resolving a traffic "
                "model by registered name, not a model instance"
            )
        return traffic
    model = TRAFFIC.get(traffic)(rate_mbps=rate_mbps, **kwargs)
    if not isinstance(model, TrafficModel):
        raise TypeError(
            f"traffic factory {traffic!r} returned {type(model).__name__}, "
            "not a TrafficModel"
        )
    return model


def traffic_names() -> list[str]:
    """All registered traffic-model names."""
    return TRAFFIC.names()
