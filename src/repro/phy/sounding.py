"""802.11ac MU-MIMO sounding overhead model (§3.3 of the paper).

Before a MU-MIMO TXOP, 802.11ac sounds the channel: the AP sends an NDP
Announcement then a Null Data Packet; each selected client returns a
compressed beamforming report (polled in turn).  That airtime is pure
overhead, and the paper's MAC design goes out of its way to avoid needing
extra soundings for client *selection* -- MIDAS sounds only the clients
already chosen.

Durations below follow the standard's preamble structure at 20 MHz and give
the right order of magnitude (a few hundred microseconds for four clients).
"""

from __future__ import annotations

#: NDP Announcement frame airtime (control frame + preamble), microseconds.
NDPA_US = 50.0
#: Null Data Packet airtime (VHT preamble only, grows with streams), microseconds.
NDP_BASE_US = 40.0
NDP_PER_ANTENNA_US = 4.0  # one VHT-LTF per sounded dimension
#: Compressed beamforming report per client (scales with antennas), microseconds.
REPORT_BASE_US = 60.0
REPORT_PER_ANTENNA_US = 20.0
#: Beamforming Report Poll frame, microseconds.
POLL_US = 30.0
#: SIFS separating each element of the sounding exchange, microseconds.
SIFS_US = 16.0


def sounding_overhead_us(n_clients: int, n_antennas: int) -> float:
    """Total airtime of one sounding exchange for ``n_clients`` receivers of a
    ``n_antennas``-antenna transmission.

    NDPA + SIFS + NDP + SIFS + report, then for every further client a
    Beamforming Report Poll and its report, each preceded by a SIFS
    (SIFS + poll + SIFS + report): every frame of the exchange -- polls
    *and* the reports that answer them -- is separated by one SIFS.
    """
    if n_clients < 1 or n_antennas < 1:
        raise ValueError("need at least one client and one antenna")
    ndp = NDP_BASE_US + NDP_PER_ANTENNA_US * n_antennas
    report = REPORT_BASE_US + REPORT_PER_ANTENNA_US * n_antennas
    total = NDPA_US + SIFS_US + ndp
    for client_index in range(n_clients):
        if client_index > 0:
            total += SIFS_US + POLL_US
        total += SIFS_US + report
    return total
