"""PHY abstractions: SINR/capacity math, 802.11ac MCS table, OFDM numerology,
and the MU-MIMO sounding overhead model."""

from .capacity import (
    effective_channel,
    per_antenna_row_power,
    sinr_matrix,
    stream_sinrs,
    sum_capacity_bps_hz,
)
from .mcs import (
    MCS_TABLE,
    McsEntry,
    highest_mcs_for_snr,
    mcs_index_for_snr,
    rate_bps_hz_for_snr,
    rate_bps_hz_for_snr_array,
)
from .ofdm import OfdmNumerology, VHT20
from .sounding import sounding_overhead_us

__all__ = [
    "effective_channel",
    "per_antenna_row_power",
    "sinr_matrix",
    "stream_sinrs",
    "sum_capacity_bps_hz",
    "MCS_TABLE",
    "McsEntry",
    "highest_mcs_for_snr",
    "mcs_index_for_snr",
    "rate_bps_hz_for_snr",
    "rate_bps_hz_for_snr_array",
    "OfdmNumerology",
    "VHT20",
    "sounding_overhead_us",
]
