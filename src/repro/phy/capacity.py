"""SINR and Shannon-capacity computation for precoded MU-MIMO downlinks.

Implements the paper's eq. (4): with channel ``H`` (clients x antennas) and
precoder ``V`` (antennas x streams, column ``j`` = client ``j``'s stream),
the *effective channel* is ``E = H @ V`` and

    ``s_ij = |E[j, i]|^2 / No``          (power of stream i at client j)
    ``rho_j = s_jj / (1 + sum_{i != j} s_ij)``

The paper converts measured SINR directly to capacity with the Shannon
formula (§5.1); :func:`sum_capacity_bps_hz` does the same.

Every function here accepts either one matrix or a *stack* of them with
leading batch axes (``(batch, n_clients, n_antennas)`` channels paired with
``(batch, n_antennas, n_streams)`` precoders) -- the shape convention of the
vectorized backend.  Matrix axes always trail; reductions run over the
trailing axes so a stacked call is bit-identical, slice for slice, to N
scalar calls.

All functions are namespace-generic (:mod:`repro.xp`): the governing
namespace is inferred from the inputs, so NumPy arrays compute in NumPy
(bit-identical to the pre-dispatch code) and torch tensors stay on-device.
"""

from __future__ import annotations

from ..xp import array_namespace


def effective_channel(h, v):
    """``E = H @ V``; entry ``(j, i)`` is stream ``i``'s amplitude at client ``j``.

    Accepts matching stacks (``(..., n_clients, n_antennas)`` with
    ``(..., n_antennas, n_streams)``) and matmuls them slice-wise.
    """
    xp = array_namespace(h, v)
    h = xp.asarray(h)
    v = xp.asarray(v)
    if h.ndim < 2 or v.ndim < 2:
        raise ValueError("h and v must be at least 2-D")
    if h.shape[-1] != v.shape[-2]:
        raise ValueError(
            f"antenna-dimension mismatch: h is {tuple(h.shape)}, v is {tuple(v.shape)}"
        )
    return h @ v


def sinr_matrix(h, v, noise_mw: float):
    """The paper's ``S`` matrix: ``S[..., i, j]`` = power of stream ``i``
    received at client ``j``, normalized by the noise floor."""
    if noise_mw <= 0:
        raise ValueError("noise_mw must be positive")
    xp = array_namespace(h, v)
    e = effective_channel(h, v)
    return xp.swapaxes(xp.abs(e) ** 2, -1, -2) / noise_mw


def stream_sinrs(h, v, noise_mw: float, external_interference_mw=0.0):
    """Per-client SINR ``rho_j`` under precoder ``V`` (paper eq. 4).

    ``external_interference_mw`` is extra interference power (scalar or
    per-client vector) from transmissions outside this precoding group --
    e.g. concurrent TXOPs of other APs in the network simulations.

    Stacked inputs return stacked SINRs ``(..., n_clients)``.
    """
    xp = array_namespace(h, v)
    s = sinr_matrix(h, v, noise_mw)  # (..., streams, clients)
    n_streams, n_clients = s.shape[-2], s.shape[-1]
    if n_streams != n_clients:
        raise ValueError("streams and clients must pair one-to-one for SINR")
    ext = xp.broadcast_to(
        xp.asarray(external_interference_mw, dtype=xp.float_dtype),
        tuple(s.shape[:-2]) + (n_clients,),
    )
    desired = xp.diagonal(s, axis1=-2, axis2=-1)
    # Interference from other streams at client j.
    intra = xp.sum(s, axis=-2) - desired
    return desired / (1.0 + intra + ext / noise_mw)


def sum_capacity_bps_hz(sinrs):
    """Shannon sum capacity ``sum_j log2(1 + rho_j)`` in bits/s/Hz.

    A single SINR vector returns a ``float``; a stack ``(..., n_clients)``
    returns per-item capacities of shape ``(...,)``.
    """
    xp = array_namespace(sinrs)
    rho = xp.asarray(sinrs, dtype=xp.float_dtype)
    if xp.any(rho < 0):
        raise ValueError("SINRs must be non-negative")
    if rho.ndim <= 1:
        return float(xp.sum(xp.log2(1.0 + rho)))
    return xp.sum(xp.log2(1.0 + rho), axis=-1)


def per_antenna_row_power(v):
    """Transmit power per antenna: row-wise ``sum_j |v_kj|^2`` (paper eq. 3 LHS)."""
    xp = array_namespace(v)
    v = xp.asarray(v)
    return xp.sum(xp.abs(v) ** 2, axis=-1)


def per_stream_column_power(v):
    """Transmit power per stream: column-wise ``sum_k |v_kj|^2``."""
    xp = array_namespace(v)
    v = xp.asarray(v)
    return xp.sum(xp.abs(v) ** 2, axis=-2)
