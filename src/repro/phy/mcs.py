"""802.11ac (VHT) modulation-and-coding table.

The paper's capacity results use the Shannon formula, but a real 802.11ac AP
quantizes each stream to an MCS.  This table (20 MHz, one spatial stream,
800 ns GI) lets examples and extension benches report standard-compliant
rates and required SNRs alongside Shannon capacity.

SNR thresholds are typical receiver-sensitivity-derived values for a 10%
PER, consistent with common link-abstraction tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..xp import array_namespace


@dataclass(frozen=True)
class McsEntry:
    """One row of the VHT MCS table (per spatial stream, 20 MHz)."""

    index: int
    modulation: str
    coding_rate: str
    data_rate_mbps: float
    min_snr_db: float

    @property
    def rate_bps_hz(self) -> float:
        """Spectral efficiency on a 20 MHz channel."""
        return self.data_rate_mbps * 1e6 / 20e6


#: VHT MCS 0-8, 20 MHz, 1 spatial stream, long guard interval.
MCS_TABLE: tuple[McsEntry, ...] = (
    McsEntry(0, "BPSK", "1/2", 6.5, 2.0),
    McsEntry(1, "QPSK", "1/2", 13.0, 5.0),
    McsEntry(2, "QPSK", "3/4", 19.5, 9.0),
    McsEntry(3, "16-QAM", "1/2", 26.0, 11.0),
    McsEntry(4, "16-QAM", "3/4", 39.0, 15.0),
    McsEntry(5, "64-QAM", "2/3", 52.0, 18.0),
    McsEntry(6, "64-QAM", "3/4", 58.5, 20.0),
    McsEntry(7, "64-QAM", "5/6", 65.0, 25.0),
    McsEntry(8, "256-QAM", "3/4", 78.0, 29.0),
)


def highest_mcs_for_snr(snr_db: float) -> McsEntry | None:
    """The fastest MCS whose SNR requirement is met, or ``None`` below MCS 0.

    Closed-loop MU-MIMO maps known post-precoding SINR straight to an MCS
    (paper §5.1: no explicit rate adaptation needed).
    """
    best = None
    for entry in MCS_TABLE:
        if snr_db >= entry.min_snr_db:
            best = entry
    return best


def rate_bps_hz_for_snr(snr_db: float) -> float:
    """Spectral efficiency (bits/s/Hz) of the best decodable MCS, 0 if none."""
    entry = highest_mcs_for_snr(snr_db)
    return entry.rate_bps_hz if entry is not None else 0.0


#: SNR thresholds / rates as arrays for the vectorized mapping below.  The
#: table is ordered by increasing ``min_snr_db``, which searchsorted needs.
_MIN_SNRS_DB = np.array([entry.min_snr_db for entry in MCS_TABLE])
_RATES_BPS_HZ = np.concatenate(
    ([0.0], [entry.rate_bps_hz for entry in MCS_TABLE])
)


def mcs_index_for_snr(snr_db):
    """Vectorized MCS selection: best decodable MCS index per SNR, ``-1``
    below MCS 0.  Accepts scalars or arrays of any shape (e.g. the stacked
    per-client SINRs of a batched sweep) from any :mod:`repro.xp` namespace.

    Thresholds stay float64; comparisons promote to the common dtype, so a
    float32 SNR is classified by its float64 value -- the quantization error
    of the *input* (~1e-6 relative), not of the table, bounds how far from a
    threshold a float32 run can flip MCS (see ``tests/test_dtype_edges.py``).
    """
    xp = array_namespace(snr_db)
    snr = xp.asarray(snr_db, dtype=xp.float_dtype)
    return xp.searchsorted(xp.asarray(_MIN_SNRS_DB), snr, side="right") - 1


def rate_bps_hz_for_snr_array(snr_db):
    """Vectorized :func:`rate_bps_hz_for_snr`: spectral efficiency of the
    best decodable MCS for every SNR in an array, 0 where none decodes."""
    xp = array_namespace(snr_db)
    rates = xp.asarray(_RATES_BPS_HZ, dtype=xp.float_dtype)
    return rates[mcs_index_for_snr(snr_db) + 1]
