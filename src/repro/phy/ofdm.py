"""802.11ac OFDM numerology used by the frame-duration model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OfdmNumerology:
    """OFDM constants for one channel width."""

    bandwidth_hz: float
    n_subcarriers_total: int
    n_subcarriers_data: int
    n_subcarriers_pilot: int
    symbol_duration_us: float  # including the 800 ns guard interval

    @property
    def subcarrier_spacing_hz(self) -> float:
        """312.5 kHz for all 802.11 OFDM widths."""
        return self.bandwidth_hz / self.n_subcarriers_total

    def symbols_for_bits(self, n_bits: float, bits_per_symbol: float) -> int:
        """OFDM symbols needed to carry ``n_bits`` at ``bits_per_symbol``
        data bits per symbol (already including coding)."""
        if bits_per_symbol <= 0:
            raise ValueError("bits_per_symbol must be positive")
        import math

        return max(1, math.ceil(n_bits / bits_per_symbol))


#: 20 MHz VHT numerology: 64 subcarriers, 52 data + 4 pilots, 4 us symbols.
VHT20 = OfdmNumerology(
    bandwidth_hz=20e6,
    n_subcarriers_total=64,
    n_subcarriers_data=52,
    n_subcarriers_pilot=4,
    symbol_duration_us=4.0,
)
