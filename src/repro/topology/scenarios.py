"""Scenario factories reproducing the paper's evaluation setups (§5).

Each factory returns a :class:`Scenario` -- a deployment bound to the radio
constants of one office environment -- or a CAS/DAS *pair* sharing identical
AP and client positions so comparisons are paired, exactly as in the paper
("the CAS antenna positions are fixed while DAS antennas and clients are
randomly deployed", §5.2.1).

Environments
------------
* **Office A** -- enterprise office: path-loss exponent 3.5, shadowing 4 dB.
* **Office B** -- crowded graduate lab: exponent 4.0, shadowing 6 dB.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import rng as rng_mod
from ..channel.pathloss import coverage_range_m, cs_range_m
from ..config import DEFAULT_MAC, MacConfig, RadioConfig
from . import geometry
from .deployment import (
    AntennaMode,
    Deployment,
    cas_antenna_layout,
    das_antenna_layout,
)


@dataclass(frozen=True)
class OfficeEnvironment:
    """A named indoor environment with its propagation constants."""

    name: str
    radio: RadioConfig


def office_a() -> OfficeEnvironment:
    """Enterprise office (paper's Office A): milder loss and shadowing, a
    little more angular spread around the arrays."""
    return OfficeEnvironment(
        name="office_a",
        radio=RadioConfig(
            pathloss_exponent=3.5,
            shadowing_sigma_db=6.0,
            angular_spread_deg=16.0,
        ),
    )


def office_b() -> OfficeEnvironment:
    """Crowded graduate lab (paper's Office B): heavy NLOS loss, strong
    shadowing, tight angular spread (cluttered, reflective)."""
    return OfficeEnvironment(
        name="office_b",
        radio=RadioConfig(
            pathloss_exponent=4.0,
            shadowing_sigma_db=9.0,
            angular_spread_deg=13.0,
        ),
    )


@dataclass(frozen=True)
class Scenario:
    """A deployment bound to its environment and MAC constants."""

    name: str
    deployment: Deployment
    radio: RadioConfig
    mac: MacConfig = field(default_factory=MacConfig)
    seed: int = 0

    @property
    def mode(self) -> AntennaMode:
        return self.deployment.mode


def _client_positions(
    rng: np.random.Generator,
    ap_positions: np.ndarray,
    clients_per_ap: int,
    radius_min_m: float,
    radius_max_m: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Clients uniformly placed in each AP's service annulus."""
    chunks = []
    owners = []
    for ap_index, ap in enumerate(ap_positions):
        chunks.append(
            geometry.random_point_in_annulus(rng, ap, radius_min_m, radius_max_m, clients_per_ap)
        )
        owners.extend([ap_index] * clients_per_ap)
    return np.vstack(chunks), np.asarray(owners, dtype=int)


def _antennas_for_mode(
    rng: np.random.Generator,
    ap_positions: np.ndarray,
    mode: AntennaMode,
    antennas_per_ap: int,
    wavelength_m: float,
    das_radius_min_m: float,
    das_radius_max_m: float,
    min_sector_deg: float,
    min_separation_m: float,
    coverage_radius_m: float = np.inf,
) -> tuple[np.ndarray, np.ndarray]:
    chunks = []
    owners = []
    for ap_index, ap in enumerate(ap_positions):
        if mode is AntennaMode.CAS:
            ants = cas_antenna_layout(ap, antennas_per_ap, wavelength_m)
        else:
            ants = das_antenna_layout(
                rng,
                ap,
                antennas_per_ap,
                radius_min_m=das_radius_min_m,
                radius_max_m=das_radius_max_m,
                min_sector_deg=min_sector_deg,
                min_separation_m=min_separation_m,
                within_center=ap,
                within_radius_m=coverage_radius_m,
            )
        chunks.append(ants)
        owners.extend([ap_index] * antennas_per_ap)
    return np.vstack(chunks), np.asarray(owners, dtype=int)


def paired_scenarios(
    environment: OfficeEnvironment,
    ap_positions,
    *,
    antennas_per_ap: int = 4,
    clients_per_ap: int = 4,
    seed: int = 0,
    mac: MacConfig = DEFAULT_MAC,
    client_radius_fraction: float = 0.9,
    client_radius_min_fraction: float = 0.25,
    das_radius_min_m: float = 5.0,
    das_radius_max_m: float = 10.0,
    min_sector_deg: float = 0.0,
    min_separation_m: float = 0.0,
    name: str = "paired",
    modes: tuple[AntennaMode, ...] = (AntennaMode.CAS, AntennaMode.DAS),
) -> dict[AntennaMode, Scenario]:
    """Build a CAS scenario and a DAS scenario sharing APs and clients.

    ``client_radius_fraction`` / ``client_radius_min_fraction`` scale the
    client annulus to fractions of the environment's CAS coverage range; the
    non-zero inner radius reflects that clients sit in offices and corridors
    away from the AP itself (paper §5.1).

    ``modes`` restricts which stacks are built.  Client and DAS placements
    draw from *independent* spawned generators, so a CAS-only call followed
    by a DAS-only call for the same seed reproduces the full pair bit for
    bit -- batch evaluators use this to defer the (expensive, rejection
    sampled) DAS layout until a topology passes its acceptance gate.
    """
    rng = rng_mod.make_rng(seed)
    client_rng, das_rng = rng_mod.spawn(rng, 2)
    aps = geometry.as_points(ap_positions)
    coverage = coverage_range_m(environment.radio, mac.decode_snr_db)
    clients, client_ap = _client_positions(
        client_rng,
        aps,
        clients_per_ap,
        max(2.0, client_radius_min_fraction * coverage),
        client_radius_fraction * coverage,
    )
    scenarios: dict[AntennaMode, Scenario] = {}
    for mode in modes:
        antennas, antenna_ap = _antennas_for_mode(
            das_rng if mode is AntennaMode.DAS else rng,
            aps,
            mode,
            antennas_per_ap,
            environment.radio.wavelength_m,
            das_radius_min_m,
            das_radius_max_m,
            min_sector_deg,
            min_separation_m,
            coverage_radius_m=coverage,
        )
        deployment = Deployment(
            ap_positions=aps,
            antenna_positions=antennas,
            antenna_ap=antenna_ap,
            client_positions=clients,
            client_ap=client_ap,
            mode=mode,
        )
        scenarios[mode] = Scenario(
            name=f"{name}/{environment.name}/{mode.value}",
            deployment=deployment,
            radio=environment.radio,
            mac=mac,
            seed=seed,
        )
    return scenarios


def single_ap_scenario(
    environment: OfficeEnvironment,
    mode: AntennaMode,
    *,
    n_antennas: int = 4,
    n_clients: int = 4,
    seed: int = 0,
    mac: MacConfig = DEFAULT_MAC,
) -> Scenario:
    """One AP with CAS or DAS antennas and random clients (Figs 3, 7-11, 14)."""
    pair = paired_scenarios(
        environment,
        [(0.0, 0.0)],
        antennas_per_ap=n_antennas,
        clients_per_ap=n_clients,
        seed=seed,
        mac=mac,
        name="single_ap",
    )
    return pair[mode]


def three_ap_scenario(
    environment: OfficeEnvironment,
    *,
    inter_ap_m: float = 15.0,
    antennas_per_ap: int = 4,
    clients_per_ap: int = 4,
    seed: int = 0,
    mac: MacConfig = DEFAULT_MAC,
    modes: tuple[AntennaMode, ...] = (AntennaMode.CAS, AntennaMode.DAS),
) -> dict[AntennaMode, Scenario]:
    """Three APs in an equilateral triangle with ~15 m sides (§5.1, §5.3.1).

    APs are close enough to overhear each other in CAS mode (experiments
    enforce it per-topology with
    :func:`repro.sim.network.aps_mutually_overhear`); DAS placements use the
    paper's §7 guidance of 50-75% of the coverage range and obey the
    60-degree sector rule of §5.3.1 so antennas do not cluster on the far
    side of the other APs.
    """
    height = inter_ap_m * np.sqrt(3.0) / 2.0
    aps = [
        (0.0, 0.0),
        (inter_ap_m, 0.0),
        (inter_ap_m / 2.0, height),
    ]
    coverage = coverage_range_m(environment.radio, mac.decode_snr_db)
    return paired_scenarios(
        environment,
        aps,
        antennas_per_ap=antennas_per_ap,
        clients_per_ap=clients_per_ap,
        seed=seed,
        mac=mac,
        client_radius_fraction=0.6,
        das_radius_min_m=0.5 * coverage,
        das_radius_max_m=0.75 * coverage,
        min_sector_deg=60.0,
        name="three_ap",
        modes=modes,
    )


def eight_ap_scenario(
    environment: OfficeEnvironment,
    *,
    region_m: float = 60.0,
    antennas_per_ap: int = 4,
    clients_per_ap: int = 4,
    seed: int = 0,
    mac: MacConfig = DEFAULT_MAC,
    max_overhearers: int = 3,
    max_attempts: int = 5_000,
) -> dict[AntennaMode, Scenario]:
    """Eight APs in a 60 x 60 m region (Fig 16's large-scale simulation).

    Paper rules enforced here: no CAS AP overhears more than
    ``max_overhearers`` other APs (median carrier-sense range), DAS antennas
    stay inside the original AP coverage area, and no two antennas of an AP
    are within 5 m of each other.
    """
    rng = rng_mod.make_rng(seed)
    sense_range = cs_range_m(environment.radio, mac)
    placement_rng, scenario_rng = rng_mod.spawn(rng, 2)
    aps = None
    for _ in range(max_attempts):
        candidate = geometry.random_point_in_rect(
            placement_rng, (5.0, region_m - 5.0), (5.0, region_m - 5.0), 8
        )
        dists = geometry.pairwise_distances(candidate, candidate)
        np.fill_diagonal(dists, np.inf)
        if dists.min() < 8.0:
            continue
        overhearers = np.sum(dists < sense_range, axis=1)
        if np.all(overhearers <= max_overhearers):
            aps = candidate
            break
    if aps is None:
        raise RuntimeError("could not place 8 APs satisfying the overhearing rule")
    return paired_scenarios(
        environment,
        aps,
        antennas_per_ap=antennas_per_ap,
        clients_per_ap=clients_per_ap,
        seed=int(scenario_rng.integers(0, 2**31 - 1)),
        mac=mac,
        client_radius_fraction=0.55,
        das_radius_min_m=5.0,
        das_radius_max_m=10.0,
        min_separation_m=5.0,
        name="eight_ap",
    )


def grid_region_scenario(
    environment: OfficeEnvironment,
    *,
    n_rows: int = 3,
    n_cols: int = 3,
    spacing_m: float = 20.0,
    antennas_per_ap: int = 4,
    clients_per_ap: int = 4,
    seed: int = 0,
    mac: MacConfig = DEFAULT_MAC,
    modes: tuple[AntennaMode, ...] = (AntennaMode.CAS, AntennaMode.DAS),
) -> dict[AntennaMode, Scenario]:
    """``n_rows x n_cols`` APs on a regular grid -- the planned-deployment
    region scaling of Fig 16's random 8-AP area.

    Enterprise WLANs place APs on a grid at a fixed inter-AP pitch; this
    family scales the paper's dense-deployment story to arbitrarily large
    regions (the batched round evaluator's target regime).  DAS antennas
    follow the Fig 16 rules: a 5-10 m annulus with 5 m mutual separation.
    """
    if n_rows < 1 or n_cols < 1 or spacing_m <= 0:
        raise ValueError("need positive grid dimensions and spacing")
    aps = [
        (col * spacing_m, row * spacing_m)
        for row in range(n_rows)
        for col in range(n_cols)
    ]
    return paired_scenarios(
        environment,
        aps,
        antennas_per_ap=antennas_per_ap,
        clients_per_ap=clients_per_ap,
        seed=seed,
        mac=mac,
        client_radius_fraction=0.55,
        das_radius_min_m=5.0,
        das_radius_max_m=10.0,
        min_separation_m=5.0,
        name=f"grid_{n_rows}x{n_cols}",
        modes=modes,
    )


def campus_scenario(
    environment: OfficeEnvironment,
    *,
    n_rows: int = 5,
    n_cols: int = 5,
    spacing_m: float = 25.0,
    antennas_per_ap: int = 4,
    clients_per_ap: int = 8,
    seed: int = 0,
    mac: MacConfig = DEFAULT_MAC,
    modes: tuple[AntennaMode, ...] = (AntennaMode.CAS, AntennaMode.DAS),
) -> dict[AntennaMode, Scenario]:
    """A campus-scale AP grid with cell-edge clients -- the roaming regime.

    Like :func:`grid_region_scenario` but sized for association studies:
    a wider AP pitch and a client annulus pushed out to 70% of the coverage
    range, so many clients sit near cell boundaries where a small position
    change (mobility) flips which AP is strongest.  The default 5x5 grid
    with 8 clients per AP gives tens of APs and hundreds of antennas and
    clients -- the scale the association/coordination layer targets.
    """
    if n_rows < 1 or n_cols < 1 or spacing_m <= 0:
        raise ValueError("need positive grid dimensions and spacing")
    aps = [
        (col * spacing_m, row * spacing_m)
        for row in range(n_rows)
        for col in range(n_cols)
    ]
    return paired_scenarios(
        environment,
        aps,
        antennas_per_ap=antennas_per_ap,
        clients_per_ap=clients_per_ap,
        seed=seed,
        mac=mac,
        client_radius_fraction=0.7,
        client_radius_min_fraction=0.35,
        das_radius_min_m=5.0,
        das_radius_max_m=10.0,
        min_separation_m=5.0,
        name=f"campus_{n_rows}x{n_cols}",
        modes=modes,
    )


def dense_office_scenario(
    environment: OfficeEnvironment,
    *,
    n_aps: int = 2,
    inter_ap_m: float = 15.0,
    antennas_per_ap: int = 4,
    clients_per_ap: int = 12,
    seed: int = 0,
    mac: MacConfig = DEFAULT_MAC,
    modes: tuple[AntennaMode, ...] = (AntennaMode.CAS, AntennaMode.DAS),
) -> dict[AntennaMode, Scenario]:
    """A row of APs each loaded with many clients (a crowded open-plan
    office or lecture hall).

    With ``clients_per_ap`` well above the antenna count, only a fraction
    of the backlog is served per MU-MIMO round, which stresses exactly the
    mechanisms the round evaluator models: virtual-tag filtering and the
    DRR fairness settlement (including the waiting credit of blocked APs).
    """
    if n_aps < 1 or inter_ap_m <= 0:
        raise ValueError("need at least one AP and a positive spacing")
    aps = [(index * inter_ap_m, 0.0) for index in range(n_aps)]
    return paired_scenarios(
        environment,
        aps,
        antennas_per_ap=antennas_per_ap,
        clients_per_ap=clients_per_ap,
        seed=seed,
        mac=mac,
        client_radius_fraction=0.6,
        name=f"dense_office_{n_aps}ap",
        modes=modes,
    )


def hidden_terminal_scenario(
    environment: OfficeEnvironment,
    *,
    antennas_per_ap: int = 4,
    seed: int = 0,
    mac: MacConfig = DEFAULT_MAC,
    modes: tuple[AntennaMode, ...] = (AntennaMode.CAS, AntennaMode.DAS),
) -> dict[AntennaMode, Scenario]:
    """Two APs beyond mutual carrier-sense range but with overlapping
    interference regions (§5.3.4).

    DAS antennas are placed at 50-75% of the CAS transmission range around
    each AP, as the paper specifies for this experiment.
    """
    sense_range = cs_range_m(environment.radio, mac)
    coverage = coverage_range_m(environment.radio, mac.decode_snr_db)
    # Past median CS range (no overhearing) but well inside 2x coverage so the
    # middle of the corridor decodes both APs.
    inter_ap = max(1.15 * sense_range, 1.6 * coverage)
    aps = [(0.0, 0.0), (inter_ap, 0.0)]
    return paired_scenarios(
        environment,
        aps,
        antennas_per_ap=antennas_per_ap,
        clients_per_ap=2,
        seed=seed,
        mac=mac,
        client_radius_fraction=0.5,
        das_radius_min_m=0.50 * coverage,
        das_radius_max_m=0.75 * coverage,
        name="hidden_terminal",
        modes=modes,
    )
