"""2-D geometry helpers for deployment generation and coverage mapping.

Positions are ``(x, y)`` coordinates in meters, stored as numpy arrays of
shape ``(n, 2)``.  All sampling functions take an explicit
:class:`numpy.random.Generator` so callers control determinism.
"""

from __future__ import annotations

import numpy as np


def as_points(points) -> np.ndarray:
    """Coerce input to a float array of shape ``(n, 2)``."""
    arr = np.atleast_2d(np.asarray(points, dtype=float))
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got shape {arr.shape}")
    return arr


def pairwise_distances(a, b) -> np.ndarray:
    """Euclidean distance matrix of shape ``(len(a), len(b))``."""
    pa = as_points(a)
    pb = as_points(b)
    diff = pa[:, None, :] - pb[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=-1))


def as_point_stack(points) -> np.ndarray:
    """Coerce input to a float array of shape ``(..., n, 2)``.

    Accepts a single ``(n, 2)`` point set or a batch ``(batch, n, 2)`` of
    them (any number of leading axes); used by the vectorized channel
    backend, which stacks one point set per topology draw.
    """
    arr = np.atleast_2d(np.asarray(points, dtype=float))
    if arr.shape[-1] != 2:
        raise ValueError(f"expected (..., n, 2) points, got shape {arr.shape}")
    return arr


def stacked_pairwise_distances(a, b) -> np.ndarray:
    """Euclidean distances of shape ``(..., len(a), len(b))`` over stacks.

    Bit-identical per slice to :func:`pairwise_distances` (same subtract /
    square / sum / sqrt sequence), broadcasting any leading batch axes.
    """
    pa = as_point_stack(a)
    pb = as_point_stack(b)
    diff = pa[..., :, None, :] - pb[..., None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=-1))


def min_pairwise_distance(points) -> float:
    """Smallest distance between any two distinct points (inf for < 2 points)."""
    pts = as_points(points)
    if len(pts) < 2:
        return float("inf")
    dists = pairwise_distances(pts, pts)
    np.fill_diagonal(dists, np.inf)
    return float(dists.min())


def random_point_in_disk(
    rng: np.random.Generator, center, radius: float, count: int = 1
) -> np.ndarray:
    """Uniform random points inside a disk, shape ``(count, 2)``."""
    if radius <= 0:
        raise ValueError("radius must be positive")
    return random_point_in_annulus(rng, center, 0.0, radius, count)


def random_point_in_annulus(
    rng: np.random.Generator, center, r_min: float, r_max: float, count: int = 1
) -> np.ndarray:
    """Uniform random points in the annulus ``r_min <= r <= r_max`` around ``center``."""
    if not 0.0 <= r_min <= r_max:
        raise ValueError("need 0 <= r_min <= r_max")
    cx, cy = np.asarray(center, dtype=float)
    # Area-uniform radius: r = sqrt(u * (r_max^2 - r_min^2) + r_min^2).
    u = rng.random(count)
    radii = np.sqrt(u * (r_max**2 - r_min**2) + r_min**2)
    angles = rng.uniform(0.0, 2.0 * np.pi, count)
    return np.column_stack((cx + radii * np.cos(angles), cy + radii * np.sin(angles)))


def random_point_in_rect(
    rng: np.random.Generator, x_range, y_range, count: int = 1
) -> np.ndarray:
    """Uniform random points in an axis-aligned rectangle."""
    x0, x1 = x_range
    y0, y1 = y_range
    if x1 < x0 or y1 < y0:
        raise ValueError("ranges must be non-decreasing")
    return np.column_stack((rng.uniform(x0, x1, count), rng.uniform(y0, y1, count)))


def sector_angles_ok(center, points, min_sector_deg: float) -> bool:
    """True if no two ``points`` fall within ``min_sector_deg`` of each other
    as seen from ``center``.

    This is the paper's Fig 12 deployment rule: "any two antennas from the
    same AP cannot be deployed within a 60-degree sector measured with
    respect to the AP", which prevents antennas clustering on the far side.
    """
    pts = as_points(points)
    if len(pts) < 2:
        return True
    cx, cy = np.asarray(center, dtype=float)
    angles = np.degrees(np.arctan2(pts[:, 1] - cy, pts[:, 0] - cx))
    angles = np.sort(np.mod(angles, 360.0))
    # Consecutive gaps around the circle (including the wrap-around gap);
    # the minimum consecutive gap equals the minimum pairwise separation.
    gaps = np.diff(np.concatenate((angles, [angles[0] + 360.0])))
    return bool(np.min(gaps) >= min_sector_deg)


def grid_points(x_range, y_range, step: float) -> np.ndarray:
    """Regular measurement grid covering the rectangle, shape ``(n, 2)``.

    Used by the deadzone (0.5 m) and hidden-terminal (1 m) surveys.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    xs = np.arange(x_range[0], x_range[1] + step / 2, step)
    ys = np.arange(y_range[0], y_range[1] + step / 2, step)
    gx, gy = np.meshgrid(xs, ys)
    return np.column_stack((gx.ravel(), gy.ravel()))


def points_within(points, center, radius: float) -> np.ndarray:
    """Boolean mask of which ``points`` lie within ``radius`` of ``center``."""
    pts = as_points(points)
    center = np.asarray(center, dtype=float)
    return np.linalg.norm(pts - center[None, :], axis=1) <= radius
