"""Deployments: access points, their (co-located or distributed) antennas,
and clients.

A :class:`Deployment` is pure geometry -- positions and ownership -- with no
radio state.  The channel model consumes it to produce channel matrices, and
the MAC simulation consumes it for carrier-sensing distances.

Placement rules implemented here come straight from the paper's methodology
(§5.1, §5.3.1, §5.5, §7):

* CAS antennas sit half a wavelength apart at the AP.
* DAS antennas are distributed 5-10 m from the AP (configurable annulus).
* Optionally no two DAS antennas of one AP may fall in a 60° sector (Fig 12).
* Optionally DAS antennas keep a minimum mutual separation (Fig 16: 5 m).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from . import geometry


class AntennaMode(str, enum.Enum):
    """Whether an AP's antennas are co-located (CAS) or distributed (DAS)."""

    CAS = "cas"
    DAS = "das"


@dataclass(frozen=True)
class Deployment:
    """Positions of APs, antennas and clients for one topology.

    Attributes
    ----------
    ap_positions:
        ``(n_aps, 2)`` AP (central processing node) locations in meters.
    antenna_positions:
        ``(n_antennas_total, 2)`` antenna locations.
    antenna_ap:
        ``(n_antennas_total,)`` index of the owning AP for each antenna.
    client_positions:
        ``(n_clients, 2)`` client locations.
    client_ap:
        ``(n_clients,)`` index of the serving AP for each client.
    mode:
        CAS or DAS (informational; geometry already reflects it).
    """

    ap_positions: np.ndarray
    antenna_positions: np.ndarray
    antenna_ap: np.ndarray
    client_positions: np.ndarray
    client_ap: np.ndarray
    mode: AntennaMode = AntennaMode.CAS
    extras: dict = field(default_factory=dict, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "ap_positions", geometry.as_points(self.ap_positions))
        object.__setattr__(self, "antenna_positions", geometry.as_points(self.antenna_positions))
        object.__setattr__(self, "antenna_ap", np.asarray(self.antenna_ap, dtype=int))
        object.__setattr__(self, "client_positions", geometry.as_points(self.client_positions))
        object.__setattr__(self, "client_ap", np.asarray(self.client_ap, dtype=int))
        if len(self.antenna_positions) != len(self.antenna_ap):
            raise ValueError("antenna_positions and antenna_ap length mismatch")
        if len(self.client_positions) != len(self.client_ap):
            raise ValueError("client_positions and client_ap length mismatch")
        if len(self.antenna_ap) and (
            self.antenna_ap.min() < 0 or self.antenna_ap.max() >= self.n_aps
        ):
            raise ValueError("antenna_ap references an unknown AP")
        if len(self.client_ap) and (
            self.client_ap.min() < 0 or self.client_ap.max() >= self.n_aps
        ):
            raise ValueError("client_ap references an unknown AP")

    @property
    def n_aps(self) -> int:
        """Number of access points."""
        return len(self.ap_positions)

    @property
    def n_antennas(self) -> int:
        """Total number of antennas across all APs."""
        return len(self.antenna_positions)

    @property
    def n_clients(self) -> int:
        """Total number of clients."""
        return len(self.client_positions)

    def antennas_of(self, ap: int) -> np.ndarray:
        """Global antenna indices owned by AP ``ap``."""
        return np.flatnonzero(self.antenna_ap == ap)

    def clients_of(self, ap: int) -> np.ndarray:
        """Client indices served by AP ``ap``."""
        return np.flatnonzero(self.client_ap == ap)

    def antenna_client_distances(self) -> np.ndarray:
        """Distance matrix of shape ``(n_clients, n_antennas)``."""
        return geometry.pairwise_distances(self.client_positions, self.antenna_positions)

    def antenna_antenna_distances(self) -> np.ndarray:
        """Distance matrix of shape ``(n_antennas, n_antennas)``."""
        return geometry.pairwise_distances(self.antenna_positions, self.antenna_positions)

    def subset_for_ap(self, ap: int) -> "Deployment":
        """Single-AP view of this deployment (its antennas and clients only)."""
        ant_idx = self.antennas_of(ap)
        cli_idx = self.clients_of(ap)
        return Deployment(
            ap_positions=self.ap_positions[ap : ap + 1],
            antenna_positions=self.antenna_positions[ant_idx],
            antenna_ap=np.zeros(len(ant_idx), dtype=int),
            client_positions=self.client_positions[cli_idx],
            client_ap=np.zeros(len(cli_idx), dtype=int),
            mode=self.mode,
            extras=dict(self.extras),
        )


def cas_antenna_layout(
    ap_position, n_antennas: int, wavelength_m: float
) -> np.ndarray:
    """Co-located antenna positions: a uniform linear array at half-wavelength
    spacing centered on the AP (paper §5.1)."""
    if n_antennas < 1:
        raise ValueError("need at least one antenna")
    cx, cy = np.asarray(ap_position, dtype=float)
    spacing = wavelength_m / 2.0
    offsets = (np.arange(n_antennas) - (n_antennas - 1) / 2.0) * spacing
    return np.column_stack((cx + offsets, np.full(n_antennas, cy)))


def das_antenna_layout(
    rng: np.random.Generator,
    ap_position,
    n_antennas: int,
    radius_min_m: float = 5.0,
    radius_max_m: float = 10.0,
    min_sector_deg: float = 0.0,
    min_separation_m: float = 0.0,
    within_center=None,
    within_radius_m: float = np.inf,
    max_attempts: int = 20_000,
) -> np.ndarray:
    """Distributed antenna positions around an AP under the paper's rules.

    Rejection-samples positions in the ``[radius_min_m, radius_max_m]``
    annulus around the AP until all active constraints hold:

    * ``min_sector_deg`` -- Fig 12's 60° no-clustering rule;
    * ``min_separation_m`` -- Fig 16's 5 m antenna separation rule;
    * ``within_center/within_radius_m`` -- Fig 16's rule that antennas stay
      inside the original AP coverage area.
    """
    if n_antennas < 1:
        raise ValueError("need at least one antenna")
    center = np.asarray(ap_position, dtype=float)
    bound_center = center if within_center is None else np.asarray(within_center, dtype=float)
    for _ in range(max_attempts):
        pts = geometry.random_point_in_annulus(rng, center, radius_min_m, radius_max_m, n_antennas)
        if min_separation_m > 0 and geometry.min_pairwise_distance(pts) < min_separation_m:
            continue
        if min_sector_deg > 0 and not geometry.sector_angles_ok(center, pts, min_sector_deg):
            continue
        if np.isfinite(within_radius_m) and not np.all(
            geometry.points_within(pts, bound_center, within_radius_m)
        ):
            continue
        return pts
    raise RuntimeError(
        "could not satisfy DAS placement constraints after "
        f"{max_attempts} attempts (radius {radius_min_m}-{radius_max_m} m, "
        f"sector {min_sector_deg} deg, separation {min_separation_m} m)"
    )


def build_single_ap(
    rng: np.random.Generator,
    *,
    mode: AntennaMode,
    n_antennas: int,
    n_clients: int,
    wavelength_m: float,
    ap_position=(0.0, 0.0),
    client_radius_m: float = 25.0,
    client_radius_min_m: float = 2.0,
    das_radius_min_m: float = 5.0,
    das_radius_max_m: float = 10.0,
    min_sector_deg: float = 0.0,
    min_separation_m: float = 0.0,
) -> Deployment:
    """One AP with ``n_antennas`` (CAS or DAS) and clients in its coverage disk."""
    ap = np.asarray(ap_position, dtype=float)
    if mode is AntennaMode.CAS:
        antennas = cas_antenna_layout(ap, n_antennas, wavelength_m)
    else:
        antennas = das_antenna_layout(
            rng,
            ap,
            n_antennas,
            radius_min_m=das_radius_min_m,
            radius_max_m=das_radius_max_m,
            min_sector_deg=min_sector_deg,
            min_separation_m=min_separation_m,
        )
    clients = geometry.random_point_in_annulus(
        rng, ap, client_radius_min_m, client_radius_m, n_clients
    )
    return Deployment(
        ap_positions=ap[None, :],
        antenna_positions=antennas,
        antenna_ap=np.zeros(n_antennas, dtype=int),
        client_positions=clients,
        client_ap=np.zeros(n_clients, dtype=int),
        mode=mode,
    )


def build_multi_ap(
    rng: np.random.Generator,
    ap_positions,
    *,
    mode: AntennaMode,
    antennas_per_ap: int,
    clients_per_ap: int,
    wavelength_m: float,
    client_radius_m: float = 20.0,
    client_radius_min_m: float = 2.0,
    das_radius_min_m: float = 5.0,
    das_radius_max_m: float = 10.0,
    min_sector_deg: float = 0.0,
    min_separation_m: float = 0.0,
    coverage_radius_m: float = np.inf,
) -> Deployment:
    """Multiple APs, each with its own antenna cluster and client population."""
    aps = geometry.as_points(ap_positions)
    antenna_chunks = []
    antenna_ap = []
    client_chunks = []
    client_ap = []
    for ap_index, ap in enumerate(aps):
        if mode is AntennaMode.CAS:
            ants = cas_antenna_layout(ap, antennas_per_ap, wavelength_m)
        else:
            ants = das_antenna_layout(
                rng,
                ap,
                antennas_per_ap,
                radius_min_m=das_radius_min_m,
                radius_max_m=das_radius_max_m,
                min_sector_deg=min_sector_deg,
                min_separation_m=min_separation_m,
                within_center=ap,
                within_radius_m=coverage_radius_m,
            )
        antenna_chunks.append(ants)
        antenna_ap.extend([ap_index] * antennas_per_ap)
        clients = geometry.random_point_in_annulus(
            rng, ap, client_radius_min_m, client_radius_m, clients_per_ap
        )
        client_chunks.append(clients)
        client_ap.extend([ap_index] * clients_per_ap)
    return Deployment(
        ap_positions=aps,
        antenna_positions=np.vstack(antenna_chunks),
        antenna_ap=np.asarray(antenna_ap, dtype=int),
        client_positions=np.vstack(client_chunks),
        client_ap=np.asarray(client_ap, dtype=int),
        mode=mode,
    )
