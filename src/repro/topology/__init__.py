"""Topology substrate: geometry, CAS/DAS deployments, paper scenarios."""

from .deployment import AntennaMode, Deployment, cas_antenna_layout, das_antenna_layout
from .geometry import (
    grid_points,
    min_pairwise_distance,
    pairwise_distances,
    random_point_in_annulus,
    random_point_in_disk,
    sector_angles_ok,
)
from .scenarios import (
    OfficeEnvironment,
    Scenario,
    campus_scenario,
    dense_office_scenario,
    eight_ap_scenario,
    grid_region_scenario,
    hidden_terminal_scenario,
    office_a,
    office_b,
    single_ap_scenario,
    three_ap_scenario,
)

__all__ = [
    "AntennaMode",
    "Deployment",
    "cas_antenna_layout",
    "das_antenna_layout",
    "grid_points",
    "min_pairwise_distance",
    "pairwise_distances",
    "random_point_in_annulus",
    "random_point_in_disk",
    "sector_angles_ok",
    "OfficeEnvironment",
    "Scenario",
    "campus_scenario",
    "dense_office_scenario",
    "eight_ap_scenario",
    "grid_region_scenario",
    "hidden_terminal_scenario",
    "office_a",
    "office_b",
    "single_ap_scenario",
    "three_ap_scenario",
]
