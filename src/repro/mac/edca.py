"""802.11e EDCA access categories (paper §3.3).

802.11ac re-purposes 802.11e's four traffic-class queues to drive MU-MIMO:
the class that wins internal contention becomes the *primary* access class,
and secondary classes fill remaining streams.  MIDAS's client selection runs
within whichever class won, so this module provides the queue set and the
per-class contention parameters; the network simulations default to a single
best-effort class, and the EDCA tests exercise the prioritization logic.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..config import MacConfig


class AccessCategory(enum.IntEnum):
    """The four EDCA traffic classes, highest priority first."""

    VOICE = 0
    VIDEO = 1
    BEST_EFFORT = 2
    BACKGROUND = 3


@dataclass(frozen=True)
class EdcaParameters:
    """Per-class contention parameters (relative to :class:`MacConfig`)."""

    aifsn: int  # AIFS = SIFS + aifsn * slot
    cw_min_factor: float  # CWmin multiplier on the base CWmin
    cw_max_factor: float

    def aifs_us(self, mac: MacConfig) -> float:
        return mac.sifs_us + self.aifsn * mac.slot_us

    def cw_min(self, mac: MacConfig) -> int:
        return max(1, int((mac.cw_min + 1) * self.cw_min_factor) - 1)

    def cw_max(self, mac: MacConfig) -> int:
        return max(1, int((mac.cw_max + 1) * self.cw_max_factor) - 1)


#: Standard-flavoured EDCA parameter set.
EDCA_PARAMETERS: dict[AccessCategory, EdcaParameters] = {
    AccessCategory.VOICE: EdcaParameters(aifsn=2, cw_min_factor=0.25, cw_max_factor=0.0625),
    AccessCategory.VIDEO: EdcaParameters(aifsn=2, cw_min_factor=0.5, cw_max_factor=0.125),
    AccessCategory.BEST_EFFORT: EdcaParameters(aifsn=3, cw_min_factor=1.0, cw_max_factor=1.0),
    AccessCategory.BACKGROUND: EdcaParameters(aifsn=7, cw_min_factor=1.0, cw_max_factor=1.0),
}


@dataclass
class QueuedPacket:
    """A downlink packet waiting in an AP queue."""

    client: int
    category: AccessCategory = AccessCategory.BEST_EFFORT
    enqueued_us: float = 0.0


class EdcaQueueSet:
    """Four per-class FIFO queues with primary-class arbitration."""

    def __init__(self):
        self._queues: dict[AccessCategory, deque[QueuedPacket]] = {
            ac: deque() for ac in AccessCategory
        }

    def enqueue(self, packet: QueuedPacket) -> None:
        """Append a packet to its class queue."""
        self._queues[packet.category].append(packet)

    def backlog(self, category: AccessCategory | None = None) -> int:
        """Queued packet count for one class (or all classes)."""
        if category is not None:
            return len(self._queues[category])
        return sum(len(q) for q in self._queues.values())

    def backlogged_clients(self, category: AccessCategory | None = None) -> np.ndarray:
        """Distinct clients with at least one queued packet."""
        cats = [category] if category is not None else list(AccessCategory)
        clients = {pkt.client for c in cats for pkt in self._queues[c]}
        return np.asarray(sorted(clients), dtype=int)

    def primary_class(self) -> AccessCategory | None:
        """Highest-priority non-empty class (the class that would win the
        AP's internal EDCA contention, all else equal)."""
        for ac in AccessCategory:
            if self._queues[ac]:
                return ac
        return None

    def pop_for_client(self, client: int, category: AccessCategory | None = None) -> QueuedPacket | None:
        """Remove and return the oldest packet for ``client``, searching the
        primary class first then lower classes (802.11ac's secondary-class
        fill-in rule)."""
        cats = [category] if category is not None else list(AccessCategory)
        for ac in cats:
            queue = self._queues[ac]
            for index, pkt in enumerate(queue):
                if pkt.client == client:
                    del queue[index]
                    return pkt
        return None
