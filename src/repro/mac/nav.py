"""Per-antenna network allocation vector (NAV) timers (paper §3.2.2).

802.11ac keeps one NAV for the whole AP; MIDAS provisions one NAV *per
antenna* so each distributed antenna tracks the medium occupancy around its
own location.  ``NavTable`` is that bank of timers: times are absolute
microseconds on the simulation clock.
"""

from __future__ import annotations

import numpy as np


class NavTable:
    """A bank of per-antenna NAV expiry times."""

    def __init__(self, n_antennas: int):
        if n_antennas < 1:
            raise ValueError("need at least one antenna")
        self._expiry_us = np.zeros(n_antennas, dtype=float)

    @property
    def n_antennas(self) -> int:
        return len(self._expiry_us)

    def set_nav(self, antenna: int, until_us: float) -> None:
        """Extend antenna's NAV to ``until_us`` (NAVs never shrink: a newer,
        shorter reservation cannot cancel an older longer one)."""
        if until_us > self._expiry_us[antenna]:
            self._expiry_us[antenna] = until_us

    def expiry_us(self, antenna: int) -> float:
        """Absolute time at which the antenna's NAV expires."""
        return float(self._expiry_us[antenna])

    def is_clear(self, antenna: int, now_us: float) -> bool:
        """True if the antenna's virtual carrier sense shows idle at ``now_us``."""
        return self._expiry_us[antenna] <= now_us

    def clear_antennas(self, now_us: float) -> np.ndarray:
        """Indices of antennas whose NAV has expired at ``now_us``."""
        return np.flatnonzero(self._expiry_us <= now_us)

    def expiring_within(self, now_us: float, window_us: float) -> np.ndarray:
        """Antennas busy now but whose NAV expires within ``window_us``.

        This is the opportunistic-selection query (paper §3.2.3): antennas in
        this set are worth waiting up to one DIFS for.
        """
        if window_us < 0:
            raise ValueError("window_us must be non-negative")
        busy = self._expiry_us > now_us
        soon = self._expiry_us <= now_us + window_us
        return np.flatnonzero(busy & soon)

    def order_by_expiry(self, antennas) -> np.ndarray:
        """Sort antenna indices by NAV expiry, earliest first (paper §3.2.5:
        the primary antenna is the one whose NAV expired first)."""
        idx = np.asarray(list(antennas), dtype=int)
        return idx[np.argsort(self._expiry_us[idx], kind="stable")]
