"""802.11 MAC substrate plus the MIDAS DAS-aware MAC (paper §3.2).

The baseline pieces (slotted CSMA/CA backoff, NAV virtual carrier sense,
EDCA access categories, frame durations) follow 802.11ac's 5 GHz MAC; the
MIDAS pieces (per-antenna channel state, opportunistic antenna selection)
are the paper's contribution and are deliberately small deltas on top --
that is the point of the design.
"""

from .backoff import BackoffState
from .carrier_sense import CarrierSenseModel
from .edca import AccessCategory, EDCA_PARAMETERS, EdcaQueueSet
from .frames import FrameDurations
from .nav import NavTable

__all__ = [
    "BackoffState",
    "CarrierSenseModel",
    "AccessCategory",
    "EDCA_PARAMETERS",
    "EdcaQueueSet",
    "FrameDurations",
    "NavTable",
]
