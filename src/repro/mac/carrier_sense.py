"""Physical carrier sensing at antenna granularity (paper §3.2.2).

Each antenna senses energy independently: it is *busy* when the aggregate
received power from all currently-transmitting antennas (of other APs, or
other antennas of its own AP) exceeds the energy-detect threshold.  A
transmission additionally sets the NAV when any single transmitter is
received above the (more sensitive) preamble-decode threshold.

The model is large-scale only: carrier sense in hardware integrates over
many OFDM symbols, which averages small-scale fading out.

Every aggregate here is computed as a *masked reduction over the full
antenna axis* (``np.where(mask, row, 0.0).sum()``), never as a sum over a
compacted index subset.  Summing a fixed-length vector is what makes the
scalar model and :class:`repro.sim.batch.CarrierSenseBatch` bit-identical:
both reduce length-``n_antennas`` rows with the same pairwise-summation
tree, and the masked-out exact zeros cannot change any partial sum.
"""

from __future__ import annotations

import numpy as np

from .. import units
from ..config import MacConfig


class CarrierSenseModel:
    """Pairwise antenna-to-antenna sensing powers plus threshold logic.

    Parameters
    ----------
    cross_power_dbm:
        ``(n_antennas, n_antennas)`` large-scale received power at antenna
        *row* when antenna *column* transmits at full per-antenna power
        (:meth:`repro.channel.model.ChannelModel.antenna_cross_power_dbm`).
    mac:
        Thresholds.
    """

    def __init__(self, cross_power_dbm: np.ndarray, mac: MacConfig):
        cross = np.asarray(cross_power_dbm, dtype=float)
        if cross.ndim != 2 or cross.shape[0] != cross.shape[1]:
            raise ValueError("cross_power_dbm must be square")
        self._mac = mac
        # Linear mW for summation; +inf dBm diagonal becomes +inf mW, which is
        # correct (an antenna always senses itself) but must never be summed,
        # so keep it masked out of aggregate computations.
        self._cross_mw = units.dbm_to_mw(np.where(np.isinf(cross), -np.inf, cross))
        self._decodable = cross >= mac.nav_decode_dbm
        np.fill_diagonal(self._decodable, True)

    @property
    def n_antennas(self) -> int:
        return self._cross_mw.shape[0]

    def _tx_mask(self, transmitting, exclude=()) -> np.ndarray:
        mask = np.zeros(self.n_antennas, dtype=bool)
        tx = np.asarray(list(transmitting), dtype=int)
        if tx.size:
            mask[tx] = True
        for index in exclude:
            mask[index] = False
        return mask

    def sensed_power_mw(self, listener: int, transmitting) -> float:
        """Aggregate power antenna ``listener`` receives from ``transmitting``
        antennas (its own transmissions excluded -- self-sensing is handled
        at the MAC level, a transmitting antenna is trivially busy)."""
        mask = self._tx_mask(transmitting, exclude=(listener,))
        if not mask.any():
            return 0.0
        return float(np.where(mask, self._cross_mw[listener], 0.0).sum())

    def is_busy(self, listener: int, transmitting) -> bool:
        """Energy-detect verdict for ``listener`` given active transmitters."""
        return self.sensed_power_mw(listener, transmitting) >= self._mac.cs_threshold_mw

    def busy_mask(self, transmitting) -> np.ndarray:
        """Boolean busy verdict for every antenna given active transmitters.

        Transmitting antennas are busy by definition.
        """
        mask = self._tx_mask(transmitting)
        if not mask.any():
            return np.zeros(self.n_antennas, dtype=bool)
        power = np.where(mask[None, :], self._cross_mw, 0.0).sum(axis=1)
        busy = power >= self._mac.cs_threshold_mw
        busy[mask] = True
        return busy

    def decodes(self, listener: int, transmitter: int, interferers=()) -> bool:
        """True when ``listener`` can decode ``transmitter``'s preamble and
        therefore learns the transmission duration (sets its NAV).

        With ``interferers`` already in the air, decoding additionally
        requires the preamble to *capture*: its power must exceed the
        aggregate interference by ``preamble_capture_db``.
        """
        if not self._decodable[listener, transmitter]:
            return False
        mask = self._tx_mask(interferers, exclude=(listener, transmitter))
        if not mask.any():
            return True
        signal = self._cross_mw[listener, transmitter]
        interference = float(np.where(mask, self._cross_mw[listener], 0.0).sum())
        if interference <= 0:
            return True
        capture = units.db_to_linear(self._mac.preamble_capture_db)
        return bool(signal >= capture * interference)

    def nav_listeners(self, transmitter: int, interferers=()) -> np.ndarray:
        """All antennas that decode ``transmitter`` (including itself),
        subject to capture against ``interferers``."""
        base = np.flatnonzero(self._decodable[:, transmitter])
        if len(base) == 0:
            return base
        return np.asarray(
            [l for l in base if self.decodes(int(l), transmitter, interferers)],
            dtype=int,
        )
