"""Airtime model for the frames a MU-MIMO TXOP exchanges.

A TXOP spends airtime on: optional sounding (NDPA/NDP/feedback, from
:mod:`repro.phy.sounding`), the precoded data burst itself (``txop_us``),
and the block-ack collection from each served client.  The *data fraction*
of a TXOP is what converts per-stream spectral efficiency into delivered
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..config import MacConfig
from ..phy.sounding import sounding_overhead_us

#: Block-ack request + block-ack exchange per client, microseconds.
BLOCK_ACK_US = 46.0
#: VHT preamble of the data PPDU, microseconds.
DATA_PREAMBLE_US = 44.0


@dataclass(frozen=True)
class FrameDurations:
    """Airtime breakdown of one MU-MIMO TXOP."""

    sounding_us: float
    data_us: float
    ack_us: float

    @property
    def total_us(self) -> float:
        return self.sounding_us + self.data_us + self.ack_us

    @property
    def data_fraction(self) -> float:
        """Fraction of the TXOP carrying payload symbols."""
        return (self.data_us - DATA_PREAMBLE_US) / self.total_us


def txop_durations(
    mac: MacConfig, n_clients: int, n_antennas: int, with_sounding: bool = True
) -> FrameDurations:
    """Airtime of a MU-MIMO TXOP serving ``n_clients`` from ``n_antennas``."""
    if n_clients < 1 or n_antennas < 1:
        raise ValueError("need at least one client and one antenna")
    sounding = sounding_overhead_us(n_clients, n_antennas) if with_sounding else 0.0
    ack = n_clients * (mac.sifs_us + BLOCK_ACK_US)
    return FrameDurations(sounding_us=sounding, data_us=mac.txop_us, ack_us=ack)


@lru_cache(maxsize=1024)
def data_fraction(
    mac: MacConfig, n_clients: int, n_antennas: int, with_sounding: bool = True
) -> float:
    """Memoized :attr:`FrameDurations.data_fraction` (a pure function of the
    burst shape; the finite-load engines evaluate it every round)."""
    return txop_durations(mac, n_clients, n_antennas, with_sounding).data_fraction
