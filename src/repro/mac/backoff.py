"""CSMA/CA contention state (binary exponential backoff).

One :class:`BackoffState` per contender: the whole AP in a CAS, each antenna
in MIDAS (paper §3.2.1: "each of the antennas at an AP competes for access
to the channel independently").
"""

from __future__ import annotations

import numpy as np

from ..config import MacConfig


class BackoffState:
    """Draws backoff delays and tracks the contention window."""

    def __init__(self, mac: MacConfig, rng: np.random.Generator):
        self._mac = mac
        self._rng = rng
        self._cw = mac.cw_min

    @property
    def contention_window(self) -> int:
        """Current contention window (slots)."""
        return self._cw

    def draw_delay_us(self) -> float:
        """One full deferral: DIFS plus a uniform backoff in [0, CW] slots."""
        slots = int(self._rng.integers(0, self._cw + 1))
        return self._mac.difs_us + slots * self._mac.slot_us

    def on_success(self) -> None:
        """Reset the window after a successful transmission."""
        self._cw = self._mac.cw_min

    def on_collision(self) -> None:
        """Double the window (bounded by CWmax) after a collision."""
        self._cw = min(2 * self._cw + 1, self._mac.cw_max)
