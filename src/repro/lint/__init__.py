"""Static enforcement of the repository's reproducibility contracts.

Every load-bearing guarantee in this reproduction -- bit-identical results
across backends, the derived-seed RNG tree, omit-when-unset spec hashing,
``xp`` namespace dispatch, pre-declared telemetry vocabulary, atomic
persistence -- is enforced at runtime by the tier-1 suites, but only on the
paths a test happens to execute.  ``repro.lint`` checks the same contracts
*statically*, on every file, before a test ever runs::

    python -m repro.lint src tests
    python -m repro.lint src --select RPL001,RPL002 --format json

The linter is a small rule framework: each rule is an
:class:`~repro.lint.base.Rule` (an :class:`ast.NodeVisitor`) registered
under its code (``RPL001`` ...) via the same decorator-registry idiom the
experiment/precoder registries use.  Diagnostics carry file/line/column
positions and can be suppressed inline with ``# repro-lint: disable=RPL001``
(see :mod:`repro.lint.suppressions`).

The rules (see :mod:`repro.lint.rules` and ``docs/architecture.md``):

========  ==============================================================
RPL001    no raw ``numpy`` numerical calls inside array-API-dispatched
          scopes, except at host-transfer boundaries
RPL002    RNG discipline: no global numpy RNG state, no ad-hoc
          ``default_rng`` seeding outside the seed-tree module
RPL003    spec-hash stability: every dataclass field of a hashable spec
          class must appear in its canonical serializer
RPL004    telemetry vocabulary: literal counter/gauge names must be
          pre-declared; spans must be ``with``-blocks
RPL005    units discipline: no arithmetic mixing dB-scale and
          linear-power suffixed names without a converter
RPL006    atomic writes: persistence in cache/campaign/result modules
          must use the tmp-sibling + ``os.replace`` pattern
RPL007    registered experiments must ship ``build_batch`` or carry the
          documented loop-fallback marker
========  ==============================================================
"""

from __future__ import annotations

from .base import RULES, Rule, RuleContext, register_rule
from .config import DEFAULT_CONFIG, LintConfig
from .diagnostics import Diagnostic
from .engine import lint_file, lint_paths, lint_source
from . import rules  # noqa: F401  (imports register the built-in rules)

__all__ = [
    "DEFAULT_CONFIG",
    "Diagnostic",
    "LintConfig",
    "RULES",
    "Rule",
    "RuleContext",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
]
