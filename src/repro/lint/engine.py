"""File walking, rule execution, and diagnostic collection."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from .base import RULES, RuleContext
from .config import DEFAULT_CONFIG, LintConfig
from .diagnostics import Diagnostic

#: Code attached to files the parser rejects (not a registered rule; it
#: cannot be suppressed or deselected -- a file that does not parse cannot
#: be checked for anything else either).
PARSE_ERROR_CODE = "RPL000"


def _selected_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> list:
    codes = list(RULES)
    if select:
        wanted = set(select)
        unknown = wanted - set(codes)
        if unknown:
            raise ValueError(
                f"unknown rule code(s) {sorted(unknown)}; known: {codes}"
            )
        codes = [c for c in codes if c in wanted]
    if ignore:
        unwanted = set(ignore)
        unknown = unwanted - set(RULES)
        if unknown:
            raise ValueError(
                f"unknown rule code(s) {sorted(unknown)}; known: {list(RULES)}"
            )
        codes = [c for c in codes if c not in unwanted]
    return [RULES.get(c) for c in codes]


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig = DEFAULT_CONFIG,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    logical_path: Optional[str] = None,
) -> list[Diagnostic]:
    """Lint a source string as if it lived at ``path``."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=Path(path).as_posix(),
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = RuleContext(
        Path(path), source, tree, config=config, logical_path=logical_path
    )
    diagnostics: list[Diagnostic] = []
    for rule_cls in _selected_rules(select, ignore):
        if rule_cls.applies(ctx):
            diagnostics.extend(rule_cls(ctx).run())
    return sorted(diagnostics)


def lint_file(
    path,
    config: LintConfig = DEFAULT_CONFIG,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    logical_path: Optional[str] = None,
) -> list[Diagnostic]:
    """Lint one file on disk."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source,
        path=str(path),
        config=config,
        select=select,
        ignore=ignore,
        logical_path=logical_path,
    )


def iter_python_files(
    paths: Sequence, config: LintConfig = DEFAULT_CONFIG, use_excludes: bool = True
) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in sorted order.

    Directories are walked recursively; files are yielded as given.  With
    ``use_excludes`` (the default), any path containing one of
    ``config.exclude_parts`` (fixture trees, caches) is skipped.
    """
    exclude = set(config.exclude_parts) if use_excludes else set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if exclude.intersection(candidate.parts):
                    continue
                yield candidate
        elif path.suffix == ".py":
            if not exclude.intersection(path.parts):
                yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def lint_paths(
    paths: Sequence,
    config: LintConfig = DEFAULT_CONFIG,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    use_excludes: bool = True,
) -> list[Diagnostic]:
    """Lint every python file under ``paths``; the CLI's workhorse."""
    diagnostics: list[Diagnostic] = []
    for file_path in iter_python_files(paths, config, use_excludes=use_excludes):
        diagnostics.extend(
            lint_file(file_path, config=config, select=select, ignore=ignore)
        )
    return sorted(diagnostics)
