"""RPL005: units discipline -- dB never meets linear power bare.

The naming convention (:mod:`repro.units`) is load-bearing: ``*_db`` /
``*_dbm`` names are logarithmic, ``*_mw`` / ``*_w`` names are linear.
``x_dbm + y_mw`` is always a bug -- adding a logarithm to a power -- and
it evaluates without complaint, so it survives until someone notices a
capacity curve is nonsense.  The rule flags any arithmetic binary
operation whose two operands are *names* (or attribute accesses) from the
two different unit classes; passing through a :mod:`repro.units` converter
(``dbm_to_mw(x_dbm) + y_mw``) changes the operand from a name to a call
and is the sanctioned spelling.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..base import Rule, dotted_name, register_rule

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod)


@register_rule
class UnitsDisciplineRule(Rule):
    code = "RPL005"
    name = "units-discipline"
    description = (
        "no arithmetic mixing dB-suffixed and linear-power-suffixed "
        "names without a repro.units converter"
    )

    def _unit_class(self, node: ast.AST) -> Optional[str]:
        """``"db"`` / ``"linear"`` / ``None`` for one operand."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        tail = dotted.split(".")[-1].lower()
        if tail.endswith(self.ctx.config.db_suffixes):
            return "db"
        if tail.endswith(self.ctx.config.linear_suffixes):
            return "linear"
        return None

    def visit_BinOp(self, node: ast.BinOp):
        if isinstance(node.op, _ARITH_OPS):
            left = self._unit_class(node.left)
            right = self._unit_class(node.right)
            if left is not None and right is not None and left != right:
                op = type(node.op).__name__.lower()
                self.report(
                    node,
                    f"arithmetic ({op}) mixes a dB-scale name "
                    f"(`{ast.unparse(node.left if left == 'db' else node.right)}`) "
                    "with a linear-power name "
                    f"(`{ast.unparse(node.right if left == 'db' else node.left)}`); "
                    "convert explicitly through repro.units "
                    "(db_to_linear / dbm_to_mw / mw_to_dbm) first",
                )
        self.generic_visit(node)
