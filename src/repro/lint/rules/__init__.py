"""Built-in rules; importing this package registers them all."""

from __future__ import annotations

from . import (  # noqa: F401  (imports trigger rule registration)
    rpl001_xp_dispatch,
    rpl002_rng,
    rpl003_spec_hash,
    rpl004_telemetry,
    rpl005_units,
    rpl006_atomic_writes,
    rpl007_experiments,
)
