"""RPL006: atomic persistence -- tmp sibling + ``os.replace``, always.

Cache entries, campaign manifests, results, and telemetry exports are all
read back by resume logic and other processes; a torn write (kill -9 mid
``json.dump``) must surface as a *missing* file, never a corrupt one.
The sanctioned pattern is a same-directory temp file renamed into place
(``_atomic_write`` in ``repro.api.result`` / ``repro.campaign.journal``).

Within the configured persistence modules, a write call --
``open(path, "w"/"wb")``, ``Path.write_text`` / ``write_bytes``,
``json.dump``, ``np.save*`` -- is flagged unless

* some name involved contains ``tmp`` (it targets the temp sibling), or
* an enclosing function calls ``os.replace`` or takes a ``tmp``-named
  parameter (it is the rename's write callback -- local evidence of the
  pattern), or
* the ``open`` mode is append (journals are append + fsync by design).
"""

from __future__ import annotations

import ast

from ..base import Rule, RuleContext, dotted_name, register_rule

from ..base import numpy_aliases

#: Attribute names that are file-writing calls on a path-like receiver.
_WRITE_ATTRS = {"write_text", "write_bytes"}

#: numpy members that serialize to disk (flagged only on a numpy alias
#: receiver, so ``result.save(path)`` method calls are not confused with
#: ``np.save(path, ...)``).
_NUMPY_WRITERS = {"save", "savez", "savez_compressed"}


def _mentions_tmp(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "tmp" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "tmp" in sub.attr.lower():
            return True
        if isinstance(sub, ast.arg) and "tmp" in sub.arg.lower():
            return True
    return False


def _open_write_mode(node: ast.Call) -> bool:
    """Is this ``open(..., mode)`` with a write (non-append) mode?"""
    mode = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None or not (
        isinstance(mode, ast.Constant) and isinstance(mode.value, str)
    ):
        return False
    return ("w" in mode.value or "x" in mode.value) and "a" not in mode.value


@register_rule
class AtomicWriteRule(Rule):
    code = "RPL006"
    name = "atomic-writes"
    description = (
        "persistence writes in cache/campaign/result modules must use "
        "the tmp-sibling + os.replace pattern"
    )

    @classmethod
    def applies(cls, ctx: RuleContext) -> bool:
        return ctx.config.is_atomic_write_module(ctx.logical_path)

    def run(self):
        self._replace_functions: list[bool] = []
        self._numpy_aliases = numpy_aliases(self.ctx.tree)
        self.visit(self.ctx.tree)
        return self.diagnostics

    def _visit_function(self, node):
        calls_replace = any(
            isinstance(sub, ast.Call)
            and (dotted_name(sub.func) or "").endswith("os.replace")
            for sub in ast.walk(node)
        )
        takes_tmp = any("tmp" in arg.arg.lower() for arg in node.args.args)
        self._replace_functions.append(calls_replace or takes_tmp)
        self.generic_visit(node)
        self._replace_functions.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _inside_replace_scope(self) -> bool:
        return any(self._replace_functions)

    def visit_Call(self, node: ast.Call):
        self._check(node)
        self.generic_visit(node)

    def _check(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func) or ""
        head, _, rest = dotted.partition(".")
        tail = dotted.split(".")[-1]
        is_write = False
        what = dotted or tail
        if isinstance(node.func, ast.Attribute) and node.func.attr in _WRITE_ATTRS:
            is_write = True
        elif dotted.endswith("json.dump") or dotted == "json.dump":
            is_write = True
        elif head in self._numpy_aliases and rest in _NUMPY_WRITERS:
            is_write = True
        elif tail == "open" and _open_write_mode(node):
            is_write = True
        if not is_write:
            return
        if _mentions_tmp(node):
            return
        if self._inside_replace_scope():
            return
        self.report(
            node,
            f"non-atomic persistence write `{what}`; write to a "
            "same-directory tmp sibling and `os.replace` it into place "
            "(see repro.api.result._atomic_write) so a torn write is a "
            "missing file, never a corrupt one",
        )
