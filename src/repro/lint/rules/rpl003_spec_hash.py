"""RPL003: spec-hash stability -- every spec field reaches the serializer.

``RunSpec`` / ``CampaignSpec`` identity is the SHA-256 of
``canonical_json()`` over ``to_dict()``.  A dataclass field that never
reaches ``to_dict`` silently aliases distinct specs onto one hash and
poisons every cache keyed by it.  The rule fires on any ``@dataclass``
class that defines ``canonical_json`` (the marker of a content-hashable
spec class): it must also define ``to_dict``, and every public field
declared in the class body must be mentioned inside ``to_dict`` -- either
as a string literal (dict key, omit-when-unset loop tuple) or as a
``self.<field>`` access.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..base import Rule, dotted_name, register_rule

#: Method whose presence marks a content-hashable spec class.
_HASH_MARKER = "canonical_json"


def _is_dataclass_decorator(node: ast.AST) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    dotted = dotted_name(target)
    return dotted is not None and dotted.split(".")[-1] == "dataclass"


def _annotation_is_classvar(node: ast.AST) -> bool:
    text = ast.unparse(node) if node is not None else ""
    return "ClassVar" in text


@register_rule
class SpecHashRule(Rule):
    code = "RPL003"
    name = "spec-hash-stability"
    description = (
        "every dataclass field of a content-hashable spec class must "
        "appear in its to_dict serializer"
    )

    def visit_ClassDef(self, node: ast.ClassDef):
        if not any(_is_dataclass_decorator(d) for d in node.decorator_list):
            self.generic_visit(node)
            return
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if _HASH_MARKER not in methods:
            self.generic_visit(node)
            return
        fields = self._field_names(node)
        to_dict = methods.get("to_dict")
        if to_dict is None:
            self.report(
                node,
                f"spec class `{node.name}` defines `{_HASH_MARKER}` but no "
                "`to_dict`; content hashing needs an explicit canonical "
                "serializer",
            )
            self.generic_visit(node)
            return
        mentioned = self._mentioned_names(to_dict)
        for field_name in fields:
            if field_name not in mentioned:
                self.report(
                    to_dict,
                    f"spec field `{node.name}.{field_name}` never appears "
                    "in `to_dict`; it is silently excluded from the "
                    "canonical encoding, so distinct specs collide on one "
                    "spec hash (add it, with omit-when-unset handling if "
                    "it must not disturb existing hashes)",
                )
        self.generic_visit(node)

    @staticmethod
    def _field_names(node: ast.ClassDef) -> list:
        names = []
        for stmt in node.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not stmt.target.id.startswith("_")
                and not _annotation_is_classvar(stmt.annotation)
            ):
                names.append(stmt.target.id)
        return names

    @staticmethod
    def _mentioned_names(func: ast.FunctionDef) -> Iterable:
        mentioned = set()
        for sub in ast.walk(func):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                mentioned.add(sub.value)
            elif (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            ):
                mentioned.add(sub.attr)
        return mentioned
