"""RPL002: RNG discipline -- every draw comes from the seed tree.

The reproducibility contract (``docs/architecture.md``, seed-derivation
section) says all randomness flows from one root seed through
:func:`repro.rng.derived_seed` / :func:`repro.rng.spawn`.  Statically
enforced consequences:

* no legacy numpy global RNG state (``np.random.seed``, ``np.random.rand``,
  ``np.random.RandomState``, ...) anywhere -- one call perturbs every
  stream in the process;
* no ``default_rng(...)`` / ``SeedSequence(...)`` construction in library
  code outside the seed-tree module (``repro/rng.py``): ad-hoc generators
  bypass derivation and collide across workers.  Test/benchmark code is
  exempt (``rng_literal_seed_exempt``) -- deterministic literals are
  exactly what tests want;
* no entropy-based seeding (``time.time()``, ``uuid.uuid4()``,
  ``os.urandom``) feeding any RNG constructor, anywhere -- including
  tests, where it silently destroys repeatability;
* no stdlib ``random`` module in library code.
"""

from __future__ import annotations

import ast

from ..base import Rule, dotted_name, numpy_aliases, numpy_from_imports, register_rule

#: Legacy global-state / legacy-generator members of ``numpy.random``.
_LEGACY_RANDOM = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "choice",
    "shuffle",
    "permutation",
    "normal",
    "uniform",
    "standard_normal",
    "exponential",
    "poisson",
    "RandomState",
    "get_state",
    "set_state",
}

#: RNG constructors whose seed argument is inspected for entropy sources.
_RNG_CONSTRUCTORS = {"default_rng", "make_rng", "SeedSequence", "RandomState"}

#: Call paths that are wall-clock / entropy sources.
_ENTROPY_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.perf_counter",
    "uuid.uuid1",
    "uuid.uuid4",
    "os.urandom",
    "secrets.randbits",
    "secrets.token_bytes",
}


@register_rule
class RngDisciplineRule(Rule):
    code = "RPL002"
    name = "rng-discipline"
    description = (
        "no numpy global RNG state, no ad-hoc generator construction "
        "outside the seed-tree module, no entropy-based seeding"
    )

    def run(self):
        cfg = self.ctx.config
        self._aliases = numpy_aliases(self.ctx.tree)
        self._from_imports = numpy_from_imports(self.ctx.tree)
        self._is_seed_tree = cfg.is_seed_tree(self.ctx.logical_path)
        self._literal_ok = cfg.allows_literal_seeds(self.ctx.logical_path)
        self.visit(self.ctx.tree)
        return self.diagnostics

    def _numpy_random_member(self, func: ast.AST):
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self._aliases and rest.startswith("random."):
            return rest[len("random.") :]
        if head in self._from_imports:
            member = self._from_imports[head]
            full = f"{member}.{rest}" if rest else member
            if full.startswith("random."):
                return full[len("random.") :]
        return None

    def visit_Import(self, node: ast.Import):
        if not self._literal_ok:
            for item in node.names:
                if item.name == "random":
                    self.report(
                        node,
                        "stdlib `random` in library code; all randomness "
                        "must flow from the numpy seed tree (repro.rng)",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom):
        if node.module == "random" and not node.level and not self._literal_ok:
            self.report(
                node,
                "stdlib `random` in library code; all randomness must "
                "flow from the numpy seed tree (repro.rng)",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call):
        member = self._numpy_random_member(node.func)
        callee = dotted_name(node.func) or ""
        tail = callee.rsplit(".", maxsplit=1)[-1]

        if member in _LEGACY_RANDOM:
            self.report(
                node,
                f"legacy numpy RNG `{callee}` mutates or reads global "
                "state; draw from a generator spawned by the seed tree "
                "(repro.rng.spawn / derived_seed) instead",
            )
        elif member in {"default_rng", "SeedSequence"} or (
            member is None and tail in {"default_rng", "SeedSequence"}
            and self._is_rng_name(node.func)
        ):
            if not self._is_seed_tree and not self._literal_ok:
                self.report(
                    node,
                    f"ad-hoc `{callee}` construction outside the seed-tree "
                    "module; derive generators via repro.rng "
                    "(make_rng / spawn / derived_seed) so streams stay "
                    "independent and reproducible",
                )

        if tail in _RNG_CONSTRUCTORS:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                entropy = self._entropy_call(arg)
                if entropy is not None:
                    self.report(
                        node,
                        f"seeding `{callee}` from `{entropy}`; "
                        "wall-clock/entropy seeds destroy reproducibility "
                        "-- derive the seed from the run's root seed",
                    )
        self.generic_visit(node)

    def _is_rng_name(self, func: ast.AST) -> bool:
        """Bare ``default_rng`` / ``SeedSequence`` imported from numpy."""
        if isinstance(func, ast.Name):
            return func.id in self._from_imports
        return False

    def _entropy_call(self, node: ast.AST):
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                dotted = dotted_name(sub.func)
                if dotted in _ENTROPY_CALLS:
                    return dotted
        return None
