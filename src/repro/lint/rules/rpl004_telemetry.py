"""RPL004: telemetry vocabulary and span shape.

The metrics export always names the full pre-declared counter vocabulary
(:data:`repro.obs.telemetry.CORE_COUNTERS`), zeros included, so dashboards
and the benchsmoke assertions can rely on the key set.  A call site
counting under an undeclared name silently never reaches an export reader.
Spans must be ``with``-blocks so they balance under exceptions -- manual
``span().__enter__()`` bookkeeping is exactly the leak the exception-safe
design exists to prevent.

Checked at call sites whose receiver is recognizably the active telemetry
(``_obs()``, ``obsmod.active()``, ``telemetry``, ``self.telemetry``, or
any ``*.active()`` call):

* ``.count("name")`` / ``.gauge("name", ...)`` with a literal name not in
  the declared vocabulary -> diagnostic (non-literal names are a merge
  loop over already-validated keys and are skipped);
* ``.span(...)`` anywhere but as a ``with`` context expression ->
  diagnostic.

The telemetry implementation itself (``repro/obs/``) is exempt, and the
vocabulary check does not bind test code (tests deliberately exercise
arbitrary names against the Telemetry machinery); the span-shape check
applies everywhere.
"""

from __future__ import annotations

import ast

from ..base import Rule, RuleContext, dotted_name, register_rule

#: Receiver spellings that mark "the active telemetry object".
_RECEIVER_CALL_NAMES = {"_obs", "active"}
_RECEIVER_VALUE_NAMES = {"telemetry", "obs"}


def _is_telemetry_receiver(node: ast.AST) -> bool:
    """Heuristic: does this expression denote a Telemetry instance?"""
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is not None and dotted.split(".")[-1] in _RECEIVER_CALL_NAMES:
            return True
        return False
    dotted = dotted_name(node)
    if dotted is None:
        return False
    return dotted.split(".")[-1] in _RECEIVER_VALUE_NAMES


@register_rule
class TelemetryVocabularyRule(Rule):
    code = "RPL004"
    name = "telemetry-vocabulary"
    description = (
        "counter/gauge names must be pre-declared; spans must be "
        "with-blocks, never manual begin/end"
    )

    @classmethod
    def applies(cls, ctx: RuleContext) -> bool:
        return not ctx.config.is_telemetry_impl(ctx.logical_path)

    def run(self):
        self._with_contexts = {
            id(item.context_expr)
            for node in ast.walk(self.ctx.tree)
            if isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items
        }
        self.visit(self.ctx.tree)
        return self.diagnostics

    def visit_Call(self, node: ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and _is_telemetry_receiver(func.value):
            if func.attr in {"count", "gauge"} and not self.ctx.is_test_code:
                self._check_vocabulary(node)
            elif func.attr == "span" and id(node) not in self._with_contexts:
                self.report(
                    node,
                    "telemetry span used outside a `with` block; spans "
                    "must be `with`-blocks so they balance under "
                    "exceptions (never manual begin/end)",
                )
        self.generic_visit(node)

    def _check_vocabulary(self, node: ast.Call) -> None:
        if not node.args:
            return
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            return  # dynamic name: a merge loop over validated keys
        name = first.value
        if name not in self.ctx.config.counter_vocabulary:
            self.report(
                node,
                f"telemetry counter/gauge name {name!r} is not in the "
                "declared core vocabulary "
                "(repro.obs.telemetry.CORE_COUNTERS); undeclared names "
                "never reach the always-complete metrics export -- "
                "declare it there (and in the docs table) first",
            )
