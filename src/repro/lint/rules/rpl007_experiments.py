"""RPL007: registered experiments must vectorize (or say why not).

Every experiment registered via ``register_experiment`` is expected to
ship a ``build_batch`` hook so ``Runner(backend="vectorized")`` and the
array-API backend cover it; an experiment that silently lacks one falls
back to the per-topology loop and quietly forfeits the 3-4x batched
speedup (the Runner warns at runtime, but only when that path runs).

A registration without ``build_batch`` must carry the documented
loop-fallback marker -- either a class attribute::

    @register_experiment
    class MyExperiment:
        loop_fallback = "event-driven engine; no batched formulation yet"
        ...

or the comment ``# repro-lint: loop-fallback`` on (or directly above) the
registration line for the ``register_experiment(ExperimentDef(...))``
call form.  The marker is a declared, greppable opt-out, not a lint mute.
"""

from __future__ import annotations

import ast

from ..base import Rule, RuleContext, dotted_name, register_rule

_REGISTER_NAME = "register_experiment"


def _is_register_decorator(node: ast.AST) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    dotted = dotted_name(target)
    return dotted is not None and dotted.split(".")[-1] == _REGISTER_NAME


def _class_defines(node: ast.ClassDef, attr: str) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == attr:
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == attr:
                return True
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name == attr:
                return True
    return False


@register_rule
class ExperimentBatchRule(Rule):
    code = "RPL007"
    name = "experiment-build-batch"
    description = (
        "registered experiments must ship build_batch or carry the "
        "documented loop-fallback marker"
    )

    @classmethod
    def applies(cls, ctx: RuleContext) -> bool:
        return ctx.config.is_experiment_module(ctx.logical_path)

    def visit_ClassDef(self, node: ast.ClassDef):
        if any(_is_register_decorator(d) for d in node.decorator_list):
            if not (
                _class_defines(node, "build_batch")
                or _class_defines(node, "loop_fallback")
                or self.ctx.suppressions.has_loop_fallback_marker(node.lineno)
            ):
                self.report(
                    node,
                    f"registered experiment `{node.name}` ships no "
                    "`build_batch`, so the vectorized/array-API backends "
                    "silently fall back to the per-topology loop; add the "
                    "batched hook or declare `loop_fallback = \"<reason>\"`",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call):
        # register_experiment(ExperimentDef(...)) direct-call form.
        if _is_register_decorator(node) and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Call):
                kwargs = {kw.arg for kw in arg.keywords}
                if (
                    "build_batch" not in kwargs
                    and not self.ctx.suppressions.has_loop_fallback_marker(
                        node.lineno
                    )
                ):
                    self.report(
                        node,
                        "registered experiment definition ships no "
                        "`build_batch`; add the batched hook or put "
                        "`# repro-lint: loop-fallback` (with a reason) on "
                        "the registration line",
                    )
        self.generic_visit(node)
