"""RPL001: no raw numpy compute inside array-API-dispatched scopes.

The modules (or functions) listed in ``LintConfig.dispatched_scopes`` run
the same code on NumPy arrays and torch tensors via the ``xp`` namespace
(:mod:`repro.xp`).  A raw ``np.<fn>(...)`` call in one of those scopes
silently works on the NumPy path and breaks -- or worse, silently
round-trips through host memory -- on the GPU path.  Flagged unless the
call is a recognized host-transfer boundary:

* module-level statements (constant tables are built on the host once);
* members in ``numpy_member_allowlist`` (exception types, dtype and index
  plumbing -- not numerical compute);
* ``np.asarray(..., dtype=bool/int)`` -- host mask/index staging; float
  compute is the bit-identity risk, index plumbing is not;
* any numpy call that is lexically an argument of an ``<xp>.asarray(...)``
  transfer (host-side assembly being shipped to the device);
* values assigned to a ``*_np`` staging name (the repository's documented
  host-staging idiom: ``tx_np = np.asarray(...); xp.asarray(tx_np)``).

Anything else needs an explicit ``# repro-lint: disable=RPL001`` stating
why that line is genuinely host-side.
"""

from __future__ import annotations

import ast

from ..base import Rule, RuleContext, dotted_name, numpy_aliases, numpy_from_imports, register_rule

#: Non-float dtypes acceptable for host-side staging via ``np.asarray``.
_STAGING_DTYPES = {"bool", "int"}


@register_rule
class XpDispatchRule(Rule):
    code = "RPL001"
    name = "xp-dispatch"
    description = (
        "no raw numpy numerical calls inside array-API-dispatched scopes "
        "except at host-transfer boundaries"
    )

    @classmethod
    def applies(cls, ctx: RuleContext) -> bool:
        return ctx.config.dispatched_scope(ctx.logical_path) is not None

    def run(self):
        self._scope = self.ctx.config.dispatched_scope(self.ctx.logical_path)
        self._aliases = numpy_aliases(self.ctx.tree)
        self._from_imports = numpy_from_imports(self.ctx.tree)
        self._qualname: list[str] = []
        self._transfer_args: set[int] = self._collect_transfer_args()
        self.visit(self.ctx.tree)
        return self.diagnostics

    # -- scope bookkeeping ---------------------------------------------
    def _in_scope(self) -> bool:
        if not self._qualname:
            return False  # module level: host-side constant tables
        if self._scope == "*":
            return True
        qual = ".".join(self._qualname)
        return any(
            qual == target or qual.startswith(f"{target}.")
            for target in self._scope
        )

    def visit_ClassDef(self, node: ast.ClassDef):
        self._qualname.append(node.name)
        self.generic_visit(node)
        self._qualname.pop()

    def _visit_function(self, node):
        self._qualname.append(node.name)
        self.generic_visit(node)
        self._qualname.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- exemptions ----------------------------------------------------
    def _collect_transfer_args(self) -> set:
        """ids of nodes inside ``<xp>.asarray(...)`` argument lists."""
        inside: set[int] = set()
        for node in ast.walk(self.ctx.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr != "asarray":
                continue
            root = node.func.value
            if isinstance(root, ast.Name) and root.id in self._aliases:
                continue  # np.asarray itself is not a device transfer
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    inside.add(id(sub))
        return inside

    def _numpy_member(self, func: ast.AST):
        """Member path (``"stack"``, ``"linalg.svd"``) if ``func`` resolves
        into the numpy package, else ``None``."""
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self._aliases and rest:
            return rest
        if head in self._from_imports:
            member = self._from_imports[head]
            return f"{member}.{rest}" if rest else member
        return None

    def _is_staging_asarray(self, node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg == "dtype":
                name = dotted_name(kw.value)
                return name in _STAGING_DTYPES
        return False

    def visit_Assign(self, node: ast.Assign):
        suffix = self.ctx.config.host_staging_suffix
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id.endswith(suffix)
        ):
            return  # declared host staging buffer; don't descend
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call):
        member = self._numpy_member(node.func)
        if member is None or not self._in_scope():
            self.generic_visit(node)
            return
        if member in self.ctx.config.numpy_member_allowlist:
            self.generic_visit(node)
            return
        if id(node) in self._transfer_args:
            self.generic_visit(node)
            return
        if member == "asarray" and self._is_staging_asarray(node):
            self.generic_visit(node)
            return
        self.report(
            node,
            f"raw numpy call `{dotted_name(node.func)}` inside an "
            "array-API-dispatched scope; route it through the active "
            "namespace (`xp`), stage it on the host via `xp.asarray(...)` "
            f"or a `*{self.ctx.config.host_staging_suffix}` variable, or "
            "suppress with a reason if this is a host boundary",
        )
        self.generic_visit(node)
