"""Inline suppression comments.

Two spellings, mirroring the repo's other inline-control idioms:

``# repro-lint: disable=RPL001`` (or ``disable=RPL001,RPL004``)
    Suppress the named rules on this physical line.

``# repro-lint: disable-file=RPL005``
    Suppress the named rules for the whole file (put it near the top).

Suppression is per-rule by design -- there is no blanket ``disable=all``;
muting a contract should name the contract being muted.
"""

from __future__ import annotations

import re

_LINE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")
_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Z0-9,\s]+)")

#: Marker accepted by RPL007 as the documented loop-fallback declaration
#: (distinct from suppression: it is an opt-out the rule defines, not a
#: mute of the rule).
LOOP_FALLBACK_RE = re.compile(r"#\s*repro-lint:\s*loop-fallback\b")


def _codes(blob: str) -> frozenset:
    return frozenset(code.strip() for code in blob.split(",") if code.strip())


class Suppressions:
    """Parsed suppression state for one source file."""

    def __init__(self, source: str):
        self.line_codes: dict[int, frozenset] = {}
        self.file_codes: frozenset = frozenset()
        self.loop_fallback_lines: frozenset = frozenset()
        file_codes: set = set()
        fallback_lines: set = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "#" not in text:
                continue
            match = _LINE_RE.search(text)
            if match:
                self.line_codes[lineno] = _codes(match.group(1))
            match = _FILE_RE.search(text)
            if match:
                file_codes |= _codes(match.group(1))
            if LOOP_FALLBACK_RE.search(text):
                fallback_lines.add(lineno)
        self.file_codes = frozenset(file_codes)
        self.loop_fallback_lines = frozenset(fallback_lines)

    def is_suppressed(self, code: str, line: int) -> bool:
        """Is rule ``code`` suppressed at physical line ``line``?"""
        if code in self.file_codes:
            return True
        return code in self.line_codes.get(line, frozenset())

    def has_loop_fallback_marker(self, line: int) -> bool:
        """Does ``line`` (or the line above it) carry the loop-fallback
        marker?  The line above covers decorator/comment-first styles."""
        return (
            line in self.loop_fallback_lines
            or (line - 1) in self.loop_fallback_lines
        )
