"""``python -m repro.lint``: the command-line entry point.

Exit status: 0 when clean, 1 when any diagnostic fires, 2 on usage
errors (argparse's convention).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .base import RULES
from .config import DEFAULT_CONFIG
from .engine import lint_paths


def _codes_arg(text: str) -> list:
    return [code.strip() for code in text.split(",") if code.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "Statically enforce the repository's reproducibility "
            "contracts (bit-identity, RNG seed tree, spec hashing, "
            "telemetry vocabulary, units, atomic writes)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        type=_codes_arg,
        metavar="RPL001,RPL004",
        help="run only these rule codes",
    )
    parser.add_argument(
        "--ignore",
        type=_codes_arg,
        metavar="RPL005",
        help="skip these rule codes",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--no-default-excludes",
        action="store_true",
        help=(
            "also lint paths the default excludes skip "
            "(lint fixture trees with seeded violations)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for code in RULES:
            rule = RULES.get(code)
            print(f"{code}  {rule.name}: {rule.description}")
        return 0

    try:
        diagnostics = lint_paths(
            args.paths,
            config=DEFAULT_CONFIG,
            select=args.select,
            ignore=args.ignore,
            use_excludes=not args.no_default_excludes,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps([d.to_dict() for d in diagnostics], indent=2))
    else:
        for diagnostic in diagnostics:
            print(diagnostic.format())
        if diagnostics:
            count = len(diagnostics)
            print(f"repro.lint: {count} diagnostic{'s' if count != 1 else ''}")
    return 1 if diagnostics else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
