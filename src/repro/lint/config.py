"""Lint configuration: which contracts bind which files.

The defaults encode this repository's layout (which modules are array-API
dispatched, where the seed tree lives, which modules own persistent
artifacts).  Tests construct ad-hoc configs pointing the same rules at
fixture files, so every scoping decision here is data, not code.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..obs.telemetry import CORE_COUNTERS


def _match(path: str, pattern: str) -> bool:
    """``pattern`` matches ``path`` as a posix suffix or an fnmatch glob."""
    if "*" in pattern or "?" in pattern or "[" in pattern:
        return fnmatch.fnmatch(path, pattern) or fnmatch.fnmatch(
            path, f"*/{pattern}"
        )
    return path == pattern or path.endswith(f"/{pattern}")


@dataclass(frozen=True)
class LintConfig:
    """Everything the rules need to know about the repository layout.

    Parameters
    ----------
    dispatched_scopes:
        Mapping of file pattern -> ``"*"`` (the whole module is
        array-API dispatched) or a tuple of dotted qualnames
        (``"CarrierSenseBatch.decode_mask"``) naming the dispatched
        compute boundaries inside an otherwise host-side module
        (RPL001's scope).
    numpy_member_allowlist:
        ``np.<member>`` paths RPL001 never flags: exception types, dtype
        and index plumbing -- things that are not numerical compute and
        are backend-safe by construction.
    host_staging_suffix:
        Variable-name suffix marking a deliberate host-side staging
        buffer (the ``tx_np = ...; xp.asarray(tx_np)`` idiom); RPL001
        exempts values assigned to such names.
    seed_tree_modules:
        The modules allowed to construct generators/seed sequences
        directly (RPL002's sanctuary).
    rng_literal_seed_exempt:
        File patterns where ad-hoc ``default_rng(<literal>)`` is fine
        (test code wants deterministic literals).
    counter_vocabulary:
        The declared telemetry counter/gauge names (RPL004).
    telemetry_impl_modules:
        The telemetry implementation itself, exempt from RPL004.
    db_suffixes / linear_suffixes:
        Name suffixes marking dB-scale vs linear-power quantities
        (RPL005); mixing the two classes in one arithmetic expression
        without a :mod:`repro.units` converter is flagged.
    atomic_write_modules:
        File patterns whose persistence writes must use the tmp-sibling
        + ``os.replace`` pattern (RPL006).
    experiment_modules:
        File patterns where experiment registrations are checked for
        ``build_batch`` (RPL007).
    exclude_parts:
        Path components that exclude a file from directory walks
        (fixture trees with seeded violations, caches).
    """

    dispatched_scopes: Mapping[str, object] = field(
        default_factory=lambda: {
            "repro/core/batch.py": "*",
            "repro/phy/capacity.py": "*",
            "repro/phy/mcs.py": "*",
            # sim/batch.py is mostly host-side control flow; only the
            # device-resident compute boundaries are dispatched.
            "repro/sim/batch.py": (
                "CarrierSenseBatch.sensed_power_mw",
                "CarrierSenseBatch.busy_mask",
                "CarrierSenseBatch.decode_mask",
                "CarrierSenseBatch.nav_blocked_mask",
                "CarrierSenseBatch.decodable_mask",
                "CarrierSenseBatch.single_tx_busy",
                "RoundBasedEvaluatorBatch._score_round",
            ),
        }
    )
    numpy_member_allowlist: frozenset = frozenset(
        {
            "linalg.LinAlgError",
            "ndarray",
            "dtype",
            "errstate",
            "finfo",
            "iinfo",
            "newaxis",
            "pi",
            "inf",
            "nan",
            "ix_",
            "flatnonzero",
            "array_equal",
            "shares_memory",
        }
    )
    host_staging_suffix: str = "_np"
    seed_tree_modules: tuple = ("repro/rng.py",)
    rng_literal_seed_exempt: tuple = ("tests/*", "benchmarks/*", "*/conftest.py")
    counter_vocabulary: frozenset = frozenset(CORE_COUNTERS)
    telemetry_impl_modules: tuple = ("repro/obs/*",)
    db_suffixes: tuple = ("_db", "_dbm")
    linear_suffixes: tuple = ("_mw", "_w", "_watts")
    atomic_write_modules: tuple = (
        "repro/io.py",
        "repro/api/result.py",
        "repro/api/runner.py",
        "repro/campaign/*",
        "repro/obs/*",
        "repro/channel/traces.py",
    )
    experiment_modules: tuple = ("repro/experiments/*",)
    exclude_parts: tuple = ("__pycache__", ".git", "lint_fixtures", ".pytest_cache")

    # ------------------------------------------------------------------
    # Scope queries (rules call these; tests override by constructing
    # configs whose patterns point at fixture files)
    # ------------------------------------------------------------------
    def dispatched_scope(self, path: str):
        """``None`` | ``"*"`` | tuple of qualnames for ``path``."""
        for pattern, scope in self.dispatched_scopes.items():
            if _match(path, pattern):
                return scope
        return None

    def is_seed_tree(self, path: str) -> bool:
        return self._any(path, self.seed_tree_modules)

    def allows_literal_seeds(self, path: str) -> bool:
        return self._any(path, self.rng_literal_seed_exempt)

    def is_telemetry_impl(self, path: str) -> bool:
        return self._any(path, self.telemetry_impl_modules)

    def is_atomic_write_module(self, path: str) -> bool:
        return self._any(path, self.atomic_write_modules)

    def is_experiment_module(self, path: str) -> bool:
        return self._any(path, self.experiment_modules)

    def _any(self, path: str, patterns: Sequence[str]) -> bool:
        return any(_match(path, pattern) for pattern in patterns)


#: The repository's own layout -- what ``python -m repro.lint`` uses.
DEFAULT_CONFIG = LintConfig()
