"""Diagnostic records: what a rule reports and how it renders."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule code anchored to a file/line/column position.

    Ordering is lexicographic on ``(path, line, col, code)`` so reports are
    stable regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """``path:line:col: CODE message`` -- the human output line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        """JSON-safe mapping (the ``--format json`` record)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
