"""The rule framework: contexts, the visitor base class, and the registry."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Optional, Type

from ..api.registry import Registry
from .config import DEFAULT_CONFIG, LintConfig
from .diagnostics import Diagnostic
from .suppressions import Suppressions

#: Rule registry, keyed by code (``RPL001`` ...) -- the same decorator-
#: registry idiom the experiment/precoder registries use.
RULES: Registry = Registry("lint rule")


def register_rule(cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator registering ``cls`` under its ``code``."""
    if not getattr(cls, "code", None):
        raise ValueError("lint rules must declare a non-empty `code`")
    RULES.add(cls.code, cls)
    return cls


class RuleContext:
    """Everything a rule needs about one file: source, tree, config.

    ``logical_path`` is the posix-style path the scoping config matches
    against; it defaults to the real path but tests override it to make a
    fixture file impersonate, say, ``repro/core/batch.py``.
    """

    def __init__(
        self,
        path: Path,
        source: str,
        tree: ast.Module,
        config: LintConfig = DEFAULT_CONFIG,
        logical_path: Optional[str] = None,
    ):
        self.path = Path(path)
        self.source = source
        self.tree = tree
        self.config = config
        self.logical_path = logical_path or self.path.as_posix()
        self.suppressions = Suppressions(source)

    @property
    def is_test_code(self) -> bool:
        return self.config.allows_literal_seeds(self.logical_path)


class Rule(ast.NodeVisitor):
    """Base class for one lint rule over one file's AST.

    Subclasses set ``code``/``name``/``description``, may narrow
    :meth:`applies` (path scoping), and report via :meth:`report`.  The
    default :meth:`run` simply visits the module tree.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def __init__(self, ctx: RuleContext):
        self.ctx = ctx
        self.diagnostics: list[Diagnostic] = []

    @classmethod
    def applies(cls, ctx: RuleContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (path scoping)."""
        return True

    def run(self) -> list[Diagnostic]:
        self.visit(self.ctx.tree)
        return self.diagnostics

    def report(self, node: ast.AST, message: str) -> None:
        """File a diagnostic at ``node`` unless suppressed inline."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        if self.ctx.suppressions.is_suppressed(self.code, line):
            return
        self.diagnostics.append(
            Diagnostic(
                path=self.ctx.path.as_posix(),
                line=line,
                col=col,
                code=self.code,
                message=message,
            )
        )


# ----------------------------------------------------------------------
# Shared AST helpers the rules lean on
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def numpy_aliases(tree: ast.Module) -> frozenset:
    """Names the module binds to the ``numpy`` package itself."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy":
                    aliases.add(item.asname or "numpy")
    return frozenset(aliases)


def numpy_from_imports(tree: ast.Module) -> dict:
    """``{local_name: member_path}`` for ``from numpy[.sub] import X``."""
    members: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and not node.level:
            if node.module == "numpy" or node.module.startswith("numpy."):
                prefix = node.module[len("numpy") :].lstrip(".")
                for item in node.names:
                    path = f"{prefix}.{item.name}" if prefix else item.name
                    members[item.asname or item.name] = path
    return members
