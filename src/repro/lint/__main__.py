"""``python -m repro.lint`` dispatches to :func:`repro.lint.cli.main`."""

from .cli import main

raise SystemExit(main())
