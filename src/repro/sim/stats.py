"""Aggregation helpers over multiple simulation runs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .network import SimulationResult


@dataclass(frozen=True)
class RunSummary:
    """Summary statistics across a batch of simulation results."""

    network_capacities_bps_hz: np.ndarray
    mean_concurrent_streams: np.ndarray
    collision_fractions: np.ndarray

    @property
    def median_capacity(self) -> float:
        return float(np.median(self.network_capacities_bps_hz))

    @property
    def median_concurrency(self) -> float:
        return float(np.median(self.mean_concurrent_streams))


def summarize(results: list[SimulationResult]) -> RunSummary:
    """Collect the headline series from a batch of runs.

    Raises :class:`ValueError` on an empty result list -- summarizing
    nothing would otherwise surface later as NaN medians plus a
    ``RuntimeWarning`` deep inside numpy.
    """
    if not results:
        raise ValueError(
            "summarize() needs at least one SimulationResult; got an empty "
            "list (did every run get filtered out?)"
        )
    return RunSummary(
        network_capacities_bps_hz=np.asarray(
            [r.network_capacity_bps_hz for r in results]
        ),
        mean_concurrent_streams=np.asarray([r.mean_concurrent_streams for r in results]),
        collision_fractions=np.asarray([r.collision_fraction for r in results]),
    )


def jain_fairness(per_client_throughput: np.ndarray) -> float:
    """Jain's fairness index of a per-client throughput vector.

    Raises :class:`ValueError` on an empty vector or all-zero throughput:
    the index is 0/0 there, and silently reporting a number (or NaN plus a
    ``RuntimeWarning``) hides that the run delivered nothing.
    """
    x = np.asarray(per_client_throughput, dtype=float)
    if x.size == 0:
        raise ValueError("jain_fairness() needs at least one client throughput")
    if np.all(x == 0):
        raise ValueError(
            "jain_fairness() is undefined for all-zero throughput (0/0); "
            "the run delivered no bytes, check it before asking for fairness"
        )
    return float((x.sum() ** 2) / (x.size * np.sum(x**2)))
