"""Aggregation helpers over multiple simulation runs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .network import SimulationResult


@dataclass(frozen=True)
class RunSummary:
    """Summary statistics across a batch of simulation results."""

    network_capacities_bps_hz: np.ndarray
    mean_concurrent_streams: np.ndarray
    collision_fractions: np.ndarray

    @property
    def median_capacity(self) -> float:
        return float(np.median(self.network_capacities_bps_hz))

    @property
    def median_concurrency(self) -> float:
        return float(np.median(self.mean_concurrent_streams))


def summarize(results: list[SimulationResult]) -> RunSummary:
    """Collect the headline series from a batch of runs."""
    if not results:
        raise ValueError("need at least one result")
    return RunSummary(
        network_capacities_bps_hz=np.asarray(
            [r.network_capacity_bps_hz for r in results]
        ),
        mean_concurrent_streams=np.asarray([r.mean_concurrent_streams for r in results]),
        collision_fractions=np.asarray([r.collision_fraction for r in results]),
    )


def jain_fairness(per_client_throughput: np.ndarray) -> float:
    """Jain's fairness index of a per-client throughput vector."""
    x = np.asarray(per_client_throughput, dtype=float)
    if x.size == 0:
        raise ValueError("need at least one client")
    if np.all(x == 0):
        return 1.0
    return float((x.sum() ** 2) / (x.size * np.sum(x**2)))
