"""Deprecated shim: :class:`EventQueue` moved to :mod:`repro.sim`."""

from __future__ import annotations

import warnings

from . import EventQueue

__all__ = ["EventQueue"]

warnings.warn(
    "repro.sim.engine is deprecated; import EventQueue from repro.sim",
    DeprecationWarning,
    stacklevel=2,
)
