"""Batched round-based network evaluation: whole seed batches as array math.

:class:`RoundBasedEvaluatorBatch` is the vectorized mirror of N independent
:class:`~repro.sim.rounds.RoundBasedEvaluator` instances, evaluating every
topology draw of a batch simultaneously:

* **carrier sense** -- :class:`CarrierSenseBatch` computes busy verdicts and
  NAV/preamble-capture decode checks as masked reductions over the stacked
  ``(batch, n_antennas, n_antennas)`` cross-power maps;
* **client selection** -- :class:`~repro.core.selection.BatchDeficitRoundRobin`
  plus stacked tag tables pick clients with per-item masks, visiting
  antennas in the same order as the scalar greedy loop;
* **precoding and scoring** -- per-round transmit sets are grouped by
  sub-channel shape and solved through :mod:`repro.core.batch`'s stacked
  precoders; SINRs include cross-AP interference accumulated in the scalar
  evaluator's order.

The contract is the vectorized backend's usual one, asserted by the
equivalence suite: item ``i`` of every result is **bit-identical** to
running the scalar evaluator on scenario ``i`` alone.  The carrier-sense
side of that contract holds because both implementations reduce masked
*full-length* antenna rows (see :mod:`repro.mac.carrier_sense`); the
linear-algebra side holds because both reduce the same trailing axes of
the same stacked operands.
"""

from __future__ import annotations

import numpy as np

from .. import rng as rng_mod
from .. import units
from .. import xp as xpmod
from ..assoc import CoordinationMode, build_batch_association_state
from ..channel.batch import ChannelBatch
from ..channel.model import apply_csi_error
from ..config import MacConfig, SimConfig
from ..core.batch import (
    naive_scaled_precoder as batch_naive_precoder,
    power_balanced_precoder as batch_power_balanced_precoder,
)
from ..core.selection import BatchDeficitRoundRobin
from ..mac.frames import data_fraction
from ..mobility import build_mobility_state
from ..obs import active as _obs
from ..phy.sounding import sounding_overhead_us
from .network import MacMode
from .rounds import RoundBasedResult, RoundResult, build_traffic_state


class CarrierSenseBatch:
    """Stacked :class:`~repro.mac.carrier_sense.CarrierSenseModel`.

    Parameters
    ----------
    cross_power_dbm:
        ``(batch, n_antennas, n_antennas)`` sensing powers, one map per
        topology draw (:meth:`repro.channel.batch.ChannelBatch.antenna_cross_power_dbm`).
    mac:
        Thresholds shared by the whole batch.

    Active transmitter sets are boolean masks ``(batch, n_antennas)``; all
    verdicts come back stacked.  Every aggregate is a masked reduction over
    the full trailing antenna axis, bit-identical to the scalar model's
    masked row sums.

    The reductions run on the :mod:`repro.xp` namespace that is *active at
    construction* (the cross-power map is derived on the host once, then
    transferred); verdicts always come back as host NumPy arrays, because
    the planning logic that consumes them is per-item Python bookkeeping.
    On the default NumPy/float64 namespace every transfer is the identity,
    preserving bit-identity with the scalar model.
    """

    def __init__(self, cross_power_dbm: np.ndarray, mac: MacConfig):
        cross = np.asarray(cross_power_dbm, dtype=float)
        if cross.ndim != 3 or cross.shape[1] != cross.shape[2]:
            raise ValueError(
                "cross_power_dbm must be a (batch, n_antennas, n_antennas) stack"
            )
        self._mac = mac
        xp = xpmod.active()
        self._xp = xp
        cross_mw = units.dbm_to_mw(np.where(np.isinf(cross), -np.inf, cross))
        decodable = cross >= mac.nav_decode_dbm
        eye = np.eye(cross.shape[1], dtype=bool)
        decodable[:, eye] = True
        _obs().count("xp.to_device.calls", 3)
        _obs().count(
            "xp.to_device.bytes",
            cross_mw.nbytes + decodable.nbytes + eye.nbytes,
        )
        self._cross_mw = xp.asarray(cross_mw, dtype=xp.float_dtype)
        self._decodable = xp.asarray(decodable, dtype=xp.bool_dtype)
        self._not_self = xp.asarray(~eye, dtype=xp.bool_dtype)

    @property
    def n_items(self) -> int:
        return self._cross_mw.shape[0]

    @property
    def n_antennas(self) -> int:
        return self._cross_mw.shape[1]

    def _as_tx_mask(self, tx_mask) -> np.ndarray:
        mask = np.asarray(tx_mask, dtype=bool)
        if mask.shape != (self.n_items, self.n_antennas):
            raise ValueError(
                f"tx_mask must be (batch, n_antennas) = "
                f"({self.n_items}, {self.n_antennas}), got {mask.shape}"
            )
        return mask

    def sensed_power_mw(self, tx_mask, listeners=None) -> np.ndarray:
        """Aggregate sensed power per listener, ``(batch, n_listeners)``
        (each listener's own transmission excluded, as in the scalar model).

        ``listeners`` restricts the listener axis to the given antenna
        indices (default: all antennas); each listener's reduction is the
        same masked full-length row sum either way.
        """
        xp = self._xp
        tx_np = self._as_tx_mask(tx_mask)
        _obs().count("xp.to_device.calls")
        _obs().count("xp.to_device.bytes", tx_np.nbytes)
        tx = xp.asarray(tx_np, dtype=xp.bool_dtype)
        not_self = self._not_self
        cross = self._cross_mw
        if listeners is not None:
            listeners = np.asarray(listeners, dtype=int)
            not_self = not_self[listeners]
            cross = cross[:, listeners, :]
        mask = tx[:, None, :] & not_self[None, :, :]
        return xpmod.to_numpy(xp.sum(xp.where(mask, cross, 0.0), axis=-1))

    def busy_mask(self, tx_mask) -> np.ndarray:
        """Energy-detect verdicts ``(batch, n_antennas)``; transmitting
        antennas are busy by definition."""
        tx = self._as_tx_mask(tx_mask)
        busy = self.sensed_power_mw(tx) >= self._mac.cs_threshold_mw
        return busy | tx

    def decode_mask(self, tx_mask, listeners=None) -> np.ndarray:
        """Preamble-decode verdicts ``(batch, listener, transmitter)`` with
        capture against the other transmitters in ``tx_mask``.

        Entry ``[b, l, t]`` equals the scalar
        ``decodes(l, t, interferers=active_set_b)``; ``listeners`` restricts
        (and reorders) the listener axis like in :meth:`sensed_power_mw`.
        """
        xp = self._xp
        tx_np = self._as_tx_mask(tx_mask)
        _obs().count("xp.to_device.calls")
        _obs().count("xp.to_device.bytes", tx_np.nbytes)
        tx = xp.asarray(tx_np, dtype=xp.bool_dtype)
        not_self_l = self._not_self
        cross_l = self._cross_mw
        decodable = self._decodable
        if listeners is not None:
            listeners = np.asarray(listeners, dtype=int)
            not_self_l = not_self_l[listeners]
            cross_l = cross_l[:, listeners, :]
            decodable = decodable[:, listeners, :]
        # interferers[b, l, t, k]: active antennas other than l and t.
        interferer = (
            tx[:, None, None, :]
            & not_self_l[None, :, None, :]
            & self._not_self[None, None, :, :]
        )
        interference = xp.sum(
            xp.where(interferer, cross_l[:, :, None, :], 0.0), axis=-1
        )
        signal = cross_l
        capture = units.db_to_linear(self._mac.preamble_capture_db)
        captures = (interference <= 0) | (signal >= capture * interference)
        return xpmod.to_numpy(decodable & captures)

    def nav_blocked_mask(self, tx_mask, listeners=None) -> np.ndarray:
        """Listeners whose NAV a transmission in ``tx_mask`` would set,
        ``(batch, n_listeners)``: the antenna decodes at least one active
        transmitter's preamble through the aggregate interference."""
        tx = self._as_tx_mask(tx_mask)
        return (self.decode_mask(tx, listeners) & tx[:, None, :]).any(axis=-1)

    def decodable_mask(self) -> np.ndarray:
        """Clean-medium decode verdicts ``(batch, listener, transmitter)``
        (a copy): the scalar ``decodes(l, t)`` with no interferers."""
        return xpmod.to_numpy(self._decodable).copy()

    def single_tx_busy(self) -> np.ndarray:
        """Energy-detect verdicts for one lone transmitter,
        ``(batch, listener, transmitter)``: the scalar ``is_busy(l, [t])``."""
        return xpmod.to_numpy(self._cross_mw >= self._mac.cs_threshold_mw)


def _mutual_overhear_from_decodable(
    decodable: np.ndarray, antennas_of: list[np.ndarray]
) -> np.ndarray:
    """Per-item §5 mutual-overhearing rule from clean-medium decode verdicts:
    every AP pair must decode each other's preambles in both directions."""
    n_items = decodable.shape[0]
    ok = np.ones(n_items, dtype=bool)
    items = range(n_items)
    for ap_a in range(len(antennas_of)):
        for ap_b in range(ap_a + 1, len(antennas_of)):
            ants_a = antennas_of[ap_a]
            ants_b = antennas_of[ap_b]
            ok &= decodable[np.ix_(items, ants_a, ants_b)].any(axis=(1, 2))
            ok &= decodable[np.ix_(items, ants_b, ants_a)].any(axis=(1, 2))
    return ok


class RoundBasedEvaluatorBatch:
    """Quasi-static evaluation of a batch of same-shape scenarios.

    Parameters
    ----------
    scenarios:
        One :class:`~repro.topology.scenarios.Scenario` per topology draw;
        all must share radio/MAC constants and the same AP/antenna/client
        ownership structure so stacks are rectangular.
    mode:
        CAS or MIDAS, applied to the whole batch.
    sim:
        Simulation constants shared by the batch.
    seeds:
        One seed per scenario; item ``i`` consumes randomness exactly like
        ``RoundBasedEvaluator(scenarios[i], mode, sim, seed=seeds[i])``.
    traffic / traffic_kwargs / ampdu:
        Finite-load arrivals, as in the scalar evaluator.  One
        :class:`~repro.traffic.TrafficState` is held per item and driven
        with the same floats in the same order as a scalar run, so the
        per-item delay/throughput series are bit-identical.  Backlog enters
        the engine as masked eligibility arrays over the existing
        DRR/tag-selection masks.
    """

    def __init__(
        self,
        scenarios,
        mode: MacMode,
        sim: SimConfig | None = None,
        seeds=None,
        traffic=None,
        traffic_kwargs=None,
        ampdu=None,
        mobility=None,
        mobility_kwargs=None,
        resound_period_rounds: int = 1,
        association=None,
        association_kwargs=None,
        coordination=None,
    ):
        scenarios = list(scenarios)
        if not scenarios:
            raise ValueError("need at least one scenario")
        seeds = [0] * len(scenarios) if seeds is None else list(seeds)
        if len(seeds) != len(scenarios):
            raise ValueError("need one seed per scenario")
        first = scenarios[0]
        if any(s.radio != first.radio or s.mac != first.mac for s in scenarios[1:]):
            raise ValueError("batched scenarios must share radio and MAC configs")
        deployments = [s.deployment for s in scenarios]
        structure = deployments[0]
        for dep in deployments[1:]:
            if not (
                np.array_equal(dep.antenna_ap, structure.antenna_ap)
                and np.array_equal(dep.client_ap, structure.client_ap)
            ):
                raise ValueError(
                    "batched deployments must share one AP/antenna/client "
                    "ownership structure"
                )
        self.scenarios = scenarios
        self.mode = mode
        self.sim = sim or SimConfig()
        self.n_items = len(scenarios)
        self.n_aps = structure.n_aps
        self._n_clients = structure.n_clients
        self._antennas_of = [structure.antennas_of(ap) for ap in range(self.n_aps)]
        self._clients_of = [structure.clients_of(ap) for ap in range(self.n_aps)]

        if resound_period_rounds < 1:
            raise ValueError("resound_period_rounds must be >= 1")
        # Per-item generator trees, spawned exactly like the scalar evaluator
        # (which always spawns four children; traffic uses the third,
        # mobility the fourth).
        channel_rngs, self._csi_rngs, traffic_rngs, mobility_rngs = [], [], [], []
        for seed in seeds:
            root = rng_mod.make_rng(seed)
            channel_rng, csi_rng, traffic_rng, mobility_rng = rng_mod.spawn(root, 4)
            channel_rngs.append(channel_rng)
            self._csi_rngs.append(csi_rng)
            traffic_rngs.append(traffic_rng)
            mobility_rngs.append(mobility_rng)
        states = [
            build_traffic_state(
                traffic, traffic_kwargs, structure.n_clients, traffic_rngs[b],
                first, ampdu,
            )
            for b in range(self.n_items)
        ]
        self._traffic = None if states[0] is None else states
        mobility_states = [
            build_mobility_state(
                mobility, mobility_kwargs, deployments[b], mobility_rngs[b]
            )
            for b in range(self.n_items)
        ]
        self._mobility = None if mobility_states[0] is None else mobility_states
        self._resound_period = int(resound_period_rounds)
        self._round_index = 0
        #: Stacked stale-CSI snapshots of a mobility run (see the scalar
        #: evaluator); ``None`` until the first sounding round.
        self._h_csi: np.ndarray | None = None
        self.channel = ChannelBatch(deployments, first.radio, channel_rngs)
        self.carrier_sense = CarrierSenseBatch(
            self.channel.antenna_cross_power_dbm(), first.mac
        )
        # Global-axis DRR counters (see the scalar evaluator): membership
        # can change at a handoff without resizing scheduler state, and the
        # default static association selects the same clients bit for bit.
        self._drr = {
            ap: BatchDeficitRoundRobin(self.n_items, self._n_clients)
            for ap in range(self.n_aps)
        }
        #: One scalar :class:`~repro.assoc.AssociationState` per item --
        #: the batch engine consumes literally the scalar association
        #: decisions, stacked, so loop/vectorized equivalence of handoff
        #: series is structural rather than re-derived.
        self.association = build_batch_association_state(
            association, association_kwargs, deployments, first.mac, coordination,
        )
        self.association.resound(self.channel.client_rx_power_dbm())

    # ------------------------------------------------------------------
    @classmethod
    def mutual_overhear_mask(cls, scenarios, seeds=None) -> np.ndarray:
        """Per-item mutual-overhearing verdicts without a full evaluator.

        Identical to ``cls(scenarios, mode, seeds=seeds).aps_mutually_overhear()``
        -- the per-item generator tree and shadowing node order are the same
        -- but skips the DRR/tag/fading state that rejected topologies never
        use.  Experiments gate large candidate batches with this, then build
        evaluators for the survivors only.
        """
        scenarios = list(scenarios)
        seeds = [0] * len(scenarios) if seeds is None else list(seeds)
        channel_rngs = []
        for seed in seeds:
            root = rng_mod.make_rng(seed)
            channel_rng, __ = rng_mod.spawn(root, 2)
            channel_rngs.append(channel_rng)
        first = scenarios[0]
        channel = ChannelBatch(
            [s.deployment for s in scenarios], first.radio, channel_rngs
        )
        sense = CarrierSenseBatch(channel.antenna_cross_power_dbm(), first.mac)
        structure = first.deployment
        return _mutual_overhear_from_decodable(
            sense.decodable_mask(),
            [structure.antennas_of(ap) for ap in range(structure.n_aps)],
        )

    def antennas_of(self, ap: int) -> np.ndarray:
        """Global antenna indices of AP ``ap`` (shared by all items)."""
        return self._antennas_of[ap].copy()

    def clients_of(self, ap: int) -> np.ndarray:
        """Global client indices of AP ``ap`` (shared by all items)."""
        return self._clients_of[ap].copy()

    def aps_mutually_overhear(self) -> np.ndarray:
        """Per-item verdict of :func:`repro.sim.network.aps_mutually_overhear`
        on the batch's own carrier-sense state, ``(batch,)`` bool."""
        return _mutual_overhear_from_decodable(
            self.carrier_sense.decodable_mask(), self._antennas_of
        )

    def free_antenna_masks(self, ap: int, active_mask: np.ndarray) -> np.ndarray:
        """Per-item mask over AP ``ap``'s antennas whose physical CS and NAV
        permit transmission given the active set, ``(batch, n_own)`` --
        the stacked mirror of the scalar ``_free_antennas``."""
        own = self._antennas_of[ap]
        sensed = self.carrier_sense.sensed_power_mw(active_mask, listeners=own)
        busy = sensed >= self.scenarios[0].mac.cs_threshold_mw
        nav = self.carrier_sense.nav_blocked_mask(active_mask, listeners=own)
        return ~busy & ~nav

    # ------------------------------------------------------------------
    def _eligibility(self, ap: int) -> tuple[np.ndarray, np.ndarray]:
        """Stacked (primary-class, any-class) backlog masks over *all*
        clients restricted to AP ``ap``'s current members, each
        ``(batch, n_clients)`` -- the scalar ``_eligibility`` evaluated per
        item.  The membership mask twice under full buffer."""
        member_mask = self.association.members_mask(ap)
        if self._traffic is None:
            return member_mask, member_mask
        primary_mask = np.zeros((self.n_items, self._n_clients), dtype=bool)
        any_mask = np.zeros((self.n_items, self._n_clients), dtype=bool)
        for b, state in enumerate(self._traffic):
            members = self.association.items[b].members(ap)
            if members.size == 0:
                continue
            any_mask[b, members] = state.backlog_mask(members)
            primary = state.primary_class(members)
            primary_mask[b, members] = (
                any_mask[b, members]
                if primary is None
                else state.backlog_mask(members, primary)
            )
        return primary_mask, any_mask

    def _select_clients(
        self,
        ap: int,
        use_mask: np.ndarray,
        participate: np.ndarray,
        allowed: np.ndarray | None = None,
    ) -> tuple[np.ndarray, list[list[int]]]:
        """Masked client selection for AP ``ap`` this round.

        ``use_mask`` flags, per item, which of the AP's antennas transmit
        (own-antenna order); ``participate`` gates whole items; ``allowed``
        (optional, ``(batch, n_clients)``) is the coordination veto over
        clients already covered by a committed neighboring transmission.
        Returns the chosen-client mask (global client axis) and the
        per-item pick order (which fixes the stream order of the precoded
        burst, as in the scalar evaluator).

        Finite load gates every pick through the stacked backlog masks:
        primary-class candidates first, then any-backlog fill-in -- the
        per-item mirror of the scalar gated pick (``pick`` is pure, so the
        extra masked call changes nothing when the first pick lands).
        """
        n_own = use_mask.shape[1]
        drr = self._drr[ap]
        primary_mask, any_mask = self._eligibility(ap)
        if allowed is not None:
            primary_mask = primary_mask & allowed
            any_mask = any_mask & allowed
        member_mask = self.association.members_mask(ap)
        chosen_mask = np.zeros((self.n_items, self._n_clients), dtype=bool)
        chosen_lists: list[list[int]] = [[] for _ in range(self.n_items)]

        def take(candidates: np.ndarray) -> None:
            first = drr.pick(candidates & primary_mask)
            fallback = drr.pick(candidates & any_mask)
            picks = np.where(first >= 0, first, fallback)
            taken = np.flatnonzero(picks >= 0)
            chosen_mask[taken, picks[taken]] = True
            for b in taken:
                chosen_lists[b].append(int(picks[b]))

        if self.mode is MacMode.CAS:
            # The scalar loop runs min(n_antennas, n_members) times; here
            # n_own suffices -- once an item's eligible members are
            # exhausted every further take() is a no-op for it.
            for __ in range(n_own):
                take(member_mask & ~chosen_mask & participate[:, None])
            return chosen_mask, chosen_lists
        tags = self.association.tag_stack(ap)
        for local in range(n_own):
            candidates = (
                tags[:, :, local]
                & ~chosen_mask
                & use_mask[:, local][:, None]
                & participate[:, None]
            )
            take(candidates)
        return chosen_mask, chosen_lists

    def _plan_round(
        self, primary_ap: int, item_active: np.ndarray
    ) -> tuple[list[list[tuple[int, np.ndarray, list[int]]]], np.ndarray, dict]:
        """Greedy §5.3.1 channel-access planning over the whole batch."""
        order = [(primary_ap + i) % self.n_aps for i in range(self.n_aps)]
        active_mask = np.zeros(
            (self.n_items, self.carrier_sense.n_antennas), dtype=bool
        )
        planned: list[list[tuple[int, np.ndarray, list[int]]]] = [
            [] for _ in range(self.n_items)
        ]
        served_masks: dict[int, np.ndarray] = {}
        coordinated = (
            self.association.coordination is CoordinationMode.COORDINATED_SCHEDULING
        )
        for position, ap in enumerate(order):
            own = self._antennas_of[ap]
            n_own = len(own)
            # Coordinated scheduling: APs planning after others skip clients
            # already covered by a committed transmission (per item; an item
            # with nothing active yet keeps its full candidate set).
            allowed = None
            if coordinated and position > 0:
                allowed = ~self.association.overheard_masks(active_mask)
            if position == 0:
                free = np.ones((self.n_items, n_own), dtype=bool)
            else:
                free = self.free_antenna_masks(ap, active_mask)
            if self.mode is MacMode.CAS:
                # One channel state per AP: all antennas or silence.
                participate = item_active & (
                    np.ones(self.n_items, dtype=bool)
                    if position == 0
                    else free.all(axis=1)
                )
                use = np.repeat(participate[:, None], n_own, axis=1)
            else:
                use = (
                    np.ones((self.n_items, n_own), dtype=bool)
                    if position == 0
                    else free
                )
                participate = item_active & use.any(axis=1)
                use = use & participate[:, None]
            chosen_mask, chosen_lists = self._select_clients(
                ap, use, participate, allowed
            )
            committed = participate & chosen_mask.any(axis=1)
            served_masks[ap] = chosen_mask & committed[:, None]
            active_mask[:, own] |= use & committed[:, None]
            for b in np.flatnonzero(committed):
                planned[b].append((ap, own[use[b]], chosen_lists[b]))
        for b in range(self.n_items):
            self.association.note_served(
                b, [c for __, __, chosen in planned[b] for c in chosen]
            )
        return planned, active_mask, served_masks

    def _settle_round(self, served_masks: dict, item_active: np.ndarray) -> None:
        """Per-AP DRR settlement; every AP settles every round (blocked APs
        credit their waiting clients), mirroring the scalar evaluator."""
        for ap in range(self.n_aps):
            served = served_masks[ap]
            has_served = served.any(axis=1)
            member = self.association.members_mask(ap)
            self._drr[ap].settle(served, member & ~served & has_served[:, None])
            self._drr[ap].credit(member & (item_active & ~has_served)[:, None])

    def _score_round(
        self, planned: list, item_active: np.ndarray, sounding_round: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, dict]:
        """Precode every planned set and score with mutual interference.

        Heavy solves and matmuls run grouped by sub-channel shape through
        the stacked precoders; per-item assembly follows the scalar
        accumulation order so every float matches bit for bit.

        Slot gathering and CSI-noise draws stay on the host (per-item
        generator streams, the RNG-bridge contract); each grouped stack is
        then transferred once to the active :mod:`repro.xp` namespace for
        the precoder solves and interference matmuls, and the per-slot
        SINR rows come back to NumPy for the traffic/assembly bookkeeping.
        """
        xp = xpmod.active()
        with _obs().span("precode"):
            h = self.channel.channel_matrices()
            # Precoders see the stale CSI snapshot of a mobility run; scoring
            # below always uses the current channel (the scalar contract).
            if self._mobility is not None and sounding_round:
                self._h_csi = h  # never mutated; aliasing the snapshot is safe
            h_csi = h if self._h_csi is None else self._h_csi
            radio = self.scenarios[0].radio
            noise_mw = radio.noise_mw

            # Collect per-slot sub-channels; CSI noise draws consume each
            # item's own generator in planned order, like the scalar loop.
            slot_true: dict[tuple[int, int], np.ndarray] = {}
            slot_clients: dict[tuple[int, int], np.ndarray] = {}
            slot_estimates: dict[tuple[int, int], np.ndarray] = {}
            for b in np.flatnonzero(item_active):
                for s, (ap, antennas, chosen) in enumerate(planned[b]):
                    clients_global = np.asarray(chosen, dtype=int)
                    slot_true[(b, s)] = h[b][np.ix_(clients_global, antennas)]
                    slot_clients[(b, s)] = clients_global
                    slot_estimates[(b, s)] = apply_csi_error(
                        h_csi[b][np.ix_(clients_global, antennas)],
                        self.sim.csi_error_std,
                        self._csi_rngs[b],
                    )

            # Stacked precoding, grouped by (n_streams, n_antennas).
            precoders: dict[tuple[int, int], np.ndarray] = {}
            groups: dict[tuple[int, ...], list[tuple[int, int]]] = {}
            for key, h_est in slot_estimates.items():
                groups.setdefault(h_est.shape, []).append(key)
            for keys in groups.values():
                est_stack_np = np.stack([slot_estimates[k] for k in keys])
                _obs().count("xp.to_device.calls")
                _obs().count("xp.to_device.bytes", est_stack_np.nbytes)
                stack = xp.asarray(est_stack_np, dtype=xp.complex_dtype)
                if self.mode is MacMode.CAS:
                    v = batch_naive_precoder(stack, radio.per_antenna_power_mw)
                else:
                    v = batch_power_balanced_precoder(
                        stack, radio.per_antenna_power_mw, radio.noise_mw
                    ).v
                for index, key in enumerate(keys):
                    precoders[key] = v[index]

        with _obs().span("score"):
            # Desired/intra-cell terms, grouped by the same shapes.
            desired: dict[tuple[int, int], np.ndarray] = {}
            intra: dict[tuple[int, int], np.ndarray] = {}
            for keys in groups.values():
                true_stack_np = np.stack([slot_true[k] for k in keys])
                _obs().count("xp.to_device.calls")
                _obs().count("xp.to_device.bytes", true_stack_np.nbytes)
                true_stack = xp.asarray(true_stack_np, dtype=xp.complex_dtype)
                own = xp.abs(true_stack @ xp.stack([precoders[k] for k in keys])) ** 2
                diag = xp.diagonal(own, axis1=-2, axis2=-1)
                row_sums = xp.sum(own, axis=-1)
                for index, key in enumerate(keys):
                    desired[key] = diag[index]
                    intra[key] = row_sums[index] - diag[index]

            # Cross-AP interference, grouped by (n_rx, n_tx_other, n_streams_other).
            pair_groups: dict[tuple[int, int, int], list[tuple[int, int, int]]] = {}
            for b in np.flatnonzero(item_active):
                for s in range(len(planned[b])):
                    for other in range(len(planned[b])):
                        if other == s:
                            continue
                        k_rx = len(slot_clients[(b, s)])
                        __, other_ants, other_chosen = planned[b][other]
                        pair_groups.setdefault(
                            (k_rx, len(other_ants), len(other_chosen)), []
                        ).append((b, s, other))
            cross_terms: dict[tuple[int, int, int], np.ndarray] = {}
            for keys in pair_groups.values():
                h_cross_np = np.stack(
                    [
                        h[b][np.ix_(slot_clients[(b, s)], planned[b][other][1])]
                        for b, s, other in keys
                    ]
                )
                _obs().count("xp.to_device.calls")
                _obs().count("xp.to_device.bytes", h_cross_np.nbytes)
                h_cross = xp.asarray(h_cross_np, dtype=xp.complex_dtype)
                v_other = xp.stack([precoders[(b, other)] for b, s, other in keys])
                summed = xp.sum(xp.abs(h_cross @ v_other) ** 2, axis=-1)
                for index, key in enumerate(keys):
                    cross_terms[key] = summed[index]

            # Per-slot external interference, accumulated in the scalar order.
            externals: dict[tuple[int, int], np.ndarray] = {}
            for b in np.flatnonzero(item_active):
                for s in range(len(planned[b])):
                    external = xp.zeros(len(slot_clients[(b, s)]), dtype=xp.float_dtype)
                    for other in range(len(planned[b])):
                        if other != s:
                            external = external + cross_terms[(b, s, other)]
                    externals[(b, s)] = external

            # SINR -> per-slot capacity, grouped by stream count (stacked
            # elementwise ops plus the same trailing-axis log2 reduction).  The
            # per-slot SINR rows are kept for the finite-load service step.
            slot_capacity: dict[tuple[int, int], float] = {}
            slot_sinrs: dict[tuple[int, int], np.ndarray] = {}
            k_groups: dict[int, list[tuple[int, int]]] = {}
            for key, external in externals.items():
                k_groups.setdefault(len(external), []).append(key)
            for keys in k_groups.values():
                sinr = xp.stack([desired[k] for k in keys]) / (
                    noise_mw
                    + xp.stack([intra[k] for k in keys])
                    + xp.stack([externals[k] for k in keys])
                )
                sums = xpmod.to_numpy(xp.sum(xp.log2(1.0 + sinr), axis=-1))
                sinr_rows = xpmod.to_numpy(sinr)
                for index, key in enumerate(keys):
                    slot_capacity[key] = float(sums[index])
                    slot_sinrs[key] = sinr_rows[index]

            # Per-item assembly in the scalar accumulation order.  These
            # are host-side result buffers (everything feeding them has
            # already crossed to_numpy), hence the RPL001 suppressions.
            capacity = np.zeros(self.n_items)  # repro-lint: disable=RPL001
            n_streams = np.zeros(self.n_items, dtype=int)  # repro-lint: disable=RPL001
            per_ap_streams = np.zeros((self.n_items, self.n_aps), dtype=int)  # repro-lint: disable=RPL001
            for b in np.flatnonzero(item_active):
                total = 0.0
                for s, (ap, __, chosen) in enumerate(planned[b]):
                    total += slot_capacity[(b, s)]
                    n_streams[b] += len(chosen)
                    per_ap_streams[b, ap] = len(chosen)
                capacity[b] = total
        return capacity, n_streams, per_ap_streams, slot_sinrs

    def _serve_round(
        self, planned: list, slot_sinrs: dict, item_active: np.ndarray,
        with_sounding: bool,
    ) -> list:
        """Drain each item's queues against its per-stream SINRs.

        Pure per-item scalar arithmetic in the scalar evaluator's slot and
        stream order; the SINR rows come out of the stacked score step
        bit-identical to the scalar ones, so the queue trajectories (and
        hence every delay sample) match exactly.
        """
        metrics: list = [None] * self.n_items
        if self._traffic is None:
            return metrics
        mac = self.scenarios[0].mac
        for b in np.flatnonzero(item_active):
            state = self._traffic[b]
            for s, (ap, antennas, chosen) in enumerate(planned[b]):
                clients_global = np.asarray(chosen, dtype=int)
                fraction = data_fraction(
                    mac, len(clients_global), len(antennas), with_sounding,
                )
                state.serve_burst(
                    clients_global, slot_sinrs[(b, s)],
                    state.round_duration_s * fraction,
                )
            metrics[b] = state.end_round()
        return metrics

    # ------------------------------------------------------------------
    def evaluate_round(
        self, primary_ap: int, item_mask=None
    ) -> list[RoundResult | None]:
        """One concurrent round for every (selected) item; entry ``i`` is
        bit-identical to the scalar ``evaluate_round(primary_ap)`` on item
        ``i``, or ``None`` where ``item_mask`` excludes it."""
        item_active = (
            np.ones(self.n_items, dtype=bool)
            if item_mask is None
            else np.asarray(item_mask, dtype=bool)
        )
        if self._traffic is not None:
            with _obs().span("traffic"):
                for b in np.flatnonzero(item_active):
                    self._traffic[b].begin_round()
        # CSI staleness: sounding rounds re-evaluate every item's
        # association (handoffs + tag re-derivation) here and refresh the
        # stacked snapshot inside the score step (no generator draws either
        # way, so touching inactive items changes nothing they will ever
        # report).
        sounding_round = True
        if self._mobility is not None:
            sounding_round = self._round_index % self._resound_period == 0
            if sounding_round:
                with _obs().span("sounding"):
                    rssi_dbm = self.channel.client_rx_power_dbm()
                    with _obs().span("assoc_update"):
                        self.association.resound(rssi_dbm)
        self._round_index += 1
        with_sounding = self.sim.sounding_overhead and (
            self._mobility is None or sounding_round
        )
        with _obs().span("schedule"):
            planned, active_mask, served_masks = self._plan_round(
                primary_ap, item_active
            )
        capacity, n_streams, per_ap_streams, slot_sinrs = self._score_round(
            planned, item_active, sounding_round
        )
        sounding_us = np.zeros(self.n_items)
        if self._mobility is not None and with_sounding:
            # Per-item accumulation in the scalar evaluator's slot order.
            for b in np.flatnonzero(item_active):
                for ap, antennas, chosen in planned[b]:
                    sounding_us[b] += sounding_overhead_us(
                        len(chosen), len(antennas)
                    )
        if self._traffic is not None:
            with _obs().span("traffic"):
                traffic_metrics = self._serve_round(
                    planned, slot_sinrs, item_active, with_sounding
                )
        else:
            traffic_metrics = self._serve_round(
                planned, slot_sinrs, item_active, with_sounding
            )
        with _obs().span("schedule"):
            self._settle_round(served_masks, item_active)
        results: list[RoundResult | None] = []
        for b in range(self.n_items):
            if not item_active[b]:
                results.append(None)
                continue
            results.append(
                RoundResult(
                    capacity_bps_hz=float(capacity[b]),
                    n_streams=int(n_streams[b]),
                    active_antennas=int(active_mask[b].sum()),
                    per_ap_streams=per_ap_streams[b],
                    traffic=traffic_metrics[b],
                    sounding_us=float(sounding_us[b]),
                )
            )
        return results

    def advance_between_rounds(self, advance_items=None) -> None:
        """Advance fading (and any client mobility) by one coherence block
        for the selected items -- the stacked mirror of the scalar
        evaluator's ``advance_between_rounds``."""
        dt_s = self.sim.coherence_block_s
        if self._mobility is None:
            self.channel.advance(dt_s, items=advance_items)
            return
        idx = (
            np.arange(self.n_items)
            if advance_items is None
            else np.asarray(advance_items, dtype=int)
        )
        wavelength = self.scenarios[0].radio.wavelength_m
        for b in idx:
            self._mobility[b].advance(dt_s)
        doppler = np.stack([self._mobility[b].doppler_hz(wavelength) for b in idx])
        self.channel.advance(dt_s, items=advance_items, doppler_hz=doppler)
        self.channel.update_client_positions(
            np.stack([self._mobility[b].positions for b in idx]), items=idx
        )

    def run(self, n_rounds: int = 30, item_mask=None) -> list[RoundBasedResult | None]:
        """Evaluate ``n_rounds`` rounds for every (selected) item, rotating
        the primary AP and advancing all fading processes (and client
        trajectories) in lockstep."""
        if n_rounds < 1:
            raise ValueError("need at least one round")
        item_active = (
            np.ones(self.n_items, dtype=bool)
            if item_mask is None
            else np.asarray(item_mask, dtype=bool)
        )
        per_item: list[list[RoundResult]] = [[] for _ in range(self.n_items)]
        advance_items = None if item_active.all() else np.flatnonzero(item_active)
        with _obs().span(
            "engine.run", engine="batch", n_items=self.n_items, n_rounds=n_rounds
        ):
            for r in range(n_rounds):
                round_results = self.evaluate_round(r % self.n_aps, item_active)
                for b, result in enumerate(round_results):
                    if result is not None:
                        per_item[b].append(result)
                with _obs().span("channel_advance"):
                    self.advance_between_rounds(advance_items)
                _obs().count("engine.rounds", int(item_active.sum()))
                _obs().probe(
                    "round",
                    engine="batch",
                    evaluator=self,
                    round_index=r,
                    results=round_results,
                )
        return [
            RoundBasedResult(rounds=per_item[b]) if item_active[b] else None
            for b in range(self.n_items)
        ]


def count_streams_batch(
    evaluator: RoundBasedEvaluatorBatch, rngs, rounds: int = 12
) -> np.ndarray:
    """Stacked mirror of :func:`repro.experiments.fig12_simultaneous_tx.count_streams`.

    ``rngs`` holds one generator per item (the scalar protocol's random
    1-4 primary streams); draws happen once per round per item, in round
    order, so each item's stream matches the scalar run.
    """
    n_items = evaluator.n_items
    n_aps = evaluator.n_aps
    totals = np.zeros((n_items, rounds), dtype=int)
    for r in range(rounds):
        order = [(r + i) % n_aps for i in range(n_aps)]
        primary_antennas = evaluator.antennas_of(order[0])
        n_primary = np.asarray([int(rng.integers(1, 5)) for rng in rngs])
        active = np.zeros((n_items, evaluator.carrier_sense.n_antennas), dtype=bool)
        active[:, primary_antennas] = (
            np.arange(len(primary_antennas))[None, :] < n_primary[:, None]
        )
        total = n_primary.copy()
        for ap in order[1:]:
            free = evaluator.free_antenna_masks(ap, active)
            total = total + free.sum(axis=1)
            active[:, evaluator.antennas_of(ap)] |= free
        totals[:, r] = total
    return totals.mean(axis=1)
