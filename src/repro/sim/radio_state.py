"""Shared radio state: who is transmitting, and what everyone hears.

:class:`TransmissionLog` records every TXOP for post-hoc SINR evaluation:
interference between overlapping TXOPs is weighted by their time overlap,
which captures partial collisions without re-evaluating SINR at every event
boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(eq=False)
class ActiveTransmission:
    """One MU-MIMO TXOP in the air (identity semantics: each instance is a
    distinct on-air burst, so equality is object identity)."""

    ap: int
    antennas: np.ndarray  # global antenna indices used for precoding
    clients: np.ndarray  # global client indices served (one per stream)
    v: np.ndarray  # precoder (len(antennas), len(clients))
    h_rows: np.ndarray  # channel snapshot (len(clients), n_all_antennas)
    start_us: float
    end_us: float
    data_fraction: float  # payload share of the airtime

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def overlap_us(self, other: "ActiveTransmission") -> float:
        """Temporal overlap with another transmission, microseconds."""
        return max(0.0, min(self.end_us, other.end_us) - max(self.start_us, other.start_us))


@dataclass
class TransmissionLog:
    """All TXOPs of a run: active set for sensing + archive for scoring."""

    active: list[ActiveTransmission] = field(default_factory=list)
    completed: list[ActiveTransmission] = field(default_factory=list)

    def start(self, tx: ActiveTransmission) -> None:
        """Register a TXOP going on air."""
        self.active.append(tx)

    def finish(self, tx: ActiveTransmission) -> None:
        """Move a TXOP from the air to the archive."""
        self.active.remove(tx)
        self.completed.append(tx)

    def transmitting_antennas(self) -> np.ndarray:
        """Global indices of all antennas currently radiating."""
        if not self.active:
            return np.empty(0, dtype=int)
        return np.concatenate([tx.antennas for tx in self.active])

    def busy_until_us(self, now_us: float) -> float:
        """Latest end time among transmissions in the air (or ``now_us``)."""
        if not self.active:
            return now_us
        return max(tx.end_us for tx in self.active)

    def all_transmissions(self) -> list[ActiveTransmission]:
        """Archive plus anything still in the air (for end-of-run scoring)."""
        return self.completed + self.active
