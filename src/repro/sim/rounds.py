"""Round-based (quasi-static) network evaluation -- the paper's protocol.

The paper's WARP implementation could not run a closed-loop MAC (§4): MAC
decisions were computed and fed into the PHY.  Its multi-AP experiments
therefore follow a *quasi-static* protocol (§5.3.1): enable transmissions at
AP A, check how many transmissions AP B's antennas can simultaneously
support given their NAV and carrier-sense states, enable those too, then
evaluate AP C -- and measure the resulting concurrent capacity.

:class:`RoundBasedEvaluator` reproduces exactly that:

* **CAS mode** -- APs within overhearing range serialize; each round one AP
  (rotating) transmits ``n_antennas`` streams with the naive precoder.
* **MIDAS mode** -- each round a rotating *primary* AP activates all its
  antennas; every other AP (in order) activates the subset of its antennas
  not blocked (physical CS or NAV) by already-active antennas, serving
  clients filtered by virtual packet tags and picked by DRR.  All active
  sets transmit concurrently and every stream's SINR includes the cross-AP
  interference.

The fully dynamic discrete-event MAC lives in
:class:`repro.sim.network.NetworkSimulation`; it is the closed-loop
extension the paper's methodology could not measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .. import rng as rng_mod
from ..assoc import CoordinationMode, build_association_state
from ..obs import active as _obs
from ..channel.model import ChannelModel, apply_csi_error
from ..config import SimConfig
from ..core.naive import naive_scaled_precoder
from ..core.power_balance import power_balanced_precoder
from ..core.selection import DeficitRoundRobin
from ..mac.carrier_sense import CarrierSenseModel
from ..mac.frames import data_fraction
from ..mobility import build_mobility_state
from ..phy.sounding import sounding_overhead_us
from ..topology.scenarios import Scenario
from ..traffic import AmpduConfig, RoundTrafficMetrics, TrafficState, resolve_traffic
from .network import MacMode


def build_traffic_state(
    traffic,
    traffic_kwargs,
    n_clients: int,
    rng,
    scenario: Scenario,
    ampdu: AmpduConfig | None,
) -> TrafficState | None:
    """Resolve an engine's ``traffic=`` argument into a per-run state.

    ``None`` and ``"full_buffer"`` both yield ``None`` -- the engines then
    take their historical saturation path untouched (bit-identical to every
    pre-traffic release).  The round clock is one TXOP (``mac.txop_us``).
    """
    if traffic is None:
        return None
    model = resolve_traffic(traffic, **dict(traffic_kwargs or {}))
    if model.is_full_buffer:
        return None
    return TrafficState(
        model,
        n_clients,
        rng,
        round_duration_s=scenario.mac.txop_us * 1e-6,
        bandwidth_hz=scenario.radio.bandwidth_hz,
        ampdu=ampdu,
    )


@dataclass(frozen=True)
class RoundResult:
    """One concurrent transmission round."""

    capacity_bps_hz: float
    n_streams: int
    active_antennas: int
    per_ap_streams: np.ndarray
    #: Queueing outcome of the round under finite load; ``None`` when the
    #: evaluator ran full-buffer (the default).
    traffic: RoundTrafficMetrics | None = None
    #: Sounding airtime charged this round (microseconds); non-zero only on
    #: re-sounding rounds of a mobility run (the historical static path
    #: folds sounding into every TXOP's data fraction instead).
    sounding_us: float = 0.0


@dataclass(frozen=True)
class RoundBasedResult:
    """Aggregate over all evaluated rounds of one topology."""

    rounds: list[RoundResult]

    def _require_rounds(self) -> None:
        if not self.rounds:
            raise ValueError(
                "RoundBasedResult holds no rounds; evaluate at least one "
                "round before asking for means"
            )

    @property
    def mean_capacity_bps_hz(self) -> float:
        self._require_rounds()
        return float(np.mean([r.capacity_bps_hz for r in self.rounds]))

    @property
    def mean_streams(self) -> float:
        self._require_rounds()
        return float(np.mean([r.n_streams for r in self.rounds]))

    # ------------------------------------------------------------------
    # Finite-load (traffic) accessors
    # ------------------------------------------------------------------
    @property
    def has_traffic(self) -> bool:
        """Whether the evaluator ran with a finite-load traffic model."""
        return bool(self.rounds) and self.rounds[0].traffic is not None

    def _require_traffic(self) -> None:
        self._require_rounds()
        if self.rounds[0].traffic is None:
            raise ValueError(
                "no traffic metrics on this result: the evaluator ran "
                "full-buffer; pass traffic=... to the evaluator to enable "
                "finite-load queueing"
            )

    @property
    def duration_s(self) -> float:
        """Total MAC time covered (rounds x TXOP window)."""
        self._require_traffic()
        return float(sum(r.traffic.duration_s for r in self.rounds))

    @property
    def offered_bytes(self) -> float:
        """Bytes that arrived at the queues over the run."""
        self._require_traffic()
        return float(sum(r.traffic.arrived_bytes for r in self.rounds))

    @property
    def served_bytes(self) -> float:
        """Bytes delivered to clients over the run."""
        self._require_traffic()
        return float(sum(r.traffic.served_bytes for r in self.rounds))

    @property
    def throughput_mbps(self) -> float:
        """Delivered goodput (Mb/s) over the whole run."""
        return self.served_bytes * 8.0 / self.duration_s / 1e6

    @property
    def delay_samples_s(self) -> np.ndarray:
        """Delays of every departed packet, in departure order."""
        self._require_traffic()
        return np.concatenate([r.traffic.delays_s for r in self.rounds])

    @property
    def delay_category_samples(self) -> np.ndarray:
        """EDCA access-category value per delay sample."""
        self._require_traffic()
        return np.concatenate(
            [r.traffic.delay_categories for r in self.rounds]
        ).astype(int)

    @property
    def mean_delay_s(self) -> float:
        """Mean packet delay; ``inf`` when nothing departed (overload)."""
        samples = self.delay_samples_s
        if samples.size == 0:
            return math.inf
        return float(np.mean(samples))

    def delay_quantile(self, q: float) -> float:
        """Delay quantile (e.g. ``0.95``); ``inf`` when nothing departed."""
        samples = self.delay_samples_s
        if samples.size == 0:
            return math.inf
        return float(np.quantile(samples, q))

    @property
    def delay_jitter_s(self) -> float:
        """Standard deviation of packet delay; ``inf`` when no departures."""
        samples = self.delay_samples_s
        if samples.size == 0:
            return math.inf
        return float(np.std(samples))

    @property
    def mean_queue_bytes(self) -> float:
        """Mean end-of-round backlog across rounds."""
        self._require_traffic()
        return float(np.mean([r.traffic.queue_bytes for r in self.rounds]))

    @property
    def max_queue_bytes(self) -> float:
        """Peak end-of-round backlog."""
        self._require_traffic()
        return float(max(r.traffic.queue_bytes for r in self.rounds))

    def per_client_served_bytes(self) -> np.ndarray:
        """Total bytes delivered per client over the run."""
        self._require_traffic()
        return np.sum([r.traffic.served_per_client for r in self.rounds], axis=0)

    # ------------------------------------------------------------------
    # Mobility / re-sounding accessors
    # ------------------------------------------------------------------
    @property
    def mean_sounding_us(self) -> float:
        """Mean per-round sounding airtime (microseconds): the explicit
        re-sounding charge of a mobility run, zero for static runs."""
        self._require_rounds()
        return float(np.mean([r.sounding_us for r in self.rounds]))

    @property
    def total_sounding_us(self) -> float:
        """Total sounding airtime charged over the run (microseconds)."""
        self._require_rounds()
        return float(sum(r.sounding_us for r in self.rounds))


class RoundBasedEvaluator:
    """Quasi-static evaluation of one scenario (CAS or MIDAS stack)."""

    def __init__(
        self,
        scenario: Scenario,
        mode: MacMode,
        sim: SimConfig | None = None,
        seed: int | None = 0,
        traffic=None,
        traffic_kwargs=None,
        ampdu: AmpduConfig | None = None,
        mobility=None,
        mobility_kwargs=None,
        resound_period_rounds: int = 1,
        association=None,
        association_kwargs=None,
        coordination=None,
    ):
        self.scenario = scenario
        self.mode = mode
        self.sim = sim or SimConfig()
        self.deployment = scenario.deployment
        if resound_period_rounds < 1:
            raise ValueError("resound_period_rounds must be >= 1")
        root = rng_mod.make_rng(seed)
        # Four children are always spawned so enabling traffic/mobility
        # never perturbs the channel/CSI streams (spawn(4)[:2] == spawn(2)).
        channel_rng, self._csi_rng, traffic_rng, mobility_rng = rng_mod.spawn(root, 4)
        self._traffic = build_traffic_state(
            traffic, traffic_kwargs, self.deployment.n_clients, traffic_rng,
            scenario, ampdu,
        )
        self._mobility = build_mobility_state(
            mobility, mobility_kwargs, self.deployment, mobility_rng
        )
        self._resound_period = int(resound_period_rounds)
        self._round_index = 0
        #: Channel snapshot captured at the last sounding; precoders of a
        #: mobility run are computed from this (possibly stale) CSI while
        #: SINRs are scored against the current channel.  ``None`` until
        #: the first sounding round (and always for static runs, which
        #: keep the historical sound-every-TXOP behavior).
        self._h_csi: np.ndarray | None = None
        self.channel = ChannelModel(self.deployment, scenario.radio, seed=channel_rng)
        self.carrier_sense = CarrierSenseModel(
            self.channel.antenna_cross_power_dbm(), scenario.mac
        )
        # DRR counters live on the *global* client axis so membership can
        # change at a handoff without resizing any scheduler state.  With
        # the default static association this selects exactly the clients
        # the historical per-AP-local counters selected: the global id of
        # the k-th member is monotone in k, pick() sorts candidates, and
        # argmax ties still break toward the lowest id.
        self._drr = {
            ap: DeficitRoundRobin(self.deployment.n_clients)
            for ap in range(self.deployment.n_aps)
        }
        #: The association layer owns the client->AP map, the anchor-antenna
        #: tags, and the handoff/outage log; the policy re-evaluates (and
        #: tags rebuild) at construction and at every re-sounding round.
        self.association = build_association_state(
            association, association_kwargs, self.deployment,
            scenario.mac, coordination,
        )
        self.association.resound(self.channel.client_rx_power_dbm())

    # ------------------------------------------------------------------
    def _free_antennas(self, ap: int, active_antennas: list[int]) -> np.ndarray:
        """Antennas of ``ap`` whose physical CS and NAV permit transmission
        given the already-active antenna set (the paper's §5.3.1 check)."""
        own = self.deployment.antennas_of(ap)
        free = []
        for antenna in own:
            sensed_busy = self.carrier_sense.is_busy(int(antenna), active_antennas)
            # NAV check with preamble capture: an antenna only learns a
            # reservation it can decode against the transmissions already in
            # the air (overlapped preambles do not sync in practice).
            nav_blocked = any(
                self.carrier_sense.decodes(int(antenna), int(tx), active_antennas)
                for tx in active_antennas
            )
            if not sensed_busy and not nav_blocked:
                free.append(int(antenna))
        return np.asarray(free, dtype=int)

    def _eligibility(self, ap: int) -> tuple[np.ndarray, np.ndarray]:
        """(primary-class, any-class) backlog masks over *all* clients,
        restricted to ``ap``'s current members.

        Full-buffer runs return the membership mask twice, reducing
        selection to the historical unrestricted DRR.  Under finite load
        the first mask holds members backlogged in the AP's *primary* EDCA
        class (the one winning internal contention); the second holds any
        member backlog, used to fill leftover streams (802.11ac's
        secondary-class rule).
        """
        member_mask = self.association.member_mask(ap)
        if self._traffic is None:
            return member_mask, member_mask
        members = self.association.members(ap)
        any_mask = np.zeros(self.deployment.n_clients, dtype=bool)
        primary_mask = np.zeros(self.deployment.n_clients, dtype=bool)
        if members.size == 0:
            return primary_mask, any_mask
        any_mask[members] = self._traffic.backlog_mask(members)
        primary = self._traffic.primary_class(members)
        primary_mask[members] = (
            any_mask[members]
            if primary is None
            else self._traffic.backlog_mask(members, primary)
        )
        return primary_mask, any_mask

    def _select_clients(
        self, ap: int, antennas: np.ndarray, allowed: np.ndarray | None = None
    ) -> list[int]:
        """Global client ids served by ``antennas`` of ``ap`` this round.

        ``allowed`` (optional, over all clients) is the coordination veto:
        clients outside it are skipped (they already overhear a committed
        neighboring transmission this round).
        """
        members = self.association.members(ap)
        drr = self._drr[ap]
        primary_mask, any_mask = self._eligibility(ap)
        if allowed is not None:
            primary_mask = primary_mask & allowed
            any_mask = any_mask & allowed

        def gated_pick(candidates: list[int]) -> int | None:
            pick = drr.pick([c for c in candidates if primary_mask[c]])
            if pick is None:
                pick = drr.pick([c for c in candidates if any_mask[c]])
            return pick

        if self.mode is MacMode.CAS:
            chosen: list[int] = []
            for __ in range(min(len(antennas), len(members))):
                pick = gated_pick([int(c) for c in members if c not in chosen])
                if pick is None:
                    break
                chosen.append(pick)
            return chosen
        own = self.deployment.antennas_of(ap)
        index_of = {int(g): i for i, g in enumerate(own)}
        chosen = []
        for antenna in antennas:
            local = index_of[int(antenna)]
            candidates = [
                int(c)
                for c in self.association.tagged_clients(ap, local)
                if c not in chosen
            ]
            pick = gated_pick(candidates)
            if pick is not None:
                chosen.append(pick)
        return chosen

    def _precoder(self, h_sub: np.ndarray) -> np.ndarray:
        radio = self.scenario.radio
        h_est = apply_csi_error(h_sub, self.sim.csi_error_std, self._csi_rng)
        if self.mode is MacMode.CAS:
            return naive_scaled_precoder(h_est, radio.per_antenna_power_mw)
        return power_balanced_precoder(
            h_est, radio.per_antenna_power_mw, radio.noise_mw
        ).v

    # ------------------------------------------------------------------
    def evaluate_round(self, primary_ap: int) -> RoundResult:
        """One concurrent round with ``primary_ap`` winning channel access first."""
        if self._traffic is not None:
            with _obs().span("traffic"):
                self._traffic.begin_round()
        # CSI staleness (mobility runs): sounding rounds re-capture the CSI
        # snapshot and let the association layer re-evaluate the client->AP
        # map and re-derive the anchor-antenna tags at the clients' current
        # positions; in between, precoders keep using the stale snapshot
        # while SINRs are scored against the live channel.
        sounding_round = True
        if self._mobility is not None:
            sounding_round = self._round_index % self._resound_period == 0
            if sounding_round:
                # The CSI snapshot itself is captured at scoring time below
                # (the channel cannot change within a round) to avoid
                # materializing the channel matrix twice.
                with _obs().span("sounding"):
                    rssi_dbm = self.channel.client_rx_power_dbm()
                    with _obs().span("assoc_update"):
                        self.association.resound(rssi_dbm)
        self._round_index += 1
        n_aps = self.deployment.n_aps
        coordinated = (
            self.association.coordination is CoordinationMode.COORDINATED_SCHEDULING
        )
        order = [(primary_ap + i) % n_aps for i in range(n_aps)]
        active_antennas: list[int] = []
        planned: list[tuple[int, np.ndarray, list[int]]] = []
        with _obs().span("schedule"):
            self._plan(order, coordinated, active_antennas, planned)
        return self._finish_round(
            planned, active_antennas, sounding_round, n_aps
        )

    def _plan(
        self,
        order: list[int],
        coordinated: bool,
        active_antennas: list[int],
        planned: list[tuple[int, np.ndarray, list[int]]],
    ) -> None:
        """The scheduling phase: fill ``planned``/``active_antennas`` with
        this round's transmission sets (the paper's §5.3.1 stacking)."""
        for position, ap in enumerate(order):
            # Coordinated scheduling: APs planning after others learn the
            # committed picks and skip clients already covered (able to
            # overhear an active transmission) this round.
            allowed = None
            if coordinated and active_antennas:
                allowed = ~self.association.overheard_mask(active_antennas)
            if self.mode is MacMode.CAS:
                # One channel state per AP: a secondary AP transmits all of
                # its antennas iff its (co-located) CCA is clear of every
                # already-active antenna; otherwise it stays silent.  With
                # full mutual overhearing (the 3-AP setup) this reduces to
                # only the primary transmitting; in the 8-AP region APs out
                # of range reuse the medium like real 802.11ac cells.
                own = self.deployment.antennas_of(ap)
                if position == 0 or len(self._free_antennas(ap, active_antennas)) == len(own):
                    antennas = own
                else:
                    continue
            else:
                antennas = (
                    self.deployment.antennas_of(ap)
                    if position == 0
                    else self._free_antennas(ap, active_antennas)
                )
            if len(antennas) == 0:
                continue
            chosen = self._select_clients(
                ap, np.asarray(antennas, dtype=int), allowed
            )
            if not chosen:
                continue
            planned.append((ap, np.asarray(antennas, dtype=int), chosen))
            active_antennas.extend(int(a) for a in antennas)
        self.association.note_served(
            [c for __, __, chosen in planned for c in chosen]
        )

    def _finish_round(
        self,
        planned: list[tuple[int, np.ndarray, list[int]]],
        active_antennas: list[int],
        sounding_round: bool,
        n_aps: int,
    ) -> RoundResult:
        """Precode, score, serve, and settle one planned round."""
        # Precode every planned set, then score with mutual interference.
        # Precoders see the CSI captured at the last sounding (``h_csi``);
        # the SINR scoring below always uses the current channel ``h``.
        with _obs().span("precode"):
            h = self.channel.channel_matrix()
            if self._mobility is not None and sounding_round:
                self._h_csi = h  # never mutated; aliasing the snapshot is safe
            h_csi = h if self._h_csi is None else self._h_csi
            with_sounding = self.sim.sounding_overhead and (
                self._mobility is None or sounding_round
            )
            noise_mw = self.scenario.radio.noise_mw
            precoders = []
            for ap, antennas, chosen in planned:
                clients_global = np.asarray(chosen, dtype=int)
                h_sub = h_csi[np.ix_(clients_global, antennas)]
                precoders.append(self._precoder(h_sub))

        capacity = 0.0
        n_streams = 0
        sounding_us = 0.0
        per_ap_streams = np.zeros(n_aps, dtype=int)
        sinrs: list[np.ndarray] = []
        with _obs().span("score"):
            for index, (ap, antennas, chosen) in enumerate(planned):
                clients_global = np.asarray(chosen, dtype=int)
                own = np.abs(h[np.ix_(clients_global, antennas)] @ precoders[index]) ** 2
                desired = np.diag(own)
                intra = own.sum(axis=1) - desired
                external = np.zeros(len(clients_global))
                for other_index, (__, other_ants, ___) in enumerate(planned):
                    if other_index == index:
                        continue
                    cross = np.abs(h[np.ix_(clients_global, other_ants)] @ precoders[other_index]) ** 2
                    external += cross.sum(axis=1)
                sinr = desired / (noise_mw + intra + external)
                sinrs.append(sinr)
                capacity += float(np.sum(np.log2(1.0 + sinr)))
                n_streams += len(clients_global)
                per_ap_streams[ap] = len(clients_global)

                # Mobility runs charge sounding airtime explicitly, only on
                # the rounds that actually sound (the re-sounding period).
                if self._mobility is not None and with_sounding:
                    sounding_us += sounding_overhead_us(
                        len(clients_global), len(antennas)
                    )

        # Finite load: each stream's SINR fixes an MCS, the A-MPDU
        # model converts payload airtime into served bytes.
        if self._traffic is not None:
            with _obs().span("traffic"):
                for index, (ap, antennas, chosen) in enumerate(planned):
                    fraction = data_fraction(
                        self.scenario.mac,
                        len(chosen),
                        len(antennas),
                        with_sounding,
                    )
                    self._traffic.serve_burst(
                        np.asarray(chosen, dtype=int),
                        sinrs[index],
                        self._traffic.round_duration_s * fraction,
                    )

        with _obs().span("schedule"):
            for ap, __, chosen in planned:
                # Fairness settlement per transmitting AP (members only -- a
                # non-member entry in the global counters stays untouched).
                losers = [
                    int(c) for c in self.association.members(ap) if c not in chosen
                ]
                self._drr[ap].settle(chosen, losers, txop_units=1.0)

            # Every AP settles every round: one that was blocked (or found
            # no eligible client) sent nothing, but its backlogged clients
            # still waited out this round's TXOP -- credit it so they are
            # not starved relative to the paper's DRR fairness.
            transmitted = {ap for ap, __, __ in planned}
            for ap in range(n_aps):
                if ap not in transmitted:
                    self._drr[ap].credit(self.association.members(ap), txop_units=1.0)

        traffic_metrics = None
        if self._traffic is not None:
            with _obs().span("traffic"):
                traffic_metrics = self._traffic.end_round()
        return RoundResult(
            capacity_bps_hz=capacity,
            n_streams=n_streams,
            active_antennas=len(active_antennas),
            per_ap_streams=per_ap_streams,
            traffic=traffic_metrics,
            sounding_us=sounding_us,
        )

    def advance_between_rounds(self) -> None:
        """Advance the channel (and, if configured, the clients) by one
        coherence block.

        Static runs keep the historical global-Doppler fading step.  A
        mobility run additionally moves every client along its trajectory,
        derives each client's Doppler from its actual speed, and
        re-evaluates the large-scale channel at the new positions (the
        shadowing lattice cache keeps the field spatially consistent).
        """
        dt_s = self.sim.coherence_block_s
        if self._mobility is None:
            self.channel.advance(dt_s)
            return
        self._mobility.advance(dt_s)
        self.channel.advance(
            dt_s,
            doppler_hz=self._mobility.doppler_hz(self.scenario.radio.wavelength_m),
        )
        self.channel.update_client_positions(self._mobility.positions)

    def run(self, n_rounds: int = 30) -> RoundBasedResult:
        """Evaluate ``n_rounds`` rounds, rotating the primary AP and advancing
        the fading (and any client mobility) between rounds by one coherence
        block."""
        if n_rounds < 1:
            raise ValueError("need at least one round")
        rounds = []
        with _obs().span("engine.run", engine="loop", n_rounds=n_rounds):
            for r in range(n_rounds):
                rounds.append(
                    self.evaluate_round(primary_ap=r % self.deployment.n_aps)
                )
                with _obs().span("channel_advance"):
                    self.advance_between_rounds()
                _obs().count("engine.rounds")
                _obs().probe(
                    "round",
                    engine="loop",
                    evaluator=self,
                    round_index=r,
                    result=rounds[-1],
                )
        return RoundBasedResult(rounds=rounds)
