"""End-to-end network simulation (Figs 12, 14, 15, 16 substrate).

Assembles topology + channel + MAC + precoding and plays out a downlink,
full-buffer network for a configured duration:

* **CAS mode** -- the paper's baseline: each AP is one CSMA/CA contender
  with a single channel state (any antenna busy => AP busy), transmits
  ``n_antennas``-stream MU-MIMO with the naive globally-scaled ZFBF
  precoder, and picks clients by plain deficit round-robin.
* **MIDAS mode** -- each *antenna* contends independently with its own NAV
  and physical carrier sense; a winning antenna opportunistically gathers
  sibling antennas whose medium frees within one DIFS (§3.2.3), clients are
  filtered by virtual packet tags and picked per antenna by DRR (§3.2.4-5),
  and the burst is precoded with the power-balanced ZFBF (§3.1.2).

SINRs are evaluated post-hoc with interference weighted by TXOP overlap
(see :mod:`repro.sim.radio_state`), then converted to Shannon capacity as
the paper does (§5.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from .. import rng as rng_mod
from ..assoc import CoordinationMode, build_association_state
from ..channel.model import ChannelModel, apply_csi_error
from ..config import MacConfig, SimConfig
from ..core.naive import naive_scaled_precoder
from ..core.power_balance import power_balanced_precoder
from ..core.selection import DeficitRoundRobin
from ..mac.backoff import BackoffState
from ..mac.carrier_sense import CarrierSenseModel
from ..mac.frames import txop_durations
from ..mac.nav import NavTable
from ..mobility import build_mobility_state
from ..obs import active as _obs
from ..topology.scenarios import Scenario
from ..traffic import AmpduConfig, TrafficState, TrafficSummary, resolve_traffic
from . import EventQueue
from .radio_state import ActiveTransmission, TransmissionLog


class MacMode(str, enum.Enum):
    """Which MAC + precoding stack an AP runs."""

    CAS = "cas"
    MIDAS = "midas"


def aps_mutually_overhear(sense: CarrierSenseModel, deployment) -> bool:
    """True when every AP pair can set NAVs on each other's transmissions.

    The paper's 3-AP experiments (§5.3.1, §5.4) deploy APs "that can overhear
    each other"; experiments enforce it by resampling topologies until this
    predicate holds on the *CAS* simulation's own carrier-sense model (so the
    check sees exactly the shadowing the run will see).
    """
    for ap_a in range(deployment.n_aps):
        for ap_b in range(ap_a + 1, deployment.n_aps):
            ants_a = deployment.antennas_of(ap_a)
            ants_b = deployment.antennas_of(ap_b)
            a_hears_b = any(
                sense.decodes(int(a), int(b)) for a in ants_a for b in ants_b
            )
            b_hears_a = any(
                sense.decodes(int(b), int(a)) for a in ants_a for b in ants_b
            )
            if not (a_hears_b and b_hears_a):
                return False
    return True


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one network run."""

    duration_s: float
    per_client_bits_per_hz: np.ndarray  # delivered bits normalized by bandwidth
    txop_count: int
    stream_count: int
    mean_concurrent_streams: float
    collision_fraction: float  # TXOPs whose interference degraded any stream > 3 dB
    #: Queueing outcome under finite load; ``None`` for full-buffer runs.
    traffic: TrafficSummary | None = None

    @property
    def network_capacity_bps_hz(self) -> float:
        """Time-averaged network spectral efficiency (the paper's metric)."""
        return float(self.per_client_bits_per_hz.sum() / self.duration_s)

    def client_throughput_bps_hz(self) -> np.ndarray:
        """Per-client time-averaged spectral efficiency."""
        return self.per_client_bits_per_hz / self.duration_s


@dataclass
class _Contender:
    """One CSMA/CA contention entity (an AP in CAS, an antenna in MIDAS)."""

    ap: int
    antennas: np.ndarray  # antennas whose state this contender senses
    backoff: BackoffState
    in_txop_until_us: float = 0.0
    scheduled: bool = field(default=False)


class NetworkSimulation:
    """Event-driven downlink simulation of one scenario."""

    def __init__(
        self,
        scenario: Scenario,
        mode: MacMode,
        sim: SimConfig | None = None,
        seed: int | None = 0,
        traffic=None,
        traffic_kwargs=None,
        ampdu: AmpduConfig | None = None,
        mobility=None,
        mobility_kwargs=None,
        resound_interval_s: float | None = None,
        association=None,
        association_kwargs=None,
        coordination=None,
    ):
        self.scenario = scenario
        self.mode = mode
        self.sim = sim or SimConfig()
        self.mac: MacConfig = scenario.mac
        self.deployment = scenario.deployment
        if resound_interval_s is not None and resound_interval_s <= 0:
            raise ValueError("resound_interval_s must be positive (or None)")

        root = rng_mod.make_rng(seed)
        # Five children are always spawned so enabling traffic/mobility
        # never perturbs the channel/MAC/CSI streams (spawn(5)[:3] == spawn(3)).
        channel_rng, mac_rng, csi_rng, traffic_rng, mobility_rng = rng_mod.spawn(root, 5)
        self._traffic: TrafficState | None = None
        if traffic is not None:
            model = resolve_traffic(traffic, **dict(traffic_kwargs or {}))
            if not model.is_full_buffer:
                self._traffic = TrafficState(
                    model,
                    self.deployment.n_clients,
                    traffic_rng,
                    round_duration_s=self.mac.txop_us * 1e-6,
                    bandwidth_hz=scenario.radio.bandwidth_hz,
                    ampdu=ampdu,
                )
        self._mobility = build_mobility_state(
            mobility, mobility_kwargs, self.deployment, mobility_rng
        )
        #: Mobility CSI staleness: with an interval, TXOPs between
        #: re-soundings precode from the snapshot captured at the last
        #: sounding (and skip the per-TXOP sounding airtime); ``None``
        #: keeps the historical sound-every-TXOP behavior.
        self._resound_interval_us = (
            None if resound_interval_s is None else resound_interval_s * 1e6
        )
        self._h_csi: np.ndarray | None = None
        self._last_resound_us = -np.inf
        #: Count of soundings whose triggering TXOPs aborted (no free
        #: antennas / no tagged backlog): they happened on the air but were
        #: not paid for yet; subsequent transmitting TXOPs charge them one
        #: at a time.
        self._sounding_unpaid = 0
        self.channel = ChannelModel(self.deployment, scenario.radio, seed=channel_rng)
        self._csi_rng = csi_rng
        self.carrier_sense = CarrierSenseModel(
            self.channel.antenna_cross_power_dbm(), self.mac
        )
        self.nav = NavTable(self.deployment.n_antennas)
        self.queue = EventQueue()
        self.log = TransmissionLog()

        # Per-AP scheduling state: global-axis fairness counters (see the
        # round engine) plus the association layer, which owns the
        # client->AP map, the (MIDAS) packet tags, and the handoff log.
        self._drr = {
            ap: DeficitRoundRobin(self.deployment.n_clients)
            for ap in range(self.deployment.n_aps)
        }
        self.association = build_association_state(
            association, association_kwargs, self.deployment,
            self.mac, coordination,
        )
        self.association.resound(self.channel.client_rx_power_dbm())

        contender_rngs = rng_mod.spawn(mac_rng, self.deployment.n_aps * 8)
        self._contenders: list[_Contender] = []
        rng_idx = 0
        for ap in range(self.deployment.n_aps):
            antennas = self.deployment.antennas_of(ap)
            if mode is MacMode.CAS:
                self._contenders.append(
                    _Contender(ap, antennas, BackoffState(self.mac, contender_rngs[rng_idx]))
                )
                rng_idx += 1
            else:
                for antenna in antennas:
                    self._contenders.append(
                        _Contender(
                            ap,
                            np.asarray([antenna]),
                            BackoffState(self.mac, contender_rngs[rng_idx]),
                        )
                    )
                    rng_idx += 1

        self._last_channel_advance_us = 0.0
        self._txop_count = 0
        self._stream_count = 0

    # ------------------------------------------------------------------
    # Medium state queries
    # ------------------------------------------------------------------
    def _medium_busy(self, contender: _Contender, now_us: float) -> bool:
        """Physical or virtual carrier sense verdict for the contender."""
        transmitting = self.log.transmitting_antennas()
        for antenna in contender.antennas:
            if not self.nav.is_clear(antenna, now_us):
                return True
            if self.carrier_sense.is_busy(int(antenna), transmitting):
                return True
        return False

    def _busy_until(self, contender: _Contender, now_us: float) -> float:
        """Best-known time the contender's medium frees (NAV + active TXOPs)."""
        until = now_us
        for antenna in contender.antennas:
            until = max(until, self.nav.expiry_us(antenna))
        until = max(until, self.log.busy_until_us(now_us))
        return until

    # ------------------------------------------------------------------
    # MIDAS antenna/client assembly
    # ------------------------------------------------------------------
    def _gather_antennas(self, contender: _Contender, now_us: float) -> tuple[np.ndarray, float]:
        """Opportunistic antenna selection (§3.2.3).

        The *contending* antenna already passed full CCA (physical + NAV).
        Sibling antennas are added based on their NAV timers, as the paper
        specifies: clear NAV joins immediately; a NAV expiring within one
        DIFS is worth waiting for (the TXOP start is delayed to the latest
        such expiry).  Residual physical energy without a decodable header
        does not veto a sibling -- the antenna transmits on the downlink, and
        any interference consequences land in the clients' SINRs.
        """
        own = self.deployment.antennas_of(contender.ap)
        start_us = now_us
        available = []
        for antenna in own:
            if self.nav.is_clear(antenna, now_us):
                available.append(antenna)
            elif self.nav.expiry_us(antenna) <= now_us + self.mac.difs_us:
                available.append(antenna)
                start_us = max(start_us, self.nav.expiry_us(antenna))
        ordered = self.nav.order_by_expiry(available) if available else np.empty(0, dtype=int)
        return ordered, start_us

    def _eligibility(self, ap: int, now_us: float) -> tuple[np.ndarray, np.ndarray]:
        """(primary-class, any-class) backlog masks over *all* clients,
        restricted to ``ap``'s current members; the membership mask twice
        under full buffer (see the round engine's twin).

        Eligibility is cut off at ``now_us``: the arrival generator works
        in whole TXOP windows that can extend past the present, and a
        packet "arriving" later than the contention decision must neither
        win the medium nor be DRR-settled as served -- the service step
        applies the same cutoff at the TXOP start.
        """
        member_mask = self.association.member_mask(ap)
        if self._traffic is None:
            return member_mask, member_mask
        members = self.association.members(ap)
        any_mask = np.zeros(self.deployment.n_clients, dtype=bool)
        primary_mask = np.zeros(self.deployment.n_clients, dtype=bool)
        if members.size == 0:
            return primary_mask, any_mask
        cutoff_s = now_us * 1e-6
        any_mask[members] = self._traffic.backlog_mask(
            members, arrival_cutoff_s=cutoff_s
        )
        primary = self._traffic.primary_class(members, arrival_cutoff_s=cutoff_s)
        primary_mask[members] = (
            any_mask[members]
            if primary is None
            else self._traffic.backlog_mask(members, primary, arrival_cutoff_s=cutoff_s)
        )
        return primary_mask, any_mask

    def _gated_pick(self, ap: int, candidates: list[int], masks) -> int | None:
        """DRR pick among primary-class backlogged candidates, falling back
        to any-backlog fill-in (a no-op restriction under full buffer)."""
        primary_mask, any_mask = masks
        pick = self._drr[ap].pick([c for c in candidates if primary_mask[c]])
        if pick is None:
            pick = self._drr[ap].pick([c for c in candidates if any_mask[c]])
        return pick

    def _select_clients_midas(
        self, ap: int, antennas_in_order: np.ndarray, masks
    ) -> list[int]:
        """Per-antenna tagged DRR selection (§3.2.4-5), in global client ids."""
        local_antennas = self._local_antenna_ids(ap, antennas_in_order)
        chosen: list[int] = []
        for antenna in local_antennas:
            candidates = [
                int(c)
                for c in self.association.tagged_clients(ap, int(antenna))
                if c not in chosen
            ]
            pick = self._gated_pick(ap, candidates, masks)
            if pick is not None:
                chosen.append(pick)
        return chosen

    def _coordination_allowed(self, ap: int) -> np.ndarray | None:
        """Coordinated-scheduling veto for ``ap``: clients able to overhear
        another AP's in-flight TXOP are skipped (``None`` when coordination
        is off or nothing foreign is on the air)."""
        if self.association.coordination is not CoordinationMode.COORDINATED_SCHEDULING:
            return None
        foreign = [
            a
            for a in self.log.transmitting_antennas()
            if int(self.deployment.antenna_ap[a]) != ap
        ]
        if not foreign:
            return None
        return ~self.association.overheard_mask(foreign)

    def _local_antenna_ids(self, ap: int, global_ids: np.ndarray) -> np.ndarray:
        own = self.deployment.antennas_of(ap)
        index_of = {int(g): i for i, g in enumerate(own)}
        return np.asarray([index_of[int(g)] for g in global_ids], dtype=int)

    # ------------------------------------------------------------------
    # TXOP execution
    # ------------------------------------------------------------------
    def _advance_channel(self, now_us: float) -> None:
        dt_s = (now_us - self._last_channel_advance_us) * 1e-6
        if dt_s <= 0:
            return
        with _obs().span("channel_advance"):
            if self._mobility is None:
                self.channel.advance(dt_s)
            else:
                self._mobility.advance(dt_s)
                self.channel.advance(
                    dt_s,
                    doppler_hz=self._mobility.doppler_hz(
                        self.scenario.radio.wavelength_m
                    ),
                )
                self.channel.update_client_positions(self._mobility.positions)
            self._last_channel_advance_us = now_us

    def _maybe_resound(self, now_us: float) -> None:
        """Refresh the stale-CSI snapshot (and re-evaluate the association:
        handoffs plus tag re-derivation) when the re-sounding interval has
        elapsed; mobility runs only.  The
        sounding's airtime is marked unpaid until a TXOP actually
        transmits and charges it (the triggering TXOP may still abort).

        Without an interval every TXOP sounds fresh CSI, so the tags --
        which real hardware derives from the sounding's RSSI -- re-derive
        on every call too (anchor handoff tracks the roaming clients).
        """
        if self._mobility is None:
            return
        if self._resound_interval_us is None:
            with _obs().span("sounding"):
                rssi_dbm = self.channel.client_rx_power_dbm()
                with _obs().span("assoc_update"):
                    self.association.resound(rssi_dbm)
            return
        if (
            self._h_csi is None
            or now_us - self._last_resound_us >= self._resound_interval_us
        ):
            with _obs().span("sounding"):
                self._h_csi = self.channel.channel_matrix()
                rssi_dbm = self.channel.client_rx_power_dbm()
                with _obs().span("assoc_update"):
                    self.association.resound(rssi_dbm)
            self._last_resound_us = now_us
            self._sounding_unpaid += 1

    def _begin_txop(self, contender: _Contender, now_us: float) -> None:
        ap = contender.ap
        if self._mobility is not None:
            # Pull the trajectory (and fading) up to the present before any
            # tag/CSI decision, then re-sound if the interval has elapsed.
            self._advance_channel(now_us)
            self._maybe_resound(now_us)
        if self._traffic is not None:
            # Pull the arrival stream up to the present so eligibility sees
            # everything queued by the time this TXOP wins the medium.
            self._traffic.advance_arrivals_to(now_us * 1e-6)
        with _obs().span("schedule"):
            members = self.association.members(ap)
            masks = self._eligibility(ap, now_us)
            allowed = self._coordination_allowed(ap)
            if allowed is not None:
                masks = (masks[0] & allowed, masks[1] & allowed)
            if self.mode is MacMode.CAS:
                antennas = self.deployment.antennas_of(ap)
                n_streams = min(len(antennas), len(members))
                chosen: list[int] = []
                for __ in range(n_streams):
                    pick = self._gated_pick(
                        ap,
                        [int(c) for c in members if c not in chosen],
                        masks,
                    )
                    if pick is None:
                        break
                    chosen.append(pick)
                start_us = now_us
            else:
                antennas, start_us = self._gather_antennas(contender, now_us)
                if len(antennas) == 0:
                    self._schedule_attempt(contender, now_us + self.mac.difs_us)
                    return
                chosen = self._select_clients_midas(ap, antennas, masks)
                if not chosen:
                    # No tagged backlog for any available antenna: skip this
                    # opportunity and recontend.
                    self._schedule_attempt(
                        contender, now_us + self.mac.difs_us + contender.backoff.draw_delay_us()
                    )
                    return
                # All gathered antennas precode the selected streams (§3.2.5:
                # "the data streams are transmitted from all the antennas to all
                # the clients with precoding"), even when fewer clients than
                # antennas were tagged -- the spare antennas contribute array gain.

        if not chosen:
            self._schedule_attempt(
                contender, now_us + self.mac.difs_us + contender.backoff.draw_delay_us()
            )
            return

        clients_global = np.asarray(chosen, dtype=int)
        self._advance_channel(start_us)
        with _obs().span("precode"):
            h_full = self.channel.channel_matrix()
            h_rows = h_full[clients_global, :]
            # CSI staleness: with a re-sounding interval, precoders see the
            # snapshot captured at the last sounding while SINRs (h_rows)
            # track the live channel; without one, every TXOP sounds fresh
            # CSI.
            stale = self._mobility is not None and self._resound_interval_us is not None
            h_source = self._h_csi if stale else h_full
            h_sub = h_source[clients_global, :][:, antennas]
            h_est = apply_csi_error(h_sub, self.sim.csi_error_std, self._csi_rng)

            radio = self.scenario.radio
            if self.mode is MacMode.CAS:
                v = naive_scaled_precoder(h_est, radio.per_antenna_power_mw)
            else:
                v = power_balanced_precoder(
                    h_est, radio.per_antenna_power_mw, radio.noise_mw
                ).v

        # A stale run pays sounding airtime only on TXOPs carrying an (as
        # yet unpaid) sounding exchange; fresh runs pay every TXOP.
        pay_sounding = not stale or self._sounding_unpaid > 0
        if stale and self._sounding_unpaid:
            self._sounding_unpaid -= 1
        durations = txop_durations(
            self.mac,
            len(clients_global),
            len(antennas),
            self.sim.sounding_overhead and pay_sounding,
        )
        tx = ActiveTransmission(
            ap=ap,
            antennas=np.asarray(antennas, dtype=int),
            clients=clients_global,
            v=v,
            h_rows=h_rows,
            start_us=start_us,
            end_us=start_us + durations.total_us,
            data_fraction=durations.data_fraction,
        )
        self.log.start(tx)
        self._txop_count += 1
        self._stream_count += len(clients_global)
        _obs().count("engine.txops")

        # Virtual carrier sense: every antenna that decodes any of our
        # transmitting antennas (subject to capture against transmissions
        # already in the air) reserves the medium until the TXOP ends.
        already_active = np.asarray(
            [a for a in self.log.transmitting_antennas() if a not in tx.antennas],
            dtype=int,
        )
        for antenna in tx.antennas:
            for listener in self.carrier_sense.nav_listeners(int(antenna), already_active):
                if listener not in tx.antennas:
                    self.nav.set_nav(int(listener), tx.end_us)

        # Contenders of the transmitting antennas hold until the TXOP ends.
        for other in self._contenders:
            if other.ap == ap and np.intersect1d(other.antennas, tx.antennas).size:
                other.in_txop_until_us = tx.end_us

        # DRR settlement: losers are members that were not served.
        losers = [int(c) for c in members if c not in chosen]
        self._drr[ap].settle(chosen, losers, txop_units=1.0)
        self.association.note_served(clients_global)

        self.queue.schedule(tx.end_us, lambda t, tx=tx: self._end_txop(tx, t))

    def _tx_sinrs(
        self, tx: ActiveTransmission, transmissions: list[ActiveTransmission]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(sinr, interference-free snr) per stream of one TXOP, with
        external interference weighted by TXOP overlap (the paper's §5.1
        post-hoc scoring rule)."""
        noise_mw = self.scenario.radio.noise_mw
        own = np.abs(tx.h_rows[:, tx.antennas] @ tx.v) ** 2  # (clients, streams)
        desired = np.diag(own)
        intra = own.sum(axis=1) - desired
        external = np.zeros(len(tx.clients))
        for other in transmissions:
            if other is tx:
                continue
            overlap = tx.overlap_us(other)
            if overlap <= 0:
                continue
            cross = np.abs(tx.h_rows[:, other.antennas] @ other.v) ** 2
            external += cross.sum(axis=1) * (overlap / tx.duration_us)
        sinr = desired / (noise_mw + intra + external)
        snr_clean = desired / (noise_mw + intra)
        return sinr, snr_clean

    def _end_txop(self, tx: ActiveTransmission, now_us: float) -> None:
        if self._traffic is not None:
            # Every transmission overlapping this TXOP has started by its
            # end event, so the overlap-weighted SINR computed here equals
            # the post-hoc score; the A-MPDU model turns it into bytes.
            with _obs().span("traffic"):
                sinr, __ = self._tx_sinrs(tx, self.log.all_transmissions())
                payload_s = tx.data_fraction * tx.duration_us * 1e-6
                self._traffic.serve_burst(
                    tx.clients,
                    sinr,
                    payload_s,
                    t_depart_s=now_us * 1e-6,
                    # Only packets queued when the burst was assembled ride
                    # in its A-MPDUs; later arrivals wait for the next TXOP.
                    arrival_cutoff_s=tx.start_us * 1e-6,
                )
        self.log.finish(tx)
        _obs().probe("txop", engine="network", simulation=self, tx=tx, now_us=now_us)
        for contender in self._contenders:
            if contender.ap == tx.ap and np.intersect1d(
                contender.antennas, tx.antennas
            ).size:
                contender.backoff.on_success()
                self._schedule_attempt(
                    contender, now_us + contender.backoff.draw_delay_us()
                )

    # ------------------------------------------------------------------
    # Contention scheduling
    # ------------------------------------------------------------------
    def _schedule_attempt(self, contender: _Contender, when_us: float) -> None:
        contender.scheduled = True
        self.queue.schedule(when_us, lambda t, c=contender: self._attempt(c, t))

    def _attempt(self, contender: _Contender, now_us: float) -> None:
        contender.scheduled = False
        if now_us < contender.in_txop_until_us:
            return  # our antenna is mid-TXOP; _end_txop reschedules us
        if self._medium_busy(contender, now_us):
            resume = max(self._busy_until(contender, now_us), now_us)
            self._schedule_attempt(contender, resume + contender.backoff.draw_delay_us())
            return
        self._begin_txop(contender, now_us)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _score(self, duration_us: float) -> SimulationResult:
        per_client = np.zeros(self.deployment.n_clients)
        transmissions = self.log.all_transmissions()
        degraded = 0
        concurrency_weighted = 0.0
        for tx in transmissions:
            effective_end = min(tx.end_us, duration_us)
            effective_duration = max(0.0, effective_end - tx.start_us)
            if effective_duration <= 0:
                continue
            sinr, snr_clean = self._tx_sinrs(tx, transmissions)
            if np.any(snr_clean / np.maximum(sinr, 1e-30) > 2.0):
                degraded += 1
            rates = np.log2(1.0 + sinr)
            per_client[tx.clients] += rates * tx.data_fraction * effective_duration * 1e-6
            concurrency_weighted += len(tx.clients) * effective_duration
        duration_s = duration_us * 1e-6
        mean_concurrent = concurrency_weighted / duration_us if duration_us > 0 else 0.0
        return SimulationResult(
            duration_s=duration_s,
            per_client_bits_per_hz=per_client,
            txop_count=self._txop_count,
            stream_count=self._stream_count,
            mean_concurrent_streams=float(mean_concurrent),
            collision_fraction=degraded / max(1, len(transmissions)),
            traffic=(
                self._traffic.summary(duration_s) if self._traffic is not None else None
            ),
        )

    def run(self, duration_s: float | None = None) -> SimulationResult:
        """Simulate ``duration_s`` (default from :class:`SimConfig`) and
        return aggregate statistics."""
        duration_us = (duration_s or self.sim.duration_s) * 1e6
        with _obs().span("engine.run", engine="network"):
            start_rng = rng_mod.make_rng(self.scenario.seed)
            for contender in self._contenders:
                # Stagger initial attempts over one contention window.
                self._schedule_attempt(
                    contender,
                    self.mac.difs_us + float(start_rng.uniform(0, 1)) * self.mac.cw_min * self.mac.slot_us,
                )
            self.queue.run_until(duration_us)
            with _obs().span("score"):
                return self._score(duration_us)
