"""Network simulation: the paper's quasi-static round protocol (scalar and
batched) plus the closed-loop discrete-event CSMA/CA + MU-MIMO extension,
in CAS (baseline 802.11ac) or MIDAS mode."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class EventQueue:
    """A priority queue of ``(time_us, callback)`` events.

    Times are absolute microseconds.  Ties break by insertion order, which
    keeps runs deterministic for a fixed seed.
    """

    def __init__(self):
        self._heap: list[tuple[float, int, Callable[[float], None]]] = []
        self._counter = itertools.count()
        self._now_us = 0.0

    @property
    def now_us(self) -> float:
        """Time of the most recently dispatched event."""
        return self._now_us

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time_us: float, callback: Callable[[float], None]) -> None:
        """Enqueue ``callback(time_us)`` to run at ``time_us``.

        Scheduling in the past is a programming error and raises.
        """
        if time_us < self._now_us:
            raise ValueError(
                f"cannot schedule at {time_us} us; clock already at {self._now_us} us"
            )
        heapq.heappush(self._heap, (time_us, next(self._counter), callback))

    def run_until(self, end_us: float) -> int:
        """Dispatch events in time order until the queue drains or the next
        event lies beyond ``end_us``.  Returns the number of events run."""
        dispatched = 0
        while self._heap and self._heap[0][0] <= end_us:
            time_us, __, callback = heapq.heappop(self._heap)
            self._now_us = time_us
            callback(time_us)
            dispatched += 1
        self._now_us = max(self._now_us, end_us)
        return dispatched


# EventQueue must exist before these imports: network.py pulls it from this
# partially initialized package (the old repro.sim.engine module is now a
# deprecated shim over this definition).
from .batch import CarrierSenseBatch, RoundBasedEvaluatorBatch  # noqa: E402
from .network import MacMode, NetworkSimulation, SimulationResult  # noqa: E402
from .radio_state import ActiveTransmission, TransmissionLog  # noqa: E402
from .rounds import RoundBasedEvaluator, RoundBasedResult, RoundResult  # noqa: E402

__all__ = [
    "CarrierSenseBatch",
    "EventQueue",
    "MacMode",
    "NetworkSimulation",
    "RoundBasedEvaluator",
    "RoundBasedEvaluatorBatch",
    "RoundBasedResult",
    "RoundResult",
    "SimulationResult",
    "ActiveTransmission",
    "TransmissionLog",
]
