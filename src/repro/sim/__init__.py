"""Network simulation: the paper's quasi-static round protocol (scalar and
batched) plus the closed-loop discrete-event CSMA/CA + MU-MIMO extension,
in CAS (baseline 802.11ac) or MIDAS mode."""

from .batch import CarrierSenseBatch, RoundBasedEvaluatorBatch
from .engine import EventQueue
from .network import MacMode, NetworkSimulation, SimulationResult
from .radio_state import ActiveTransmission, TransmissionLog
from .rounds import RoundBasedEvaluator, RoundBasedResult, RoundResult

__all__ = [
    "CarrierSenseBatch",
    "EventQueue",
    "MacMode",
    "NetworkSimulation",
    "RoundBasedEvaluator",
    "RoundBasedEvaluatorBatch",
    "RoundBasedResult",
    "RoundResult",
    "SimulationResult",
    "ActiveTransmission",
    "TransmissionLog",
]
