"""Discrete-event network simulation: CSMA/CA + MU-MIMO TXOPs over the
channel substrate, in CAS (baseline 802.11ac) or MIDAS mode."""

from .engine import EventQueue
from .network import MacMode, NetworkSimulation, SimulationResult
from .radio_state import ActiveTransmission, TransmissionLog

__all__ = [
    "EventQueue",
    "MacMode",
    "NetworkSimulation",
    "SimulationResult",
    "ActiveTransmission",
    "TransmissionLog",
]
