"""The telemetry core: spans, counters, gauges, probes, and the null object.

Everything here is deliberately allocation-light.  The enabled path appends
small tuples to a bounded list; the disabled path is a module-level
:class:`NullTelemetry` singleton whose methods do nothing and whose
``span()`` returns one shared no-op context manager, so an instrumented
call site costs a context-variable read, one attribute lookup, and a no-op
``with`` block -- nothing else.  No instrumentation point may draw
randomness or branch on telemetry state in a way that changes engine
control flow; the bit-identity suite asserts exactly that.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Iterator

from ..io import atomic_write_text

#: Schema version of the JSONL trace format (the ``meta`` line carries it).
TRACE_SCHEMA_VERSION = 1

#: Counters pre-declared on every :class:`Telemetry` so a metrics export
#: always names the full documented vocabulary, zeros included (the
#: docs/architecture.md counter table mirrors this tuple).
CORE_COUNTERS = (
    "runner.cache.hits",
    "runner.cache.misses",
    "runner.cache.recomputes",
    "runner.loop_fallbacks",
    "rng.generators_spawned",
    "rng.seeds_derived",
    "engine.rounds",
    "engine.txops",
    "assoc.handoffs",
    "assoc.outages",
    "xp.to_host.calls",
    "xp.to_host.bytes",
    "xp.to_device.calls",
    "xp.to_device.bytes",
    "campaign.shards.completed",
    "campaign.shards.from_cache",
    "campaign.shards.retried",
    "campaign.shards.timeouts",
)


class _NullSpan:
    """The shared no-op context manager the null object hands out."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Telemetry that records nothing -- the default in every context.

    All methods are no-ops with the cheapest possible bodies; ``span``
    returns one shared context manager object, so instrumented hot loops
    pay a single attribute lookup and call per site.  Probes never fire
    through the null object, so registered samplers have zero effect on
    untraced runs.
    """

    __slots__ = ()

    enabled = False

    def span(self, name, **tags):
        return _NULL_SPAN

    def count(self, name, value=1):
        return None

    def gauge(self, name, value, **tags):
        return None

    def probe(self, site, **context):
        return None


NULL = NullTelemetry()


class _Span:
    """One live span: records a complete event on exit, exception or not."""

    __slots__ = ("_telemetry", "_name", "_tags", "_start_ns", "_depth")

    def __init__(self, telemetry: "Telemetry", name: str, tags: dict | None):
        self._telemetry = telemetry
        self._name = name
        self._tags = tags

    def __enter__(self):
        t = self._telemetry
        self._depth = t._depth
        t._depth += 1
        t.spans_entered += 1
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb):
        end_ns = time.perf_counter_ns()
        t = self._telemetry
        t._depth = self._depth
        t.spans_exited += 1
        t._record(
            "span",
            self._name,
            (self._start_ns - t._t0_ns) / 1000.0,
            (end_ns - self._start_ns) / 1000.0,
            self._depth,
            self._tags,
        )
        return False


class Telemetry:
    """Process-local telemetry: tracing spans, counters, gauges, probes.

    Parameters
    ----------
    max_events:
        Bound on the in-memory span/gauge buffer.  Once full, *new* events
        are dropped (the earlier ones -- the run's structure -- are kept)
        and ``dropped_events`` counts the loss; counters keep counting
        regardless.

    Install with :func:`repro.obs.use` (or ``Runner(telemetry=...)``, which
    does it for you); instrumented library code finds the active instance
    through :func:`repro.obs.active`.  One instance may serve several runs
    -- events and counters accumulate until :meth:`clear`.

    Not thread-safe by design: one instance belongs to one worker/thread
    (process pools give each worker its own), matching the engines' own
    execution model.
    """

    enabled = True

    def __init__(self, max_events: int = 200_000):
        if max_events < 1:
            raise ValueError("Telemetry.max_events must be >= 1")
        self.max_events = int(max_events)
        self.clear()

    def clear(self) -> None:
        """Drop all recorded events and reset every counter to zero."""
        self._t0_ns = time.perf_counter_ns()
        #: (kind, name, ts_us, dur_us_or_value, depth, tags) tuples.
        self._events: list[tuple] = []
        self._counters: dict[str, float] = {name: 0 for name in CORE_COUNTERS}
        self._depth = 0
        self.dropped_events = 0
        self.spans_entered = 0
        self.spans_exited = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(self, kind, name, ts_us, value, depth, tags) -> None:
        if len(self._events) >= self.max_events:
            self.dropped_events += 1
            return
        self._events.append((kind, name, ts_us, value, depth, tags))

    def span(self, name: str, **tags) -> _Span:
        """A context manager timing the enclosed block on the monotonic
        clock; nested spans record their depth, so exports reconstruct the
        call tree.  ``tags`` ride along verbatim (keep them JSON-safe)."""
        return _Span(self, name, tags or None)

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` (default 1) to the ``name`` counter."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float, **tags) -> None:
        """Record one timestamped sample of an instantaneous quantity."""
        self._record(
            "gauge",
            name,
            (time.perf_counter_ns() - self._t0_ns) / 1000.0,
            float(value),
            self._depth,
            tags or None,
        )

    def probe(self, site: str, **context) -> None:
        """Invoke every :func:`register_probe`-registered sampler for
        ``site`` with this telemetry and the engine-provided context."""
        for fn in _PROBES.get(site, ()):
            fn(self, **context)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def counters(self) -> dict[str, float]:
        """Snapshot of every counter (documented names always present)."""
        return dict(self._counters)

    def span_events(self) -> list[dict]:
        """Recorded spans as dicts (``name``/``ts_us``/``dur_us``/``depth``/
        ``tags``), in completion order."""
        return [
            {"name": name, "ts_us": ts, "dur_us": value, "depth": depth,
             "tags": tags or {}}
            for kind, name, ts, value, depth, tags in self._events
            if kind == "span"
        ]

    def span_totals(self) -> dict[str, dict[str, float]]:
        """Per-span-name aggregate: ``{name: {count, total_us}}``.

        Nested spans each contribute their own inclusive duration; use the
        recorded depths to de-overlap if you need exclusive times.
        """
        totals: dict[str, dict[str, float]] = {}
        for kind, name, __, value, ___, ____ in self._events:
            if kind != "span":
                continue
            entry = totals.setdefault(name, {"count": 0, "total_us": 0.0})
            entry["count"] += 1
            entry["total_us"] += value
        return totals

    def summary(self) -> "TelemetrySummary":
        """Compact snapshot suitable for ``RunResult.telemetry``."""
        return TelemetrySummary(
            counters=self.counters,
            span_totals=self.span_totals(),
            n_events=len(self._events),
            dropped_events=self.dropped_events,
            wall_us=(time.perf_counter_ns() - self._t0_ns) / 1000.0,
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def _meta(self) -> dict:
        from .. import __version__

        return {
            "type": "meta",
            "schema": TRACE_SCHEMA_VERSION,
            "version": __version__,
            "clock": "perf_counter_ns",
            "unit": "us",
            "n_events": len(self._events),
            "dropped_events": self.dropped_events,
        }

    def jsonl_lines(self) -> Iterator[str]:
        """The JSONL trace, one JSON object per line.

        Line 1 is a ``meta`` record; then every span/gauge event in
        completion order; then one ``counter`` record per counter.  The
        schema is documented in ``docs/architecture.md``.
        """
        yield json.dumps(self._meta(), sort_keys=True)
        for kind, name, ts, value, depth, tags in self._events:
            record: dict[str, Any] = {"type": kind, "name": name,
                                      "ts_us": round(ts, 3)}
            if kind == "span":
                record["dur_us"] = round(value, 3)
                record["depth"] = depth
            else:
                record["value"] = value
            if tags:
                record["tags"] = tags
            yield json.dumps(record, sort_keys=True)
        for name in sorted(self._counters):
            yield json.dumps(
                {"type": "counter", "name": name, "value": self._counters[name]},
                sort_keys=True,
            )

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the JSONL trace atomically (temp sibling + rename)."""
        return _atomic_text(Path(path), "\n".join(self.jsonl_lines()) + "\n")

    def chrome_trace(self) -> dict:
        """The buffer as a Chrome ``trace_event`` JSON object.

        Load the file in ``chrome://tracing`` / Perfetto for a flamegraph;
        spans become complete (``"ph": "X"``) events, counters become one
        final counter (``"ph": "C"``) sample each.
        """
        events = []
        last_ts = 0.0
        for kind, name, ts, value, depth, tags in self._events:
            if kind == "span":
                events.append(
                    {"name": name, "ph": "X", "ts": ts, "dur": value,
                     "pid": os.getpid(), "tid": 0, "args": tags or {}}
                )
                last_ts = max(last_ts, ts + value)
            else:
                events.append(
                    {"name": name, "ph": "C", "ts": ts, "pid": os.getpid(),
                     "tid": 0, "args": {name: value, **(tags or {})}}
                )
                last_ts = max(last_ts, ts)
        for name in sorted(self._counters):
            events.append(
                {"name": name, "ph": "C", "ts": last_ts, "pid": os.getpid(),
                 "tid": 0, "args": {name: self._counters[name]}}
            )
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": self._meta()}

    def write_chrome_trace(self, path: str | Path) -> Path:
        """Write the Chrome ``trace_event`` export atomically."""
        return _atomic_text(Path(path), json.dumps(self.chrome_trace()))

    def write_metrics(self, path: str | Path) -> Path:
        """Write the counters + span totals as one JSON document."""
        payload = {
            "meta": self._meta(),
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "span_totals": self.span_totals(),
        }
        return _atomic_text(Path(path), json.dumps(payload, indent=2) + "\n")


class TelemetrySummary:
    """Frozen snapshot of a :class:`Telemetry` at one point in time.

    What ``RunResult.telemetry`` holds: counters, per-span aggregates, and
    buffer health.  Never serialized with the result -- cached entries and
    spec hashes are telemetry-blind by contract.
    """

    __slots__ = ("counters", "span_totals", "n_events", "dropped_events", "wall_us")

    def __init__(self, counters, span_totals, n_events, dropped_events, wall_us):
        self.counters = counters
        self.span_totals = span_totals
        self.n_events = n_events
        self.dropped_events = dropped_events
        self.wall_us = wall_us

    def counter(self, name: str) -> float:
        """One counter's value (0 for a documented-but-untouched name)."""
        return self.counters.get(name, 0)

    def span_total_us(self, name: str) -> float:
        """Total inclusive duration of every ``name`` span, microseconds."""
        entry = self.span_totals.get(name)
        return 0.0 if entry is None else entry["total_us"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        phases = ", ".join(
            f"{name}={entry['total_us'] / 1000.0:.1f}ms"
            for name, entry in sorted(self.span_totals.items())
        )
        return f"<TelemetrySummary {self.n_events} events; {phases}>"


def _atomic_text(path: Path, text: str) -> Path:
    """Same-directory temp file + ``os.replace``: never a torn export."""
    return atomic_write_text(path, text)


# ----------------------------------------------------------------------
# Active-telemetry context (mirrors repro.xp.use / repro.xp.active)
# ----------------------------------------------------------------------
_ACTIVE: contextvars.ContextVar[Telemetry | None] = contextvars.ContextVar(
    "repro_obs_active", default=None
)


def active() -> Telemetry | NullTelemetry:
    """The telemetry the current context records to (the null object
    unless a :func:`use` block -- installed by ``Runner(telemetry=...)``
    -- says otherwise)."""
    telemetry = _ACTIVE.get()
    return NULL if telemetry is None else telemetry


@contextlib.contextmanager
def use(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Install ``telemetry`` as the active instance for the enclosed block."""
    if not isinstance(telemetry, Telemetry):
        raise TypeError(
            "use() expects a Telemetry instance; "
            f"got {type(telemetry).__name__}"
        )
    token = _ACTIVE.set(telemetry)
    try:
        yield telemetry
    finally:
        _ACTIVE.reset(token)


# ----------------------------------------------------------------------
# Probe registry
# ----------------------------------------------------------------------
#: site -> ordered list of sampler callables.
_PROBES: dict[str, list[Callable]] = {}

#: Probe sites the engines call (documented; registering elsewhere is
#: allowed for custom instrumentation that calls ``probe()`` itself).
PROBE_SITES = ("round", "txop", "shard")


def register_probe(site: str = "round", name: str | None = None):
    """Decorator: attach a sampler to a probe site without touching engines.

    The sampler runs as ``fn(telemetry, **context)`` every time an *enabled*
    telemetry passes the site (never on untraced runs), and typically
    records gauges::

        @register_probe("round")
        def queue_depth(obs, evaluator=None, **ctx):
            if getattr(evaluator, "_traffic", None) is not None:
                obs.gauge("queue_bytes", evaluator._traffic.queued_bytes())

    Samplers must not mutate engine state or draw randomness -- the
    bit-identity contract extends to them.
    """

    def decorator(fn):
        fn._probe_site = site
        fn._probe_name = name or fn.__name__
        _PROBES.setdefault(site, []).append(fn)
        return fn

    return decorator


def unregister_probe(fn) -> None:
    """Detach a previously registered sampler (tests, notebook reloads)."""
    site = getattr(fn, "_probe_site", None)
    if site is not None and fn in _PROBES.get(site, ()):
        _PROBES[site].remove(fn)


def registered_probes(site: str | None = None) -> list[str]:
    """Names of registered samplers (optionally one site's)."""
    sites = [site] if site is not None else sorted(_PROBES)
    return [fn._probe_name for s in sites for fn in _PROBES.get(s, ())]
