"""repro.obs — the first-class telemetry layer.

A process-local :class:`Telemetry` object (context-var scoped, like
:func:`repro.xp.use`) offering tracing spans, counters/gauges, and a
profiling-hook registry; a :class:`NullTelemetry` null object keeps every
instrumentation point free on untraced runs.  Instrumented code never
changes behaviour based on telemetry state: engine outputs are
byte-identical with telemetry on or off, and telemetry never enters spec
hashes or cache keys.

Typical use::

    from repro import obs
    from repro.api import Runner, RunSpec

    telemetry = obs.Telemetry()
    result = Runner(telemetry=telemetry).run(RunSpec(experiment="fig09"))
    telemetry.write_jsonl("trace.jsonl")          # one event per line
    telemetry.write_chrome_trace("trace.json")    # chrome://tracing
    print(result.telemetry.counters)

Library code records through the active instance::

    with obs.active().span("precode", ap=k):
        ...
    obs.active().count("assoc.handoffs")
"""

from .telemetry import (
    CORE_COUNTERS,
    NULL,
    PROBE_SITES,
    TRACE_SCHEMA_VERSION,
    NullTelemetry,
    Telemetry,
    TelemetrySummary,
    active,
    register_probe,
    registered_probes,
    unregister_probe,
    use,
)

__all__ = [
    "CORE_COUNTERS",
    "NULL",
    "PROBE_SITES",
    "TRACE_SCHEMA_VERSION",
    "NullTelemetry",
    "Telemetry",
    "TelemetrySummary",
    "active",
    "register_probe",
    "registered_probes",
    "unregister_probe",
    "use",
]
