"""Empirical CDFs and percentile-gain statistics.

Every figure in the paper's evaluation is a CDF over topologies (or a
per-topology scatter); this module provides the small amount of statistics
machinery the experiments and benches share.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class EmpiricalCdf:
    """An empirical cumulative distribution over observed samples."""

    samples: np.ndarray

    def __post_init__(self):
        arr = np.sort(np.asarray(self.samples, dtype=float).ravel())
        if arr.size == 0:
            raise ValueError("EmpiricalCdf requires at least one sample")
        if np.any(~np.isfinite(arr)):
            raise ValueError("EmpiricalCdf samples must be finite")
        object.__setattr__(self, "samples", arr)

    def __len__(self) -> int:
        return int(self.samples.size)

    def evaluate(self, x) -> np.ndarray:
        """P[X <= x] for scalar or array ``x``."""
        return np.searchsorted(self.samples, np.asarray(x, dtype=float), side="right") / len(self)

    def quantile(self, q) -> float | np.ndarray:
        """Inverse CDF at probability ``q`` (linear interpolation)."""
        out = np.quantile(self.samples, q)
        return float(out) if np.isscalar(q) else out

    @property
    def median(self) -> float:
        """50th percentile."""
        return self.quantile(0.5)

    def support(self) -> tuple[float, float]:
        """(min, max) of the observed samples."""
        return float(self.samples[0]), float(self.samples[-1])

    def curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) step-curve points for plotting or tabulation."""
        n = len(self)
        return self.samples, np.arange(1, n + 1) / n


def median(samples) -> float:
    """Median of a sample array."""
    return float(np.median(np.asarray(samples, dtype=float)))


def percentile_gain(treatment, baseline, q: float = 0.5) -> float:
    """Relative gain of ``treatment`` over ``baseline`` at quantile ``q``.

    Returns ``quantile(treatment, q) / quantile(baseline, q) - 1``; the paper
    reports median (q=0.5) gains like "MIDAS has a median gain of 40-67%".
    """
    base = float(np.quantile(np.asarray(baseline, dtype=float), q))
    if base <= 0:
        raise ValueError("baseline quantile must be positive to form a relative gain")
    treat = float(np.quantile(np.asarray(treatment, dtype=float), q))
    return treat / base - 1.0


def median_gain(treatment, baseline) -> float:
    """Median relative gain (the statistic the paper quotes most often)."""
    return percentile_gain(treatment, baseline, 0.5)


def paired_ratio(treatment, baseline) -> np.ndarray:
    """Element-wise treatment/baseline ratio for paired per-topology samples.

    Used by Fig 12 ("ratio of simultaneous streams MIDAS/CAS") where the
    paper pairs the two systems on identical deployments.
    """
    t = np.asarray(treatment, dtype=float)
    b = np.asarray(baseline, dtype=float)
    if t.shape != b.shape:
        raise ValueError("paired samples must have identical shapes")
    if np.any(b <= 0):
        raise ValueError("baseline samples must be positive")
    return t / b
