"""Latency analysis: delay CDFs and throughput-delay curves.

Companions to :mod:`repro.analysis.cdf` for the finite-load results the
traffic subsystem produces: per-packet delay samples (from
:attr:`repro.sim.rounds.RoundBasedResult.delay_samples_s` or a
``latency_vs_load`` run) and offered-load sweeps.
"""

from __future__ import annotations

import numpy as np

from .cdf import EmpiricalCdf


def _as_delay_samples(delays) -> np.ndarray:
    """Accept raw samples or anything exposing ``delay_samples_s``."""
    samples = getattr(delays, "delay_samples_s", delays)
    return np.asarray(samples, dtype=float).ravel()


def _require_samples(samples: np.ndarray) -> np.ndarray:
    """Shared empty-run guard: an empty delay distribution has no summary."""
    if samples.size == 0:
        raise ValueError(
            "no departed packets: the run produced no delay samples "
            "(overloaded or too short)"
        )
    return samples


def delay_cdf(delays) -> EmpiricalCdf:
    """Empirical CDF of packet delays.

    ``delays`` is a sample array or a finite-load result object (anything
    with a ``delay_samples_s`` attribute).  Raises :class:`ValueError` when
    no packet ever departed -- an empty delay distribution has no CDF.
    """
    return EmpiricalCdf(_require_samples(_as_delay_samples(delays)))


def delay_percentiles(delays, qs=(0.5, 0.9, 0.95, 0.99)) -> np.ndarray:
    """Delay quantiles at ``qs``.

    Raises :class:`ValueError` when no packet ever departed, exactly like
    :func:`delay_cdf` (use :attr:`RoundBasedResult.delay_quantile` if an
    ``inf`` sentinel is preferred over an exception).
    """
    samples = _require_samples(_as_delay_samples(delays))
    return np.quantile(samples, np.asarray(tuple(qs), dtype=float))


def throughput_delay_curve(
    result, system: str, reduce=np.median
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(offered, throughput, delay) curve for one system of a
    ``latency_vs_load`` result.

    ``result`` is the experiment's :class:`~repro.api.result.RunResult`;
    ``system`` is ``"cas"`` or ``"midas"``.  Per-topology series are
    reduced across the topology axis with ``reduce`` (default median).
    Returns offered load (Mb/s), delivered throughput (Mb/s), and mean
    delay (ms) -- the arrays a throughput-delay plot needs.
    """
    offered = np.asarray(result.params["offered_loads_mbps"], dtype=float)
    throughput = np.asarray(result.series[f"{system}_throughput_mbps"], dtype=float)
    delay = np.asarray(result.series[f"{system}_delay_ms"], dtype=float)
    if throughput.ndim != 2 or throughput.shape[1] != offered.size:
        raise ValueError(
            "expected (n_topologies, n_loads) series matching the offered "
            f"loads; got {throughput.shape} vs {offered.size} loads"
        )
    return offered, reduce(throughput, axis=0), reduce(delay, axis=0)


def saturation_load_mbps(
    result, system: str, delay_budget_ms: float = 10.0
) -> float:
    """Largest offered load whose median delay stays within the budget.

    The knee summary for one system of a ``latency_vs_load`` result:
    ``-inf`` if even the lightest load misses the budget.
    """
    offered, __, delay = throughput_delay_curve(result, system)
    within = offered[delay <= delay_budget_ms]
    return float(within.max()) if within.size else float("-inf")
