"""Plain-text report formatting used by benchmarks and EXPERIMENTS.md.

The benches print the same rows/series the paper's figures show; these
helpers keep that formatting consistent and terminal-friendly.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .cdf import EmpiricalCdf


def format_cdf_summary(series: Mapping[str, Sequence[float]], unit: str = "") -> str:
    """Summarize named sample sets as min / p25 / median / p75 / max rows."""
    header = f"{'series':<28}{'n':>5}{'min':>9}{'p25':>9}{'median':>9}{'p75':>9}{'max':>9}"
    lines = [header, "-" * len(header)]
    for name, samples in series.items():
        cdf = EmpiricalCdf(np.asarray(samples, dtype=float))
        low, high = cdf.support()
        lines.append(
            f"{name:<28}{len(cdf):>5}{low:>9.2f}{cdf.quantile(0.25):>9.2f}"
            f"{cdf.median:>9.2f}{cdf.quantile(0.75):>9.2f}{high:>9.2f}"
        )
    if unit:
        lines.append(f"(values in {unit})")
    return "\n".join(lines)


def format_series_table(
    columns: Mapping[str, Sequence[float]], float_format: str = "{:>10.3f}"
) -> str:
    """Render equal-length named columns as an aligned text table."""
    names = list(columns)
    arrays = [np.asarray(columns[name], dtype=float) for name in names]
    length = len(arrays[0]) if arrays else 0
    if any(len(a) != length for a in arrays):
        raise ValueError("all columns must have equal length")
    header = "".join(f"{name:>12}" for name in names)
    lines = [header, "-" * len(header)]
    for i in range(length):
        lines.append("".join(float_format.format(a[i]) for a in arrays))
    return "\n".join(lines)


def format_gain_line(label: str, gain: float) -> str:
    """One-line 'label: +NN.N%' gain statement matching the paper's phrasing."""
    return f"{label}: {gain * 100:+.1f}%"
