"""Result analysis: empirical CDFs, percentile gains, delay curves, reports,
and mergeable streaming accumulators for sharded campaigns."""

from .cdf import EmpiricalCdf, median, median_gain, percentile_gain
from .delay import (
    delay_cdf,
    delay_percentiles,
    saturation_load_mbps,
    throughput_delay_curve,
)
from .report import format_cdf_summary, format_series_table
from .streaming import (
    ExactSum,
    QuantileSketch,
    RunningStats,
    StreamingSummary,
)

__all__ = [
    "EmpiricalCdf",
    "median",
    "median_gain",
    "percentile_gain",
    "ExactSum",
    "QuantileSketch",
    "RunningStats",
    "StreamingSummary",
    "delay_cdf",
    "delay_percentiles",
    "saturation_load_mbps",
    "throughput_delay_curve",
    "format_cdf_summary",
    "format_series_table",
]
