"""Result analysis: empirical CDFs, percentile gains, paper-style reports."""

from .cdf import EmpiricalCdf, median, median_gain, percentile_gain
from .report import format_cdf_summary, format_series_table

__all__ = [
    "EmpiricalCdf",
    "median",
    "median_gain",
    "percentile_gain",
    "format_cdf_summary",
    "format_series_table",
]
