"""Mergeable streaming accumulators for sharded sweeps.

A campaign-scale sweep (see :mod:`repro.campaign`) evaluates millions of
topologies in shard-sized work units that complete in whatever order the
process pool produces them.  The headline statistics -- capacity CDFs,
means, percentiles -- must therefore be computable *incrementally* (one
shard at a time, never holding every sample in memory) and must be
**merge-order invariant**: the reported aggregates may not depend on which
shard finished first.  The accumulators here make that invariance *exact*,
not approximate:

* :class:`ExactSum` keeps a running float sum as a Shewchuk expansion (the
  ``math.fsum`` representation): the stored value is the *exact* real sum
  of everything added, and :meth:`ExactSum.value` rounds it once at the
  end.  Exact addition is commutative and associative, so any merge order
  produces bit-identical totals.
* :class:`RunningStats` builds count / mean / variance / min / max on top
  of :class:`ExactSum` (sums of values and of squared values; squaring is
  a deterministic per-element rounding, identical on every shard).
* :class:`QuantileSketch` is an integer-count histogram over a fixed
  lattice of bins (``floor(x / resolution)``).  Integer counts add
  exactly, so merged sketches are bit-identical in any order; quantiles
  and CDF evaluations are exact to within one ``resolution``.
* :class:`StreamingSummary` bundles one of each per named series and is
  the unit the campaign journal checkpoints (``state()`` round-trips
  through JSON).

Every accumulator supports ``add`` (ingest raw samples), ``merge``
(combine another accumulator in place), and ``state`` / ``from_state``
(JSON-safe checkpointing).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

import numpy as np

#: Default sketch bin width.  A power of two, so ``x / resolution`` is an
#: exact float scaling and bin assignment never depends on rounding mode.
DEFAULT_RESOLUTION = 1.0 / 128.0


class ExactSum:
    """Exact running sum of floats (Shewchuk expansion, as ``math.fsum``).

    The internal ``partials`` list represents the *exact* real-number sum
    of every value added so far as a sum of non-overlapping floats.
    Because the represented value is exact, addition order cannot change
    it; :meth:`value` performs the single correct rounding at read time.
    """

    __slots__ = ("partials",)

    def __init__(self, partials: Iterable[float] = ()):  # noqa: D107
        self.partials: list[float] = [float(p) for p in partials]

    def add(self, x: float) -> None:
        """Add one value exactly (Shewchuk's grow-expansion step)."""
        x = float(x)
        if not math.isfinite(x):
            raise ValueError("ExactSum requires finite values")
        partials = self.partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def add_many(self, values) -> None:
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size and not np.all(np.isfinite(arr)):
            raise ValueError("ExactSum requires finite values")
        for v in arr.tolist():
            self.add(v)

    def merge(self, other: "ExactSum") -> None:
        """Fold another exact sum in (exact, hence order-invariant)."""
        for p in other.partials:
            self.add(p)

    def value(self) -> float:
        """The correctly-rounded sum (one rounding, at the very end)."""
        return math.fsum(self.partials)

    def state(self) -> list[float]:
        return list(self.partials)

    @classmethod
    def from_state(cls, state: Iterable[float]) -> "ExactSum":
        return cls(state)


class RunningStats:
    """Mergeable count / mean / std / min / max over streamed samples.

    Sums are exact (:class:`ExactSum`), counts are integers, and min/max
    are exact comparisons, so two :class:`RunningStats` built from the
    same samples in any grouping and merge order report bit-identical
    statistics.
    """

    __slots__ = ("count", "_sum", "_sumsq", "_min", "_max")

    def __init__(self):  # noqa: D107
        self.count = 0
        self._sum = ExactSum()
        self._sumsq = ExactSum()
        self._min = math.inf
        self._max = -math.inf

    def add(self, values) -> None:
        """Ingest raw samples (any shape; raveled)."""
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        if not np.all(np.isfinite(arr)):
            raise ValueError("RunningStats requires finite samples")
        self.count += int(arr.size)
        # x*x is one deterministic rounding per element -- identical on
        # every shard that sees the element, so sums of squares stay
        # merge-order invariant too.
        for v in arr.tolist():
            self._sum.add(v)
            self._sumsq.add(v * v)
        self._min = min(self._min, float(arr.min()))
        self._max = max(self._max, float(arr.max()))

    def merge(self, other: "RunningStats") -> None:
        self.count += other.count
        self._sum.merge(other._sum)
        self._sumsq.merge(other._sumsq)
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # -- derived statistics ------------------------------------------------
    @property
    def total(self) -> float:
        return self._sum.value()

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("RunningStats.mean requires at least one sample")
        return self._sum.value() / self.count

    @property
    def std(self) -> float:
        """Population standard deviation (clamped at zero)."""
        if self.count == 0:
            raise ValueError("RunningStats.std requires at least one sample")
        mean = self.mean
        var = self._sumsq.value() / self.count - mean * mean
        return math.sqrt(max(var, 0.0))

    @property
    def min(self) -> float:
        if self.count == 0:
            raise ValueError("RunningStats.min requires at least one sample")
        return self._min

    @property
    def max(self) -> float:
        if self.count == 0:
            raise ValueError("RunningStats.max requires at least one sample")
        return self._max

    def state(self) -> dict:
        return {
            "count": self.count,
            "sum": self._sum.state(),
            "sumsq": self._sumsq.state(),
            "min": self._min if self.count else None,
            "max": self._max if self.count else None,
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "RunningStats":
        out = cls()
        out.count = int(state["count"])
        out._sum = ExactSum.from_state(state["sum"])
        out._sumsq = ExactSum.from_state(state["sumsq"])
        out._min = math.inf if state["min"] is None else float(state["min"])
        out._max = -math.inf if state["max"] is None else float(state["max"])
        return out


class QuantileSketch:
    """Fixed-lattice histogram sketch with exactly order-invariant merges.

    Samples land in bins indexed by ``floor(x / resolution)``; the sketch
    stores integer counts per occupied bin plus the exact min/max.  Merging
    adds integer counts, which is exactly commutative and associative --
    unlike t-digest/KLL-style sketches whose state depends on insertion
    order.  The price is bounded, known error instead of bounded memory:
    quantile and CDF answers are exact to within one ``resolution``, and
    memory scales with the occupied value range
    (``(max - min) / resolution`` bins at worst, one dict entry each).
    """

    __slots__ = ("resolution", "counts", "_min", "_max")

    def __init__(self, resolution: float = DEFAULT_RESOLUTION):  # noqa: D107
        if not (isinstance(resolution, (int, float)) and resolution > 0):
            raise ValueError("QuantileSketch resolution must be positive")
        self.resolution = float(resolution)
        self.counts: dict[int, int] = {}
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        return sum(self.counts.values())

    def add(self, values) -> None:
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return
        if not np.all(np.isfinite(arr)):
            raise ValueError("QuantileSketch requires finite samples")
        bins = np.floor(arr / self.resolution).astype(np.int64)
        uniq, freq = np.unique(bins, return_counts=True)
        for b, f in zip(uniq.tolist(), freq.tolist()):
            self.counts[b] = self.counts.get(b, 0) + f
        self._min = min(self._min, float(arr.min()))
        self._max = max(self._max, float(arr.max()))

    def merge(self, other: "QuantileSketch") -> None:
        if other.resolution != self.resolution:
            raise ValueError(
                "cannot merge QuantileSketch instances with different "
                f"resolutions ({self.resolution} vs {other.resolution})"
            )
        for b, f in other.counts.items():
            self.counts[b] = self.counts.get(b, 0) + f
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # -- queries -----------------------------------------------------------
    def quantile(self, q) -> float | np.ndarray:
        """Inverse CDF at probability ``q`` (scalar or array).

        Linear interpolation inside the bin containing the requested
        rank, clamped to the exact observed [min, max].  Guarantee: the
        returned value lies within one ``resolution`` of an order
        statistic adjacent to rank ``q * (count - 1)`` -- i.e. of the
        uninterpolated empirical quantile -- regardless of how samples
        were sharded or merges ordered.
        """
        total = self.count
        if total == 0:
            raise ValueError("QuantileSketch.quantile requires at least one sample")
        qs = np.asarray(q, dtype=float)
        if np.any((qs < 0.0) | (qs > 1.0)):
            raise ValueError("quantile probabilities must be in [0, 1]")
        bins = sorted(self.counts)
        cum = np.cumsum([self.counts[b] for b in bins])
        # Rank in [0, total-1], numpy-style "linear" positioning.
        ranks = np.atleast_1d(qs) * (total - 1)
        out = np.empty(ranks.shape, dtype=float)
        for i, rank in enumerate(ranks.ravel()):
            # Exact endpoints: q=0 is the observed min, q=1 the observed max
            # (interpolation inside a bin would otherwise bias q=0 upward).
            if rank <= 0.0:
                out.ravel()[i] = self._min
                continue
            if rank >= total - 1:
                out.ravel()[i] = self._max
                continue
            j = int(np.searchsorted(cum, rank + 1.0, side="left"))
            j = min(j, len(bins) - 1)
            prev = 0 if j == 0 else int(cum[j - 1])
            inside = self.counts[bins[j]]
            frac = (rank + 1.0 - prev) / inside
            value = (bins[j] + min(max(frac, 0.0), 1.0)) * self.resolution
            out.ravel()[i] = min(max(value, self._min), self._max)
        if np.isscalar(q) or qs.ndim == 0:
            return float(out.ravel()[0])
        return out

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def evaluate(self, x) -> np.ndarray:
        """P[X <= x] at bin granularity (sketched empirical CDF)."""
        total = self.count
        if total == 0:
            raise ValueError("QuantileSketch.evaluate requires at least one sample")
        xs = np.asarray(x, dtype=float)
        bins = sorted(self.counts)
        cum = np.cumsum([self.counts[b] for b in bins])
        idx = np.searchsorted(bins, np.floor(np.atleast_1d(xs) / self.resolution), side="right")
        frac = np.where(idx > 0, cum[idx - 1], 0) / total
        return frac.reshape(xs.shape)

    def curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) step points at bin upper edges, for plotting."""
        total = self.count
        if total == 0:
            raise ValueError("QuantileSketch.curve requires at least one sample")
        bins = sorted(self.counts)
        edges = (np.asarray(bins, dtype=float) + 1.0) * self.resolution
        fractions = np.cumsum([self.counts[b] for b in bins]) / total
        return edges, fractions

    def support(self) -> tuple[float, float]:
        if self.count == 0:
            raise ValueError("QuantileSketch.support requires at least one sample")
        return self._min, self._max

    def state(self) -> dict:
        empty = self.count == 0
        return {
            "resolution": self.resolution,
            # JSON objects only take string keys; bin indices round-trip
            # through str() losslessly.
            "counts": {str(b): f for b, f in sorted(self.counts.items())},
            "min": None if empty else self._min,
            "max": None if empty else self._max,
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "QuantileSketch":
        out = cls(resolution=float(state["resolution"]))
        out.counts = {int(b): int(f) for b, f in state["counts"].items()}
        out._min = math.inf if state["min"] is None else float(state["min"])
        out._max = -math.inf if state["max"] is None else float(state["max"])
        return out


class StreamingSummary:
    """One series' streaming aggregate: exact moments plus a CDF sketch.

    The unit the campaign layer accumulates per (cell, series): ingest a
    shard's samples with :meth:`add`, checkpoint with :meth:`state`, and
    fold shards together with :meth:`merge` -- in any order, with
    bit-identical reported aggregates.
    """

    __slots__ = ("stats", "sketch")

    def __init__(self, resolution: float = DEFAULT_RESOLUTION):  # noqa: D107
        self.stats = RunningStats()
        self.sketch = QuantileSketch(resolution=resolution)

    def add(self, values) -> None:
        self.stats.add(values)
        self.sketch.add(values)

    def merge(self, other: "StreamingSummary") -> None:
        self.stats.merge(other.stats)
        self.sketch.merge(other.sketch)

    # -- delegated queries -------------------------------------------------
    @property
    def count(self) -> int:
        return self.stats.count

    @property
    def mean(self) -> float:
        return self.stats.mean

    @property
    def std(self) -> float:
        return self.stats.std

    @property
    def min(self) -> float:
        return self.stats.min

    @property
    def max(self) -> float:
        return self.stats.max

    def quantile(self, q):
        return self.sketch.quantile(q)

    @property
    def median(self) -> float:
        return self.sketch.median

    def cdf_curve(self) -> tuple[np.ndarray, np.ndarray]:
        return self.sketch.curve()

    def state(self) -> dict[str, Any]:
        return {"stats": self.stats.state(), "sketch": self.sketch.state()}

    @classmethod
    def from_state(cls, state: Mapping) -> "StreamingSummary":
        out = cls.__new__(cls)
        out.stats = RunningStats.from_state(state["stats"])
        out.sketch = QuantileSketch.from_state(state["sketch"])
        return out
