"""Large-scale path loss: the log-distance model with a free-space anchor.

``PL(d) = PL(d0) + 10 * n * log10(d / d0)`` with ``PL(d0)`` the Friis
free-space loss at the reference distance.  Indoor offices use exponents
around 3.5 (enterprise, Office A) to 4.0 (crowded lab, Office B).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .. import units
from ..config import MacConfig, RadioConfig


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Log-distance path-loss model anchored at free space."""

    exponent: float
    reference_distance_m: float
    reference_loss_db: float

    @classmethod
    def from_radio(cls, radio: RadioConfig) -> "LogDistancePathLoss":
        """Build the model from a :class:`RadioConfig`."""
        ref_loss = units.free_space_path_loss_db(radio.reference_distance_m, radio.carrier_hz)
        return cls(
            exponent=radio.pathloss_exponent,
            reference_distance_m=radio.reference_distance_m,
            reference_loss_db=ref_loss,
        )

    def loss_db(self, distance_m) -> np.ndarray:
        """Path loss in dB; distances below the reference are clamped to it."""
        d = np.maximum(np.asarray(distance_m, dtype=float), self.reference_distance_m)
        return self.reference_loss_db + 10.0 * self.exponent * np.log10(
            d / self.reference_distance_m
        )

    def distance_for_loss(self, loss_db: float) -> float:
        """Inverse model: distance at which the median loss equals ``loss_db``."""
        if loss_db < self.reference_loss_db:
            return self.reference_distance_m
        return self.reference_distance_m * 10.0 ** (
            (loss_db - self.reference_loss_db) / (10.0 * self.exponent)
        )


@lru_cache(maxsize=256)
def _range_for_budget(radio: RadioConfig, budget_db: float, sensing: bool = False) -> float:
    """Distance at which the *average* loss (log-distance + expected wall
    attenuation) reaches ``budget_db``; monotone, solved by bisection.

    ``sensing=True`` selects the cleaner elevated-path exponent used for
    antenna-to-antenna links.

    Memoized: every topology draw of a sweep asks for the same handful of
    (radio, budget) ranges, and ``RadioConfig`` is frozen/hashable, so the
    80-step bisection runs once per distinct query instead of per draw.
    """
    from .walls import mean_wall_loss_db  # local import avoids a cycle

    model = LogDistancePathLoss.from_radio(radio)
    if sensing:
        model = LogDistancePathLoss(
            exponent=radio.sensing_pathloss_exponent,
            reference_distance_m=model.reference_distance_m,
            reference_loss_db=model.reference_loss_db,
        )

    def total_loss(d: float) -> float:
        loss = float(model.loss_db(d))
        if radio.wall_loss_db > 0:
            loss += float(
                mean_wall_loss_db(
                    d, radio.wall_spacing_m, radio.wall_loss_db, radio.max_wall_count
                )
            )
        return loss

    if total_loss(radio.reference_distance_m) >= budget_db:
        return radio.reference_distance_m
    low, high = radio.reference_distance_m, radio.reference_distance_m
    while total_loss(high) < budget_db:
        high *= 2.0
        if high > 1e6:
            return high
    for _ in range(80):
        mid = 0.5 * (low + high)
        if total_loss(mid) < budget_db:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def coverage_range_m(radio: RadioConfig, min_snr_db: float = 5.0) -> float:
    """Distance at which the *median* SNR falls to ``min_snr_db``.

    This is the paper's "CAS AP transmission range": DAS antennas are placed
    at 50-75% of it (§7), and the deadzone survey covers this disk (§5.3.3).
    """
    noise_dbm = units.mw_to_dbm(radio.noise_mw)
    budget = radio.per_antenna_power_dbm - noise_dbm - min_snr_db
    return _range_for_budget(radio, budget)


def cs_range_m(radio: RadioConfig, mac: MacConfig) -> float:
    """Distance at which the median antenna-to-antenna received power falls
    to the carrier-sense threshold -- the "overhearing" radius used by
    Figs 12, 15, 16 (elevated sensing paths)."""
    budget = radio.per_antenna_power_dbm - mac.cs_threshold_dbm
    return _range_for_budget(radio, budget, sensing=True)


def nav_range_m(radio: RadioConfig, mac: MacConfig) -> float:
    """Distance at which the median antenna-to-antenna received power falls
    to the preamble-decode (NAV) threshold."""
    budget = radio.per_antenna_power_dbm - mac.nav_decode_dbm
    return _range_for_budget(radio, budget, sensing=True)
