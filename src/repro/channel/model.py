"""The composite channel model: path loss x shadowing x fading.

:class:`ChannelModel` binds a :class:`~repro.topology.deployment.Deployment`
to a :class:`~repro.config.RadioConfig` and produces

* complex downlink channel matrices ``H`` of shape ``(n_clients, n_antennas)``
  (the paper's ``h_jk``, client ``j`` from antenna ``k``),
* large-scale received-power maps used for carrier sensing, coverage and
  antenna-preference (tagging) decisions, and
* time evolution between coherence blocks.

Large-scale terms (path loss + shadowing) are frozen per topology; small-scale
fading is a :class:`~repro.channel.fading.FadingProcess` evolving over time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import rng as rng_mod
from .. import units
from ..config import RadioConfig
from ..topology import geometry
from ..topology.deployment import Deployment
from . import walls
from .fading import FadingProcess
from .pathloss import LogDistancePathLoss
from .shadowing import ShadowingField, group_antenna_sites, prepare_points


@dataclass(frozen=True)
class ChannelSample:
    """A snapshot of the downlink channel at one instant."""

    h: np.ndarray  # (n_clients, n_antennas) complex
    noise_mw: float
    time_s: float

    @property
    def n_clients(self) -> int:
        return self.h.shape[0]

    @property
    def n_antennas(self) -> int:
        return self.h.shape[1]


class ChannelModel:
    """Composite indoor channel for one deployment.

    Parameters
    ----------
    deployment:
        Antenna/client geometry.
    radio:
        Radio constants (propagation, power, noise).
    seed:
        Seed or generator; children are spawned for shadowing and fading so
        the two streams are independent.
    """

    def __init__(self, deployment: Deployment, radio: RadioConfig, seed=None):
        self.deployment = deployment
        self.radio = radio
        root = rng_mod.make_rng(seed)
        shadow_rng, fading_rng = rng_mod.spawn(root, 2)

        self._pathloss = LogDistancePathLoss.from_radio(radio)
        self._sensing_pathloss = LogDistancePathLoss(
            exponent=radio.sensing_pathloss_exponent,
            reference_distance_m=self._pathloss.reference_distance_m,
            reference_loss_db=self._pathloss.reference_loss_db,
        )
        self._site_of_antenna = group_antenna_sites(deployment.antenna_positions)
        n_sites = int(self._site_of_antenna.max()) + 1 if deployment.n_antennas else 0
        site_rngs = rng_mod.spawn(shadow_rng, max(n_sites, 1))
        self._site_fields = [
            ShadowingField(site_rngs[s], radio.shadowing_sigma_db, radio.shadowing_correlation_m)
            for s in range(n_sites)
        ]
        self._fading = FadingProcess(
            fading_rng,
            deployment.n_clients,
            deployment.antenna_positions,
            radio.wavelength_m,
            doppler_hz=radio.doppler_hz,
            rician_k=radio.rician_k,
            angular_spread_deg=radio.angular_spread_deg,
        )
        # Per-antenna feed-cable attenuation: distributed antennas hang off
        # RF coax whose length we take as the antenna-to-AP distance.
        ap_of_antenna = deployment.ap_positions[deployment.antenna_ap]
        cable_lengths = np.linalg.norm(deployment.antenna_positions - ap_of_antenna, axis=1)
        self._cable_loss_db = radio.cable_loss_db_per_m * cable_lengths

        self._time_s = 0.0
        self._client_positions = deployment.client_positions
        self._client_gain_db = self.large_scale_gain_db(deployment.client_positions)

    # ------------------------------------------------------------------
    # Large-scale propagation
    # ------------------------------------------------------------------
    def shadowing_db(self, rx_points) -> np.ndarray:
        """Shadowing toward each antenna at each point, ``(n_points, n_antennas)``.

        Sampled once per shadowing *site* and broadcast to that site's
        antennas (a CAS array shares one field), which vectorizes the old
        per-antenna loop without changing any generator draw: sites are
        visited in first-antenna order, exactly as the loop did.
        """
        pts = geometry.as_points(rx_points)
        shadow = np.zeros((len(pts), self.deployment.n_antennas))
        if self.radio.shadowing_sigma_db == 0.0 or not self._site_fields:
            return shadow
        # One lattice-geometry preparation serves every site field (they
        # share the correlation length); per-site draws stay in site order.
        prep = prepare_points(pts, self.radio.shadowing_correlation_m)
        for site, field in enumerate(self._site_fields):
            columns = np.flatnonzero(self._site_of_antenna == site)
            if columns.size:
                shadow[:, columns] = field.sample_prepared(prep)[:, None]
        return shadow

    def large_scale_gain_db(self, rx_points) -> np.ndarray:
        """Median channel gain (``-PL - walls + shadowing``) in dB from every
        antenna to every receive point; shape ``(n_points, n_antennas)``."""
        pts = geometry.as_points(rx_points)
        dists = geometry.pairwise_distances(pts, self.deployment.antenna_positions)
        gain = -self._pathloss.loss_db(dists)
        if self.radio.wall_loss_db > 0:
            gain -= walls.wall_loss_db(
                pts,
                self.deployment.antenna_positions,
                self.radio.wall_spacing_m,
                self.radio.wall_loss_db,
                max_walls=self.radio.max_wall_count,
            )
        gain += self.shadowing_db(pts)
        gain -= self._cable_loss_db[None, :]
        return gain

    @property
    def cable_loss_db(self) -> np.ndarray:
        """Per-antenna feed-cable attenuation (dB), zero for CAS antennas."""
        return self._cable_loss_db.copy()

    def rx_power_dbm(self, rx_points) -> np.ndarray:
        """Large-scale received power (dBm) from each antenna at each point,
        assuming the antenna transmits at the full per-antenna budget."""
        return self.radio.per_antenna_power_dbm + self.large_scale_gain_db(rx_points)

    def client_gain_db(self) -> np.ndarray:
        """Cached large-scale gains for the deployment's clients,
        shape ``(n_clients, n_antennas)``."""
        return self._client_gain_db

    @property
    def client_positions(self) -> np.ndarray:
        """Current client positions -- the deployment's draw until a
        mobility model moves them via :meth:`update_client_positions`."""
        return self._client_positions

    def update_client_positions(self, positions) -> None:
        """Move the clients and re-evaluate their large-scale channel.

        The shadowing fields resample at the new positions from the cached
        lattice (spatially consistent with everything sampled so far);
        pathloss, walls, and cable loss recompute deterministically.  The
        small-scale fading state is *not* reset -- it keeps evolving under
        whatever Doppler :meth:`advance` is given, which is the mobility
        contract: large-scale drift and fading decorrelation are separate
        axes of the same trajectory.
        """
        pts = geometry.as_points(positions)
        if pts.shape != (self.deployment.n_clients, 2):
            raise ValueError(
                f"expected ({self.deployment.n_clients}, 2) client positions, "
                f"got {pts.shape}"
            )
        self._client_positions = pts
        self._client_gain_db = self.large_scale_gain_db(pts)

    def client_rx_power_dbm(self) -> np.ndarray:
        """Large-scale RSSI each client sees from each antenna (dBm).

        This is the "average received signal strength" the MIDAS AP uses to
        build antenna preference lists for virtual packet tagging (§3.2.4).
        """
        return self.radio.per_antenna_power_dbm + self._client_gain_db

    def antenna_cross_power_dbm(self) -> np.ndarray:
        """Large-scale received power (dBm) at each antenna's location from
        every other antenna; shape ``(n_antennas, n_antennas)``.

        Used for inter-antenna carrier sensing.  Sensing links use the
        cleaner elevated-path exponent (antennas are mounted above desks and
        bodies).  The cable loss applies twice -- once on the transmitter's
        feed, once on the sensing antenna's way back to its AP's receiver.
        The diagonal (self-reception) is set to +inf dBm: an antenna
        certainly senses its own transmission.
        """
        pts = self.deployment.antenna_positions
        dists = geometry.pairwise_distances(pts, pts)
        gain = -self._sensing_pathloss.loss_db(dists)
        if self.radio.wall_loss_db > 0:
            gain -= walls.wall_loss_db(
                pts,
                pts,
                self.radio.wall_spacing_m,
                self.radio.wall_loss_db,
                max_walls=self.radio.max_wall_count,
            )
        gain += self.shadowing_db(pts)
        gain -= self._cable_loss_db[None, :]  # transmitter's feed
        gain -= self._cable_loss_db[:, None]  # sensing antenna's own feed
        power = self.radio.per_antenna_power_dbm + gain
        np.fill_diagonal(power, np.inf)
        return power

    def snr_db_map(self, rx_points) -> np.ndarray:
        """Large-scale SNR (dB) from each antenna at each point,
        shape ``(n_points, n_antennas)``."""
        noise_dbm = units.mw_to_dbm(self.radio.noise_mw)
        return self.rx_power_dbm(rx_points) - noise_dbm

    # ------------------------------------------------------------------
    # Small-scale channel
    # ------------------------------------------------------------------
    @property
    def time_s(self) -> float:
        """Current simulation time of the fading process."""
        return self._time_s

    def channel_matrix(self) -> np.ndarray:
        """Instantaneous complex channel ``H`` of shape
        ``(n_clients, n_antennas)``: amplitude = sqrt(large-scale linear gain)
        times the unit-power fading coefficient."""
        amplitude = np.sqrt(units.db_to_linear(np.asarray(self._client_gain_db)))
        return amplitude * self._fading.current

    def sample(self) -> ChannelSample:
        """Snapshot of the current channel with the receiver noise floor."""
        return ChannelSample(h=self.channel_matrix(), noise_mw=self.radio.noise_mw, time_s=self._time_s)

    def advance(self, dt_s: float, doppler_hz=None) -> None:
        """Advance the fading process by ``dt_s`` seconds.

        ``doppler_hz`` optionally supplies per-client Doppler spreads
        (shape ``(n_clients,)``) derived from actual client speeds,
        overriding the global :attr:`RadioConfig.doppler_hz` for this step
        (see :meth:`FadingProcess.advance`)."""
        self._fading.advance(dt_s, doppler_hz=doppler_hz)
        self._time_s += dt_s


def apply_csi_error(h: np.ndarray, error_std: float, rng: np.random.Generator) -> np.ndarray:
    """Return a noisy CSI estimate ``H + e`` with per-entry complex Gaussian
    error of standard deviation ``error_std * |H|`` (relative error).

    Models imperfect sounding/feedback; 0 returns ``h`` unchanged.
    """
    if error_std < 0:
        raise ValueError("error_std must be non-negative")
    if error_std == 0.0:
        return h
    noise = (rng.standard_normal(h.shape) + 1j * rng.standard_normal(h.shape)) / np.sqrt(2.0)
    return h + error_std * np.abs(h) * noise
