"""Multi-wall indoor attenuation (COST231-style wall factor).

The paper's offices are rooms off corridors: a co-located AP reaches most
clients through several walls, while a distributed antenna is often in the
*same room* as its nearby clients.  That wall asymmetry -- not distance
alone -- is what gives a DAS its per-client "anchor" antenna, concentrates
the zero-forcing precoder's violating rows on few streams (where reverse
water-filling shines), and carves the deadzones and hidden-terminal regions
of §5.3.

Walls are modelled as an axis-aligned grid of partitions with spacing
``wall_spacing_m``; each wall crossed by the direct path adds
``wall_loss_db``.  The crossing count between two points is the number of
grid lines the segment crosses in x plus in y -- exact for axis-aligned
partitions and O(1) per link.
"""

from __future__ import annotations

import numpy as np

from ..topology import geometry

#: Average grid-line crossings per meter of random-direction path is
#: (|cos| + |sin|) averaged over angle = 4/pi per ``spacing`` meters.
MEAN_CROSSING_FACTOR = 4.0 / np.pi


def wall_crossings(points_a, points_b, spacing_m: float) -> np.ndarray:
    """Number of grid walls crossed between every pair (a_i, b_j).

    Returns an ``(len(a), len(b))`` integer array.  Points exactly on a wall
    line belong to the cell to their right/top (numpy floor semantics).

    Both inputs may carry leading batch axes (``(..., n, 2)``): the count is
    then computed per batch slice, which is how the vectorized backend
    evaluates every topology draw in one call.
    """
    if spacing_m <= 0:
        raise ValueError("spacing_m must be positive")
    pa = geometry.as_point_stack(points_a)
    pb = geometry.as_point_stack(points_b)
    cell_a = np.floor(pa / spacing_m).astype(int)
    cell_b = np.floor(pb / spacing_m).astype(int)
    dx = np.abs(cell_a[..., :, None, 0] - cell_b[..., None, :, 0])
    dy = np.abs(cell_a[..., :, None, 1] - cell_b[..., None, :, 1])
    return dx + dy


def wall_loss_db(
    points_a,
    points_b,
    spacing_m: float,
    loss_per_wall_db: float,
    max_walls: int = 3,
) -> np.ndarray:
    """Total wall attenuation in dB for every pair (a_i, b_j).

    The crossing count saturates at ``max_walls``: beyond a few partitions,
    indoor energy arrives via corridors, doorways and diffraction rather
    than through every wall on the straight line (the same reason COST231's
    multi-wall model is sub-linear in the wall count).
    """
    if loss_per_wall_db < 0:
        raise ValueError("loss_per_wall_db must be non-negative")
    if max_walls < 1:
        raise ValueError("max_walls must be at least 1")
    if loss_per_wall_db == 0.0:
        pa = geometry.as_point_stack(points_a)
        pb = geometry.as_point_stack(points_b)
        batch = np.broadcast_shapes(pa.shape[:-2], pb.shape[:-2])
        return np.zeros(batch + (pa.shape[-2], pb.shape[-2]))
    crossings = np.minimum(wall_crossings(points_a, points_b, spacing_m), max_walls)
    return crossings * loss_per_wall_db


def mean_wall_loss_db(
    distance_m, spacing_m: float, loss_per_wall_db: float, max_walls: int = 3
) -> np.ndarray:
    """Expected wall attenuation at a given link distance, averaged over
    random path orientation and saturated at ``max_walls``.  Used by the
    analytic range helpers (:func:`repro.channel.pathloss.coverage_range_m`)."""
    d = np.asarray(distance_m, dtype=float)
    mean_count = np.minimum(MEAN_CROSSING_FACTOR * d / spacing_m, max_walls)
    return loss_per_wall_db * mean_count
