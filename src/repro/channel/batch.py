"""Batched channel synthesis: N topology draws evaluated as stacked arrays.

:class:`ChannelBatch` is the vectorized mirror of N independent
:class:`~repro.channel.model.ChannelModel` instances.  Deterministic
propagation terms -- path loss, wall attenuation, cable loss -- are computed
over the whole ``(batch, n_rx, n_tx)`` stack in single array expressions;
stochastic terms (shadowing lattice nodes, fading innovations) are drawn
from exactly the per-topology generator trees the scalar model builds, so
every per-item result is **bit-identical** to constructing the matching
``ChannelModel`` one topology at a time.  That equality is the contract the
``Runner``'s ``backend="vectorized"`` path relies on (and the equivalence
suite asserts).

Shape convention: batch axes lead, matrix axes trail --

* channel stacks are ``(batch, n_clients, n_antennas)`` complex,
* gain/power maps are ``(batch, n_points, n_antennas)`` dB/dBm.
"""

from __future__ import annotations

import numpy as np
from scipy.special import j0

from .. import rng as rng_mod
from .. import units
from ..config import RadioConfig
from ..topology import geometry
from . import walls
from .fading import _project_psd, correlation_sqrt, sample_fading
from .pathloss import LogDistancePathLoss
from .shadowing import ShadowingField, group_antenna_sites, prepare_points


def stacked_correlation(
    antenna_positions: np.ndarray,
    wavelength_m: float,
    angular_spread_deg: float | None,
) -> np.ndarray:
    """Tx-side fading correlation for a stack of antenna layouts.

    Same formulas as :func:`repro.channel.fading.correlation_for`, evaluated
    over ``(batch, n_tx, 2)`` positions at once (stacked ``eigh`` for the
    PSD projection); bit-identical per slice.
    """
    pts = geometry.as_point_stack(antenna_positions)
    dists = geometry.stacked_pairwise_distances(pts, pts)
    if angular_spread_deg is None:
        corr = j0(2.0 * np.pi * dists / wavelength_m)
    else:
        if angular_spread_deg <= 0:
            raise ValueError("angular_spread_deg must be positive")
        sigma = np.radians(angular_spread_deg)
        corr = np.exp(-2.0 * (np.pi * dists * sigma / wavelength_m) ** 2)
    return _project_psd(corr)


class ChannelBatch:
    """Composite indoor channel for a batch of same-shape deployments.

    Parameters
    ----------
    deployments:
        One :class:`~repro.topology.deployment.Deployment` per topology
        draw; all must share the same ``(n_clients, n_antennas)`` so the
        batch stacks into rectangular arrays.
    radio:
        Radio constants shared by the whole batch (one environment).
    seeds:
        One seed per deployment.  Item ``i`` consumes randomness exactly
        like ``ChannelModel(deployments[i], radio, seed=seeds[i])``.
    """

    def __init__(self, deployments, radio: RadioConfig, seeds):
        deployments = list(deployments)
        seeds = list(seeds)
        if len(deployments) != len(seeds):
            raise ValueError("need one seed per deployment")
        if not deployments:
            raise ValueError("need at least one deployment")
        shapes = {(d.n_clients, d.n_antennas) for d in deployments}
        if len(shapes) > 1:
            raise ValueError(
                f"deployments must share one (n_clients, n_antennas) shape to "
                f"batch; got {sorted(shapes)}"
            )
        self.deployments = deployments
        self.radio = radio
        self.n_items = len(deployments)

        self._pathloss = LogDistancePathLoss.from_radio(radio)
        self._sensing_pathloss = LogDistancePathLoss(
            exponent=radio.sensing_pathloss_exponent,
            reference_distance_m=self._pathloss.reference_distance_m,
            reference_loss_db=self._pathloss.reference_loss_db,
        )

        # Per-item generator trees, spawned exactly like ChannelModel's.
        self._site_fields: list[list[ShadowingField]] = []
        self._site_of_antenna: list[np.ndarray] = []
        fading_rngs = []
        for deployment, seed in zip(deployments, seeds):
            root = rng_mod.make_rng(seed)
            shadow_rng, fading_rng = rng_mod.spawn(root, 2)
            site_of = group_antenna_sites(deployment.antenna_positions)
            n_sites = int(site_of.max()) + 1 if deployment.n_antennas else 0
            site_rngs = rng_mod.spawn(shadow_rng, max(n_sites, 1))
            self._site_of_antenna.append(site_of)
            self._site_fields.append(
                [
                    ShadowingField(
                        site_rngs[s],
                        radio.shadowing_sigma_db,
                        radio.shadowing_correlation_m,
                    )
                    for s in range(n_sites)
                ]
            )
            fading_rngs.append(fading_rng)
        self._fading_rngs = fading_rngs

        # Stacked geometry and deterministic propagation terms.
        self._antennas = np.stack([d.antenna_positions for d in deployments])
        self._clients = np.stack([d.client_positions for d in deployments])
        ap_of_antenna = np.stack(
            [d.ap_positions[d.antenna_ap] for d in deployments]
        )
        cable_lengths = np.linalg.norm(self._antennas - ap_of_antenna, axis=-1)
        self._cable_loss_db = radio.cable_loss_db_per_m * cable_lengths

        # Stacked tx-side fading correlation.  The initial fading state is
        # materialized lazily on first small-scale access: every item draws
        # from its own independent fading generator, so deferring the draw
        # cannot change any value -- and batches used only for large-scale
        # maps (e.g. carrier-sense gating) never pay for it.
        self._corr_sqrt = correlation_sqrt(
            stacked_correlation(
                self._antennas, radio.wavelength_m, radio.angular_spread_deg
            )
        )
        self._lazy_state: np.ndarray | None = None
        self._time_s = 0.0

        self._client_gain_db = self.large_scale_gain_db(self._clients)

    # ------------------------------------------------------------------
    # Large-scale propagation
    # ------------------------------------------------------------------
    def _item_indices(self, items) -> np.ndarray:
        if items is None:
            return np.arange(self.n_items)
        return np.asarray(items, dtype=int)

    def shadowing_db(self, rx_points, items=None) -> np.ndarray:
        """Stacked shadowing ``(batch, n_points, n_antennas)``.

        ``rx_points`` is either one shared ``(n_points, 2)`` set (survey
        grids) or a per-item ``(batch, n_points, 2)`` stack.  Lattice draws
        happen per item in site order, matching the scalar model.
        ``items`` restricts evaluation (and the draws) to the given item
        indices; the leading axis then has ``len(items)`` entries.
        """
        idx = self._item_indices(items)
        pts = geometry.as_point_stack(rx_points)
        shared = pts.ndim == 2
        n_points = pts.shape[-2]
        n_antennas = self._antennas.shape[1]
        shadow = np.zeros((len(idx), n_points, n_antennas))
        if self.radio.shadowing_sigma_db == 0.0:
            return shadow
        # Lattice-geometry preparation is shared across an item's site
        # fields (and across items for a shared point set); per-item draws
        # stay in site order, matching the scalar model.
        correlation = self.radio.shadowing_correlation_m
        prep = prepare_points(pts, correlation) if shared else None
        for row, b in enumerate(idx):
            item_prep = prep if shared else prepare_points(pts[row], correlation)
            site_of = self._site_of_antenna[b]
            for site, field in enumerate(self._site_fields[b]):
                columns = np.flatnonzero(site_of == site)
                if columns.size:
                    shadow[row][:, columns] = field.sample_prepared(item_prep)[:, None]
        return shadow

    def large_scale_gain_db(self, rx_points, items=None) -> np.ndarray:
        """Median channel gain in dB, ``(batch, n_points, n_antennas)``;
        the stacked mirror of ``ChannelModel.large_scale_gain_db``.
        ``items`` restricts the computation to an item subset (per-item
        ``rx_points`` stacks must then carry ``len(items)`` entries)."""
        idx = self._item_indices(items)
        antennas = self._antennas[idx]
        pts = geometry.as_point_stack(rx_points)
        dists = geometry.stacked_pairwise_distances(pts, antennas)
        gain = -self._pathloss.loss_db(dists)
        if self.radio.wall_loss_db > 0:
            gain = gain - walls.wall_loss_db(
                pts,
                antennas,
                self.radio.wall_spacing_m,
                self.radio.wall_loss_db,
                max_walls=self.radio.max_wall_count,
            )
        gain += self.shadowing_db(pts, items=items)
        gain -= self._cable_loss_db[idx][:, None, :]
        return gain

    def update_client_positions(self, positions, items=None) -> None:
        """Move clients and re-evaluate their large-scale gains, the
        stacked mirror of ``ChannelModel.update_client_positions``.

        ``positions`` is ``(len(items), n_clients, 2)`` (whole batch when
        ``items`` is ``None``).  Each item's shadowing draws come from its
        own site fields in site order, bit-identical to the scalar model
        updating that item alone; skipped items consume nothing.
        """
        idx = self._item_indices(items)
        pts = geometry.as_point_stack(positions)
        expected = (len(idx),) + self._clients.shape[1:]
        if pts.shape != expected:
            raise ValueError(
                f"expected {expected} client positions, got {pts.shape}"
            )
        self._clients[idx] = pts
        self._client_gain_db[idx] = self.large_scale_gain_db(pts, items=idx)

    @property
    def cable_loss_db(self) -> np.ndarray:
        """Per-item, per-antenna feed-cable attenuation ``(batch, n_antennas)``."""
        return self._cable_loss_db.copy()

    def client_gain_db(self) -> np.ndarray:
        """Cached client gains ``(batch, n_clients, n_antennas)``."""
        return self._client_gain_db

    def rx_power_dbm(self, rx_points) -> np.ndarray:
        """Stacked large-scale received power (dBm) at ``rx_points``."""
        return self.radio.per_antenna_power_dbm + self.large_scale_gain_db(rx_points)

    def antenna_cross_power_dbm(self) -> np.ndarray:
        """Stacked antenna-to-antenna sensing powers
        ``(batch, n_antennas, n_antennas)``; the vectorized mirror of
        :meth:`repro.channel.model.ChannelModel.antenna_cross_power_dbm`
        (elevated-path exponent, cable loss on both feeds, +inf diagonal).

        Shadowing toward the antenna locations is drawn *after* the client
        gains cached at construction, matching the scalar model's
        node-visit order, so per-item values are bit-identical.
        """
        pts = self._antennas
        dists = geometry.stacked_pairwise_distances(pts, pts)
        gain = -self._sensing_pathloss.loss_db(dists)
        if self.radio.wall_loss_db > 0:
            gain -= walls.wall_loss_db(
                pts,
                pts,
                self.radio.wall_spacing_m,
                self.radio.wall_loss_db,
                max_walls=self.radio.max_wall_count,
            )
        gain += self.shadowing_db(pts)
        gain -= self._cable_loss_db[:, None, :]  # transmitter's feed
        gain -= self._cable_loss_db[:, :, None]  # sensing antenna's own feed
        power = self.radio.per_antenna_power_dbm + gain
        eye = np.eye(power.shape[-1], dtype=bool)
        power[:, eye] = np.inf
        return power

    def client_rx_power_dbm(self) -> np.ndarray:
        """Stacked large-scale client RSSI (dBm), from the cached gains."""
        return self.radio.per_antenna_power_dbm + self._client_gain_db

    def snr_db_map(self, rx_points=None) -> np.ndarray:
        """Stacked large-scale SNR (dB); defaults to the client positions
        (via the cached gains, like the scalar model's repeated sampling --
        lattice nodes are cached, so no generator state diverges)."""
        noise_dbm = units.mw_to_dbm(self.radio.noise_mw)
        if rx_points is None:
            return self.client_rx_power_dbm() - noise_dbm
        return self.rx_power_dbm(rx_points) - noise_dbm

    # ------------------------------------------------------------------
    # Small-scale channel
    # ------------------------------------------------------------------
    @property
    def time_s(self) -> float:
        """Current simulation time of the batch's fading processes."""
        return self._time_s

    def _innovation(self, items=None) -> np.ndarray:
        n_clients = self._clients.shape[1]
        n_antennas = self._antennas.shape[1]
        rngs = (
            self._fading_rngs
            if items is None
            else [self._fading_rngs[i] for i in items]
        )
        white = np.stack(
            [
                sample_fading(rng, n_clients, n_antennas, self.radio.rician_k)
                for rng in rngs
            ]
        )
        corr = self._corr_sqrt if items is None else self._corr_sqrt[items]
        return white @ np.swapaxes(corr, -1, -2)

    @property
    def _state(self) -> np.ndarray:
        if self._lazy_state is None:
            self._lazy_state = self._innovation()
        return self._lazy_state

    def channel_matrices(self, namespace=None):
        """Instantaneous stacked ``H`` of shape
        ``(batch, n_clients, n_antennas)``.

        Assembly always happens in NumPy -- the stochastic stacks are drawn
        from the per-item generator trees (the :mod:`repro.xp` RNG-bridge
        contract), so the seed streams are identical on every backend.
        ``namespace`` optionally transfers the snapshot onto an
        :class:`repro.xp.ArrayNamespace` (e.g. torch/CUDA) at this compute
        boundary; the default returns the host array unchanged.
        """
        amplitude = np.sqrt(units.db_to_linear(np.asarray(self._client_gain_db)))
        h = amplitude * self._state
        if namespace is None:
            return h
        return namespace.asarray(h, dtype=namespace.complex_dtype)

    def advance(self, dt_s: float, items=None, doppler_hz=None) -> None:
        """Advance fading by ``dt_s`` seconds.

        ``items`` restricts the update to the given item indices (each item
        draws from its own generator, so skipping the others never perturbs
        them); the skipped items' states simply stay at their last value.
        Note that :attr:`time_s` is the clock of the *advanced* items --
        after masked advances it does not describe the skipped items'
        (stale) fading states.

        ``doppler_hz`` optionally supplies per-item, per-client Doppler
        spreads of shape ``(len(items), n_clients)`` (mobility-derived
        speeds), replacing the global :attr:`RadioConfig.doppler_hz`.  Like
        the scalar :meth:`FadingProcess.advance`, the per-client path always
        draws one innovation per advanced item -- ``rho = 1`` rows keep
        their state exactly -- so each item's generator stream matches the
        matching scalar model bit for bit.
        """
        if dt_s < 0:
            raise ValueError("dt_s must be non-negative")
        if doppler_hz is None:
            if dt_s == 0 or self.radio.doppler_hz == 0:
                self._time_s += dt_s
                return
            rho = float(j0(2.0 * np.pi * self.radio.doppler_hz * dt_s))
            rho = float(np.clip(rho, -1.0, 1.0))
            scale = np.sqrt(max(0.0, 1.0 - rho * rho))
            state = self._state  # materialize the initial draw first
            if items is None:
                self._lazy_state = rho * state + scale * self._innovation()
            else:
                items = np.asarray(items, dtype=int)
                state[items] = rho * state[items] + scale * self._innovation(items)
            self._time_s += dt_s
            return
        idx = self._item_indices(items)
        n_clients = self._clients.shape[1]
        fd = np.broadcast_to(
            np.asarray(doppler_hz, dtype=float), (len(idx), n_clients)
        )
        if np.any(fd < 0):
            raise ValueError("doppler_hz must be non-negative")
        if dt_s == 0:
            self._time_s += dt_s
            return
        rho = np.clip(j0(2.0 * np.pi * fd * dt_s), -1.0, 1.0)
        scale = np.sqrt(np.maximum(0.0, 1.0 - rho * rho))
        state = self._state  # materialize the initial draw first
        innovation = self._innovation(None if items is None else idx)
        if items is None:
            self._lazy_state = rho[..., None] * state + scale[..., None] * innovation
        else:
            state[idx] = rho[..., None] * state[idx] + scale[..., None] * innovation
        self._time_s += dt_s
