"""Log-normal shadowing with spatial correlation (Gudmundson-style).

Each *transmit site* owns an independent shadowing field over receiver
positions.  Antennas co-located at one site (a CAS array) therefore see
identical shadowing toward any receiver -- the physical reason a CAS has
"almost the same path loss from different antennas" (paper Fig 2a) -- while
distributed antennas see independent fields.

The field is realized as i.i.d. Gaussians on a coarse lattice with spacing
equal to the decorrelation distance, bilinearly interpolated and re-scaled
to preserve the marginal standard deviation.  This is O(points) instead of
the O(points^3) Cholesky construction, which matters for the 0.5 m deadzone
survey grids.

Sampling is fully vectorized.  Lattice nodes are still drawn lazily -- in
the order a point-by-point walk would first touch them, so the generator
stream (and therefore every result) is bit-identical to the historical
scalar implementation -- but the bilinear interpolation runs as array math
over all query points at once.
"""

from __future__ import annotations

import numpy as np

from ..topology import geometry

#: Lattice indices are packed into a single int64 key, ``ix * 2**31 + iy``;
#: collision-free for |iy| < 2**30, far beyond any indoor survey extent.
_KEY_STRIDE = 2**31

#: Corner offsets in the order the scalar implementation visited them:
#: (ix, iy), (ix+1, iy), (ix, iy+1), (ix+1, iy+1).
_CORNERS = np.array([[0, 0], [1, 0], [0, 1], [1, 1]], dtype=np.int64)


class PreparedPoints:
    """Lattice keys and bilinear weights of one query-point set, reusable
    across every :class:`ShadowingField` sharing the correlation length."""

    __slots__ = ("n_points", "keys", "key_list", "weights", "norm")

    def __init__(self, pts: np.ndarray, correlation_m: float):
        scaled = pts / correlation_m
        base = np.floor(scaled).astype(np.int64)
        frac = scaled - base
        corners = base[:, None, :] + _CORNERS[None, :, :]  # (n, 4, 2)
        self.n_points = len(pts)
        self.keys = corners[..., 0] * _KEY_STRIDE + corners[..., 1]
        # Only the small-set dict-walk branch of sample_prepared reads the
        # boxed key list; large point sets (survey grids) skip the boxing.
        self.key_list = self.keys.ravel().tolist() if self.keys.size <= 64 else None
        fx = frac[:, 0]
        fy = frac[:, 1]
        self.weights = np.stack(
            [(1 - fx) * (1 - fy), fx * (1 - fy), (1 - fx) * fy, fx * fy], axis=1
        )
        self.norm = np.sqrt(np.sum(self.weights * self.weights, axis=1))


def prepare_points(points, correlation_m: float) -> PreparedPoints:
    """Pre-compute the lattice-interpolation geometry for ``points``."""
    return PreparedPoints(geometry.as_points(points), correlation_m)


class ShadowingField:
    """A smooth 2-D Gaussian field with st.dev. ``sigma_db``.

    Values at lattice nodes are drawn lazily and cached, so the field is
    consistent: querying the same point twice returns the same value, and
    nearby points are correlated with decorrelation length ``correlation_m``.
    """

    def __init__(self, rng: np.random.Generator, sigma_db: float, correlation_m: float):
        if sigma_db < 0:
            raise ValueError("sigma_db must be non-negative")
        if correlation_m <= 0:
            raise ValueError("correlation_m must be positive")
        self._rng = rng
        self.sigma_db = float(sigma_db)
        self.correlation_m = float(correlation_m)
        self._nodes: dict[int, float] = {}

    def _node(self, ix: int, iy: int) -> float:
        key = int(ix) * _KEY_STRIDE + int(iy)
        value = self._nodes.get(key)
        if value is None:
            value = float(self._rng.standard_normal())
            self._nodes[key] = value
        return value

    def _node_values(self, keys: np.ndarray) -> np.ndarray:
        """Cached node values for packed ``keys``, drawing missing nodes in
        first-occurrence order (matching a sequential point-by-point walk)."""
        unique, first_index, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        nodes = self._nodes
        unique_list = unique.tolist()
        missing_mask = np.fromiter(
            (key not in nodes for key in unique_list), bool, count=len(unique_list)
        )
        if missing_mask.any():
            # Draw in the order a scalar walk would first touch each node;
            # standard_normal(k) consumes the stream exactly like k scalar
            # draws, so the generator state stays bit-compatible.
            missing = unique[missing_mask].tolist()
            order = np.argsort(first_index[missing_mask], kind="stable")
            draws = self._rng.standard_normal(len(missing))
            for rank, slot in enumerate(order):
                nodes[missing[slot]] = float(draws[rank])
        values = np.array([nodes[key] for key in unique_list])
        return values[inverse]

    def sample(self, points) -> np.ndarray:
        """Shadowing in dB at each point, shape ``(n_points,)``."""
        pts = geometry.as_points(points)
        if self.sigma_db == 0.0:
            return np.zeros(len(pts))
        return self.sample_prepared(prepare_points(pts, self.correlation_m))

    def sample_prepared(self, prep: "PreparedPoints") -> np.ndarray:
        """Shadowing at points pre-processed by :func:`prepare_points`.

        Several fields sharing one correlation length (the per-site fields
        of one deployment) can reuse a single preparation of the same query
        points -- the mobility engines re-evaluate every site toward the
        same moved client set each round, and the lattice-key/weight math
        is identical across sites.  Values and draw order match
        :meth:`sample` exactly.
        """
        if self.sigma_db == 0.0:
            return np.zeros(prep.n_points)
        keys, key_list = prep.keys, prep.key_list
        if keys.size <= 64:
            # Few points (client sets): a direct dict walk beats the
            # np.unique machinery.  Same first-visit draw order either way.
            nodes = self._nodes
            rng = self._rng
            node_values = np.array(
                [
                    nodes[key]
                    if key in nodes
                    else nodes.setdefault(key, float(rng.standard_normal()))
                    for key in key_list
                ]
            ).reshape(prep.n_points, 4)
        else:
            node_values = self._node_values(keys.ravel()).reshape(prep.n_points, 4)
        raw = np.sum(prep.weights * node_values, axis=1)
        # Bilinear mixing shrinks the variance; restore the marginal sigma.
        return raw / prep.norm * self.sigma_db


def group_antenna_sites(antenna_positions, tolerance_m: float = 1.0) -> np.ndarray:
    """Group antennas into shadowing *sites*: single-linkage clusters of the
    "within ``tolerance_m``" relation, so any chain of close pairs shares one
    site regardless of antenna order (union-find over all close pairs).

    A CAS array (half-wavelength spacing) collapses to one site; DAS antennas
    5+ m apart each get their own.  Site ids are assigned in order of each
    cluster's first antenna, matching the historical greedy assignment on
    every non-chained layout (where the two are identical).
    """
    pts = geometry.as_points(antenna_positions)
    n = len(pts)
    parent = np.arange(n)

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]  # path halving
            i = parent[i]
        return int(i)

    dists = geometry.pairwise_distances(pts, pts) if n else np.empty((0, 0))
    for i in range(n):
        for j in range(i + 1, n):
            if dists[i, j] <= tolerance_m:
                root_i, root_j = find(i), find(j)
                if root_i != root_j:
                    # Keep the smaller index as root so cluster roots stay in
                    # first-antenna order for the relabeling below.
                    parent[max(root_i, root_j)] = min(root_i, root_j)
    site_of = np.full(n, -1, dtype=int)
    next_site = 0
    for i in range(n):
        root = find(i)
        if site_of[root] < 0:
            site_of[root] = next_site
            next_site += 1
        site_of[i] = site_of[root]
    return site_of
