"""Log-normal shadowing with spatial correlation (Gudmundson-style).

Each *transmit site* owns an independent shadowing field over receiver
positions.  Antennas co-located at one site (a CAS array) therefore see
identical shadowing toward any receiver -- the physical reason a CAS has
"almost the same path loss from different antennas" (paper Fig 2a) -- while
distributed antennas see independent fields.

The field is realized as i.i.d. Gaussians on a coarse lattice with spacing
equal to the decorrelation distance, bilinearly interpolated and re-scaled
to preserve the marginal standard deviation.  This is O(points) instead of
the O(points^3) Cholesky construction, which matters for the 0.5 m deadzone
survey grids.
"""

from __future__ import annotations

import numpy as np

from ..topology import geometry


class ShadowingField:
    """A smooth 2-D Gaussian field with st.dev. ``sigma_db``.

    Values at lattice nodes are drawn lazily and cached, so the field is
    consistent: querying the same point twice returns the same value, and
    nearby points are correlated with decorrelation length ``correlation_m``.
    """

    def __init__(self, rng: np.random.Generator, sigma_db: float, correlation_m: float):
        if sigma_db < 0:
            raise ValueError("sigma_db must be non-negative")
        if correlation_m <= 0:
            raise ValueError("correlation_m must be positive")
        self._rng = rng
        self.sigma_db = float(sigma_db)
        self.correlation_m = float(correlation_m)
        self._nodes: dict[tuple[int, int], float] = {}

    def _node(self, ix: int, iy: int) -> float:
        key = (ix, iy)
        value = self._nodes.get(key)
        if value is None:
            value = float(self._rng.standard_normal())
            self._nodes[key] = value
        return value

    def sample(self, points) -> np.ndarray:
        """Shadowing in dB at each point, shape ``(n_points,)``."""
        pts = geometry.as_points(points)
        if self.sigma_db == 0.0:
            return np.zeros(len(pts))
        scaled = pts / self.correlation_m
        base = np.floor(scaled).astype(int)
        frac = scaled - base
        values = np.empty(len(pts))
        for i, ((ix, iy), (fx, fy)) in enumerate(zip(map(tuple, base), frac)):
            w00 = (1 - fx) * (1 - fy)
            w10 = fx * (1 - fy)
            w01 = (1 - fx) * fy
            w11 = fx * fy
            raw = (
                w00 * self._node(ix, iy)
                + w10 * self._node(ix + 1, iy)
                + w01 * self._node(ix, iy + 1)
                + w11 * self._node(ix + 1, iy + 1)
            )
            # Bilinear mixing shrinks the variance; restore the marginal sigma.
            norm = np.sqrt(w00**2 + w10**2 + w01**2 + w11**2)
            values[i] = raw / norm
        return values * self.sigma_db


def group_antenna_sites(antenna_positions, tolerance_m: float = 1.0) -> np.ndarray:
    """Group antennas into shadowing *sites*: indices of antennas within
    ``tolerance_m`` of each other share a site id.

    A CAS array (half-wavelength spacing) collapses to one site; DAS antennas
    5+ m apart each get their own.
    """
    pts = geometry.as_points(antenna_positions)
    site_of = np.full(len(pts), -1, dtype=int)
    next_site = 0
    for i in range(len(pts)):
        if site_of[i] >= 0:
            continue
        site_of[i] = next_site
        for j in range(i + 1, len(pts)):
            if site_of[j] < 0 and np.linalg.norm(pts[i] - pts[j]) <= tolerance_m:
                site_of[j] = next_site
        next_site += 1
    return site_of
